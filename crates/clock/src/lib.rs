#![warn(missing_docs)]
//! Clock abstraction for the Janus QoS framework.
//!
//! Every time-dependent component in Janus (leaky-bucket refill, DNS TTL
//! caches, checkpoint intervals, the cluster simulator) reads time through
//! the [`Clock`] trait instead of calling `Instant::now()` directly. This
//! gives two interchangeable time sources:
//!
//! * [`SystemClock`] — monotonic wall-clock time for live deployments.
//! * [`SimClock`] — a virtual clock advanced explicitly by tests and by the
//!   discrete-event simulator, making all bucket arithmetic deterministic.
//!
//! Time is represented as [`Nanos`], a monotonic nanosecond counter starting
//! at an arbitrary per-clock origin. Only differences between two readings
//! of the *same* clock are meaningful.

mod nanos;
mod sim;
mod system;

pub use nanos::Nanos;
pub use sim::SimClock;
pub use system::SystemClock;

use std::sync::Arc;

/// A monotonic time source.
///
/// Implementations must be cheap to call and never move backwards.
pub trait Clock: Send + Sync + std::fmt::Debug + 'static {
    /// Current reading of this clock.
    fn now(&self) -> Nanos;
}

/// Shared handle to a clock, as threaded through Janus components.
pub type SharedClock = Arc<dyn Clock>;

/// Convenience constructor for a shared [`SystemClock`].
pub fn system() -> SharedClock {
    Arc::new(SystemClock::new())
}

/// Convenience constructor for a shared [`SimClock`] starting at zero.
pub fn simulated() -> Arc<SimClock> {
    Arc::new(SimClock::new())
}

impl<C: Clock + ?Sized> Clock for Arc<C> {
    fn now(&self) -> Nanos {
        (**self).now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotonic() {
        let clock = SystemClock::new();
        let mut prev = clock.now();
        for _ in 0..1000 {
            let next = clock.now();
            assert!(next >= prev, "system clock went backwards");
            prev = next;
        }
    }

    #[test]
    fn shared_clock_through_arc() {
        let clock: SharedClock = system();
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
    }
}
