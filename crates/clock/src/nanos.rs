//! The [`Nanos`] monotonic timestamp type.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// A monotonic timestamp in nanoseconds since an arbitrary per-clock origin.
///
/// `Nanos` is deliberately *not* convertible to wall-clock time: only the
/// difference between two readings of the same clock is meaningful. All
/// arithmetic saturates, so a bucket refill computed across a pathological
/// interval can never panic or wrap.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(u64);

impl Nanos {
    /// The clock origin.
    pub const ZERO: Nanos = Nanos(0);
    /// The largest representable timestamp.
    pub const MAX: Nanos = Nanos(u64::MAX);

    /// Construct from a raw nanosecond count.
    pub const fn from_nanos(n: u64) -> Self {
        Nanos(n)
    }

    /// Construct from microseconds (saturating).
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us.saturating_mul(1_000))
    }

    /// Construct from milliseconds (saturating).
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms.saturating_mul(1_000_000))
    }

    /// Construct from whole seconds (saturating).
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s.saturating_mul(1_000_000_000))
    }

    /// Raw nanosecond count since the clock origin.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds since the clock origin.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds since the clock origin.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since the clock origin, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Elapsed time from `earlier` to `self`, zero if `earlier` is later.
    pub fn saturating_since(self, earlier: Nanos) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a [`Duration`].
    pub fn saturating_add(self, d: Duration) -> Nanos {
        let extra = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        Nanos(self.0.saturating_add(extra))
    }

    /// The earlier of two timestamps.
    pub fn min(self, other: Nanos) -> Nanos {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The later of two timestamps.
    pub fn max(self, other: Nanos) -> Nanos {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl fmt::Debug for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl Add<Duration> for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Duration) -> Nanos {
        self.saturating_add(rhs)
    }
}

impl AddAssign<Duration> for Nanos {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<Nanos> for Nanos {
    type Output = Duration;
    fn sub(self, rhs: Nanos) -> Duration {
        self.saturating_since(rhs)
    }
}

impl From<Duration> for Nanos {
    fn from(d: Duration) -> Nanos {
        Nanos(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Nanos::from_secs(2), Nanos::from_millis(2_000));
        assert_eq!(Nanos::from_millis(3), Nanos::from_micros(3_000));
        assert_eq!(Nanos::from_micros(5), Nanos::from_nanos(5_000));
    }

    #[test]
    fn saturating_since_never_negative() {
        let a = Nanos::from_secs(1);
        let b = Nanos::from_secs(2);
        assert_eq!(b.saturating_since(a), Duration::from_secs(1));
        assert_eq!(a.saturating_since(b), Duration::ZERO);
    }

    #[test]
    fn add_saturates_at_max() {
        let near_max = Nanos::from_nanos(u64::MAX - 5);
        assert_eq!(near_max + Duration::from_secs(100), Nanos::MAX);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(Nanos::from_nanos(5).to_string(), "5ns");
        assert_eq!(Nanos::from_micros(5).to_string(), "5.000us");
        assert_eq!(Nanos::from_millis(5).to_string(), "5.000ms");
        assert_eq!(Nanos::from_secs(5).to_string(), "5.000s");
    }

    #[test]
    fn min_max() {
        let a = Nanos::from_secs(1);
        let b = Nanos::from_secs(2);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    proptest! {
        #[test]
        fn sub_then_add_roundtrips(a in 0u64..u64::MAX / 2, d in 0u64..u64::MAX / 4) {
            let start = Nanos::from_nanos(a);
            let later = start + Duration::from_nanos(d);
            prop_assert_eq!(later - start, Duration::from_nanos(d));
        }

        #[test]
        fn ordering_matches_raw(a: u64, b: u64) {
            prop_assert_eq!(Nanos::from_nanos(a) <= Nanos::from_nanos(b), a <= b);
        }
    }
}
