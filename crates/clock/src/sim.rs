//! Virtual clock for deterministic tests and the cluster simulator.

use crate::{Clock, Nanos};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A manually-advanced [`Clock`].
///
/// `SimClock` starts at zero and only moves when [`advance`](Self::advance)
/// or [`set`](Self::set) is called, so leaky-bucket refill, TTL expiry and
/// checkpoint schedules become pure functions of the test script. It is
/// thread-safe: worker threads may read while a driver thread advances.
#[derive(Debug, Default)]
pub struct SimClock {
    now: AtomicU64,
}

impl SimClock {
    /// A new virtual clock at time zero.
    pub fn new() -> Self {
        SimClock {
            now: AtomicU64::new(0),
        }
    }

    /// A new virtual clock starting at `start`.
    pub fn starting_at(start: Nanos) -> Self {
        SimClock {
            now: AtomicU64::new(start.as_nanos()),
        }
    }

    /// Move the clock forward by `d` and return the new reading.
    pub fn advance(&self, d: Duration) -> Nanos {
        let delta = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        let prev = self.now.fetch_add(delta, Ordering::SeqCst);
        Nanos::from_nanos(prev.saturating_add(delta))
    }

    /// Jump the clock to an absolute reading.
    ///
    /// `target` must not be earlier than the current reading; a virtual
    /// clock is still monotonic.
    ///
    /// # Panics
    /// Panics if `target` would move the clock backwards.
    pub fn set(&self, target: Nanos) {
        let prev = self.now.swap(target.as_nanos(), Ordering::SeqCst);
        assert!(
            target.as_nanos() >= prev,
            "SimClock::set would move time backwards: {prev} -> {}",
            target.as_nanos()
        );
    }
}

impl Clock for SimClock {
    fn now(&self) -> Nanos {
        Nanos::from_nanos(self.now.load(Ordering::SeqCst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn starts_at_zero_and_advances() {
        let clock = SimClock::new();
        assert_eq!(clock.now(), Nanos::ZERO);
        let after = clock.advance(Duration::from_millis(250));
        assert_eq!(after, Nanos::from_millis(250));
        assert_eq!(clock.now(), Nanos::from_millis(250));
    }

    #[test]
    fn set_jumps_forward() {
        let clock = SimClock::new();
        clock.set(Nanos::from_secs(10));
        assert_eq!(clock.now(), Nanos::from_secs(10));
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn set_backwards_panics() {
        let clock = SimClock::starting_at(Nanos::from_secs(5));
        clock.set(Nanos::from_secs(1));
    }

    #[test]
    fn concurrent_readers_see_monotonic_time() {
        let clock = Arc::new(SimClock::new());
        let reader = {
            let clock = Arc::clone(&clock);
            std::thread::spawn(move || {
                let mut prev = Nanos::ZERO;
                for _ in 0..10_000 {
                    let now = clock.now();
                    assert!(now >= prev);
                    prev = now;
                }
            })
        };
        for _ in 0..1_000 {
            clock.advance(Duration::from_micros(1));
        }
        reader.join().unwrap();
    }

    #[test]
    fn advance_saturates() {
        let clock = SimClock::starting_at(Nanos::from_nanos(u64::MAX - 1));
        let now = clock.advance(Duration::from_secs(1));
        assert_eq!(now, Nanos::MAX);
    }
}
