//! Monotonic wall-clock time source.

use crate::{Clock, Nanos};
use std::time::Instant;

/// A [`Clock`] backed by [`std::time::Instant`].
///
/// Readings are nanoseconds since the clock was constructed, so each
/// `SystemClock` has its own origin. Live Janus deployments share one
/// instance via [`crate::system`].
#[derive(Debug, Clone)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// A new clock whose origin is "now".
    pub fn new() -> Self {
        SystemClock {
            origin: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Nanos {
        let elapsed = self.origin.elapsed();
        Nanos::from_nanos(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn advances_with_real_time() {
        let clock = SystemClock::new();
        let a = clock.now();
        std::thread::sleep(Duration::from_millis(5));
        let b = clock.now();
        assert!(b.saturating_since(a) >= Duration::from_millis(4));
    }

    #[test]
    fn origin_is_near_zero() {
        let clock = SystemClock::new();
        assert!(clock.now() < Nanos::from_secs(1));
    }
}
