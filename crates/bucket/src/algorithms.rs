//! Alternative rate-limiting algorithms, as baselines for the paper's
//! leaky bucket.
//!
//! The paper adopts the leaky bucket "with a refill mechanism" without
//! comparing alternatives. The two standard alternatives are implemented
//! here behind one trait so tests and benches can contrast them:
//!
//! * [`FixedWindowCounter`] — count requests per aligned wall-clock
//!   window. Cheapest, but admits up to **2×** the purchased rate across
//!   a window boundary (the classic artifact, pinned by a test below).
//! * [`SlidingWindowCounter`] — the weighted two-window approximation
//!   (current window count + overlap-weighted previous window). Smooths
//!   the boundary burst at the same O(1) cost, but cannot offer the leaky
//!   bucket's *configurable* burst allowance: its burst is always ~1
//!   window's worth.
//! * [`LeakyBucket`](crate::LeakyBucket) — the paper's choice: exact
//!   sustained-rate enforcement with an independently tunable burst
//!   capacity, which is precisely the product feature ("occasional burst
//!   operations when the user accumulates credit") the alternatives
//!   cannot express.

use crate::LeakyBucket;
use janus_clock::Nanos;
use janus_types::{Credits, RefillRate, Verdict};

/// A single-key admission decision algorithm.
pub trait Admission: Send {
    /// Decide (and account for) one request at `now`.
    fn try_admit(&mut self, now: Nanos) -> Verdict;

    /// The sustained rate this limiter was configured for, requests per
    /// second (for reporting).
    fn configured_rate(&self) -> u64;
}

/// Requests-per-aligned-window counter.
#[derive(Debug, Clone)]
pub struct FixedWindowCounter {
    limit: u64,
    window_ns: u64,
    current_window: u64,
    count: u64,
}

impl FixedWindowCounter {
    /// Limit `rate_per_sec` requests per one-second aligned window.
    pub fn per_second(rate_per_sec: u64) -> Self {
        FixedWindowCounter {
            limit: rate_per_sec,
            window_ns: 1_000_000_000,
            current_window: 0,
            count: 0,
        }
    }
}

impl Admission for FixedWindowCounter {
    fn try_admit(&mut self, now: Nanos) -> Verdict {
        let window = now.as_nanos() / self.window_ns;
        if window != self.current_window {
            self.current_window = window;
            self.count = 0;
        }
        if self.count < self.limit {
            self.count += 1;
            Verdict::Allow
        } else {
            Verdict::Deny
        }
    }

    fn configured_rate(&self) -> u64 {
        self.limit
    }
}

/// Weighted two-window (sliding-window counter) approximation.
#[derive(Debug, Clone)]
pub struct SlidingWindowCounter {
    limit: u64,
    window_ns: u64,
    current_window: u64,
    count: u64,
    previous_count: u64,
}

impl SlidingWindowCounter {
    /// Limit `rate_per_sec` requests per sliding one-second window.
    pub fn per_second(rate_per_sec: u64) -> Self {
        SlidingWindowCounter {
            limit: rate_per_sec,
            window_ns: 1_000_000_000,
            current_window: 0,
            count: 0,
            previous_count: 0,
        }
    }

    fn roll(&mut self, now: Nanos) {
        let window = now.as_nanos() / self.window_ns;
        if window == self.current_window {
            return;
        }
        self.previous_count = if window == self.current_window + 1 {
            self.count
        } else {
            0 // skipped one or more whole windows
        };
        self.current_window = window;
        self.count = 0;
    }
}

impl Admission for SlidingWindowCounter {
    fn try_admit(&mut self, now: Nanos) -> Verdict {
        self.roll(now);
        let into_window = (now.as_nanos() % self.window_ns) as f64 / self.window_ns as f64;
        let weighted = self.count as f64 + self.previous_count as f64 * (1.0 - into_window);
        if weighted < self.limit as f64 {
            self.count += 1;
            Verdict::Allow
        } else {
            Verdict::Deny
        }
    }

    fn configured_rate(&self) -> u64 {
        self.limit
    }
}

/// Adapter: the paper's leaky bucket behind the [`Admission`] trait.
#[derive(Debug, Clone)]
pub struct LeakyBucketLimiter {
    bucket: LeakyBucket,
    rate: u64,
}

impl LeakyBucketLimiter {
    /// A bucket with `burst` capacity refilling at `rate_per_sec`.
    pub fn new(burst: u64, rate_per_sec: u64) -> Self {
        LeakyBucketLimiter {
            bucket: LeakyBucket::full(
                Credits::from_whole(burst),
                RefillRate::per_second(rate_per_sec),
                Nanos::ZERO,
            ),
            rate: rate_per_sec,
        }
    }
}

impl Admission for LeakyBucketLimiter {
    fn try_admit(&mut self, now: Nanos) -> Verdict {
        self.bucket.try_consume(now)
    }

    fn configured_rate(&self) -> u64 {
        self.rate
    }
}

/// Drive one limiter with a uniform attempt stream and count admissions
/// inside an arbitrary measurement interval (analysis helper).
pub fn admitted_in_interval(
    limiter: &mut dyn Admission,
    attempts_per_sec: u64,
    from: Nanos,
    to: Nanos,
) -> u64 {
    let gap = 1_000_000_000 / attempts_per_sec.max(1);
    let mut t = 0u64;
    let mut admitted = 0u64;
    while t < to.as_nanos() {
        let now = Nanos::from_nanos(t);
        let verdict = limiter.try_admit(now);
        if verdict == Verdict::Allow && now >= from {
            admitted += 1;
        }
        t += gap;
    }
    admitted
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// The classic fixed-window artifact: a client that bursts just
    /// before and just after a window boundary gets ~2× the purchased
    /// rate through in a one-second span. The leaky bucket (with burst ==
    /// rate) does not.
    #[test]
    fn fixed_window_admits_double_rate_across_boundary() {
        let rate = 100u64;
        // Attempt storm in [0.5s, 1.5s): spans one boundary.
        let run = |limiter: &mut dyn Admission| {
            let mut admitted = 0;
            for i in 0..20_000u64 {
                let t = Nanos::from_micros(500_000 + i * 50); // 20k attempts over 1s
                if limiter.try_admit(t) == Verdict::Allow {
                    admitted += 1;
                }
            }
            admitted
        };
        let mut fixed = FixedWindowCounter::per_second(rate);
        // Consume nothing before 0.5s: window 0's counter is empty.
        let fixed_admitted = run(&mut fixed);
        assert!(
            fixed_admitted >= 2 * rate,
            "expected the 2x artifact, got {fixed_admitted}"
        );

        let mut bucket = LeakyBucketLimiter::new(rate, rate);
        // Pre-drain the idle accumulation up to 0.5s so the comparison is
        // about the steady mechanism, not the configured burst.
        for _ in 0..rate {
            bucket.try_admit(Nanos::from_micros(499_000));
        }
        let bucket_admitted = run(&mut bucket);
        assert!(
            bucket_admitted <= rate + rate / 10,
            "leaky bucket leaked the boundary burst: {bucket_admitted}"
        );
    }

    #[test]
    fn sliding_window_smooths_the_boundary() {
        let rate = 100u64;
        let mut sliding = SlidingWindowCounter::per_second(rate);
        let mut admitted = 0;
        for i in 0..20_000u64 {
            let t = Nanos::from_micros(500_000 + i * 50);
            if sliding.try_admit(t) == Verdict::Allow {
                admitted += 1;
            }
        }
        // Still above the exact rate (it is an approximation), but far
        // below the fixed window's 2x.
        assert!(
            admitted < 2 * rate,
            "sliding window did not smooth the burst: {admitted}"
        );
        assert!(
            admitted >= rate,
            "sliding window over-throttled: {admitted}"
        );
    }

    #[test]
    fn all_limiters_converge_to_configured_rate() {
        // Over a long run at 3x offered load, every algorithm admits the
        // purchased rate within 10%.
        let rate = 50u64;
        let horizon = Nanos::from_secs(20);
        let measure_from = Nanos::from_secs(5);
        let mut limiters: Vec<Box<dyn Admission>> = vec![
            Box::new(FixedWindowCounter::per_second(rate)),
            Box::new(SlidingWindowCounter::per_second(rate)),
            Box::new(LeakyBucketLimiter::new(rate, rate)),
        ];
        for limiter in &mut limiters {
            let admitted = admitted_in_interval(limiter.as_mut(), rate * 3, measure_from, horizon);
            let seconds = (horizon - measure_from).as_secs_f64();
            let observed = admitted as f64 / seconds;
            assert!(
                (observed - rate as f64).abs() / rate as f64 <= 0.10,
                "rate {} observed {observed}",
                limiter.configured_rate()
            );
        }
    }

    #[test]
    fn only_the_bucket_expresses_independent_burst() {
        // A tenant buys 10/s sustained with a 500 burst. After an idle
        // minute, the bucket admits the full 500-burst; both window
        // counters cap near one window's allowance.
        let idle_until = Nanos::from_secs(60);
        let attempt_burst = |limiter: &mut dyn Admission| {
            let mut admitted = 0;
            for i in 0..1_000u64 {
                let t = idle_until + Duration::from_micros(i * 100);
                if limiter.try_admit(t) == Verdict::Allow {
                    admitted += 1;
                }
            }
            admitted
        };
        let mut bucket = LeakyBucketLimiter::new(500, 10);
        assert_eq!(attempt_burst(&mut bucket), 500);
        let mut fixed = FixedWindowCounter::per_second(10);
        assert_eq!(attempt_burst(&mut fixed), 10);
        let mut sliding = SlidingWindowCounter::per_second(10);
        assert_eq!(attempt_burst(&mut sliding), 10);
    }

    #[test]
    fn sliding_window_handles_window_skips() {
        let mut sliding = SlidingWindowCounter::per_second(5);
        for i in 0..5 {
            assert_eq!(
                sliding.try_admit(Nanos::from_millis(i * 10)),
                Verdict::Allow
            );
        }
        assert_eq!(sliding.try_admit(Nanos::from_millis(60)), Verdict::Deny);
        // Jump 10 seconds: both windows stale, full allowance again.
        assert_eq!(sliding.try_admit(Nanos::from_secs(10)), Verdict::Allow);
    }
}
