//! A lock-free QoS table: open addressing over inline [`AtomicBucket`]
//! slots, keyed by the 64-bit key digest, with **incremental resize** and
//! **idle-key reclamation** for bounded memory under keyspace churn.
//!
//! The decision hot path ([`LockFreeTable::decide`]) takes **no lock and
//! allocates nothing**: it probes a slot array comparing cached key
//! digests (one `Acquire` load per step) and charges the matching slot's
//! [`AtomicBucket`](crate::AtomicBucket) with a single CAS. Buckets live
//! *inline* in the slot array — no per-entry boxing, no pointer chase.
//!
//! # Slot protocol
//!
//! Each slot's `digest` word is a tiny state machine:
//!
//! ```text
//! EMPTY (0) ──CAS──▶ RESERVED (1) ──publish──▶ PUBLISHED (1<<63 | d62)
//!                        ▲                       │ remove / reclaim
//!                        └────────CAS────────────▼
//!                               TOMBSTONE (1<<62 | d62)
//!
//!            PUBLISHED ──freeze (migration)──▶ MOVED (both bits | d62)
//! ```
//!
//! * Insertion claims `EMPTY` by CAS, writes the key text and bucket while
//!   the slot is private, then publishes the digest with `Release`; a
//!   matching `Acquire` load on the read side makes the bucket visible.
//! * Removal (and reclamation) demotes `PUBLISHED → TOMBSTONE`, *keeping
//!   the digest bits*: a tombstone may only be re-claimed by the **same**
//!   digest. This makes slot reuse ABA-safe without epochs — a decision
//!   racing a remove/re-insert can only ever touch a bucket for the same
//!   key.
//! * Probing walks linearly, passes tombstones and foreign digests, and
//!   stops at `EMPTY` or after [`LockFreeTable::MAX_PROBE`] steps.
//!
//! # Incremental resize
//!
//! Generations form a ladder of power-of-two arrays: when occupancy of the
//! active generation crosses ¾, a double-size successor is installed and
//! the old generation drains **cooperatively** — each `decide`/`insert`
//! first performs one bounded migration quantum
//! ([`LockFreeTable::MIGRATE_QUANTUM`] slots), so there is no
//! stop-the-world rehash and no operation ever does more than a constant
//! amount of migration work. Readers probe new-then-old while a migration
//! is in flight.
//!
//! Moving a bucket is **credit-exact**: the migrator freezes the slot
//! (`PUBLISHED → MOVED` by CAS), then [`AtomicBucket::drain`]s it — the
//! drain zeroes the shape first so late consumers deny, and its final CAS
//! captures every charge that landed before it. A reader that took a
//! `Deny` from a bucket whose digest changed underneath it retries against
//! the successor (an `Allow` always stands: a successful charge is, by CAS
//! ordering, reflected in the drained credit). Old generation arrays stay
//! allocated until the table drops, but they hold no live entries once
//! retired; because sizes double, all retired arrays together are smaller
//! than the active one, so total memory is < 2× the active array.
//!
//! # Idle-key reclamation
//!
//! Every slot carries a packed *touch word* — `(last_touched_tick << 40) |
//! touch_count` — updated with relaxed loads/stores on each decision
//! (racing touches may lose an update; hotness is approximate by design).
//! [`LockFreeTable::reclaim_idle`] sweeps the active generation, freezes
//! keys idle beyond a TTL (`PUBLISHED → RESERVED → TOMBSTONE`), drains
//! their buckets exactly and hands the rows back to the caller for
//! demotion to the cold tier. A reclaimed key readmitted later resumes
//! with the credit it left with (refill that would have accrued while
//! demoted is forfeited — the safe direction).
//!
//! # Overflow
//!
//! When a probe chain exceeds [`LockFreeTable::MAX_PROBE`] the rule is
//! parked in an internal [`ShardedTable`] so no rule is ever dropped; the
//! hot path checks that overflow only while it is non-empty (one relaxed
//! flag load). The flag **clears** when the overflow drains, and a
//! completed resize re-homes parked rules into the (now roomier) open
//! array.
//!
//! Keys match by their 64-bit FNV-1a digest alone (truncated to 62 bits by
//! the flag encoding): two distinct keys sharing a digest would share a
//! bucket. The birthday probability at `n` keys is ~`n²/2⁶³` — below
//! 10⁻⁹ for a million tenants — and the failure mode is two tenants
//! sharing a rate limit, not a safety violation.
//!
//! Misses still flow through the server's DB-fetch/default-policy
//! machinery: `decide` returns `None` exactly like the locked tables.

use crate::table::{QosTable, ReclaimedRule, ShardedTable, TableStats, TableStatsSnapshot};
use janus_clock::Nanos;
use janus_types::sync::Mutex;
use janus_types::{Credits, QosKey, QosRule, RefillRate, Verdict};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

const EMPTY: u64 = 0;
const RESERVED: u64 = 1;
const PUBLISHED_BIT: u64 = 1 << 63;
const TOMBSTONE_BIT: u64 = 1 << 62;
const STATE_BITS: u64 = PUBLISHED_BIT | TOMBSTONE_BIT;
const DIGEST_MASK: u64 = TOMBSTONE_BIT - 1;

fn published(key: &QosKey) -> u64 {
    PUBLISHED_BIT | (key.digest() & DIGEST_MASK)
}

fn tombstone_of(published: u64) -> u64 {
    TOMBSTONE_BIT | (published & DIGEST_MASK)
}

/// A slot frozen for migration: both flag bits plus the digest.
fn moved_of(published: u64) -> u64 {
    STATE_BITS | (published & DIGEST_MASK)
}

fn is_published(d: u64) -> bool {
    d & STATE_BITS == PUBLISHED_BIT
}

// The touch word packs `(tick << 40) | count`, mirroring the bucket's own
// 24-bit / 1 ms anchor quantization (see `atomic.rs`).
const TOUCH_COUNT_BITS: u32 = 40;
const TOUCH_COUNT_MASK: u64 = (1 << TOUCH_COUNT_BITS) - 1;
const TOUCH_TICK_NANOS: u64 = 1_000_000;
const TOUCH_TICK_MASK: u64 = (1 << 24) - 1;
const TOUCH_TICK_HALF_RANGE: u64 = 1 << 23;

fn touch_tick(now: Nanos) -> u64 {
    (now.as_nanos() / TOUCH_TICK_NANOS) & TOUCH_TICK_MASK
}

fn pack_touch(tick: u64, count: u64) -> u64 {
    (tick << TOUCH_COUNT_BITS) | count.min(TOUCH_COUNT_MASK)
}

fn touch_parts(word: u64) -> (u64, u64) {
    (word >> TOUCH_COUNT_BITS, word & TOUCH_COUNT_MASK)
}

/// Shared gauge/counter cells the table engine writes and the QoS server
/// (or a bench harness) reads. Pass a clone of the same cells to
/// [`LockFreeTable::with_cells`] and to the stats exporter.
#[derive(Debug, Clone, Default)]
pub struct TableEngineCells {
    /// Bucket-level CAS retries on the decision path.
    pub cas_retries: Arc<AtomicU64>,
    /// Probe steps beyond the home slot (clustering / fill-factor proxy).
    pub probe_steps: Arc<AtomicU64>,
    /// Published entries in the open-addressed array (overflow excluded).
    pub open_slots: Arc<AtomicU64>,
    /// Slot count of the active generation.
    pub slot_count: Arc<AtomicU64>,
    /// Completed watermark-triggered generation installs.
    pub resizes: Arc<AtomicU64>,
    /// Live rules carried from an old generation to its successor.
    pub migrated_slots: Arc<AtomicU64>,
    /// Keys demoted by `reclaim_idle`.
    pub reclaimed_keys: Arc<AtomicU64>,
}

struct Slot {
    /// Slot state machine word (see module docs).
    digest: AtomicU64,
    /// The bucket, inline: no per-entry allocation.
    bucket: crate::AtomicBucket,
    /// Packed `(last_touched_tick << 40) | touch_count`; relaxed RMW on
    /// the decision path, read by the reclaim sweep.
    touch: AtomicU64,
    /// Key text, needed only by control-plane operations (`keys`,
    /// `snapshot`, `remove`, DB sync). Never touched by `decide`.
    key: Mutex<Option<QosKey>>,
}

impl Slot {
    fn vacant() -> Self {
        Slot {
            digest: AtomicU64::new(EMPTY),
            bucket: crate::AtomicBucket::full(Credits::ZERO, RefillRate::ZERO, Nanos::ZERO),
            touch: AtomicU64::new(0),
            key: Mutex::new(None),
        }
    }
}

/// One rung of the generation ladder.
struct Gen {
    slots: Box<[Slot]>,
    mask: usize,
    /// Next slot index a migration quantum will claim once this
    /// generation has a successor.
    migrate_next: AtomicUsize,
    /// Slots fully processed by migrators; `== slots.len()` retires the
    /// generation.
    migrate_done: AtomicUsize,
}

impl Gen {
    fn new(slots: usize) -> Self {
        Gen {
            slots: (0..slots).map(|_| Slot::vacant()).collect(),
            mask: slots - 1,
            migrate_next: AtomicUsize::new(0),
            migrate_done: AtomicUsize::new(0),
        }
    }

    fn probe_limit(&self) -> usize {
        LockFreeTable::MAX_PROBE.min(self.slots.len())
    }
}

/// Outcome of one generation walk on the insert/update path.
enum GenOutcome {
    /// The rule was applied (in place or into a fresh slot).
    Done,
    /// The key is mid-migration or was frozen under us: re-resolve.
    Retry,
    /// The key is not in this generation (or its probe chain is full).
    Missing,
}

/// Outcome of one generation walk on the decision path.
enum DecideProbe {
    Decided(Verdict),
    Retry,
    Missing,
}

/// The lock-free QoS table (see module docs for the slot protocol, the
/// incremental resize, and the reclamation sweep).
pub struct LockFreeTable {
    /// Generation ladder: `gens[i]` holds `initial_slots << i` slots.
    /// Only `active` and (mid-migration) `active - 1` hold live entries;
    /// the ladder itself is a few empty `OnceLock`s, not arrays.
    gens: Box<[OnceLock<Gen>]>,
    active: AtomicUsize,
    /// Count of fully drained generations. `retired == active` means no
    /// migration is in flight; the invariant `retired >= active - 1`
    /// (one migration at a time) always holds.
    retired: AtomicUsize,
    resizable: bool,
    /// Resume point for capped reclaim sweeps.
    reclaim_cursor: AtomicUsize,
    /// Probe-limit escape hatch; almost always empty.
    overflow: ShardedTable,
    overflow_in_use: AtomicBool,
    stats: TableStats,
    cells: TableEngineCells,
}

impl LockFreeTable {
    /// Default slot count (power of two). Comfortable for tens of
    /// thousands of tenant rules before probe chains grow — and with the
    /// resizable ladder, a deliberately small starting size is fine too.
    pub const DEFAULT_SLOTS: usize = 16_384;

    /// Longest probe chain before a rule is parked in the overflow table.
    pub const MAX_PROBE: usize = 128;

    /// Old-generation slots one operation migrates before doing its own
    /// work: the incremental-resize work bound.
    pub const MIGRATE_QUANTUM: usize = 8;

    /// Resize when published entries reach ¾ of the active array.
    const WATERMARK_NUM: usize = 3;
    const WATERMARK_DEN: usize = 4;

    /// A resizable table with [`Self::DEFAULT_SLOTS`] initial slots.
    pub fn new() -> Self {
        Self::with_slots(Self::DEFAULT_SLOTS)
    }

    /// A resizable table with at least `slots` initial slots (rounded up
    /// to a power of two).
    ///
    /// # Panics
    /// Panics if `slots` is zero.
    pub fn with_slots(slots: usize) -> Self {
        Self::with_cells(slots, TableEngineCells::default())
    }

    /// A fixed-capacity table: never resizes, probe exhaustion parks
    /// rules in the overflow (the pre-resize behavior; the "fixed" arm
    /// of DESIGN.md ablation 14).
    ///
    /// # Panics
    /// Panics if `slots` is zero.
    pub fn fixed(slots: usize) -> Self {
        Self::build(slots, TableEngineCells::default(), false)
    }

    /// A resizable table whose gauge/counter cells are shared with the
    /// caller (the QoS server passes its `ServerStats` cells here so
    /// `ServerStats::snapshot()` exposes live table-engine state).
    ///
    /// # Panics
    /// Panics if `slots` is zero.
    pub fn with_cells(slots: usize, cells: TableEngineCells) -> Self {
        Self::build(slots, cells, true)
    }

    /// Back-compat constructor sharing only the two contention counters.
    ///
    /// # Panics
    /// Panics if `slots` is zero.
    pub fn with_hot_counters(
        slots: usize,
        cas_retries: Arc<AtomicU64>,
        probe_steps: Arc<AtomicU64>,
    ) -> Self {
        Self::with_cells(
            slots,
            TableEngineCells {
                cas_retries,
                probe_steps,
                ..TableEngineCells::default()
            },
        )
    }

    fn build(slots: usize, cells: TableEngineCells, resizable: bool) -> Self {
        assert!(slots > 0, "need at least one slot");
        let slots = slots.next_power_of_two();
        // Enough rungs to double up to 2^32 slots; past that the table
        // simply stops resizing and leans on the overflow.
        let rungs = if resizable {
            (33usize.saturating_sub(slots.trailing_zeros() as usize)).max(1)
        } else {
            1
        };
        let gens: Box<[OnceLock<Gen>]> = (0..rungs).map(|_| OnceLock::new()).collect();
        gens[0].set(Gen::new(slots)).ok();
        cells.slot_count.store(slots as u64, Ordering::Relaxed);
        cells.open_slots.store(0, Ordering::Relaxed);
        LockFreeTable {
            gens,
            active: AtomicUsize::new(0),
            retired: AtomicUsize::new(0),
            resizable,
            reclaim_cursor: AtomicUsize::new(0),
            overflow: ShardedTable::new(),
            overflow_in_use: AtomicBool::new(false),
            stats: TableStats::default(),
            cells,
        }
    }

    /// Total CAS retries observed across all decisions so far.
    pub fn cas_retries(&self) -> u64 {
        self.cells.cas_retries.load(Ordering::Relaxed)
    }

    /// Total probe steps beyond the home slot across all decisions so far.
    pub fn probe_steps(&self) -> u64 {
        self.cells.probe_steps.load(Ordering::Relaxed)
    }

    /// A clone of the gauge/counter cells this table writes.
    pub fn engine_cells(&self) -> TableEngineCells {
        self.cells.clone()
    }

    fn gen_at(&self, i: usize) -> &Gen {
        self.gens[i]
            .get()
            .expect("generation installed before activation")
    }

    /// Generations that may hold live entries, oldest first.
    fn live_range(&self) -> std::ops::RangeInclusive<usize> {
        let active = self.active.load(Ordering::Acquire);
        self.retired.load(Ordering::Acquire).min(active)..=active
    }

    fn overflow_active(&self) -> bool {
        self.overflow_in_use.load(Ordering::Relaxed)
    }

    /// Record a decision against the slot's touch word. Plain load+store:
    /// a racing touch may be lost, which only makes hotness approximate.
    fn note_touch(slot: &Slot, now: Nanos) {
        let (_, count) = touch_parts(slot.touch.load(Ordering::Relaxed));
        slot.touch
            .store(pack_touch(touch_tick(now), count + 1), Ordering::Relaxed);
    }

    /// Park a rule in the overflow. The insert lands *before* the flag is
    /// raised so the flag is never clear while a parked rule exists (see
    /// `clear_overflow_flag_if_drained` for the matching clear protocol).
    fn park_in_overflow(&self, rule: QosRule, now: Nanos, overwrite: bool) {
        if overwrite {
            self.overflow.restore(vec![rule], now);
        } else {
            self.overflow.insert(rule, now);
        }
        self.overflow_in_use.store(true, Ordering::Relaxed);
    }

    /// Drop the overflow flag if the overflow has drained. A concurrent
    /// park re-checks after its insert; the clear-then-recheck below
    /// closes the remaining interleavings: if a park lands between our
    /// emptiness check and the clear, the recheck restores the flag, and
    /// a park that lands after the recheck raises the flag itself (its
    /// insert precedes its flag store).
    fn clear_overflow_flag_if_drained(&self) {
        if self.overflow_in_use.load(Ordering::Relaxed) && self.overflow.is_empty() {
            self.overflow_in_use.store(false, Ordering::Relaxed);
            if !self.overflow.is_empty() {
                self.overflow_in_use.store(true, Ordering::Relaxed);
            }
        }
    }

    /// Perform one bounded quantum of migration work if a generation is
    /// draining. Public so callers with idle cycles (housekeeping loops,
    /// schedule-driven tests) can help a migration along; `decide` and
    /// `insert` call it implicitly.
    pub fn run_migration_quantum(&self, now: Nanos) {
        let active = self.active.load(Ordering::SeqCst);
        if self.retired.load(Ordering::Acquire) >= active {
            return;
        }
        let old = self.gen_at(active - 1);
        let new = self.gen_at(active);
        let len = old.slots.len();
        let start = old
            .migrate_next
            .fetch_add(Self::MIGRATE_QUANTUM, Ordering::AcqRel);
        if start >= len {
            return; // fully claimed; stragglers are finishing their ranges
        }
        let end = (start + Self::MIGRATE_QUANTUM).min(len);
        for idx in start..end {
            self.migrate_slot(old, new, idx, now);
        }
        let done = old.migrate_done.fetch_add(end - start, Ordering::AcqRel) + (end - start);
        if done == len {
            self.retired.store(active, Ordering::Release);
            // The doubled array usually has room for rules a crowded
            // predecessor parked in the overflow: re-home them now.
            self.rehome_overflow(now);
        }
    }

    /// Carry one old-generation slot to the successor, credit-exactly.
    fn migrate_slot(&self, old: &Gen, new: &Gen, idx: usize, now: Nanos) {
        let slot = &old.slots[idx];
        loop {
            let d = slot.digest.load(Ordering::SeqCst);
            if !is_published(d) {
                if d == RESERVED {
                    // An insert claimed this slot just before the
                    // generation flipped; wait out its publish stores
                    // (or its undo — see `walk_gen`).
                    std::hint::spin_loop();
                    continue;
                }
                return; // EMPTY, tombstone or already moved: nothing live
            }
            if slot
                .digest
                .compare_exchange(d, moved_of(d), Ordering::SeqCst, Ordering::SeqCst)
                .is_err()
            {
                continue; // racing remove/reclaim: re-examine
            }
            // Frozen: readers retry against the successor from here on.
            let key = slot.key.lock().take();
            let touch = slot.touch.load(Ordering::Relaxed);
            let (capacity, refill_rate, credit) = slot.bucket.drain(now);
            self.cells.open_slots.fetch_sub(1, Ordering::Relaxed);
            self.cells.migrated_slots.fetch_add(1, Ordering::Relaxed);
            if let Some(key) = key {
                let rule = QosRule {
                    key,
                    capacity,
                    refill_rate,
                    credit,
                };
                self.place_carried(new, rule, touch, now);
            }
            return;
        }
    }

    /// Publish a migrated rule into the successor generation, preserving
    /// its touch word. The key cannot be concurrently published there
    /// (inserters wait out a move in flight), so this is a plain claim;
    /// if even the doubled array's probe chain is full, the rule parks in
    /// the overflow — never dropped either way.
    fn place_carried(&self, gen: &Gen, rule: QosRule, touch: u64, now: Nanos) {
        let wanted = published(&rule.key);
        let mut idx = rule.key.digest() as usize & gen.mask;
        for _ in 0..gen.probe_limit() {
            let slot = &gen.slots[idx];
            loop {
                let d = slot.digest.load(Ordering::Acquire);
                if d == wanted {
                    // Defensive only: fold the carried state in as an
                    // overwrite so no credit is minted.
                    slot.bucket.apply_rule_update(&rule, now);
                    slot.bucket.set_credit(rule.credit, now);
                    *slot.key.lock() = Some(rule.key);
                    return;
                }
                if d == EMPTY || d == tombstone_of(wanted) {
                    if slot
                        .digest
                        .compare_exchange(d, RESERVED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        *slot.key.lock() = Some(rule.key.clone());
                        slot.bucket.store_rule(&rule, now);
                        slot.touch.store(touch, Ordering::Relaxed);
                        slot.digest.store(wanted, Ordering::Release);
                        self.cells.open_slots.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    continue;
                }
                if d == RESERVED {
                    std::hint::spin_loop();
                    continue;
                }
                break;
            }
            idx = (idx + 1) & gen.mask;
        }
        self.park_in_overflow(rule, now, true);
    }

    /// After a resize completes, move parked overflow rules back into the
    /// open array. `take` captures each rule's credit atomically with its
    /// removal, so no charge is lost; a key mid-flight here briefly
    /// misses (the safe direction), exactly like any other miss.
    fn rehome_overflow(&self, now: Nanos) {
        if !self.overflow_active() {
            return;
        }
        for key in self.overflow.keys() {
            if let Some(rule) = self.overflow.take(&key, now) {
                self.place(rule, now, true);
            }
        }
        self.clear_overflow_flag_if_drained();
    }

    /// Install a double-size successor when the watermark is crossed.
    fn maybe_resize(&self) {
        if !self.resizable {
            return;
        }
        let active = self.active.load(Ordering::SeqCst);
        if self.retired.load(Ordering::Acquire) < active {
            return; // one migration at a time
        }
        if active + 1 >= self.gens.len() {
            return; // ladder exhausted (2^32 slots): behave as fixed
        }
        let gen = self.gen_at(active);
        let open = self.cells.open_slots.load(Ordering::Relaxed) as usize;
        if open * Self::WATERMARK_DEN < gen.slots.len() * Self::WATERMARK_NUM {
            return;
        }
        // Losing the set race means another thread is doing exactly this.
        if self.gens[active + 1]
            .set(Gen::new(gen.slots.len() * 2))
            .is_ok()
        {
            self.cells.resizes.fetch_add(1, Ordering::Relaxed);
            self.cells
                .slot_count
                .store((gen.slots.len() * 2) as u64, Ordering::Relaxed);
            self.active.store(active + 1, Ordering::SeqCst);
        }
    }

    /// One insert/update walk over `gen`. With `allow_claim` this is the
    /// full insert-or-update protocol; without it, update-in-place only
    /// (used against the draining predecessor, whose migrator will carry
    /// the updated state).
    fn walk_gen(
        &self,
        gen: &Gen,
        active_idx: usize,
        rule: &QosRule,
        wanted: u64,
        now: Nanos,
        overwrite: bool,
        allow_claim: bool,
    ) -> GenOutcome {
        let mut idx = rule.key.digest() as usize & gen.mask;
        for _ in 0..gen.probe_limit() {
            let slot = &gen.slots[idx];
            loop {
                let d = slot.digest.load(Ordering::Acquire);
                if d == wanted {
                    slot.bucket.apply_rule_update(rule, now);
                    if overwrite {
                        slot.bucket.set_credit(rule.credit, now);
                    }
                    *slot.key.lock() = Some(rule.key.clone());
                    if slot.digest.load(Ordering::Acquire) != wanted {
                        // Frozen under us (migration or reclamation): the
                        // update may not have been captured — re-apply
                        // against wherever the key lands.
                        return GenOutcome::Retry;
                    }
                    return GenOutcome::Done;
                }
                if d == moved_of(wanted) {
                    return GenOutcome::Retry; // move in flight: wait it out
                }
                if allow_claim && (d == EMPTY || d == tombstone_of(wanted)) {
                    if slot
                        .digest
                        .compare_exchange(d, RESERVED, Ordering::SeqCst, Ordering::SeqCst)
                        .is_err()
                    {
                        continue; // lost the claim race: re-examine
                    }
                    // The generation may have flipped since the caller
                    // sampled `active`; a claim completed behind the new
                    // migration cursor would be stranded in a retired
                    // array. Nobody passes a RESERVED slot on the write
                    // path, so un-claiming is safe. (SeqCst on this CAS,
                    // on the recheck below, on the flip store and on the
                    // migrator's digest reads makes the race a clean
                    // either/or: the migrator sees our reservation, or we
                    // see the flip.)
                    if self.active.load(Ordering::SeqCst) != active_idx {
                        slot.digest.store(d, Ordering::SeqCst);
                        return GenOutcome::Retry;
                    }
                    *slot.key.lock() = Some(rule.key.clone());
                    slot.bucket.store_rule(rule, now);
                    slot.touch
                        .store(pack_touch(touch_tick(now), 0), Ordering::Relaxed);
                    slot.digest.store(wanted, Ordering::Release);
                    self.cells.open_slots.fetch_add(1, Ordering::Relaxed);
                    if self.overflow_active() {
                        // An earlier probe-limit miss may have parked this
                        // key; the open slot shadows it, so drop the copy.
                        self.overflow.remove(&rule.key);
                        self.clear_overflow_flag_if_drained();
                    }
                    return GenOutcome::Done;
                }
                if d == RESERVED {
                    // Another writer is mid-publish (or mid-undo); wait to
                    // see what the slot becomes. Bounded: a few stores.
                    std::hint::spin_loop();
                    continue;
                }
                break; // foreign digest / unclaimable state: next slot
            }
            idx = (idx + 1) & gen.mask;
        }
        GenOutcome::Missing
    }

    /// Insert-or-update (`overwrite == false`, the [`QosTable::insert`]
    /// contract) or overwrite (`overwrite == true`, the
    /// [`QosTable::restore`] contract).
    fn place(&self, rule: QosRule, now: Nanos, overwrite: bool) {
        let wanted = published(&rule.key);
        loop {
            let active = self.active.load(Ordering::SeqCst);
            // A draining predecessor may still hold the key: update it in
            // place there (the migrator carries the updated state) or wait
            // out a move in flight. Checking old-before-claim keeps every
            // key single-homed.
            if self.retired.load(Ordering::Acquire) < active {
                match self.walk_gen(
                    self.gen_at(active - 1),
                    active,
                    &rule,
                    wanted,
                    now,
                    overwrite,
                    false,
                ) {
                    GenOutcome::Done => return,
                    GenOutcome::Retry => {
                        std::hint::spin_loop();
                        continue;
                    }
                    GenOutcome::Missing => {}
                }
            }
            match self.walk_gen(
                self.gen_at(active),
                active,
                &rule,
                wanted,
                now,
                overwrite,
                true,
            ) {
                GenOutcome::Done => {
                    self.maybe_resize();
                    return;
                }
                GenOutcome::Retry => continue,
                GenOutcome::Missing => {
                    // Probe chain exhausted: park so the rule is never lost.
                    self.park_in_overflow(rule, now, overwrite);
                    return;
                }
            }
        }
    }

    /// One decision walk over `gen`.
    fn probe_decide(&self, gen: &Gen, wanted: u64, home: usize, now: Nanos) -> DecideProbe {
        let mut idx = home & gen.mask;
        for step in 0..gen.probe_limit() {
            let slot = &gen.slots[idx];
            let d = slot.digest.load(Ordering::Acquire);
            if d == wanted {
                if step > 0 {
                    self.cells
                        .probe_steps
                        .fetch_add(step as u64, Ordering::Relaxed);
                }
                let (verdict, retries) = slot.bucket.try_consume_counted(now);
                if retries > 0 {
                    self.cells.cas_retries.fetch_add(retries, Ordering::Relaxed);
                }
                if verdict == Verdict::Deny && slot.digest.load(Ordering::Acquire) != wanted {
                    // The slot was frozen under us (migration or
                    // reclamation): this deny may reflect a drained husk,
                    // not a dry bucket. Allows always stand — a successful
                    // charge is captured by the drain. Re-resolve the key.
                    return DecideProbe::Retry;
                }
                Self::note_touch(slot, now);
                self.stats.record(verdict);
                return DecideProbe::Decided(verdict);
            }
            if d == moved_of(wanted) {
                return DecideProbe::Retry; // move in flight: successor has it
            }
            if d == EMPTY {
                return DecideProbe::Missing;
            }
            idx = (idx + 1) & gen.mask;
        }
        DecideProbe::Missing
    }
}

impl Default for LockFreeTable {
    fn default() -> Self {
        Self::new()
    }
}

impl QosTable for LockFreeTable {
    fn decide(&self, key: &QosKey, now: Nanos) -> Option<Verdict> {
        self.run_migration_quantum(now);
        let wanted = published(key);
        let home = key.digest() as usize;
        loop {
            let active = self.active.load(Ordering::Acquire);
            match self.probe_decide(self.gen_at(active), wanted, home, now) {
                DecideProbe::Decided(v) => return Some(v),
                DecideProbe::Retry => continue,
                DecideProbe::Missing => {}
            }
            if self.retired.load(Ordering::Acquire) < active {
                match self.probe_decide(self.gen_at(active - 1), wanted, home, now) {
                    DecideProbe::Decided(v) => return Some(v),
                    DecideProbe::Retry => {
                        std::hint::spin_loop();
                        continue;
                    }
                    DecideProbe::Missing => {}
                }
                // A resize may have flipped generations between the two
                // probes; re-run against the fresh pair if so.
                if self.active.load(Ordering::Acquire) != active {
                    continue;
                }
            }
            break;
        }
        if self.overflow_active() {
            return self.overflow.decide(key, now);
        }
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    fn shape(&self, key: &QosKey) -> Option<(Credits, RefillRate)> {
        let wanted = published(key);
        let home = key.digest() as usize;
        'retry: loop {
            for gi in self.live_range().rev() {
                let gen = self.gen_at(gi);
                let mut idx = home & gen.mask;
                for _ in 0..gen.probe_limit() {
                    let slot = &gen.slots[idx];
                    let d = slot.digest.load(Ordering::Acquire);
                    if d == wanted {
                        let shape = (slot.bucket.capacity(), slot.bucket.refill_rate());
                        if slot.digest.load(Ordering::Acquire) != wanted {
                            // Drained under us: the shape read may be the
                            // zeroed husk. Re-resolve.
                            std::hint::spin_loop();
                            continue 'retry;
                        }
                        return Some(shape);
                    }
                    if d == moved_of(wanted) {
                        std::hint::spin_loop();
                        continue 'retry;
                    }
                    if d == EMPTY {
                        break;
                    }
                    idx = (idx + 1) & gen.mask;
                }
            }
            break;
        }
        if self.overflow_active() {
            return self.overflow.shape(key);
        }
        None
    }

    fn insert(&self, rule: QosRule, now: Nanos) {
        self.run_migration_quantum(now);
        self.place(rule, now, false);
    }

    fn apply_update(&self, rule: &QosRule, now: Nanos) -> bool {
        let wanted = published(&rule.key);
        loop {
            let active = self.active.load(Ordering::Acquire);
            match self.walk_gen(self.gen_at(active), active, rule, wanted, now, false, false) {
                GenOutcome::Done => return true,
                GenOutcome::Retry => continue,
                GenOutcome::Missing => {}
            }
            if self.retired.load(Ordering::Acquire) < active {
                match self.walk_gen(
                    self.gen_at(active - 1),
                    active,
                    rule,
                    wanted,
                    now,
                    false,
                    false,
                ) {
                    GenOutcome::Done => return true,
                    GenOutcome::Retry => {
                        std::hint::spin_loop();
                        continue;
                    }
                    GenOutcome::Missing => {}
                }
                if self.active.load(Ordering::Acquire) != active {
                    continue;
                }
            }
            break;
        }
        if self.overflow_active() {
            return self.overflow.apply_update(rule, now);
        }
        false
    }

    fn remove(&self, key: &QosKey) -> bool {
        let wanted = published(key);
        let mut removed_open = false;
        'retry: loop {
            'gens: for gi in self.live_range().rev() {
                let gen = self.gen_at(gi);
                let mut idx = key.digest() as usize & gen.mask;
                for _ in 0..gen.probe_limit() {
                    let slot = &gen.slots[idx];
                    let d = slot.digest.load(Ordering::Acquire);
                    if d == wanted {
                        // Serialize with other control-plane ops on this
                        // slot, then demote to a same-digest tombstone. A
                        // decision that already matched the published
                        // digest may still charge the parked bucket once —
                        // a single-decision anomaly, never a cross-key one.
                        let mut stored = slot.key.lock();
                        if slot
                            .digest
                            .compare_exchange(
                                wanted,
                                tombstone_of(wanted),
                                Ordering::AcqRel,
                                Ordering::Acquire,
                            )
                            .is_ok()
                        {
                            *stored = None;
                            self.cells.open_slots.fetch_sub(1, Ordering::Relaxed);
                            removed_open = true;
                            break 'gens;
                        }
                        drop(stored);
                        // Frozen or republished under us: re-resolve.
                        std::hint::spin_loop();
                        continue 'retry;
                    }
                    if d == moved_of(wanted) {
                        std::hint::spin_loop();
                        continue 'retry;
                    }
                    if d == EMPTY {
                        break;
                    }
                    idx = (idx + 1) & gen.mask;
                }
            }
            break;
        }
        let removed_overflow = self.overflow_active() && self.overflow.remove(key);
        if removed_overflow {
            self.clear_overflow_flag_if_drained();
        }
        removed_open || removed_overflow
    }

    fn len(&self) -> usize {
        let overflow = if self.overflow_active() {
            self.overflow.len()
        } else {
            0
        };
        self.cells.open_slots.load(Ordering::Relaxed) as usize + overflow
    }

    fn keys(&self) -> Vec<QosKey> {
        let mut keys = Vec::with_capacity(self.len());
        for gi in self.live_range() {
            for slot in self.gen_at(gi).slots.iter() {
                if is_published(slot.digest.load(Ordering::Acquire)) {
                    if let Some(key) = slot.key.lock().clone() {
                        keys.push(key);
                    }
                }
            }
        }
        if self.overflow_active() {
            keys.extend(self.overflow.keys());
        }
        keys
    }

    fn snapshot(&self, now: Nanos) -> Vec<QosRule> {
        let mut rules = Vec::with_capacity(self.len());
        for gi in self.live_range() {
            for slot in self.gen_at(gi).slots.iter() {
                if is_published(slot.digest.load(Ordering::Acquire)) {
                    if let Some(key) = slot.key.lock().clone() {
                        rules.push(slot.bucket.to_rule(key, now));
                    }
                }
            }
        }
        if self.overflow_active() {
            rules.extend(self.overflow.snapshot(now));
        }
        rules
    }

    fn restore(&self, rules: Vec<QosRule>, now: Nanos) {
        for rule in rules {
            self.run_migration_quantum(now);
            self.place(rule, now, true);
        }
    }

    fn sweep_refill(&self, now: Nanos) {
        let mut retries = 0u64;
        for gi in self.live_range() {
            for slot in self.gen_at(gi).slots.iter() {
                if is_published(slot.digest.load(Ordering::Acquire)) {
                    retries += slot.bucket.refill(now);
                }
            }
        }
        if retries > 0 {
            self.cells.cas_retries.fetch_add(retries, Ordering::Relaxed);
        }
        if self.overflow_active() {
            self.overflow.sweep_refill(now);
        }
    }

    fn reclaim_idle(&self, now: Nanos, idle_ttl: Duration, max: usize) -> Vec<ReclaimedRule> {
        if max == 0 {
            return Vec::new();
        }
        let active = self.active.load(Ordering::Acquire);
        if self.retired.load(Ordering::Acquire) < active {
            // Finish the in-flight migration first; the sweep simply
            // returns at the next interval.
            return Vec::new();
        }
        let ttl_ticks = ((idle_ttl.as_nanos() / u128::from(TOUCH_TICK_NANOS)) as u64).max(1);
        if ttl_ticks >= TOUCH_TICK_HALF_RANGE {
            return Vec::new(); // TTL beyond the wrap horizon: nothing provably idle
        }
        let gen = self.gen_at(active);
        let len = gen.slots.len();
        let now_tick = touch_tick(now);
        let start = self.reclaim_cursor.load(Ordering::Relaxed) % len;
        let mut out = Vec::new();
        for i in 0..len {
            if out.len() >= max {
                self.reclaim_cursor
                    .store((start + i) % len, Ordering::Relaxed);
                return out;
            }
            let slot = &gen.slots[(start + i) % len];
            let d = slot.digest.load(Ordering::Acquire);
            if !is_published(d) {
                continue;
            }
            let (tick, count) = touch_parts(slot.touch.load(Ordering::Relaxed));
            let age = now_tick.wrapping_sub(tick) & TOUCH_TICK_MASK;
            if age >= TOUCH_TICK_HALF_RANGE || age < ttl_ticks {
                continue; // fresh — or clock skew, where keeping is the safe direction
            }
            // Freeze, drain exactly, tombstone. The key lock serializes
            // with `remove` and control-plane updates; readers pass the
            // transient RESERVED state and miss, exactly like a removed
            // key.
            let mut stored = slot.key.lock();
            if slot
                .digest
                .compare_exchange(d, RESERVED, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                continue;
            }
            let key = stored.take();
            let (capacity, refill_rate, credit) = slot.bucket.drain(now);
            slot.digest.store(tombstone_of(d), Ordering::Release);
            drop(stored);
            self.cells.open_slots.fetch_sub(1, Ordering::Relaxed);
            self.cells.reclaimed_keys.fetch_add(1, Ordering::Relaxed);
            if let Some(key) = key {
                out.push(ReclaimedRule {
                    rule: QosRule {
                        key,
                        capacity,
                        refill_rate,
                        credit,
                    },
                    touches: count,
                });
            }
        }
        self.reclaim_cursor.store(start, Ordering::Relaxed);
        out
    }

    fn stats(&self) -> TableStatsSnapshot {
        let own = self.stats.snapshot();
        let overflow = self.overflow.stats();
        TableStatsSnapshot {
            decisions: own.decisions + overflow.decisions,
            allows: own.allows + overflow.allows,
            denies: own.denies + overflow.denies,
            misses: own.misses + overflow.misses,
            cas_retries: self.cells.cas_retries.load(Ordering::Relaxed),
            probe_steps: self.cells.probe_steps.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(s: &str) -> QosKey {
        QosKey::new(s).unwrap()
    }

    fn rule(s: &str, cap: u64, rate: u64) -> QosRule {
        QosRule::per_second(key(s), cap, rate)
    }

    fn secs(s: u64) -> Nanos {
        Nanos::from_nanos(s * 1_000_000_000)
    }

    fn migration_in_flight(table: &LockFreeTable) -> bool {
        table.retired.load(Ordering::Acquire) < table.active.load(Ordering::Acquire)
    }

    fn pump_until_retired(table: &LockFreeTable, now: Nanos) {
        let mut guard = 0;
        while migration_in_flight(table) {
            table.run_migration_quantum(now);
            guard += 1;
            assert!(guard < 1_000_000, "migration never completed");
        }
    }

    #[test]
    fn slot_count_rounds_up_to_power_of_two() {
        let table = LockFreeTable::with_slots(1000);
        assert_eq!(table.gen_at(0).slots.len(), 1024);
        assert_eq!(table.cells.slot_count.load(Ordering::Relaxed), 1024);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_panics() {
        LockFreeTable::with_slots(0);
    }

    #[test]
    fn probe_limit_overflow_parks_rules_without_losing_them() {
        // 4 fixed slots, 12 keys: at least 8 rules must overflow, and
        // every one of them still decides, lists and snapshots correctly.
        let table = LockFreeTable::fixed(4);
        for i in 0..12 {
            table.insert(rule(&format!("k{i}"), 1, 0), Nanos::ZERO);
        }
        assert_eq!(table.len(), 12);
        assert!(table.overflow_active());
        let mut keys = table.keys();
        keys.sort();
        assert_eq!(keys.len(), 12);
        for i in 0..12 {
            let k = key(&format!("k{i}"));
            assert_eq!(table.decide(&k, Nanos::ZERO), Some(Verdict::Allow), "k{i}");
            assert_eq!(table.decide(&k, Nanos::ZERO), Some(Verdict::Deny), "k{i}");
        }
        assert_eq!(table.snapshot(Nanos::ZERO).len(), 12);
    }

    #[test]
    fn tombstone_is_reclaimed_by_the_same_key_only() {
        let table = LockFreeTable::with_slots(64);
        table.insert(rule("alice", 5, 0), Nanos::ZERO);
        let gen = table.gen_at(0);
        let home = key("alice").digest() as usize & gen.mask;
        assert!(table.remove(&key("alice")));
        assert_eq!(
            gen.slots[home].digest.load(Ordering::Relaxed) & TOMBSTONE_BIT,
            TOMBSTONE_BIT,
            "slot should be tombstoned, not emptied"
        );
        assert_eq!(table.decide(&key("alice"), Nanos::ZERO), None);
        // Re-inserting the same key reuses its tombstoned home slot.
        table.insert(rule("alice", 2, 0), Nanos::ZERO);
        assert_eq!(table.len(), 1);
        assert_eq!(
            table.decide(&key("alice"), Nanos::ZERO),
            Some(Verdict::Allow)
        );
        assert!(is_published(gen.slots[home].digest.load(Ordering::Relaxed)));
    }

    #[test]
    fn contention_counters_surface_cas_retries() {
        use std::sync::Arc as StdArc;
        let table = StdArc::new(LockFreeTable::new());
        table.insert(rule("hot", 100_000, 0), Nanos::ZERO);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let table = StdArc::clone(&table);
                scope.spawn(move || {
                    let k = key("hot");
                    for _ in 0..2_000 {
                        table.decide(&k, Nanos::ZERO);
                    }
                });
            }
        });
        let stats = table.stats();
        assert_eq!(stats.decisions, 16_000);
        // 8 threads hammering one bucket must collide at least once; the
        // exported counter proves the retry path is observable. A CAS can
        // only lose to a true concurrent winner, so on a single-core host
        // (threads timesliced, almost never mid-window) the collision is
        // not guaranteed — assert it only where parallelism exists.
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        if cores >= 2 {
            assert!(
                stats.cas_retries > 0,
                "expected some CAS retries under contention"
            );
        }
        assert_eq!(stats.cas_retries, table.cas_retries());
    }

    #[test]
    fn shared_counters_are_visible_through_the_caller_cells() {
        let cas = Arc::new(AtomicU64::new(0));
        let probe = Arc::new(AtomicU64::new(0));
        let table = LockFreeTable::with_hot_counters(64, Arc::clone(&cas), Arc::clone(&probe));
        table.insert(rule("a", 10, 0), Nanos::ZERO);
        table.decide(&key("a"), Nanos::ZERO);
        assert_eq!(cas.load(Ordering::Relaxed), table.cas_retries());
        assert_eq!(probe.load(Ordering::Relaxed), table.probe_steps());
    }

    #[test]
    fn overflow_copy_is_dropped_when_open_slot_frees_up() {
        // Key parked in overflow; later its home neighborhood clears and a
        // re-insert claims an open slot: the overflow copy must not shadow
        // or double-count.
        let table = LockFreeTable::fixed(2);
        table.insert(rule("a", 1, 0), Nanos::ZERO);
        table.insert(rule("b", 1, 0), Nanos::ZERO);
        table.insert(rule("c", 7, 0), Nanos::ZERO); // probes exhausted -> overflow
        assert_eq!(table.len(), 3);
        assert!(table.overflow_active());
        table.remove(&key("a"));
        table.remove(&key("b"));
        // "c" still only exists in the overflow; only a same-digest
        // tombstone or EMPTY is claimable, and both prior slots are
        // foreign tombstones — so this insert goes back to the overflow
        // and must still not duplicate.
        table.insert(rule("c", 3, 0), Nanos::ZERO);
        assert_eq!(table.len(), 1);
        assert_eq!(table.keys(), vec![key("c")]);
        let snap = table.snapshot(Nanos::ZERO);
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].credit, Credits::from_whole(3));
    }

    #[test]
    fn overflow_flag_clears_when_overflow_drains() {
        let table = LockFreeTable::fixed(2);
        table.insert(rule("a", 1, 0), Nanos::ZERO);
        table.insert(rule("b", 1, 0), Nanos::ZERO);
        table.insert(rule("c", 1, 0), Nanos::ZERO);
        assert!(table.overflow_active());
        assert!(table.remove(&key("c")));
        assert!(
            !table.overflow_active(),
            "flag must drop when the overflow drains"
        );
        assert_eq!(table.len(), 2);
        // And a fresh spill raises it again.
        table.insert(rule("d", 1, 0), Nanos::ZERO);
        assert!(table.overflow_active());
    }

    #[test]
    fn resize_triggers_at_watermark_and_preserves_credit() {
        let table = LockFreeTable::with_slots(8);
        for i in 0..100 {
            table.insert(rule(&format!("t{i}"), 3, 0), Nanos::ZERO);
            assert_eq!(
                table.decide(&key(&format!("t{i}")), Nanos::ZERO),
                Some(Verdict::Allow)
            );
        }
        pump_until_retired(&table, Nanos::ZERO);
        assert_eq!(table.len(), 100);
        assert!(
            table.cells.resizes.load(Ordering::Relaxed) >= 4,
            "8 slots must double several times to hold 100 keys"
        );
        assert!(table.cells.slot_count.load(Ordering::Relaxed) >= 128);
        let snap = table.snapshot(Nanos::ZERO);
        assert_eq!(snap.len(), 100);
        for row in snap {
            assert_eq!(
                row.credit,
                Credits::from_whole(2),
                "{}: one charge must survive every migration exactly",
                row.key
            );
        }
        assert!(!table.overflow_active(), "resize must re-home any spill");
    }

    #[test]
    fn migration_is_incremental_bounded_quantum() {
        let table = LockFreeTable::with_slots(64);
        for i in 0..48 {
            table.insert(rule(&format!("k{i}"), 3, 0), Nanos::ZERO);
        }
        // The 48th insert crossed the ¾ watermark: a migration is now in
        // flight and nothing has moved yet.
        assert!(migration_in_flight(&table));
        assert_eq!(table.cells.migrated_slots.load(Ordering::Relaxed), 0);
        // Each operation moves at most MIGRATE_QUANTUM slots.
        let mut moved_so_far = 0;
        let mut steps = 0;
        while migration_in_flight(&table) {
            // A decide on an absent key still pumps one quantum and
            // leaves every resident bucket's credit untouched.
            assert_eq!(table.decide(&key("absent"), Nanos::ZERO), None);
            let now_moved = table.cells.migrated_slots.load(Ordering::Relaxed);
            assert!(
                now_moved - moved_so_far <= LockFreeTable::MIGRATE_QUANTUM as u64,
                "one decide migrated {} slots, quantum is {}",
                now_moved - moved_so_far,
                LockFreeTable::MIGRATE_QUANTUM
            );
            moved_so_far = now_moved;
            steps += 1;
            assert!(steps < 1_000, "migration never completed");
        }
        assert!(steps >= 64 / LockFreeTable::MIGRATE_QUANTUM - 1);
        assert_eq!(table.cells.migrated_slots.load(Ordering::Relaxed), 48);
        assert_eq!(table.len(), 48);
        for i in 0..48 {
            assert_eq!(
                table.decide(&key(&format!("k{i}")), Nanos::ZERO),
                Some(Verdict::Allow),
                "k{i} lost in migration"
            );
        }
    }

    #[test]
    fn decide_hammers_across_live_migration() {
        use std::sync::Arc as StdArc;
        let table = StdArc::new(LockFreeTable::with_slots(256));
        table.insert(rule("shared", 1000, 0), Nanos::ZERO);
        for i in 0..190 {
            table.insert(rule(&format!("f{i}"), 1, 0), Nanos::ZERO);
        }
        assert!(!migration_in_flight(&table));
        let allowed: usize = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let table = StdArc::clone(&table);
                    scope.spawn(move || {
                        let k = key("shared");
                        let mut allows = 0;
                        for _ in 0..400 {
                            match table.decide(&k, Nanos::ZERO) {
                                Some(Verdict::Allow) => allows += 1,
                                Some(Verdict::Deny) => {}
                                None => panic!("shared key vanished mid-migration"),
                            }
                        }
                        allows
                    })
                })
                .collect();
            // Push occupancy over the watermark while the deciders run:
            // the migration races the hammering threads.
            for i in 190..200 {
                table.insert(rule(&format!("f{i}"), 1, 0), Nanos::ZERO);
            }
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert!(
            table.cells.resizes.load(Ordering::Relaxed) >= 1,
            "the fillers must have triggered a resize"
        );
        assert_eq!(
            allowed, 1000,
            "migration must neither double-charge nor mint credit"
        );
        pump_until_retired(&table, Nanos::ZERO);
        assert_eq!(table.len(), 201);
    }

    #[test]
    fn idle_keys_fold_out_with_exact_credit_and_touch_counts() {
        let table = LockFreeTable::with_slots(64);
        table.insert(rule("idle", 10, 0), Nanos::ZERO);
        table.insert(rule("hot", 5, 0), Nanos::ZERO);
        for _ in 0..3 {
            assert_eq!(
                table.decide(&key("idle"), Nanos::ZERO),
                Some(Verdict::Allow)
            );
        }
        assert_eq!(table.decide(&key("hot"), secs(3)), Some(Verdict::Allow));
        let mut reclaimed = table.reclaim_idle(secs(3), Duration::from_secs(2), 10);
        assert_eq!(reclaimed.len(), 1, "only the idle key is past the TTL");
        let row = reclaimed.pop().unwrap();
        assert_eq!(row.rule.key, key("idle"));
        assert_eq!(row.rule.capacity, Credits::from_whole(10));
        assert_eq!(
            row.rule.credit,
            Credits::from_whole(7),
            "reclaim must capture the exact remaining credit"
        );
        assert_eq!(row.touches, 3);
        assert_eq!(table.len(), 1);
        assert_eq!(table.decide(&key("idle"), secs(3)), None);
        assert_eq!(table.cells.reclaimed_keys.load(Ordering::Relaxed), 1);
        // Readmission resumes with the reclaimed credit: exactly 7 more
        // allows, not a fresh bucket's 10.
        table.restore(vec![row.rule], secs(3));
        for i in 0..7 {
            assert_eq!(
                table.decide(&key("idle"), secs(3)),
                Some(Verdict::Allow),
                "allow {i}"
            );
        }
        assert_eq!(table.decide(&key("idle"), secs(3)), Some(Verdict::Deny));
    }

    #[test]
    fn reclaim_skips_during_migration() {
        let table = LockFreeTable::with_slots(8);
        for i in 0..6 {
            table.insert(rule(&format!("k{i}"), 1, 0), Nanos::ZERO);
        }
        assert!(migration_in_flight(&table));
        assert!(
            table
                .reclaim_idle(secs(10), Duration::from_secs(1), 100)
                .is_empty(),
            "reclaim must stand aside while a migration is draining"
        );
        pump_until_retired(&table, secs(10));
        let reclaimed = table.reclaim_idle(secs(10), Duration::from_secs(1), 100);
        assert_eq!(reclaimed.len(), 6);
        assert_eq!(table.len(), 0);
    }

    #[test]
    fn resize_rehomes_parked_rules_and_drops_the_flag() {
        let table = LockFreeTable::with_slots(8);
        // Park a rule as a probe-limit spill would.
        table.park_in_overflow(rule("parked", 3, 0), Nanos::ZERO, false);
        assert!(table.overflow_active());
        // Occupancy pressure triggers a resize...
        for i in 0..6 {
            table.insert(rule(&format!("f{i}"), 1, 0), Nanos::ZERO);
        }
        assert!(migration_in_flight(&table));
        pump_until_retired(&table, Nanos::ZERO);
        // ...and retirement re-homes the parked rule into the open array.
        assert!(
            !table.overflow_active(),
            "flag must drop once the resize re-homes the spill"
        );
        assert!(table.overflow.is_empty());
        assert_eq!(table.len(), 7);
        for _ in 0..3 {
            assert_eq!(
                table.decide(&key("parked"), Nanos::ZERO),
                Some(Verdict::Allow)
            );
        }
        assert_eq!(
            table.decide(&key("parked"), Nanos::ZERO),
            Some(Verdict::Deny)
        );
    }

    #[test]
    fn len_keys_and_snapshot_span_both_generations_mid_migration() {
        let table = LockFreeTable::with_slots(16);
        for i in 0..11 {
            table.insert(rule(&format!("k{i}"), 5, 0), Nanos::ZERO);
            assert_eq!(
                table.decide(&key(&format!("k{i}")), Nanos::ZERO),
                Some(Verdict::Allow)
            );
        }
        table.insert(rule("k11", 4, 0), Nanos::ZERO); // 12th key: watermark
        assert!(migration_in_flight(&table));
        table.run_migration_quantum(Nanos::ZERO); // half the old array
        if migration_in_flight(&table) {
            let moved = table.cells.migrated_slots.load(Ordering::Relaxed);
            assert!(moved <= LockFreeTable::MIGRATE_QUANTUM as u64);
        }
        assert_eq!(table.len(), 12);
        assert_eq!(table.keys().len(), 12);
        let snap = table.snapshot(Nanos::ZERO);
        assert_eq!(snap.len(), 12);
        for row in &snap {
            assert_eq!(row.credit, Credits::from_whole(4), "{}", row.key);
        }
        pump_until_retired(&table, Nanos::ZERO);
        assert_eq!(table.cells.migrated_slots.load(Ordering::Relaxed), 12);
        assert_eq!(table.len(), 12);
        assert_eq!(table.snapshot(Nanos::ZERO).len(), 12);
    }

    #[test]
    fn randomized_schedule_matches_sharded_table_credit_for_credit() {
        // Differential test: a LockFreeTable starting at 4 slots (so the
        // schedule rides through several resizes) must agree with the
        // reference ShardedTable on every verdict, every removal and the
        // final credit of every key. Time advances on the whole-ms tick
        // grid where both engines are exact.
        let keys: Vec<QosKey> = (0..8).map(|i| key(&format!("u{i}"))).collect();
        for seed in 0..8u64 {
            let mut rng = janus_hash::rng::Rng::seed_from_u64(0xD1FF ^ seed);
            let lockfree = LockFreeTable::with_slots(4);
            let sharded = ShardedTable::with_shards(4);
            let mut now = Nanos::ZERO;
            for step in 0..2_000 {
                let k = &keys[rng.gen_range(keys.len() as u64) as usize];
                match rng.gen_range(100) {
                    0..=19 => {
                        let cap = rng.gen_range(40);
                        let rate = rng.gen_range(500);
                        let r = QosRule::per_second(k.clone(), cap, rate);
                        lockfree.insert(r.clone(), now);
                        sharded.insert(r, now);
                    }
                    20..=79 => {
                        assert_eq!(
                            lockfree.decide(k, now),
                            sharded.decide(k, now),
                            "seed {seed} step {step} key {k}"
                        );
                    }
                    80..=84 => {
                        assert_eq!(
                            lockfree.remove(k),
                            sharded.remove(k),
                            "seed {seed} step {step} key {k}"
                        );
                    }
                    85..=89 => {
                        lockfree.run_migration_quantum(now);
                    }
                    90..=94 => {
                        lockfree.sweep_refill(now);
                        sharded.sweep_refill(now);
                    }
                    _ => {
                        now = now + Duration::from_millis(rng.gen_range(50));
                    }
                }
            }
            pump_until_retired(&lockfree, now);
            assert_eq!(lockfree.len(), sharded.len(), "seed {seed}");
            let mut a = lockfree.snapshot(now);
            let mut b = sharded.snapshot(now);
            a.sort_by(|x, y| x.key.cmp(&y.key));
            b.sort_by(|x, y| x.key.cmp(&y.key));
            assert_eq!(a, b, "seed {seed}: final state must match");
        }
    }
}

/// The randomized differential property test needs the external
/// `proptest` crate, which the std-only `rustc --test` battery (built
/// with `--cfg janus_std_only`) cannot link. The seeded differential in
/// `tests` above runs in both worlds.
#[cfg(all(test, not(janus_std_only)))]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn key_at(i: usize) -> QosKey {
        QosKey::new(format!("p{i}")).unwrap()
    }

    #[derive(Debug, Clone)]
    enum Op {
        Insert { key: usize, cap: u64, rate: u64 },
        Decide { key: usize },
        Remove { key: usize },
        Quantum,
        Advance { ms: u64 },
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0..8usize, 0..40u64, 0..500u64).prop_map(|(key, cap, rate)| Op::Insert {
                key,
                cap,
                rate
            }),
            (0..8usize).prop_map(|key| Op::Decide { key }),
            (0..8usize).prop_map(|key| Op::Remove { key }),
            Just(Op::Quantum),
            (0..50u64).prop_map(|ms| Op::Advance { ms }),
        ]
    }

    proptest! {
        /// Any interleaving of inserts, decides, removes and explicit
        /// migration quanta agrees with the reference table verdict-for-
        /// verdict and credit-for-credit.
        #[test]
        fn lockfree_matches_sharded_on_any_schedule(
            ops in proptest::collection::vec(op_strategy(), 1..400)
        ) {
            let lockfree = LockFreeTable::with_slots(4);
            let sharded = ShardedTable::with_shards(4);
            let mut now = Nanos::ZERO;
            for (step, op) in ops.iter().enumerate() {
                match *op {
                    Op::Insert { key, cap, rate } => {
                        let r = QosRule::per_second(key_at(key), cap, rate);
                        lockfree.insert(r.clone(), now);
                        sharded.insert(r, now);
                    }
                    Op::Decide { key } => {
                        prop_assert_eq!(
                            lockfree.decide(&key_at(key), now),
                            sharded.decide(&key_at(key), now),
                            "step {} key {}", step, key
                        );
                    }
                    Op::Remove { key } => {
                        prop_assert_eq!(
                            lockfree.remove(&key_at(key)),
                            sharded.remove(&key_at(key)),
                            "step {} key {}", step, key
                        );
                    }
                    Op::Quantum => lockfree.run_migration_quantum(now),
                    Op::Advance { ms } => now = now + Duration::from_millis(ms),
                }
            }
            while lockfree.retired.load(Ordering::Acquire)
                < lockfree.active.load(Ordering::Acquire)
            {
                lockfree.run_migration_quantum(now);
            }
            prop_assert_eq!(lockfree.len(), sharded.len());
            let mut a = lockfree.snapshot(now);
            let mut b = sharded.snapshot(now);
            a.sort_by(|x, y| x.key.cmp(&y.key));
            b.sort_by(|x, y| x.key.cmp(&y.key));
            prop_assert_eq!(a, b);
        }
    }
}
