//! A lock-free QoS table: open addressing over inline [`AtomicBucket`]
//! slots, keyed by the 64-bit key digest.
//!
//! The decision hot path ([`LockFreeTable::decide`]) takes **no lock and
//! allocates nothing**: it probes a fixed slot array comparing cached key
//! digests (one `Acquire` load per step) and charges the matching slot's
//! [`AtomicBucket`] with a single CAS. Buckets live *inline* in the slot
//! array — no per-entry boxing, no pointer chase, and a slot's digest,
//! bucket state and shape share adjacent cache lines.
//!
//! # Slot protocol
//!
//! Each slot's `digest` word is a tiny state machine:
//!
//! ```text
//! EMPTY (0) ──CAS──▶ RESERVED (1) ──publish──▶ PUBLISHED (1<<63 | d62)
//!                        ▲                          │ remove
//!                        └────────CAS───────────────▼
//!                                TOMBSTONE (1<<62 | d62)
//! ```
//!
//! * Insertion claims `EMPTY` by CAS, writes the key text and bucket while
//!   the slot is private, then publishes the digest with `Release`; a
//!   matching `Acquire` load on the read side makes the bucket visible.
//! * Removal demotes `PUBLISHED → TOMBSTONE`, *keeping the digest bits*:
//!   a tombstone may only be re-claimed by the **same** digest. This makes
//!   slot reuse ABA-safe without epochs — a decision racing a
//!   remove/re-insert can only ever touch a bucket for the same key. The
//!   cost is that a removed key's slot stays parked until that key
//!   returns; the overflow table bounds the pathology.
//! * Probing walks linearly, passes tombstones and foreign digests, and
//!   stops at `EMPTY` or after [`LockFreeTable::MAX_PROBE`] steps.
//!
//! Keys match by their 64-bit FNV-1a digest alone (truncated to 62 bits by
//! the flag encoding): two distinct keys sharing a digest would share a
//! bucket. The birthday probability at `n` keys is ~`n²/2⁶³` — below
//! 10⁻⁹ for a million tenants — and the failure mode is two tenants
//! sharing a rate limit, not a safety violation.
//!
//! Misses still flow through the server's DB-fetch/default-policy
//! machinery: `decide` returns `None` exactly like the locked tables.
//! When a probe chain exceeds [`LockFreeTable::MAX_PROBE`] (table nearly
//! full or adversarial clustering), the rule is parked in an internal
//! [`ShardedTable`] so no rule is ever dropped; the hot path checks that
//! overflow only when it is non-empty (one relaxed flag load).
//!
//! Contention observability: CAS retries (bucket credit races) and probe
//! steps beyond the home slot are counted into shared [`AtomicU64`]s that
//! the QoS server exports via `ServerStats`. Both counters are only
//! touched when non-zero, so the uncontended direct-hit path writes no
//! shared cache line except the bucket itself.

use crate::table::{QosTable, ShardedTable, TableStats, TableStatsSnapshot};
use janus_clock::Nanos;
use janus_types::sync::Mutex;
use janus_types::{Credits, QosKey, QosRule, RefillRate, Verdict};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

const EMPTY: u64 = 0;
const RESERVED: u64 = 1;
const PUBLISHED_BIT: u64 = 1 << 63;
const TOMBSTONE_BIT: u64 = 1 << 62;
const DIGEST_MASK: u64 = TOMBSTONE_BIT - 1;

fn published(key: &QosKey) -> u64 {
    PUBLISHED_BIT | (key.digest() & DIGEST_MASK)
}

fn tombstone_of(published: u64) -> u64 {
    TOMBSTONE_BIT | (published & DIGEST_MASK)
}

struct Slot {
    /// Slot state machine word (see module docs).
    digest: AtomicU64,
    /// The bucket, inline: no per-entry allocation.
    bucket: crate::AtomicBucket,
    /// Key text, needed only by control-plane operations (`keys`,
    /// `snapshot`, `remove`, DB sync). Never touched by `decide`.
    key: Mutex<Option<QosKey>>,
}

impl Slot {
    fn vacant() -> Self {
        Slot {
            digest: AtomicU64::new(EMPTY),
            bucket: crate::AtomicBucket::full(Credits::ZERO, RefillRate::ZERO, Nanos::ZERO),
            key: Mutex::new(None),
        }
    }
}

/// The lock-free QoS table (see module docs for the slot protocol).
pub struct LockFreeTable {
    slots: Box<[Slot]>,
    mask: usize,
    /// Published entries in the open-addressed array (overflow excluded).
    open_len: AtomicUsize,
    /// Probe-limit escape hatch; almost always empty.
    overflow: ShardedTable,
    overflow_in_use: AtomicBool,
    stats: TableStats,
    cas_retries: Arc<AtomicU64>,
    probe_steps: Arc<AtomicU64>,
}

impl LockFreeTable {
    /// Default slot count (power of two). Comfortable for tens of
    /// thousands of tenant rules before probe chains grow.
    pub const DEFAULT_SLOTS: usize = 16_384;

    /// Longest probe chain before a rule is parked in the overflow table.
    pub const MAX_PROBE: usize = 128;

    /// A table with [`Self::DEFAULT_SLOTS`] slots.
    pub fn new() -> Self {
        Self::with_slots(Self::DEFAULT_SLOTS)
    }

    /// A table with at least `slots` slots (rounded up to a power of two).
    ///
    /// # Panics
    /// Panics if `slots` is zero.
    pub fn with_slots(slots: usize) -> Self {
        Self::with_hot_counters(
            slots,
            Arc::new(AtomicU64::new(0)),
            Arc::new(AtomicU64::new(0)),
        )
    }

    /// A table whose CAS-retry and probe-step counters are shared with
    /// the caller (the QoS server passes its `ServerStats` cells here so
    /// `ServerStats::snapshot()` exposes hot-path contention).
    ///
    /// # Panics
    /// Panics if `slots` is zero.
    pub fn with_hot_counters(
        slots: usize,
        cas_retries: Arc<AtomicU64>,
        probe_steps: Arc<AtomicU64>,
    ) -> Self {
        assert!(slots > 0, "need at least one slot");
        let slots = slots.next_power_of_two();
        LockFreeTable {
            slots: (0..slots).map(|_| Slot::vacant()).collect(),
            mask: slots - 1,
            open_len: AtomicUsize::new(0),
            overflow: ShardedTable::new(),
            overflow_in_use: AtomicBool::new(false),
            stats: TableStats::default(),
            cas_retries,
            probe_steps,
        }
    }

    /// Total CAS retries observed across all decisions so far.
    pub fn cas_retries(&self) -> u64 {
        self.cas_retries.load(Ordering::Relaxed)
    }

    /// Total probe steps beyond the home slot across all decisions so far.
    pub fn probe_steps(&self) -> u64 {
        self.probe_steps.load(Ordering::Relaxed)
    }

    fn probe_limit(&self) -> usize {
        Self::MAX_PROBE.min(self.slots.len())
    }

    /// Find the published slot for `key`, returning its index.
    fn find(&self, key: &QosKey) -> Option<usize> {
        let wanted = published(key);
        let mut idx = key.digest() as usize & self.mask;
        for _ in 0..self.probe_limit() {
            let d = self.slots[idx].digest.load(Ordering::Acquire);
            if d == wanted {
                return Some(idx);
            }
            if d == EMPTY {
                return None;
            }
            idx = (idx + 1) & self.mask;
        }
        None
    }

    /// Insert-or-update (`overwrite == false`, the [`QosTable::insert`]
    /// contract) or overwrite (`overwrite == true`, the
    /// [`QosTable::restore`] contract).
    fn place(&self, rule: QosRule, now: Nanos, overwrite: bool) {
        let wanted = published(&rule.key);
        let mut idx = rule.key.digest() as usize & self.mask;
        for _ in 0..self.probe_limit() {
            let slot = &self.slots[idx];
            loop {
                let d = slot.digest.load(Ordering::Acquire);
                if d == wanted {
                    // Same key (same digest): update in place. Overwrite
                    // folds a shape update then pins the credit — together
                    // equivalent to `from_rule` — using CAS steps only.
                    slot.bucket.apply_rule_update(&rule, now);
                    if overwrite {
                        slot.bucket.set_credit(rule.credit, now);
                    }
                    *slot.key.lock() = Some(rule.key);
                    return;
                }
                if d == EMPTY || d == tombstone_of(wanted) {
                    // Claim the slot. A tombstone is only ever re-claimed
                    // by its own digest (ABA safety; see module docs).
                    if slot
                        .digest
                        .compare_exchange(d, RESERVED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        *slot.key.lock() = Some(rule.key.clone());
                        slot.bucket.store_rule(&rule, now);
                        slot.digest.store(wanted, Ordering::Release);
                        self.open_len.fetch_add(1, Ordering::Relaxed);
                        if self.overflow_in_use.load(Ordering::Relaxed) {
                            // The key may have been parked in the overflow
                            // by an earlier probe-limit miss; the open slot
                            // now shadows it, so drop the stale copy.
                            self.overflow.remove(&rule.key);
                        }
                        return;
                    }
                    continue; // lost the claim race: re-examine this slot
                }
                if d == RESERVED {
                    // Another inserter is mid-publish; wait to see whether
                    // it is our key. Bounded: publishing is three stores.
                    std::hint::spin_loop();
                    continue;
                }
                break; // foreign digest or foreign tombstone: next slot
            }
            idx = (idx + 1) & self.mask;
        }
        // Probe chain exhausted: park the rule in the overflow table so it
        // is never dropped. Flag first so deciders start checking.
        self.overflow_in_use.store(true, Ordering::Relaxed);
        if overwrite {
            self.overflow.restore(vec![rule], now);
        } else {
            self.overflow.insert(rule, now);
        }
    }

    fn overflow_active(&self) -> bool {
        self.overflow_in_use.load(Ordering::Relaxed)
    }
}

impl Default for LockFreeTable {
    fn default() -> Self {
        Self::new()
    }
}

impl QosTable for LockFreeTable {
    fn decide(&self, key: &QosKey, now: Nanos) -> Option<Verdict> {
        let wanted = published(key);
        let mut idx = key.digest() as usize & self.mask;
        for step in 0..self.probe_limit() {
            let d = self.slots[idx].digest.load(Ordering::Acquire);
            if d == wanted {
                if step > 0 {
                    self.probe_steps.fetch_add(step as u64, Ordering::Relaxed);
                }
                let (verdict, retries) = self.slots[idx].bucket.try_consume_counted(now);
                if retries > 0 {
                    self.cas_retries.fetch_add(retries, Ordering::Relaxed);
                }
                self.stats.record(verdict);
                return Some(verdict);
            }
            if d == EMPTY {
                break;
            }
            idx = (idx + 1) & self.mask;
        }
        if self.overflow_active() {
            return self.overflow.decide(key, now);
        }
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    fn shape(&self, key: &QosKey) -> Option<(Credits, RefillRate)> {
        if let Some(idx) = self.find(key) {
            let bucket = &self.slots[idx].bucket;
            return Some((bucket.capacity(), bucket.refill_rate()));
        }
        if self.overflow_active() {
            return self.overflow.shape(key);
        }
        None
    }

    fn insert(&self, rule: QosRule, now: Nanos) {
        self.place(rule, now, false);
    }

    fn apply_update(&self, rule: &QosRule, now: Nanos) -> bool {
        if let Some(idx) = self.find(&rule.key) {
            self.slots[idx].bucket.apply_rule_update(rule, now);
            return true;
        }
        if self.overflow_active() {
            return self.overflow.apply_update(rule, now);
        }
        false
    }

    fn remove(&self, key: &QosKey) -> bool {
        let wanted = published(key);
        let mut removed_open = false;
        if let Some(idx) = self.find(key) {
            let slot = &self.slots[idx];
            // Serialize with other control-plane ops on this slot, then
            // demote to a same-digest tombstone. A decision that already
            // matched the published digest may still charge the parked
            // bucket once — a single-decision anomaly, never a cross-key
            // one.
            let mut stored = slot.key.lock();
            if slot
                .digest
                .compare_exchange(
                    wanted,
                    tombstone_of(wanted),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                *stored = None;
                self.open_len.fetch_sub(1, Ordering::Relaxed);
                removed_open = true;
            }
        }
        let removed_overflow = self.overflow_active() && self.overflow.remove(key);
        removed_open || removed_overflow
    }

    fn len(&self) -> usize {
        let overflow = if self.overflow_active() {
            self.overflow.len()
        } else {
            0
        };
        self.open_len.load(Ordering::Relaxed) + overflow
    }

    fn keys(&self) -> Vec<QosKey> {
        let mut keys = Vec::with_capacity(self.len());
        for slot in self.slots.iter() {
            if slot.digest.load(Ordering::Acquire) & PUBLISHED_BIT != 0 {
                if let Some(key) = slot.key.lock().clone() {
                    keys.push(key);
                }
            }
        }
        if self.overflow_active() {
            keys.extend(self.overflow.keys());
        }
        keys
    }

    fn snapshot(&self, now: Nanos) -> Vec<QosRule> {
        let mut rules = Vec::with_capacity(self.len());
        for slot in self.slots.iter() {
            if slot.digest.load(Ordering::Acquire) & PUBLISHED_BIT != 0 {
                if let Some(key) = slot.key.lock().clone() {
                    rules.push(slot.bucket.to_rule(key, now));
                }
            }
        }
        if self.overflow_active() {
            rules.extend(self.overflow.snapshot(now));
        }
        rules
    }

    fn restore(&self, rules: Vec<QosRule>, now: Nanos) {
        for rule in rules {
            self.place(rule, now, true);
        }
    }

    fn sweep_refill(&self, now: Nanos) {
        let mut retries = 0u64;
        for slot in self.slots.iter() {
            if slot.digest.load(Ordering::Acquire) & PUBLISHED_BIT != 0 {
                retries += slot.bucket.refill(now);
            }
        }
        if retries > 0 {
            self.cas_retries.fetch_add(retries, Ordering::Relaxed);
        }
        if self.overflow_active() {
            self.overflow.sweep_refill(now);
        }
    }

    fn stats(&self) -> TableStatsSnapshot {
        let own = self.stats.snapshot();
        let overflow = self.overflow.stats();
        TableStatsSnapshot {
            decisions: own.decisions + overflow.decisions,
            allows: own.allows + overflow.allows,
            denies: own.denies + overflow.denies,
            misses: own.misses + overflow.misses,
            cas_retries: self.cas_retries.load(Ordering::Relaxed),
            probe_steps: self.probe_steps.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(s: &str) -> QosKey {
        QosKey::new(s).unwrap()
    }

    fn rule(s: &str, cap: u64, rate: u64) -> QosRule {
        QosRule::per_second(key(s), cap, rate)
    }

    #[test]
    fn slot_count_rounds_up_to_power_of_two() {
        let table = LockFreeTable::with_slots(1000);
        assert_eq!(table.slots.len(), 1024);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_panics() {
        LockFreeTable::with_slots(0);
    }

    #[test]
    fn probe_limit_overflow_parks_rules_without_losing_them() {
        // 4 slots, 12 keys: at least 8 rules must overflow, and every
        // one of them still decides, lists and snapshots correctly.
        let table = LockFreeTable::with_slots(4);
        for i in 0..12 {
            table.insert(rule(&format!("k{i}"), 1, 0), Nanos::ZERO);
        }
        assert_eq!(table.len(), 12);
        assert!(table.overflow_active());
        let mut keys = table.keys();
        keys.sort();
        assert_eq!(keys.len(), 12);
        for i in 0..12 {
            let k = key(&format!("k{i}"));
            assert_eq!(table.decide(&k, Nanos::ZERO), Some(Verdict::Allow), "k{i}");
            assert_eq!(table.decide(&k, Nanos::ZERO), Some(Verdict::Deny), "k{i}");
        }
        assert_eq!(table.snapshot(Nanos::ZERO).len(), 12);
    }

    #[test]
    fn tombstone_is_reclaimed_by_the_same_key_only() {
        let table = LockFreeTable::with_slots(64);
        table.insert(rule("alice", 5, 0), Nanos::ZERO);
        let home = key("alice").digest() as usize & table.mask;
        assert!(table.remove(&key("alice")));
        assert_eq!(
            table.slots[home].digest.load(Ordering::Relaxed) & TOMBSTONE_BIT,
            TOMBSTONE_BIT,
            "slot should be tombstoned, not emptied"
        );
        assert_eq!(table.decide(&key("alice"), Nanos::ZERO), None);
        // Re-inserting the same key reuses its tombstoned home slot.
        table.insert(rule("alice", 2, 0), Nanos::ZERO);
        assert_eq!(table.len(), 1);
        assert_eq!(
            table.decide(&key("alice"), Nanos::ZERO),
            Some(Verdict::Allow)
        );
        assert_eq!(
            table.slots[home].digest.load(Ordering::Relaxed) & PUBLISHED_BIT,
            PUBLISHED_BIT
        );
    }

    #[test]
    fn contention_counters_surface_cas_retries() {
        use std::sync::Arc as StdArc;
        let table = StdArc::new(LockFreeTable::new());
        table.insert(rule("hot", 100_000, 0), Nanos::ZERO);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let table = StdArc::clone(&table);
                scope.spawn(move || {
                    let k = key("hot");
                    for _ in 0..2_000 {
                        table.decide(&k, Nanos::ZERO);
                    }
                });
            }
        });
        let stats = table.stats();
        assert_eq!(stats.decisions, 16_000);
        // 8 threads hammering one bucket must collide at least once; the
        // exported counter proves the retry path is observable.
        assert!(
            stats.cas_retries > 0,
            "expected some CAS retries under contention"
        );
        assert_eq!(stats.cas_retries, table.cas_retries());
    }

    #[test]
    fn shared_counters_are_visible_through_the_caller_cells() {
        let cas = Arc::new(AtomicU64::new(0));
        let probe = Arc::new(AtomicU64::new(0));
        let table = LockFreeTable::with_hot_counters(64, Arc::clone(&cas), Arc::clone(&probe));
        table.insert(rule("a", 10, 0), Nanos::ZERO);
        table.decide(&key("a"), Nanos::ZERO);
        assert_eq!(cas.load(Ordering::Relaxed), table.cas_retries());
        assert_eq!(probe.load(Ordering::Relaxed), table.probe_steps());
    }

    #[test]
    fn overflow_copy_is_dropped_when_open_slot_frees_up() {
        // Key parked in overflow; later its home neighborhood clears and a
        // re-insert claims an open slot: the overflow copy must not shadow
        // or double-count.
        let table = LockFreeTable::with_slots(2);
        table.insert(rule("a", 1, 0), Nanos::ZERO);
        table.insert(rule("b", 1, 0), Nanos::ZERO);
        table.insert(rule("c", 7, 0), Nanos::ZERO); // probes exhausted -> overflow
        assert_eq!(table.len(), 3);
        assert!(table.overflow_active());
        table.remove(&key("a"));
        table.remove(&key("b"));
        // "c" still only exists in the overflow; re-inserting it lands in
        // an open (tombstoned-or-empty) slot... only a same-digest
        // tombstone or EMPTY is claimable, and both prior slots are
        // foreign tombstones — so this insert goes back to the overflow
        // and must still not duplicate.
        table.insert(rule("c", 3, 0), Nanos::ZERO);
        assert_eq!(table.len(), 1);
        assert_eq!(table.keys(), vec![key("c")]);
        let snap = table.snapshot(Nanos::ZERO);
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].credit, Credits::from_whole(3));
    }
}
