#![warn(missing_docs)]
//! The admission-control core of Janus: leaky buckets with a refill
//! mechanism, and the local QoS table a QoS server keeps them in.
//!
//! Each QoS rule is represented by a leaky bucket (paper §II-C): a bucket
//! of capacity `C` holds the remaining credit, refills at the purchased
//! rate `A`, and each admitted request consumes one credit. Credit is
//! clamped to `[0, C]` (Eq. 2), which is what allows *bounded* bursts: an
//! idle user accumulates at most `C` credit and may briefly exceed the
//! purchased rate until the bucket drains.
//!
//! Two refill disciplines are provided (DESIGN.md ablation 2):
//!
//! * **Lazy** ([`LeakyBucket::refill`]) — credit is brought up to date from
//!   the bucket's anchored timestamp whenever the bucket is touched. Exact.
//! * **Housekeeping** ([`table::QosTable::sweep_refill`]) — a periodic
//!   thread adds `A × interval` to every bucket, the paper's design. Admits
//!   within one interval's rounding of lazy refill.
//!
//! The local QoS table comes in four flavours: [`table::ShardedTable`]
//! (lock-striped, the "future work" optimization the paper alludes to),
//! [`table::SyncTable`] (one global lock, faithfully reproducing the
//! synchronized-hash-map contention visible in the paper's Fig. 10b),
//! [`partitioned::PartitionedTable`] (one partition per worker, uncontended
//! under the server's key-affinity dispatch — see [`worker_affinity`]), and
//! [`lockfree::LockFreeTable`] (open addressing over inline
//! [`atomic::AtomicBucket`] slots: no lock anywhere on the decision path).

pub mod algorithms;
pub mod atomic;
mod bucket;
pub mod lockfree;
pub mod partitioned;
mod policy;
pub mod table;

pub use algorithms::{Admission, FixedWindowCounter, LeakyBucketLimiter, SlidingWindowCounter};
pub use atomic::AtomicBucket;
pub use bucket::LeakyBucket;
pub use lockfree::{LockFreeTable, TableEngineCells};
pub use partitioned::{worker_affinity, PartitionedTable};
pub use policy::DefaultRulePolicy;
pub use table::{QosTable, ReclaimedRule, ShardedTable, SyncTable, TableStats};
