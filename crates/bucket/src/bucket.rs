//! The leaky bucket with refill (paper §II-C, Fig. 3, Eq. 1–2).

use janus_clock::Nanos;
use janus_types::{Credits, QosRule, RefillRate, Verdict};

/// One QoS rule's live state: a leaky bucket.
///
/// The bucket stores the credit observed at an *anchor* timestamp and
/// derives the current credit as
///
/// ```text
/// credit(now) = min(capacity, credit_at_anchor + rate × (now − anchor))
/// ```
///
/// — the clamped form of the paper's `f(t) = C + (A − B)·t`. Deriving
/// from an anchor (rather than adding small deltas on every touch) means
/// fractional accrual is never lost to rounding while the bucket idles;
/// the anchor only moves when credit is actually consumed or the bucket
/// saturates.
///
/// Admission requires **one whole credit**. The paper phrases the check as
/// "credit greater than zero" over integer credits; with fractional
/// fixed-point credit the equivalent is `credit ≥ 1`, otherwise a
/// pathological client polling fast enough would be admitted on every
/// speck of accrual and the purchased rate would not bind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeakyBucket {
    capacity: Credits,
    refill_rate: RefillRate,
    credit_at_anchor: Credits,
    anchor: Nanos,
}

impl LeakyBucket {
    /// A bucket initialized from a rule at time `now`.
    ///
    /// The stored credit is clamped to the capacity (a rule update may have
    /// shrunk the bucket below its check-pointed credit).
    pub fn from_rule(rule: &QosRule, now: Nanos) -> Self {
        LeakyBucket {
            capacity: rule.capacity,
            refill_rate: rule.refill_rate,
            credit_at_anchor: rule.credit.min(rule.capacity),
            anchor: now,
        }
    }

    /// A full bucket with the given shape, anchored at `now`.
    pub fn full(capacity: Credits, refill_rate: RefillRate, now: Nanos) -> Self {
        LeakyBucket {
            capacity,
            refill_rate,
            credit_at_anchor: capacity,
            anchor: now,
        }
    }

    /// Bucket capacity `C`.
    pub fn capacity(&self) -> Credits {
        self.capacity
    }

    /// Refill rate `A`.
    pub fn refill_rate(&self) -> RefillRate {
        self.refill_rate
    }

    /// Credit available at `now`, clamped to `[0, C]`.
    pub fn credit(&self, now: Nanos) -> Credits {
        let elapsed = now.saturating_since(self.anchor);
        self.credit_at_anchor
            .saturating_add(self.refill_rate.accrued_over(elapsed))
            .min(self.capacity)
    }

    /// Bring the stored credit up to date and move the anchor to `now`.
    ///
    /// This is the lazy-refill discipline. It is idempotent for a fixed
    /// `now` and loses nothing: the derived credit before and after is
    /// identical, except that saturation at `C` forgets overflow (as it
    /// must — Eq. 2).
    pub fn refill(&mut self, now: Nanos) {
        self.credit_at_anchor = self.credit(now);
        self.anchor = self.anchor.max(now);
    }

    /// Add a fixed credit amount, clamping at capacity. This is the
    /// housekeeping-thread discipline: the sweeper calls it with
    /// `rate × interval` and does *not* move the anchor (the housekeeping
    /// table pins anchors; see `QosTable::sweep_refill`).
    pub fn add_credit(&mut self, amount: Credits) {
        self.credit_at_anchor = self
            .credit_at_anchor
            .saturating_add(amount)
            .min(self.capacity);
    }

    /// Decide one request at `now`: admit (and consume one credit) iff at
    /// least one whole credit is available.
    pub fn try_consume(&mut self, now: Nanos) -> Verdict {
        let current = self.credit(now);
        if current.covers_one_request() {
            self.credit_at_anchor = current - Credits::ONE;
            self.anchor = self.anchor.max(now);
            Verdict::Allow
        } else {
            Verdict::Deny
        }
    }

    /// Replace the bucket's shape from an updated rule, preserving accrued
    /// credit (clamped to the new capacity). Used by the DB-sync thread
    /// when a rule changes.
    pub fn apply_rule_update(&mut self, rule: &QosRule, now: Nanos) {
        self.refill(now);
        self.capacity = rule.capacity;
        self.refill_rate = rule.refill_rate;
        self.credit_at_anchor = self.credit_at_anchor.min(self.capacity);
    }

    /// Overwrite the credit (used when adopting a check-point or an HA
    /// snapshot from a master node).
    pub fn set_credit(&mut self, credit: Credits, now: Nanos) {
        self.credit_at_anchor = credit.min(self.capacity);
        self.anchor = self.anchor.max(now);
    }

    /// Export this bucket as a rule row (for check-pointing back to the
    /// database and for HA replication), with credit evaluated at `now`.
    pub fn to_rule(&self, key: janus_types::QosKey, now: Nanos) -> QosRule {
        QosRule {
            key,
            capacity: self.capacity,
            refill_rate: self.refill_rate,
            credit: self.credit(now),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_types::QosKey;
    use std::time::Duration;

    fn secs(s: u64) -> Nanos {
        Nanos::from_secs(s)
    }

    fn bucket(cap: u64, rate: u64) -> LeakyBucket {
        LeakyBucket::full(
            Credits::from_whole(cap),
            RefillRate::per_second(rate),
            Nanos::ZERO,
        )
    }

    #[test]
    fn starts_full() {
        let b = bucket(1000, 100);
        assert_eq!(b.credit(Nanos::ZERO), Credits::from_whole(1000));
    }

    #[test]
    fn consume_decrements_one_credit() {
        let mut b = bucket(10, 0);
        assert_eq!(b.try_consume(Nanos::ZERO), Verdict::Allow);
        assert_eq!(b.credit(Nanos::ZERO), Credits::from_whole(9));
    }

    #[test]
    fn denies_when_below_one_credit() {
        let mut b = bucket(2, 0);
        assert_eq!(b.try_consume(secs(0)), Verdict::Allow);
        assert_eq!(b.try_consume(secs(0)), Verdict::Allow);
        assert_eq!(b.try_consume(secs(0)), Verdict::Deny);
        // Denials do not consume anything.
        assert_eq!(b.credit(secs(0)), Credits::ZERO);
        assert_eq!(b.try_consume(secs(0)), Verdict::Deny);
    }

    #[test]
    fn refills_at_purchased_rate() {
        let mut b = bucket(1000, 100);
        // Drain completely.
        for _ in 0..1000 {
            assert_eq!(b.try_consume(secs(0)), Verdict::Allow);
        }
        assert_eq!(b.try_consume(secs(0)), Verdict::Deny);
        // After 1 second, exactly 100 more requests pass.
        let mut admitted = 0;
        for _ in 0..200 {
            if b.try_consume(secs(1)) == Verdict::Allow {
                admitted += 1;
            }
        }
        assert_eq!(admitted, 100);
    }

    #[test]
    fn credit_clamps_at_capacity() {
        let b = bucket(1000, 100);
        // Idle for an hour: credit would be 360k unclamped.
        assert_eq!(b.credit(secs(3600)), Credits::from_whole(1000));
    }

    /// The paper's burst example: rate 100/s, capacity 1000. After >10 s of
    /// idling the bucket is full, so a client may briefly run at 500 req/s
    /// until the accumulated credit is gone.
    #[test]
    fn burst_after_idle_matches_paper_example() {
        let mut b = bucket(1000, 100);
        // Drain at t=0, idle 10 s => full again (1000 credits).
        for _ in 0..1000 {
            b.try_consume(secs(0));
        }
        // Now attempt 500 req/s for 4 s (2000 attempts). Supply over the
        // window is 1000 accumulated + 100/s × 4 s = 1400 credits, so the
        // client bursts well above its purchased 100/s while credit lasts.
        let mut admitted = 0;
        for attempt in 0..2000u64 {
            let at = secs(10) + Duration::from_micros(attempt * 2000);
            if b.try_consume(at) == Verdict::Allow {
                admitted += 1;
            }
        }
        assert!(
            (1398..=1402).contains(&admitted),
            "burst admitted {admitted}, expected ~1400"
        );
    }

    #[test]
    fn zero_zero_rule_denies_everything() {
        let mut b = bucket(0, 0);
        for s in 0..100 {
            assert_eq!(b.try_consume(secs(s)), Verdict::Deny);
        }
    }

    #[test]
    fn refill_is_idempotent_at_fixed_time() {
        let mut b = bucket(100, 7);
        b.try_consume(secs(1));
        let mut twin = b.clone();
        b.refill(secs(5));
        twin.refill(secs(5));
        twin.refill(secs(5));
        assert_eq!(b.credit(secs(5)), twin.credit(secs(5)));
    }

    #[test]
    fn refill_preserves_derived_credit() {
        let mut b = bucket(1000, 33);
        b.try_consume(secs(0));
        let before = b.credit(secs(4));
        b.refill(secs(2));
        assert_eq!(b.credit(secs(4)), before);
    }

    #[test]
    fn time_going_backwards_is_safe() {
        // UDP reordering can hand a worker an older timestamp; the bucket
        // must neither panic nor mint credit.
        let mut b = bucket(10, 1);
        b.try_consume(secs(100));
        let at_100 = b.credit(secs(100));
        assert_eq!(b.credit(secs(50)), at_100);
        assert_eq!(b.try_consume(secs(50)), Verdict::Allow);
    }

    #[test]
    fn fractional_rate_admits_at_long_horizon() {
        // 1 request per minute.
        let mut b = LeakyBucket::full(
            Credits::from_whole(1),
            RefillRate::per_minute(1),
            Nanos::ZERO,
        );
        assert_eq!(b.try_consume(secs(0)), Verdict::Allow);
        assert_eq!(b.try_consume(secs(30)), Verdict::Deny);
        assert_eq!(b.try_consume(secs(61)), Verdict::Allow);
    }

    #[test]
    fn rule_update_shrinks_capacity_and_clamps() {
        let mut b = bucket(1000, 100);
        let rule = QosRule::per_second(QosKey::new("k").unwrap(), 10, 5);
        b.apply_rule_update(&rule, secs(0));
        assert_eq!(b.capacity(), Credits::from_whole(10));
        assert_eq!(b.credit(secs(0)), Credits::from_whole(10));
        assert_eq!(b.refill_rate(), RefillRate::per_second(5));
    }

    #[test]
    fn rule_update_preserves_partial_credit() {
        let mut b = bucket(100, 0);
        for _ in 0..90 {
            b.try_consume(secs(0));
        }
        let rule = QosRule::per_second(QosKey::new("k").unwrap(), 200, 1);
        b.apply_rule_update(&rule, secs(0));
        assert_eq!(b.credit(secs(0)), Credits::from_whole(10));
    }

    #[test]
    fn to_rule_roundtrips_through_from_rule() {
        let mut b = bucket(50, 3);
        b.try_consume(secs(2));
        let key = QosKey::new("alice").unwrap();
        let rule = b.to_rule(key.clone(), secs(2));
        let restored = LeakyBucket::from_rule(&rule, secs(2));
        assert_eq!(restored.credit(secs(2)), b.credit(secs(2)));
        assert_eq!(restored.capacity(), b.capacity());
    }

    #[test]
    fn add_credit_respects_capacity() {
        let mut b = bucket(10, 0);
        for _ in 0..10 {
            b.try_consume(secs(0));
        }
        b.add_credit(Credits::from_whole(7));
        assert_eq!(b.credit(secs(0)), Credits::from_whole(7));
        b.add_credit(Credits::from_whole(100));
        assert_eq!(b.credit(secs(0)), Credits::from_whole(10));
    }

    /// The property tests need the external `proptest` crate, which the
    /// std-only `rustc --test` battery (built with `--cfg janus_std_only`)
    /// cannot link. Everything above runs in both worlds.
    #[cfg(not(janus_std_only))]
    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Eq. 2: credit is always within [0, C] no matter the operation
            /// interleaving.
            #[test]
            fn credit_always_within_bounds(
                cap in 0u64..10_000,
                rate in 0u64..10_000,
                ops in proptest::collection::vec((0u8..3, 0u64..100_000_000), 1..200),
            ) {
                let mut b = bucket(cap, rate);
                let mut now = Nanos::ZERO;
                let cap = Credits::from_whole(cap);
                for (op, advance_us) in ops {
                    now += Duration::from_micros(advance_us);
                    match op {
                        0 => { b.try_consume(now); }
                        1 => { b.refill(now); }
                        _ => { b.add_credit(Credits::from_micro(advance_us)); }
                    }
                    let credit = b.credit(now);
                    prop_assert!(credit >= Credits::ZERO);
                    prop_assert!(credit <= cap, "credit {credit:?} above capacity {cap:?}");
                }
            }

            /// Conservation: admissions over any schedule never exceed the
            /// initial credit plus what the refill rate can have minted.
            #[test]
            fn admissions_never_exceed_supply(
                cap in 1u64..500,
                rate in 0u64..1_000,
                gaps_us in proptest::collection::vec(0u64..200_000, 1..300),
            ) {
                let mut b = bucket(cap, rate);
                let mut now = Nanos::ZERO;
                let mut admitted = 0u64;
                for gap in gaps_us {
                    now += Duration::from_micros(gap);
                    if b.try_consume(now) == Verdict::Allow {
                        admitted += 1;
                    }
                }
                let minted = RefillRate::per_second(rate)
                    .accrued_over(now.saturating_since(Nanos::ZERO));
                let supply = Credits::from_whole(cap) + minted;
                prop_assert!(
                    Credits::from_whole(admitted) <= supply,
                    "admitted {admitted} with supply {supply:?}"
                );
            }

            /// Lazy refill at arbitrary intermediate instants never changes the
            /// final derived credit (no rounding drift).
            #[test]
            fn interleaved_refills_do_not_drift(
                cap in 1u64..1_000,
                rate in 1u64..1_000,
                checkpoints_us in proptest::collection::vec(1u64..1_000_000, 1..50),
            ) {
                let mut lazy = bucket(cap, rate);
                let plain = bucket(cap, rate);
                lazy.try_consume(Nanos::ZERO);
                let mut twin = plain.clone();
                twin.try_consume(Nanos::ZERO);

                let mut now = Nanos::ZERO;
                for gap in &checkpoints_us {
                    now += Duration::from_micros(*gap);
                    lazy.refill(now);
                }
                prop_assert_eq!(lazy.credit(now), twin.credit(now));
            }
        }
    }
}
