//! The local QoS table: the buckets a QoS server is responsible for.
//!
//! Each QoS server owns one partition of the key space and keeps the
//! corresponding rules in memory as leaky buckets. The paper's Java
//! implementation uses a *synchronized hash map* and observes CPU
//! underutilization from that lock on large instances (Fig. 10b);
//! [`SyncTable`] reproduces that design, while [`ShardedTable`] is the
//! lock-striped optimization the paper defers to future work. Both
//! implement [`QosTable`], and the `table` criterion bench contrasts them
//! directly.

use crate::LeakyBucket;
use janus_clock::Nanos;
use janus_types::sync::Mutex;
use janus_types::{Credits, QosKey, QosRule, RefillRate, Verdict};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Counters a QoS server exports for monitoring and for the evaluation
/// harness (CPU-utilization proxies, hit rates).
#[derive(Debug, Default)]
pub struct TableStats {
    /// Admission decisions made (hits only).
    pub decisions: AtomicU64,
    /// Decisions that returned [`Verdict::Allow`].
    pub allows: AtomicU64,
    /// Decisions that returned [`Verdict::Deny`].
    pub denies: AtomicU64,
    /// Lookups for keys not present in the local table (each triggers a
    /// database query in the QoS server).
    pub misses: AtomicU64,
}

/// A point-in-time copy of [`TableStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableStatsSnapshot {
    /// Admission decisions made (hits only).
    pub decisions: u64,
    /// `Allow` verdicts.
    pub allows: u64,
    /// `Deny` verdicts.
    pub denies: u64,
    /// Local-table misses.
    pub misses: u64,
    /// CAS retries on the decision path (always zero for locked tables;
    /// [`crate::LockFreeTable`] reports bucket-level contention here).
    pub cas_retries: u64,
    /// Probe steps beyond the home slot (lock-free table only: a proxy
    /// for open-addressing clustering / fill factor).
    pub probe_steps: u64,
}

impl TableStats {
    pub(crate) fn record(&self, verdict: Verdict) {
        self.decisions.fetch_add(1, Ordering::Relaxed);
        match verdict {
            Verdict::Allow => self.allows.fetch_add(1, Ordering::Relaxed),
            Verdict::Deny => self.denies.fetch_add(1, Ordering::Relaxed),
        };
    }

    /// Read all counters at once. The contention counters are zero here:
    /// tables that track them (the lock-free flavour) fill them in.
    pub fn snapshot(&self) -> TableStatsSnapshot {
        TableStatsSnapshot {
            decisions: self.decisions.load(Ordering::Relaxed),
            allows: self.allows.load(Ordering::Relaxed),
            denies: self.denies.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            cas_retries: 0,
            probe_steps: 0,
        }
    }
}

/// The interface a QoS server uses to manage its partition of buckets.
///
/// `decide` is the hot path: look up the key's bucket and charge it.
/// `None` means the key is unknown locally — the caller is expected to
/// fetch the rule from the database (or apply the default policy) and
/// [`insert`](Self::insert) it.
pub trait QosTable: Send + Sync {
    /// Make an admission decision for `key` at `now`, or `None` if the key
    /// has no local bucket yet.
    fn decide(&self, key: &QosKey, now: Nanos) -> Option<Verdict>;

    /// The shape (capacity, refill rate) of `key`'s bucket without
    /// charging it, or `None` if the key has no local bucket. Feeds the
    /// rule hints a QoS server attaches to hint-soliciting responses; not
    /// a decision, so no stats are recorded.
    fn shape(&self, key: &QosKey) -> Option<(Credits, RefillRate)>;

    /// Install a bucket for a rule (first sighting of a key). If the key
    /// already exists the rule is applied as an update instead, so two
    /// racing inserters converge.
    fn insert(&self, rule: QosRule, now: Nanos);

    /// Apply an updated rule to an existing bucket, preserving accrued
    /// credit (clamped). Returns false if the key is not in the table.
    fn apply_update(&self, rule: &QosRule, now: Nanos) -> bool;

    /// Remove a key's bucket. Returns true if it existed.
    fn remove(&self, key: &QosKey) -> bool;

    /// Number of buckets currently held.
    fn len(&self) -> usize;

    /// True if the table holds no buckets.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The keys currently held (for DB-sync queries).
    fn keys(&self) -> Vec<QosKey>;

    /// Export every bucket as a rule row with credit evaluated at `now`
    /// (check-pointing and HA replication).
    fn snapshot(&self, now: Nanos) -> Vec<QosRule>;

    /// Adopt a snapshot wholesale (slave catching up from its master).
    /// Existing buckets for snapshot keys are overwritten; other local
    /// buckets are retained.
    fn restore(&self, rules: Vec<QosRule>, now: Nanos);

    /// Housekeeping refill: bring every bucket's credit up to date at
    /// `now`. With lazy per-decision refill this is an optimization that
    /// bounds anchor staleness; it is also exactly the paper's periodic
    /// refill thread.
    fn sweep_refill(&self, now: Nanos);

    /// Monitoring counters.
    fn stats(&self) -> TableStatsSnapshot;

    /// Demote keys idle for at least `idle_ttl`, removing up to `max` of
    /// them and returning their exact state (credit evaluated at `now`)
    /// plus hotness counters for the cold tier. Engines without an idle
    /// tracker reclaim nothing.
    fn reclaim_idle(&self, _now: Nanos, _idle_ttl: Duration, _max: usize) -> Vec<ReclaimedRule> {
        Vec::new()
    }
}

/// One row handed back by [`QosTable::reclaim_idle`]: the rule with its
/// exact remaining credit, plus how many decisions touched the key while
/// it was resident (persisted as the cold tier's warm-up ordering hint).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReclaimedRule {
    /// The reclaimed rule; `credit` is exact as of the reclaim instant.
    pub rule: QosRule,
    /// Decisions recorded against the key while it was resident.
    pub touches: u64,
}

fn shard_of(key: &QosKey, shards: usize) -> usize {
    let mut hasher = DefaultHasher::new();
    key.hash(&mut hasher);
    (hasher.finish() as usize) % shards
}

/// Lock-striped QoS table: the contention-free design.
///
/// Keys are spread over `S` independent mutex-protected maps, so decisions
/// for different keys proceed in parallel on different cores. With the
/// default 64 shards, 16 workers collide rarely.
pub struct ShardedTable {
    shards: Vec<Mutex<HashMap<QosKey, LeakyBucket>>>,
    stats: TableStats,
}

impl ShardedTable {
    /// Default shard count.
    pub const DEFAULT_SHARDS: usize = 64;

    /// A table with [`Self::DEFAULT_SHARDS`] stripes.
    pub fn new() -> Self {
        Self::with_shards(Self::DEFAULT_SHARDS)
    }

    /// A table with an explicit stripe count.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn with_shards(shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        ShardedTable {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            stats: TableStats::default(),
        }
    }

    fn shard(&self, key: &QosKey) -> &Mutex<HashMap<QosKey, LeakyBucket>> {
        &self.shards[shard_of(key, self.shards.len())]
    }

    /// Remove `key`'s bucket and return it as a rule with credit evaluated
    /// at `now`. Removal and credit capture happen under the shard lock,
    /// so no charge can land in between — the caller can re-insert the
    /// rule elsewhere without minting or losing credit.
    pub fn take(&self, key: &QosKey, now: Nanos) -> Option<QosRule> {
        self.shard(key)
            .lock()
            .remove(key)
            .map(|bucket| bucket.to_rule(key.clone(), now))
    }

    /// Sum of credit across all buckets at `now` (test/diagnostic helper).
    pub fn total_credit(&self, now: Nanos) -> Credits {
        let mut total = Credits::ZERO;
        for shard in &self.shards {
            for bucket in shard.lock().values() {
                total += bucket.credit(now);
            }
        }
        total
    }
}

impl Default for ShardedTable {
    fn default() -> Self {
        Self::new()
    }
}

impl QosTable for ShardedTable {
    fn decide(&self, key: &QosKey, now: Nanos) -> Option<Verdict> {
        let mut shard = self.shard(key).lock();
        match shard.get_mut(key) {
            Some(bucket) => {
                let verdict = bucket.try_consume(now);
                self.stats.record(verdict);
                Some(verdict)
            }
            None => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn shape(&self, key: &QosKey) -> Option<(Credits, RefillRate)> {
        self.shard(key)
            .lock()
            .get(key)
            .map(|bucket| (bucket.capacity(), bucket.refill_rate()))
    }

    fn insert(&self, rule: QosRule, now: Nanos) {
        let mut shard = self.shard(&rule.key).lock();
        match shard.get_mut(&rule.key) {
            Some(existing) => existing.apply_rule_update(&rule, now),
            None => {
                let bucket = LeakyBucket::from_rule(&rule, now);
                shard.insert(rule.key, bucket);
            }
        }
    }

    fn apply_update(&self, rule: &QosRule, now: Nanos) -> bool {
        let mut shard = self.shard(&rule.key).lock();
        match shard.get_mut(&rule.key) {
            Some(bucket) => {
                bucket.apply_rule_update(rule, now);
                true
            }
            None => false,
        }
    }

    fn remove(&self, key: &QosKey) -> bool {
        self.shard(key).lock().remove(key).is_some()
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    fn keys(&self) -> Vec<QosKey> {
        let mut keys = Vec::with_capacity(self.len());
        for shard in &self.shards {
            keys.extend(shard.lock().keys().cloned());
        }
        keys
    }

    fn snapshot(&self, now: Nanos) -> Vec<QosRule> {
        let mut rules = Vec::with_capacity(self.len());
        for shard in &self.shards {
            let guard = shard.lock();
            rules.extend(
                guard
                    .iter()
                    .map(|(key, bucket)| bucket.to_rule(key.clone(), now)),
            );
        }
        rules
    }

    fn restore(&self, rules: Vec<QosRule>, now: Nanos) {
        for rule in rules {
            let mut shard = self.shard(&rule.key).lock();
            let bucket = LeakyBucket::from_rule(&rule, now);
            shard.insert(rule.key, bucket);
        }
    }

    fn sweep_refill(&self, now: Nanos) {
        for shard in &self.shards {
            for bucket in shard.lock().values_mut() {
                bucket.refill(now);
            }
        }
    }

    fn stats(&self) -> TableStatsSnapshot {
        self.stats.snapshot()
    }
}

/// Single-lock QoS table: the paper's synchronized hash map.
///
/// Every decision serializes on one mutex. Kept as a faithful model of the
/// published system and as the baseline for the lock-contention ablation;
/// the measured gap between `SyncTable` and [`ShardedTable`] under
/// multi-threaded load is the effect the paper reports as QoS-server CPU
/// underutilization (Fig. 10b).
pub struct SyncTable {
    map: Mutex<HashMap<QosKey, LeakyBucket>>,
    stats: TableStats,
}

impl SyncTable {
    /// An empty synchronized table.
    pub fn new() -> Self {
        SyncTable {
            map: Mutex::new(HashMap::new()),
            stats: TableStats::default(),
        }
    }
}

impl Default for SyncTable {
    fn default() -> Self {
        Self::new()
    }
}

impl QosTable for SyncTable {
    fn decide(&self, key: &QosKey, now: Nanos) -> Option<Verdict> {
        let mut map = self.map.lock();
        match map.get_mut(key) {
            Some(bucket) => {
                let verdict = bucket.try_consume(now);
                self.stats.record(verdict);
                Some(verdict)
            }
            None => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn shape(&self, key: &QosKey) -> Option<(Credits, RefillRate)> {
        self.map
            .lock()
            .get(key)
            .map(|bucket| (bucket.capacity(), bucket.refill_rate()))
    }

    fn insert(&self, rule: QosRule, now: Nanos) {
        let mut map = self.map.lock();
        match map.get_mut(&rule.key) {
            Some(existing) => existing.apply_rule_update(&rule, now),
            None => {
                let bucket = LeakyBucket::from_rule(&rule, now);
                map.insert(rule.key, bucket);
            }
        }
    }

    fn apply_update(&self, rule: &QosRule, now: Nanos) -> bool {
        match self.map.lock().get_mut(&rule.key) {
            Some(bucket) => {
                bucket.apply_rule_update(rule, now);
                true
            }
            None => false,
        }
    }

    fn remove(&self, key: &QosKey) -> bool {
        self.map.lock().remove(key).is_some()
    }

    fn len(&self) -> usize {
        self.map.lock().len()
    }

    fn keys(&self) -> Vec<QosKey> {
        self.map.lock().keys().cloned().collect()
    }

    fn snapshot(&self, now: Nanos) -> Vec<QosRule> {
        self.map
            .lock()
            .iter()
            .map(|(key, bucket)| bucket.to_rule(key.clone(), now))
            .collect()
    }

    fn restore(&self, rules: Vec<QosRule>, now: Nanos) {
        let mut map = self.map.lock();
        for rule in rules {
            let bucket = LeakyBucket::from_rule(&rule, now);
            map.insert(rule.key, bucket);
        }
    }

    fn sweep_refill(&self, now: Nanos) {
        for bucket in self.map.lock().values_mut() {
            bucket.refill(now);
        }
    }

    fn stats(&self) -> TableStatsSnapshot {
        self.stats.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn key(s: &str) -> QosKey {
        QosKey::new(s).unwrap()
    }

    fn rule(s: &str, cap: u64, rate: u64) -> QosRule {
        QosRule::per_second(key(s), cap, rate)
    }

    fn tables() -> Vec<(&'static str, Arc<dyn QosTable>)> {
        vec![
            ("sharded", Arc::new(ShardedTable::new())),
            ("sharded-1", Arc::new(ShardedTable::with_shards(1))),
            ("sync", Arc::new(SyncTable::new())),
            ("lock-free", Arc::new(crate::LockFreeTable::new())),
            // A deliberately tiny slot array so the shared tests also
            // exercise the probe-limit overflow path.
            (
                "lock-free-tiny",
                Arc::new(crate::LockFreeTable::with_slots(8)),
            ),
        ]
    }

    #[test]
    fn unknown_key_is_a_miss() {
        for (name, table) in tables() {
            assert_eq!(table.decide(&key("ghost"), Nanos::ZERO), None, "{name}");
            assert_eq!(table.stats().misses, 1, "{name}");
            assert_eq!(table.stats().decisions, 0, "{name}");
        }
    }

    #[test]
    fn insert_then_decide() {
        for (name, table) in tables() {
            table.insert(rule("alice", 2, 0), Nanos::ZERO);
            assert_eq!(
                table.decide(&key("alice"), Nanos::ZERO),
                Some(Verdict::Allow),
                "{name}"
            );
            assert_eq!(
                table.decide(&key("alice"), Nanos::ZERO),
                Some(Verdict::Allow),
                "{name}"
            );
            assert_eq!(
                table.decide(&key("alice"), Nanos::ZERO),
                Some(Verdict::Deny),
                "{name}"
            );
            let stats = table.stats();
            assert_eq!((stats.allows, stats.denies), (2, 1), "{name}");
        }
    }

    #[test]
    fn double_insert_behaves_as_update() {
        for (name, table) in tables() {
            table.insert(rule("k", 100, 0), Nanos::ZERO);
            // Drain half.
            for _ in 0..50 {
                table.decide(&key("k"), Nanos::ZERO);
            }
            // Re-insert with a smaller capacity: credit clamps, does not refill.
            table.insert(rule("k", 10, 0), Nanos::ZERO);
            let snap = table.snapshot(Nanos::ZERO);
            assert_eq!(snap.len(), 1, "{name}");
            assert_eq!(snap[0].credit, Credits::from_whole(10), "{name}");
        }
    }

    #[test]
    fn shape_reports_rule_without_charging() {
        for (name, table) in tables() {
            assert_eq!(table.shape(&key("ghost")), None, "{name}");
            table.insert(rule("alice", 7, 3), Nanos::ZERO);
            let (cap, rate) = table.shape(&key("alice")).unwrap();
            assert_eq!(cap, Credits::from_whole(7), "{name}");
            assert_eq!(rate.micro_per_sec(), 3_000_000, "{name}");
            // Shape is a read: no decision or miss was recorded, and the
            // bucket's credit is untouched.
            let stats = table.stats();
            assert_eq!((stats.decisions, stats.misses), (0, 0), "{name}");
            let snap = table.snapshot(Nanos::ZERO);
            assert_eq!(snap[0].credit, Credits::from_whole(7), "{name}");
        }
    }

    #[test]
    fn apply_update_miss_returns_false() {
        for (name, table) in tables() {
            assert!(
                !table.apply_update(&rule("nope", 1, 1), Nanos::ZERO),
                "{name}"
            );
        }
    }

    #[test]
    fn remove_and_len() {
        for (name, table) in tables() {
            table.insert(rule("a", 1, 1), Nanos::ZERO);
            table.insert(rule("b", 1, 1), Nanos::ZERO);
            assert_eq!(table.len(), 2, "{name}");
            assert!(table.remove(&key("a")), "{name}");
            assert!(!table.remove(&key("a")), "{name}");
            assert_eq!(table.len(), 1, "{name}");
            assert!(!table.is_empty(), "{name}");
        }
    }

    #[test]
    fn keys_lists_all() {
        for (name, table) in tables() {
            for i in 0..20 {
                table.insert(rule(&format!("k{i}"), 1, 1), Nanos::ZERO);
            }
            let mut keys = table.keys();
            keys.sort();
            assert_eq!(keys.len(), 20, "{name}");
            assert!(keys.contains(&key("k0")), "{name}");
            assert!(keys.contains(&key("k19")), "{name}");
        }
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let now = Nanos::from_secs(5);
        for (name, table) in tables() {
            table.insert(rule("a", 100, 10), Nanos::ZERO);
            table.insert(rule("b", 50, 5), Nanos::ZERO);
            for _ in 0..30 {
                table.decide(&key("a"), now);
            }
            let snap = table.snapshot(now);

            let replica = ShardedTable::new();
            replica.restore(snap.clone(), now);
            let mut original: Vec<_> = snap;
            original.sort_by(|a, b| a.key.cmp(&b.key));
            let mut restored = replica.snapshot(now);
            restored.sort_by(|a, b| a.key.cmp(&b.key));
            assert_eq!(original, restored, "{name}");
        }
    }

    #[test]
    fn sweep_refill_preserves_credit_semantics() {
        for (name, table) in tables() {
            table.insert(rule("a", 100, 10), Nanos::ZERO);
            for _ in 0..100 {
                table.decide(&key("a"), Nanos::ZERO);
            }
            // After 3 s the bucket should hold 30 credits whether or not a
            // sweep happened in between.
            table.sweep_refill(Nanos::from_secs(1));
            table.sweep_refill(Nanos::from_secs(2));
            let snap = table.snapshot(Nanos::from_secs(3));
            assert_eq!(snap[0].credit, Credits::from_whole(30), "{name}");
        }
    }

    #[test]
    fn concurrent_decisions_conserve_credit() {
        // 8 threads hammer one key with capacity 1000, zero refill: exactly
        // 1000 must be admitted in total, regardless of table flavour.
        for (name, table) in tables() {
            table.insert(rule("shared", 1000, 0), Nanos::ZERO);
            let admitted = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..8)
                    .map(|_| {
                        let table = Arc::clone(&table);
                        scope.spawn(move || {
                            let k = key("shared");
                            (0..500)
                                .filter(|_| table.decide(&k, Nanos::ZERO) == Some(Verdict::Allow))
                                .count()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .sum::<usize>()
            });
            assert_eq!(admitted, 1000, "{name}");
        }
    }

    #[test]
    fn concurrent_distinct_keys_do_not_interfere() {
        let table = Arc::new(ShardedTable::new());
        for i in 0..16 {
            table.insert(rule(&format!("user-{i}"), 100, 0), Nanos::ZERO);
        }
        std::thread::scope(|scope| {
            for i in 0..16 {
                let table = Arc::clone(&table);
                scope.spawn(move || {
                    let k = key(&format!("user-{i}"));
                    let admitted = (0..200)
                        .filter(|_| table.decide(&k, Nanos::ZERO) == Some(Verdict::Allow))
                        .count();
                    assert_eq!(admitted, 100);
                });
            }
        });
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        ShardedTable::with_shards(0);
    }

    #[test]
    fn total_credit_sums_buckets() {
        let table = ShardedTable::new();
        table.insert(rule("a", 10, 0), Nanos::ZERO);
        table.insert(rule("b", 5, 0), Nanos::ZERO);
        assert_eq!(table.total_credit(Nanos::ZERO), Credits::from_whole(15));
    }
}

#[cfg(all(test, not(janus_std_only)))]
mod proptests {
    use super::*;
    use crate::LeakyBucket;
    use janus_types::QosRule;
    use proptest::prelude::*;
    use std::time::Duration;

    /// Model-based test: a `ShardedTable` driven by an arbitrary
    /// sequential script must agree decision-for-decision with plain
    /// per-key `LeakyBucket`s (the executable specification).
    #[derive(Debug, Clone)]
    enum Op {
        Insert { key: u8, cap: u16, rate: u16 },
        Decide { key: u8 },
        Sweep,
        Advance { micros: u32 },
        Remove { key: u8 },
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u8..6, 0u16..50, 0u16..1000).prop_map(|(key, cap, rate)| Op::Insert {
                key,
                cap,
                rate
            }),
            (0u8..6).prop_map(|key| Op::Decide { key }),
            Just(Op::Sweep),
            (0u32..2_000_000).prop_map(|micros| Op::Advance { micros }),
            (0u8..6).prop_map(|key| Op::Remove { key }),
        ]
    }

    fn keyname(key: u8) -> QosKey {
        QosKey::new(format!("k{key}")).unwrap()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]
        #[test]
        fn sharded_table_matches_bucket_model(
            script in proptest::collection::vec(op_strategy(), 1..120),
        ) {
            let table = ShardedTable::new();
            let mut model: std::collections::HashMap<QosKey, LeakyBucket> =
                std::collections::HashMap::new();
            let mut now = Nanos::ZERO;
            for op in script {
                match op {
                    Op::Insert { key, cap, rate } => {
                        let rule = QosRule::per_second(keyname(key), cap as u64, rate as u64);
                        table.insert(rule.clone(), now);
                        // Mirror the table's insert-or-update semantics.
                        match model.get_mut(&rule.key) {
                            Some(bucket) => bucket.apply_rule_update(&rule, now),
                            None => {
                                model.insert(
                                    rule.key.clone(),
                                    LeakyBucket::from_rule(&rule, now),
                                );
                            }
                        }
                    }
                    Op::Decide { key } => {
                        let expected = model
                            .get_mut(&keyname(key))
                            .map(|bucket| bucket.try_consume(now));
                        let got = table.decide(&keyname(key), now);
                        prop_assert_eq!(got, expected, "decide mismatch at {:?}", now);
                    }
                    Op::Sweep => {
                        table.sweep_refill(now);
                        for bucket in model.values_mut() {
                            bucket.refill(now);
                        }
                    }
                    Op::Advance { micros } => {
                        now += Duration::from_micros(micros as u64);
                    }
                    Op::Remove { key } => {
                        let expected = model.remove(&keyname(key)).is_some();
                        prop_assert_eq!(table.remove(&keyname(key)), expected);
                    }
                }
            }
            // Final states agree too.
            let mut snapshot = table.snapshot(now);
            snapshot.sort_by(|a, b| a.key.cmp(&b.key));
            let mut expected: Vec<QosRule> = model
                .iter()
                .map(|(key, bucket)| bucket.to_rule(key.clone(), now))
                .collect();
            expected.sort_by(|a, b| a.key.cmp(&b.key));
            prop_assert_eq!(snapshot, expected);
        }
    }
}
