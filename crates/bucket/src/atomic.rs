//! A wait-free leaky bucket: credit and refill anchor packed into one
//! [`AtomicU64`], updated by a single CAS.
//!
//! [`LeakyBucket`] needs a `&mut` (in practice: a mutex) because its state
//! — credit plus anchor timestamp — is two words. [`AtomicBucket`] packs a
//! reduced form of both into one word so the decision fast path is a load,
//! a handful of register ops, and one `compare_exchange`: no lock, no
//! blocking, and a *pure read* on the deny path.
//!
//! # Packing
//!
//! ```text
//! 63          40 39                        0
//! +------------+---------------------------+
//! | anchor tick|        credit (µc)        |
//! |  24 bits   |          40 bits          |
//! +------------+---------------------------+
//! ```
//!
//! * **Credit** is stored in microcredits, saturating at 2⁴⁰ − 1 µc
//!   (≈ 1.099 M whole credits — above any capacity in the evaluation;
//!   larger capacities are honored up to that ceiling).
//! * **Anchor** is the refill anchor quantized to 1 ms ticks, kept modulo
//!   2²⁴ (≈ 4.66 h of wrap range).
//!
//! # Quantization contract
//!
//! Elapsed time is measured between *ticks*, with the anchor rounded **up**
//! to a tick on every write and `now` rounded **down** on every read — so
//! measured elapsed never exceeds true elapsed and the bucket can only
//! under-refill, never oversell. When every observation lands on a whole
//! tick (all integration tests and any schedule built from `from_secs` /
//! `from_millis`), floor and ceil coincide and the bucket is **bit-for-bit
//! identical** to [`LeakyBucket`] — the property tests below pin this.
//!
//! The modular anchor distinguishes "time went backwards" (UDP reordering)
//! from forward progress by the half-range rule: a modular difference of
//! ≥ 2²³ ticks (~2.33 h) reads as backwards, which mints nothing — the
//! safe direction. A *genuine* forward jump beyond 2.33 h between touches
//! would therefore forfeit its refill; the QoS server's housekeeping sweep
//! (every ≤ 100 ms) makes that unreachable in a running system, and the
//! failure mode is under-admission, never a rate violation.

use crate::LeakyBucket;
use janus_clock::Nanos;
use janus_types::{Credits, QosRule, RefillRate, Verdict, MICROCREDITS_PER_CREDIT};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const CREDIT_BITS: u32 = 40;
const CREDIT_MASK: u64 = (1 << CREDIT_BITS) - 1;
const TICK_MASK: u64 = (1 << 24) - 1;
const TICK_HALF_RANGE: u64 = 1 << 23;
/// One anchor tick in nanoseconds (1 ms).
const TICK_NANOS: u64 = 1_000_000;

fn pack(credit_micro: u64, tick: u64) -> u64 {
    debug_assert!(credit_micro <= CREDIT_MASK);
    debug_assert!(tick <= TICK_MASK);
    (tick << CREDIT_BITS) | credit_micro
}

fn unpack(state: u64) -> (u64, u64) {
    (state & CREDIT_MASK, state >> CREDIT_BITS)
}

/// `now` quantized down to a tick (read side: never overstates elapsed).
fn floor_tick(now: Nanos) -> u64 {
    (now.as_nanos() / TICK_NANOS) & TICK_MASK
}

/// `now` quantized up to a tick (write side: an anchor in the slight
/// future under-counts the next interval rather than over-counting it).
fn ceil_tick(now: Nanos) -> u64 {
    (now.as_nanos().div_ceil(TICK_NANOS)) & TICK_MASK
}

/// Elapsed whole ticks from `anchor` to `now_floor` and the anchor the
/// next state should carry. Modular half-range comparison: apparent
/// backwards motion (or a wrap-scale forward jump) yields zero elapsed
/// and keeps the old anchor — the atomic analogue of
/// `anchor.max(now)` + `saturating_since`.
fn elapsed_ticks(anchor: u64, now_floor: u64, now_ceil: u64) -> (u64, u64) {
    let diff = now_floor.wrapping_sub(anchor) & TICK_MASK;
    if diff >= TICK_HALF_RANGE {
        (0, anchor)
    } else {
        (diff, now_ceil)
    }
}

/// A leaky bucket whose fast path is one CAS loop on a single
/// [`AtomicU64`] — see the module docs for the packing and quantization
/// contract. Shape (capacity, refill rate) lives in two further relaxed
/// atomics so control-plane rule updates need no lock either.
#[derive(Debug)]
pub struct AtomicBucket {
    /// Packed `(anchor_tick << 40) | credit_micro`.
    state: AtomicU64,
    /// Capacity in microcredits.
    capacity: AtomicU64,
    /// Refill rate in microcredits per second.
    rate: AtomicU64,
}

impl AtomicBucket {
    /// A bucket initialized from a rule at `now` (credit clamped to
    /// capacity, like [`LeakyBucket::from_rule`]).
    pub fn from_rule(rule: &QosRule, now: Nanos) -> Self {
        let cap = rule.capacity.as_micro();
        let credit = rule.credit.as_micro().min(cap).min(CREDIT_MASK);
        AtomicBucket {
            state: AtomicU64::new(pack(credit, ceil_tick(now))),
            capacity: AtomicU64::new(cap),
            rate: AtomicU64::new(rule.refill_rate.micro_per_sec()),
        }
    }

    /// A full bucket with the given shape, anchored at `now`.
    pub fn full(capacity: Credits, refill_rate: RefillRate, now: Nanos) -> Self {
        let cap = capacity.as_micro();
        AtomicBucket {
            state: AtomicU64::new(pack(cap.min(CREDIT_MASK), ceil_tick(now))),
            capacity: AtomicU64::new(cap),
            rate: AtomicU64::new(refill_rate.micro_per_sec()),
        }
    }

    /// Bucket capacity `C`.
    pub fn capacity(&self) -> Credits {
        Credits::from_micro(self.capacity.load(Ordering::Relaxed))
    }

    /// Refill rate `A`.
    pub fn refill_rate(&self) -> RefillRate {
        RefillRate::from_micro_per_sec(self.rate.load(Ordering::Relaxed))
    }

    /// Credit derived from `state` at `now`, clamped to `[0, C]` (and to
    /// the packed-field ceiling).
    fn derive(&self, state: u64, now_floor: u64) -> u64 {
        let (credit, anchor) = unpack(state);
        let (ticks, _) = elapsed_ticks(anchor, now_floor, now_floor);
        let rate = RefillRate::from_micro_per_sec(self.rate.load(Ordering::Relaxed));
        let accrued = rate.accrued_over(Duration::from_millis(ticks)).as_micro();
        credit
            .saturating_add(accrued)
            .min(self.capacity.load(Ordering::Relaxed))
            .min(CREDIT_MASK)
    }

    /// Credit available at `now` — a pure read, no state change.
    pub fn credit(&self, now: Nanos) -> Credits {
        let state = self.state.load(Ordering::Relaxed);
        Credits::from_micro(self.derive(state, floor_tick(now)))
    }

    /// Decide one request at `now`: admit (and consume one whole credit)
    /// iff at least one is available. Lock-free; the deny path is a pure
    /// read (no CAS at all).
    pub fn try_consume(&self, now: Nanos) -> Verdict {
        self.try_consume_counted(now).0
    }

    /// [`Self::try_consume`], also reporting how many CAS retries the
    /// decision took (0 on the uncontended path). Tables aggregate this
    /// into their exported contention counters.
    pub fn try_consume_counted(&self, now: Nanos) -> (Verdict, u64) {
        let now_floor = floor_tick(now);
        let now_ceil = ceil_tick(now);
        let mut retries = 0u64;
        let mut state = self.state.load(Ordering::Relaxed);
        loop {
            let current = self.derive(state, now_floor);
            if current < MICROCREDITS_PER_CREDIT {
                // Deny consumes nothing and (like LeakyBucket) leaves the
                // anchor alone, so fractional accrual keeps compounding
                // from the original anchor with no rounding loss.
                return (Verdict::Deny, retries);
            }
            let (_, anchor) = unpack(state);
            let (_, new_anchor) = elapsed_ticks(anchor, now_floor, now_ceil);
            let next = pack(current - MICROCREDITS_PER_CREDIT, new_anchor);
            match self.state.compare_exchange_weak(
                state,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return (Verdict::Allow, retries),
                Err(actual) => {
                    retries += 1;
                    state = actual;
                }
            }
        }
    }

    /// Fold accrued credit into the stored state and advance the anchor
    /// to `now` — the housekeeping-sweep discipline. Returns CAS retries.
    pub fn refill(&self, now: Nanos) -> u64 {
        let now_floor = floor_tick(now);
        let now_ceil = ceil_tick(now);
        let mut retries = 0u64;
        let mut state = self.state.load(Ordering::Relaxed);
        loop {
            let (_, anchor) = unpack(state);
            let (ticks, new_anchor) = elapsed_ticks(anchor, now_floor, now_ceil);
            if ticks == 0 && new_anchor == anchor {
                return retries;
            }
            let next = pack(self.derive(state, now_floor), new_anchor);
            match self.state.compare_exchange_weak(
                state,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return retries,
                Err(actual) => {
                    retries += 1;
                    state = actual;
                }
            }
        }
    }

    /// Replace the bucket's shape from an updated rule, preserving accrued
    /// credit clamped to the new capacity (mirrors
    /// [`LeakyBucket::apply_rule_update`]).
    pub fn apply_rule_update(&self, rule: &QosRule, now: Nanos) {
        // Fold accrual at the *old* rate up to now, then swap the shape,
        // then clamp. Concurrent consumers interleaving between the steps
        // observe one shape or the other — never minted credit.
        self.refill(now);
        self.capacity
            .store(rule.capacity.as_micro(), Ordering::Relaxed);
        self.rate
            .store(rule.refill_rate.micro_per_sec(), Ordering::Relaxed);
        let cap = rule.capacity.as_micro().min(CREDIT_MASK);
        let mut state = self.state.load(Ordering::Relaxed);
        loop {
            let (credit, anchor) = unpack(state);
            if credit <= cap {
                return;
            }
            let next = pack(cap, anchor);
            match self.state.compare_exchange_weak(
                state,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => state = actual,
            }
        }
    }

    /// Overwrite the credit (adopting a check-point or HA snapshot),
    /// clamped to capacity, anchoring at `now`.
    pub fn set_credit(&self, credit: Credits, now: Nanos) {
        let clamped = credit
            .as_micro()
            .min(self.capacity.load(Ordering::Relaxed))
            .min(CREDIT_MASK);
        let now_floor = floor_tick(now);
        let now_ceil = ceil_tick(now);
        let mut state = self.state.load(Ordering::Relaxed);
        loop {
            let (_, anchor) = unpack(state);
            let (_, new_anchor) = elapsed_ticks(anchor, now_floor, now_ceil);
            let next = pack(clamped, new_anchor);
            match self.state.compare_exchange_weak(
                state,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => state = actual,
            }
        }
    }

    /// Overwrite shape and credit in place from a rule. The three stores
    /// are not atomic as a group: callers must ensure no concurrent
    /// readers (the lock-free table only uses this on slots that are
    /// reserved but not yet published).
    pub fn store_rule(&self, rule: &QosRule, now: Nanos) {
        let cap = rule.capacity.as_micro();
        self.capacity.store(cap, Ordering::Relaxed);
        self.rate
            .store(rule.refill_rate.micro_per_sec(), Ordering::Relaxed);
        let credit = rule.credit.as_micro().min(cap).min(CREDIT_MASK);
        self.state
            .store(pack(credit, ceil_tick(now)), Ordering::Relaxed);
    }

    /// Drain the bucket for migration or reclamation: capture its exact
    /// shape and remaining credit at `now`, leaving behind a
    /// zero-capacity, zero-rate husk that denies everything. Returns
    /// `(capacity, refill_rate, credit)`.
    ///
    /// Exactness under concurrency: the shape is zeroed *first*, so any
    /// consumer that derives credit after this point sees capacity 0 and
    /// denies (a pure read). A consumer whose successful CAS lands before
    /// the final state capture is observed by the capture's retry loop —
    /// its charge is reflected in the returned credit. A consumer whose
    /// CAS would land after loses the race by definition of CAS: it
    /// re-derives against the drained word and denies. No charge is ever
    /// lost and none is double-counted.
    pub fn drain(&self, now: Nanos) -> (Credits, RefillRate, Credits) {
        let cap = self.capacity.swap(0, Ordering::Relaxed);
        let rate = self.rate.swap(0, Ordering::Relaxed);
        let refill = RefillRate::from_micro_per_sec(rate);
        let now_floor = floor_tick(now);
        let mut state = self.state.load(Ordering::Relaxed);
        loop {
            // Derive with the *saved* shape: the live fields are already
            // zero and would forfeit both the clamp and the accrual.
            let (credit, anchor) = unpack(state);
            let (ticks, _) = elapsed_ticks(anchor, now_floor, now_floor);
            let accrued = refill.accrued_over(Duration::from_millis(ticks)).as_micro();
            let exact = credit.saturating_add(accrued).min(cap).min(CREDIT_MASK);
            match self.state.compare_exchange_weak(
                state,
                pack(0, anchor),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return (Credits::from_micro(cap), refill, Credits::from_micro(exact)),
                Err(actual) => state = actual,
            }
        }
    }

    /// Export as a rule row with credit evaluated at `now`.
    pub fn to_rule(&self, key: janus_types::QosKey, now: Nanos) -> QosRule {
        QosRule {
            key,
            capacity: self.capacity(),
            refill_rate: self.refill_rate(),
            credit: self.credit(now),
        }
    }

    /// A locked-bucket twin with identical observable state at `now`
    /// (test and migration helper).
    pub fn to_leaky(&self, now: Nanos) -> LeakyBucket {
        let mut bucket = LeakyBucket::full(self.capacity(), self.refill_rate(), now);
        bucket.set_credit(Credits::ZERO, now);
        bucket.add_credit(self.credit(now));
        bucket
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn ms(m: u64) -> Nanos {
        Nanos::from_millis(m)
    }

    fn bucket(cap: u64, rate: u64) -> AtomicBucket {
        AtomicBucket::full(
            Credits::from_whole(cap),
            RefillRate::per_second(rate),
            Nanos::ZERO,
        )
    }

    fn locked(cap: u64, rate: u64) -> LeakyBucket {
        LeakyBucket::full(
            Credits::from_whole(cap),
            RefillRate::per_second(rate),
            Nanos::ZERO,
        )
    }

    #[test]
    fn packing_roundtrips() {
        for (credit, tick) in [(0, 0), (CREDIT_MASK, TICK_MASK), (1_000_000, 42)] {
            assert_eq!(unpack(pack(credit, tick)), (credit, tick));
        }
    }

    #[test]
    fn starts_full_and_consumes_one() {
        let b = bucket(10, 0);
        assert_eq!(b.credit(Nanos::ZERO), Credits::from_whole(10));
        assert_eq!(b.try_consume(Nanos::ZERO), Verdict::Allow);
        assert_eq!(b.credit(Nanos::ZERO), Credits::from_whole(9));
    }

    #[test]
    fn denies_when_dry_without_state_change() {
        let b = bucket(2, 0);
        assert_eq!(b.try_consume(Nanos::ZERO), Verdict::Allow);
        assert_eq!(b.try_consume(Nanos::ZERO), Verdict::Allow);
        let state = b.state.load(Ordering::Relaxed);
        assert_eq!(b.try_consume(Nanos::ZERO), Verdict::Deny);
        assert_eq!(
            b.state.load(Ordering::Relaxed),
            state,
            "deny must be a pure read"
        );
    }

    #[test]
    fn refills_at_purchased_rate() {
        let b = bucket(1000, 100);
        for _ in 0..1000 {
            assert_eq!(b.try_consume(Nanos::ZERO), Verdict::Allow);
        }
        assert_eq!(b.try_consume(Nanos::ZERO), Verdict::Deny);
        let admitted = (0..200)
            .filter(|_| b.try_consume(Nanos::from_secs(1)) == Verdict::Allow)
            .count();
        assert_eq!(admitted, 100);
    }

    #[test]
    fn backwards_time_is_safe() {
        let b = bucket(10, 1);
        assert_eq!(b.try_consume(Nanos::from_secs(100)), Verdict::Allow);
        // An older timestamp mints nothing and still decides correctly.
        assert_eq!(
            b.credit(Nanos::from_secs(50)),
            b.credit(Nanos::from_secs(100))
        );
        assert_eq!(b.try_consume(Nanos::from_secs(50)), Verdict::Allow);
        // The anchor did not rewind: credit at 100 s reflects no double
        // accrual.
        assert!(b.credit(Nanos::from_secs(100)) <= Credits::from_whole(10));
    }

    #[test]
    fn wrap_scale_forward_jump_never_oversells() {
        // A forward jump beyond the 2²³-tick half range reads as
        // backwards: the bucket under-refills (safe) instead of minting
        // hours of credit twice across the modular wrap.
        let b = bucket(5, 1000);
        for _ in 0..5 {
            b.try_consume(Nanos::ZERO);
        }
        let far = Nanos::from_millis(TICK_HALF_RANGE + 10);
        assert_eq!(b.credit(far), Credits::ZERO, "jump must not mint credit");
        let admitted = (0..20)
            .filter(|_| b.try_consume(far) == Verdict::Allow)
            .count();
        assert_eq!(admitted, 0);
    }

    #[test]
    fn sub_tick_times_never_oversell() {
        // Anchors round up, reads round down: a schedule off the tick grid
        // can only under-admit relative to the exact bucket, never over.
        let b = bucket(1, 1000);
        assert_eq!(b.try_consume(Nanos::from_nanos(1)), Verdict::Allow);
        // 0.9 ms later the exact bucket would hold 0.9 credits; quantized
        // elapsed is 0 ticks, so still deny — and never the reverse.
        assert_eq!(b.try_consume(Nanos::from_nanos(900_001)), Verdict::Deny);
        let exact = locked(1, 1000);
        let supply = exact.credit(Nanos::from_millis(2));
        assert!(b.credit(Nanos::from_millis(2)) <= supply);
    }

    #[test]
    fn rule_update_clamps_and_preserves_credit() {
        let b = bucket(1000, 100);
        for _ in 0..990 {
            b.try_consume(Nanos::ZERO);
        }
        let rule = QosRule::per_second(janus_types::QosKey::new("k").unwrap(), 200, 1);
        b.apply_rule_update(&rule, Nanos::ZERO);
        assert_eq!(b.capacity(), Credits::from_whole(200));
        assert_eq!(b.refill_rate(), RefillRate::per_second(1));
        assert_eq!(b.credit(Nanos::ZERO), Credits::from_whole(10));
        let shrink = QosRule::per_second(janus_types::QosKey::new("k").unwrap(), 3, 1);
        b.apply_rule_update(&shrink, Nanos::ZERO);
        assert_eq!(b.credit(Nanos::ZERO), Credits::from_whole(3));
    }

    #[test]
    fn to_rule_roundtrips_through_from_rule() {
        let b = bucket(50, 3);
        b.try_consume(Nanos::from_secs(2));
        let key = janus_types::QosKey::new("alice").unwrap();
        let rule = b.to_rule(key.clone(), Nanos::from_secs(2));
        let restored = AtomicBucket::from_rule(&rule, Nanos::from_secs(2));
        assert_eq!(
            restored.credit(Nanos::from_secs(2)),
            b.credit(Nanos::from_secs(2))
        );
        assert_eq!(restored.capacity(), b.capacity());
    }

    #[test]
    fn oversized_capacity_saturates_at_packed_ceiling() {
        // 2^40 µc ≈ 1.0995e6 whole credits; a 10 M-credit rule still
        // works, with usable burst clamped at the ceiling.
        let b = bucket(10_000_000, 0);
        let credit = b.credit(Nanos::ZERO);
        assert_eq!(credit, Credits::from_micro(CREDIT_MASK));
        assert_eq!(b.try_consume(Nanos::ZERO), Verdict::Allow);
    }

    #[test]
    fn concurrent_consumption_is_exact_with_zero_rate() {
        let b = Arc::new(bucket(1000, 0));
        let admitted = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let b = Arc::clone(&b);
                    scope.spawn(move || {
                        (0..500)
                            .filter(|_| b.try_consume(Nanos::ZERO) == Verdict::Allow)
                            .count()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum::<usize>()
        });
        assert_eq!(admitted, 1000);
    }

    #[test]
    fn drain_captures_exact_credit_and_kills_the_bucket() {
        let b = bucket(10, 2);
        assert_eq!(b.try_consume(ms(0)), Verdict::Allow);
        assert_eq!(b.try_consume(ms(0)), Verdict::Allow);
        // 8 credits left at t=0; +2 accrued by t=1s.
        let (cap, rate, credit) = b.drain(ms(1_000));
        assert_eq!(cap, Credits::from_whole(10));
        assert_eq!(rate, RefillRate::per_second(2));
        assert_eq!(credit, Credits::from_whole(10));
        // The husk denies everything, forever, and holds no credit.
        assert_eq!(b.try_consume(ms(1_000)), Verdict::Deny);
        assert_eq!(b.credit(ms(3_600_000)), Credits::ZERO);
    }

    #[test]
    fn drain_racing_consumers_never_loses_or_double_counts_a_charge() {
        for _ in 0..50 {
            let b = Arc::new(bucket(1000, 0));
            let (allowed, drained) = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..4)
                    .map(|_| {
                        let b = Arc::clone(&b);
                        scope.spawn(move || {
                            (0..500)
                                .filter(|_| b.try_consume(Nanos::ZERO) == Verdict::Allow)
                                .count()
                        })
                    })
                    .collect();
                let drainer = {
                    let b = Arc::clone(&b);
                    scope.spawn(move || b.drain(Nanos::ZERO).2)
                };
                let allowed: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
                (allowed, drainer.join().unwrap())
            });
            assert_eq!(
                Credits::from_whole(allowed as u64).saturating_add(drained),
                Credits::from_whole(1000),
                "allowed {allowed} + drained {drained:?} must equal capacity"
            );
        }
    }

    /// The differential property tests need the external `proptest` crate,
    /// which the std-only `rustc --test` battery (built with
    /// `--cfg janus_std_only`) cannot link. Everything above runs in both
    /// worlds.
    #[cfg(not(janus_std_only))]
    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Sequential, on the tick grid: the atomic bucket is bit-for-bit
            /// the locked bucket — same verdict on every attempt, same derived
            /// credit at every observation, under consumes, sweeps and clock
            /// jumps (forward and backward).
            #[test]
            fn matches_locked_bucket_exactly_on_tick_grid(
                cap in 0u64..2_000,
                rate in 0u64..2_000,
                ops in proptest::collection::vec((0u8..3, 0i64..200_000), 1..250),
            ) {
                let atomic = bucket(cap, rate);
                let mut exact = locked(cap, rate);
                let mut now_ms: i64 = 0;
                for (op, jump_ms) in ops {
                    // Jumps go forward mostly, sometimes backward (UDP
                    // reordering / SimClock skew), never below zero.
                    now_ms = (now_ms + jump_ms - 50_000).max(0);
                    let now = ms(now_ms as u64);
                    match op {
                        0 => {
                            prop_assert_eq!(
                                atomic.try_consume(now),
                                exact.try_consume(now),
                                "verdict diverged at {}ms", now_ms
                            );
                        }
                        1 => {
                            atomic.refill(now);
                            exact.refill(now);
                        }
                        _ => {
                            prop_assert_eq!(
                                atomic.credit(now),
                                exact.credit(now),
                                "credit diverged at {}ms", now_ms
                            );
                        }
                    }
                }
                let end = ms(now_ms as u64);
                prop_assert_eq!(atomic.credit(end), exact.credit(end));
            }

            /// Concurrent consumers against the atomic bucket vs a
            /// mutex-serialized locked bucket driven over the same timestamp
            /// multiset: with zero refill the totals are identical; with
            /// refill both respect the paper's Eq. 1–2 supply bound
            /// `capacity + rate × makespan`.
            #[test]
            fn concurrent_total_matches_serialized_within_supply_bound(
                cap in 1u64..300,
                rate in 0u64..500,
                threads in 2usize..6,
                per_thread in 1usize..80,
                jumps in proptest::collection::vec(0u64..50, 8),
            ) {
                // A shared, monotone tick-grid schedule with occasional jumps.
                let schedule: Vec<Nanos> = {
                    let mut t = 0u64;
                    (0..threads * per_thread)
                        .map(|i| {
                            t += jumps[i % jumps.len()];
                            ms(t)
                        })
                        .collect()
                };
                let makespan = *schedule.last().unwrap();

                let atomic = Arc::new(bucket(cap, rate));
                let total_atomic: usize = std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..threads)
                        .map(|t| {
                            let atomic = Arc::clone(&atomic);
                            let slice: Vec<Nanos> = schedule
                                .iter()
                                .skip(t)
                                .step_by(threads)
                                .copied()
                                .collect();
                            scope.spawn(move || {
                                slice
                                    .iter()
                                    .filter(|now| atomic.try_consume(**now) == Verdict::Allow)
                                    .count()
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).sum()
                });

                let serialized = janus_types::sync::Mutex::new(locked(cap, rate));
                let total_locked = schedule
                    .iter()
                    .filter(|now| serialized.lock().try_consume(**now) == Verdict::Allow)
                    .count();

                let minted = RefillRate::per_second(rate)
                    .accrued_over(makespan.saturating_since(Nanos::ZERO));
                let supply = Credits::from_whole(cap).saturating_add(minted);
                prop_assert!(
                    Credits::from_whole(total_atomic as u64) <= supply,
                    "atomic oversold: {} vs supply {:?}", total_atomic, supply
                );
                prop_assert!(Credits::from_whole(total_locked as u64) <= supply);
                if rate == 0 {
                    prop_assert_eq!(total_atomic, total_locked);
                    prop_assert_eq!(total_atomic, (cap as usize).min(threads * per_thread));
                }
            }
        }
    }
}
