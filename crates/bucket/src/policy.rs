//! Default-rule policy for QoS keys absent from the database.
//!
//! When the database lookup for a key returns empty, the request may be a
//! guest/test access or an unauthorized one (paper §II-D). The service
//! provider chooses what happens: deny outright (zero capacity, zero
//! refill), grant limited access (small bucket), or wave everything
//! through (useful while onboarding Janus in shadow mode).

use janus_types::{Credits, QosKey, QosRule, RefillRate};

/// What a QoS server does with a key that has no rule in the database.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Default)]
pub enum DefaultRulePolicy {
    /// Zero capacity, zero refill: every request from unknown keys is
    /// denied.
    #[default]
    Deny,
    /// A small bucket: limited guest access.
    Limited {
        /// Burst allowance for unknown keys, in whole requests.
        capacity: u64,
        /// Sustained rate for unknown keys, requests per second.
        rate_per_sec: u64,
    },
    /// Admit everything (an effectively infinite bucket). Intended for
    /// shadow deployments where Janus observes but must not throttle.
    AllowAll,
}

impl DefaultRulePolicy {
    /// The paper's photo-sharing default: refill 10/s, capacity 100.
    pub fn paper_default() -> Self {
        DefaultRulePolicy::Limited {
            capacity: 100,
            rate_per_sec: 10,
        }
    }

    /// Materialize the rule this policy assigns to `key`.
    pub fn rule_for(&self, key: QosKey) -> QosRule {
        match *self {
            DefaultRulePolicy::Deny => QosRule::deny(key),
            DefaultRulePolicy::Limited {
                capacity,
                rate_per_sec,
            } => QosRule::per_second(key, capacity, rate_per_sec),
            DefaultRulePolicy::AllowAll => QosRule::new(
                key,
                Credits::from_whole(u64::MAX / janus_types::MICROCREDITS_PER_CREDIT),
                RefillRate::from_micro_per_sec(u64::MAX / 2),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LeakyBucket;
    use janus_clock::Nanos;
    use janus_types::Verdict;

    fn key() -> QosKey {
        QosKey::new("unknown-visitor").unwrap()
    }

    #[test]
    fn deny_policy_denies() {
        let rule = DefaultRulePolicy::Deny.rule_for(key());
        assert!(rule.denies_everything());
        let mut b = LeakyBucket::from_rule(&rule, Nanos::ZERO);
        assert_eq!(b.try_consume(Nanos::from_secs(1000)), Verdict::Deny);
    }

    #[test]
    fn limited_policy_grants_bounded_access() {
        let rule = DefaultRulePolicy::paper_default().rule_for(key());
        assert_eq!(rule.capacity, Credits::from_whole(100));
        assert_eq!(rule.refill_rate, RefillRate::per_second(10));
        let mut b = LeakyBucket::from_rule(&rule, Nanos::ZERO);
        let admitted = (0..500)
            .filter(|_| b.try_consume(Nanos::ZERO) == Verdict::Allow)
            .count();
        assert_eq!(admitted, 100);
    }

    #[test]
    fn allow_all_admits_sustained_floods() {
        let rule = DefaultRulePolicy::AllowAll.rule_for(key());
        let mut b = LeakyBucket::from_rule(&rule, Nanos::ZERO);
        for i in 0..100_000u64 {
            assert_eq!(
                b.try_consume(Nanos::from_micros(i)),
                Verdict::Allow,
                "denied at request {i}"
            );
        }
    }

    #[test]
    fn default_is_deny() {
        assert_eq!(DefaultRulePolicy::default(), DefaultRulePolicy::Deny);
    }
}
