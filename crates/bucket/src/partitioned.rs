//! Worker-partitioned QoS table for key-affinity dispatch.
//!
//! When the QoS server routes every request to a worker chosen by
//! [`worker_affinity`] (CRC32 of the key, mod worker count), one key is
//! only ever decided by one worker. That makes per-worker state safe
//! without cross-worker synchronization: [`PartitionedTable`] holds one
//! [`SyncTable`] per worker, and every hot-path operation touches exactly
//! the partition the dispatcher would have picked — so two workers never
//! contend on the same lock. The paper's synchronized-map contention
//! (Fig. 10b) disappears structurally rather than statistically (compare
//! [`ShardedTable`], which only makes collisions rare).
//!
//! The affinity function lives here, next to the partitioning it
//! guarantees, and the server's dispatcher imports it — a single source
//! of truth keeps "dispatch shard" and "table partition" from drifting
//! apart.

use crate::table::{QosTable, SyncTable, TableStatsSnapshot};
use janus_clock::Nanos;
use janus_types::{Credits, QosKey, QosRule, RefillRate, Verdict};

/// The worker (and table partition) responsible for `key` out of
/// `workers` total. CRC32 matches the checksum already used for
/// key-space partitioning across QoS servers, so the distribution
/// properties are the ones the paper measured. The checksum is read from
/// the key's cache ([`QosKey::crc32`], computed once at construction), so
/// dispatch never re-hashes the key bytes.
///
/// # Panics
/// Panics if `workers` is zero.
pub fn worker_affinity(key: &QosKey, workers: usize) -> usize {
    assert!(workers > 0, "need at least one worker");
    key.crc32() as usize % workers
}

/// A QoS table split into per-worker partitions by [`worker_affinity`].
///
/// Each partition is a plain [`SyncTable`]; under affinity dispatch its
/// lock is uncontended (only its own worker touches it), so the mutex
/// acquire is a fast path. Management-plane operations (`keys`,
/// `snapshot`, `restore`, `sweep_refill`, `stats`) visit every partition
/// and aggregate.
pub struct PartitionedTable {
    parts: Vec<SyncTable>,
}

impl PartitionedTable {
    /// A table partitioned for `workers` workers.
    ///
    /// # Panics
    /// Panics if `workers` is zero.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        PartitionedTable {
            parts: (0..workers).map(|_| SyncTable::new()).collect(),
        }
    }

    /// Number of partitions (the worker count this table was built for).
    pub fn partitions(&self) -> usize {
        self.parts.len()
    }

    fn part(&self, key: &QosKey) -> &SyncTable {
        &self.parts[worker_affinity(key, self.parts.len())]
    }
}

impl QosTable for PartitionedTable {
    fn decide(&self, key: &QosKey, now: Nanos) -> Option<Verdict> {
        self.part(key).decide(key, now)
    }

    fn shape(&self, key: &QosKey) -> Option<(Credits, RefillRate)> {
        self.part(key).shape(key)
    }

    fn insert(&self, rule: QosRule, now: Nanos) {
        let idx = worker_affinity(&rule.key, self.parts.len());
        self.parts[idx].insert(rule, now);
    }

    fn apply_update(&self, rule: &QosRule, now: Nanos) -> bool {
        self.part(&rule.key).apply_update(rule, now)
    }

    fn remove(&self, key: &QosKey) -> bool {
        self.part(key).remove(key)
    }

    fn len(&self) -> usize {
        self.parts.iter().map(|p| p.len()).sum()
    }

    fn keys(&self) -> Vec<QosKey> {
        let mut keys = Vec::with_capacity(self.len());
        for part in &self.parts {
            keys.extend(part.keys());
        }
        keys
    }

    fn snapshot(&self, now: Nanos) -> Vec<QosRule> {
        let mut rules = Vec::with_capacity(self.len());
        for part in &self.parts {
            rules.extend(part.snapshot(now));
        }
        rules
    }

    fn restore(&self, rules: Vec<QosRule>, now: Nanos) {
        for rule in rules {
            let idx = worker_affinity(&rule.key, self.parts.len());
            self.parts[idx].restore(vec![rule], now);
        }
    }

    fn sweep_refill(&self, now: Nanos) {
        for part in &self.parts {
            part.sweep_refill(now);
        }
    }

    fn stats(&self) -> TableStatsSnapshot {
        let mut total = TableStatsSnapshot {
            decisions: 0,
            allows: 0,
            denies: 0,
            misses: 0,
            cas_retries: 0,
            probe_steps: 0,
        };
        for part in &self.parts {
            let snap = part.stats();
            total.decisions += snap.decisions;
            total.allows += snap.allows;
            total.denies += snap.denies;
            total.misses += snap.misses;
            total.cas_retries += snap.cas_retries;
            total.probe_steps += snap.probe_steps;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_types::Credits;
    use std::sync::Arc;

    fn key(s: &str) -> QosKey {
        QosKey::new(s).unwrap()
    }

    fn rule(s: &str, cap: u64, rate: u64) -> QosRule {
        QosRule::per_second(key(s), cap, rate)
    }

    #[test]
    fn affinity_is_stable_and_in_range() {
        for workers in 1..=16usize {
            for i in 0..200 {
                let k = key(&format!("tenant-{i}"));
                let w = worker_affinity(&k, workers);
                assert!(w < workers);
                assert_eq!(w, worker_affinity(&k, workers), "affinity must be pure");
            }
        }
    }

    #[test]
    fn affinity_spreads_keys() {
        // CRC32 mod 8 over 800 distinct keys must not collapse onto a
        // few workers. A loose bound: every worker sees at least one key
        // and none sees more than half.
        let workers = 8;
        let mut counts = vec![0usize; workers];
        for i in 0..800 {
            counts[worker_affinity(&key(&format!("user-{i}")), workers)] += 1;
        }
        for (w, count) in counts.iter().enumerate() {
            assert!(*count > 0, "worker {w} starved");
            assert!(*count < 400, "worker {w} owns {count}/800 keys");
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        worker_affinity(&key("k"), 0);
    }

    #[test]
    fn affinity_still_matches_the_wire_checksum() {
        // `worker_affinity` reads the key's cached CRC32; it must stay
        // byte-identical to hashing the key text with the shared
        // checksum, or dispatch and key-space partitioning would drift.
        for i in 0..100 {
            let k = key(&format!("tenant-{i}"));
            assert_eq!(k.crc32(), janus_hash::crc32(k.as_bytes()));
        }
    }

    #[test]
    fn behaves_like_any_qos_table() {
        let table = PartitionedTable::new(4);
        table.insert(rule("alice", 2, 0), Nanos::ZERO);
        assert_eq!(
            table.decide(&key("alice"), Nanos::ZERO),
            Some(Verdict::Allow)
        );
        assert_eq!(
            table.decide(&key("alice"), Nanos::ZERO),
            Some(Verdict::Allow)
        );
        assert_eq!(
            table.decide(&key("alice"), Nanos::ZERO),
            Some(Verdict::Deny)
        );
        assert_eq!(table.decide(&key("ghost"), Nanos::ZERO), None);
        assert_eq!(table.shape(&key("ghost")), None);
        let (cap, _) = table.shape(&key("alice")).unwrap();
        assert_eq!(cap, Credits::from_whole(2));
        let stats = table.stats();
        assert_eq!(
            (stats.decisions, stats.allows, stats.denies, stats.misses),
            (3, 2, 1, 1)
        );
    }

    #[test]
    fn partition_matches_affinity_for_every_key() {
        // The structural guarantee: a key's bucket lives in exactly the
        // partition `worker_affinity` names, so affinity dispatch never
        // crosses partitions.
        let workers = 5;
        let table = PartitionedTable::new(workers);
        for i in 0..100 {
            table.insert(rule(&format!("k{i}"), 1, 0), Nanos::ZERO);
        }
        for i in 0..100 {
            let k = key(&format!("k{i}"));
            let owner = worker_affinity(&k, workers);
            for (p, part) in table.parts.iter().enumerate() {
                let holds = part.keys().contains(&k);
                assert_eq!(holds, p == owner, "key k{i} in partition {p}");
            }
        }
    }

    #[test]
    fn snapshot_restore_roundtrip_across_partition_counts() {
        // A snapshot taken with one worker count restores correctly into
        // a table with another (re-scaling the worker pool).
        let now = Nanos::from_secs(1);
        let table = PartitionedTable::new(3);
        table.insert(rule("a", 100, 10), Nanos::ZERO);
        table.insert(rule("b", 50, 5), Nanos::ZERO);
        for _ in 0..30 {
            table.decide(&key("a"), now);
        }
        let snap = table.snapshot(now);

        let rescaled = PartitionedTable::new(7);
        rescaled.restore(snap.clone(), now);
        let mut original = snap;
        original.sort_by(|a, b| a.key.cmp(&b.key));
        let mut restored = rescaled.snapshot(now);
        restored.sort_by(|a, b| a.key.cmp(&b.key));
        assert_eq!(original, restored);
    }

    #[test]
    fn concurrent_decisions_conserve_credit() {
        let table = Arc::new(PartitionedTable::new(4));
        table.insert(rule("shared", 1000, 0), Nanos::ZERO);
        let admitted = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let table = Arc::clone(&table);
                    scope.spawn(move || {
                        let k = key("shared");
                        (0..500)
                            .filter(|_| table.decide(&k, Nanos::ZERO) == Some(Verdict::Allow))
                            .count()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum::<usize>()
        });
        assert_eq!(admitted, 1000);
    }

    #[test]
    fn double_insert_behaves_as_update() {
        let table = PartitionedTable::new(2);
        table.insert(rule("k", 100, 0), Nanos::ZERO);
        for _ in 0..50 {
            table.decide(&key("k"), Nanos::ZERO);
        }
        table.insert(rule("k", 10, 0), Nanos::ZERO);
        let snap = table.snapshot(Nanos::ZERO);
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].credit, Credits::from_whole(10));
    }
}
