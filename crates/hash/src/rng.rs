//! Seedable pseudo-random number generation with no external
//! dependencies.
//!
//! Janus needs randomness in three places — key generation for the
//! key-pressure study, fault injection for chaos tests, and the
//! deterministic cluster simulator (`janus-dst`) — and all three need the
//! same thing: a small, fast generator whose entire output sequence is a
//! pure function of a 64-bit seed, so a failing run is reproducible from
//! one number. The external `rand` crate gives no cross-version sequence
//! stability guarantee and pulls in OS entropy machinery this workspace
//! cannot build offline, so the generator lives in-tree instead.
//!
//! Two layers, both `no_std`-friendly (only `core` is used):
//!
//! * [`SplitMix64`] — Steele et al.'s 64-bit mixer. Streams well enough
//!   for seeding and one-shot hashing; used to expand a user seed into
//!   generator state and to derive independent sub-streams.
//! * [`Rng`] — xoshiro256++ (Blackman & Vigna), the workhorse generator:
//!   4 × u64 of state, one rotate-add-xor per draw, passes BigCrush.
//!
//! Sequence stability is part of the contract: committed fault-schedule
//! seeds in `tests/dst_corpus.txt` replay byte-identically only while
//! these algorithms produce the exact published sequences, so the known-
//! answer tests below pin them.

/// Steele, Lea & Flood's SplitMix64: a tiny splittable generator used
/// here to expand seeds and derive sub-streams.
///
/// Every call advances the state by the golden-ratio increment and
/// returns a finalizer-mixed output; zero is a perfectly fine seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix64(self.state)
    }
}

/// The SplitMix64 output finalizer: a bijective avalanche mix of one
/// u64. Useful on its own to hash small integers (e.g. combining a seed
/// with a stream label).
pub const fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++: the general-purpose seedable generator.
///
/// State is expanded from the seed with [`SplitMix64`] (the seeding
/// discipline Vigna recommends), so any u64 — including 0 — is a valid
/// seed and nearby seeds produce unrelated sequences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// A generator whose whole sequence is determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Rng {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next 64 uniformly-distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32 uniformly-distributed bits (the high half of a 64-bit
    /// draw — xoshiro's low bits are its weakest).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform draw from `[0, bound)`. `bound` 0 returns 0.
    ///
    /// Uses the widening-multiply range reduction (Lemire): the bias for
    /// any bound representable here is below 2⁻⁶⁴ per draw, far beneath
    /// anything a simulation schedule could observe, and — unlike
    /// rejection sampling — it consumes exactly one draw per call, which
    /// keeps sequence alignment simple to reason about.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform draw from `[lo, hi]` (inclusive). Panics if `lo > hi`.
    pub fn gen_range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "gen_range_inclusive: lo > hi");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.gen_range(span + 1)
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p`. Panics unless `p` is in `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability in [0,1]");
        self.gen_f64() < p
    }

    /// An independent generator derived from this one's stream.
    ///
    /// The child is seeded from one draw of the parent, so N forks from a
    /// fixed parent state are reproducible and mutually unrelated — the
    /// discipline the simulator uses to give every component (network,
    /// workload, each node) its own stream while the whole run stays a
    /// function of one root seed.
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from_u64(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_published_vectors() {
        // Known-answer: the reference SplitMix64 sequence for seed
        // 1234567, as published with the algorithm. Pins the sequence
        // the corpus seeds depend on.
        let mut sm = SplitMix64::new(1234567);
        for expected in [
            6457827717110365317u64,
            3203168211198807973,
            9817491932198370423,
            4593380528125082431,
            16408922859458223821,
        ] {
            assert_eq!(sm.next_u64(), expected);
        }
    }

    #[test]
    fn xoshiro_is_deterministic_and_seed_sensitive() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        let mut c = Rng::seed_from_u64(43);
        let sa: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn xoshiro_first_draws_are_pinned() {
        // Sequence-stability canary: if the seeding or step function ever
        // changes, every committed simulation seed silently changes
        // meaning. This test makes that loud instead.
        let mut rng = Rng::seed_from_u64(0);
        let first: Vec<u64> = (0..3).map(|_| rng.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                5987356902031041503,
                7051070477665621255,
                6633766593972829180
            ]
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            assert!(rng.gen_range(10) < 10);
            let v = rng.gen_range_inclusive(5, 9);
            assert!((5..=9).contains(&v));
        }
        assert_eq!(rng.gen_range(0), 0);
        assert_eq!(rng.gen_range(1), 0);
        assert_eq!(rng.gen_range_inclusive(3, 3), 3);
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = Rng::seed_from_u64(11);
        let mut counts = [0u32; 8];
        let n = 80_000;
        for _ in 0..n {
            counts[rng.gen_range(8) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let expected = n / 8;
            assert!(
                (c as i64 - expected as i64).unsigned_abs() < expected as u64 / 10,
                "bucket {i} count {c} far from {expected}"
            );
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f = rng.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Rng::seed_from_u64(5);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.01, "observed {rate}");
        let mut rng = Rng::seed_from_u64(5);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        let mut rng = Rng::seed_from_u64(5);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    #[should_panic(expected = "probability in [0,1]")]
    fn gen_bool_rejects_bad_probability() {
        Rng::seed_from_u64(0).gen_bool(1.5);
    }

    #[test]
    fn forks_are_independent_and_reproducible() {
        let mut parent = Rng::seed_from_u64(99);
        let mut a = parent.fork();
        let mut b = parent.fork();
        let sa: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(sa, sb, "sibling forks must differ");
        let mut parent2 = Rng::seed_from_u64(99);
        let mut a2 = parent2.fork();
        let sa2: Vec<u64> = (0..16).map(|_| a2.next_u64()).collect();
        assert_eq!(sa, sa2, "forks must be reproducible from the root seed");
    }

    #[test]
    fn mix64_is_a_bijection_probe() {
        // Not a proof, but distinct inputs in a dense range must stay
        // distinct — catches accidental truncation in the mixer.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(mix64(i)));
        }
    }
}
