//! 32-bit IEEE cyclic redundancy checksum, from scratch.
//!
//! The paper's request router hashes the QoS key with "a 32-bit cyclic
//! redundancy checksum (CRC) algorithm". This module implements CRC-32/ISO-HDLC
//! (the ubiquitous IEEE 802.3 polynomial `0xEDB88320`, reflected, init and
//! xorout `0xFFFFFFFF`) — the same function PHP's `crc32()` computes, which
//! is what the paper's PHP router used.
//!
//! Three implementations are provided:
//!
//! * [`crc32_bitwise`] — the textbook bit-at-a-time reference, used as the
//!   oracle in tests.
//! * [`crc32_sarwate`] — the classic single-table byte-at-a-time form.
//! * [`crc32`] — slicing-by-8, processing 8 bytes per step; the hot-path
//!   implementation the router uses. All three agree on every input.

/// The reflected IEEE 802.3 polynomial.
pub const POLY: u32 = 0xEDB8_8320;

/// Sarwate lookup table plus the seven derived tables for slicing-by-8.
/// `TABLES[0]` is the classic table; `TABLES[k][b] = ` CRC of byte `b`
/// followed by `k` zero bytes.
static TABLES: [[u32; 256]; 8] = build_tables();

const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut b = 0usize;
    while b < 256 {
        let mut crc = b as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        tables[0][b] = crc;
        b += 1;
    }
    let mut t = 1usize;
    while t < 8 {
        let mut b = 0usize;
        while b < 256 {
            let prev = tables[t - 1][b];
            tables[t][b] = (prev >> 8) ^ tables[0][(prev & 0xff) as usize];
            b += 1;
        }
        t += 1;
    }
    tables
}

/// One-shot CRC32 evaluable in `const` context (Sarwate over the const
/// table). Lets callers bake checksums of fixed labels into constants; at
/// runtime prefer [`crc32`], whose slicing-by-8 loop is faster.
pub const fn crc32_const(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    let mut i = 0;
    while i < data.len() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ data[i] as u32) & 0xff) as usize];
        i += 1;
    }
    !crc
}

// Compile-time known-answer check: a regression in the const table build
// fails `cargo build` itself, not just the test suite. 0xCBF4_3926 is the
// standard CRC-32/ISO-HDLC "check" value.
const _: () = assert!(crc32_const(b"123456789") == 0xCBF4_3926);
const _: () = assert!(crc32_const(b"") == 0);

/// Bit-at-a-time reference implementation (test oracle; do not use on the
/// hot path).
pub fn crc32_bitwise(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
        }
    }
    !crc
}

/// Classic Sarwate single-table implementation.
pub fn crc32_sarwate(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ byte as u32) & 0xff) as usize];
    }
    !crc
}

/// CRC-32/ISO-HDLC of `data` via slicing-by-8. Matches PHP `crc32()`,
/// zlib's `crc32()` and POSIX `cksum -o3`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut state = Crc32::new();
    state.update(data);
    state.finalize()
}

/// Incremental CRC32 state, for hashing a key assembled from fragments
/// (e.g. `user` + `:` + `database`) without concatenating.
#[derive(Debug, Clone)]
pub struct Crc32 {
    crc: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh state.
    pub fn new() -> Self {
        Crc32 { crc: 0xFFFF_FFFF }
    }

    /// Absorb `data`.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.crc;
        let mut chunks = data.chunks_exact(8);
        for chunk in &mut chunks {
            // Fold the current CRC into the first 4 bytes, then look all 8
            // bytes up in the 8 tables simultaneously.
            let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ crc;
            crc = TABLES[7][(lo & 0xff) as usize]
                ^ TABLES[6][((lo >> 8) & 0xff) as usize]
                ^ TABLES[5][((lo >> 16) & 0xff) as usize]
                ^ TABLES[4][(lo >> 24) as usize]
                ^ TABLES[3][chunk[4] as usize]
                ^ TABLES[2][chunk[5] as usize]
                ^ TABLES[1][chunk[6] as usize]
                ^ TABLES[0][chunk[7] as usize];
        }
        for &byte in chunks.remainder() {
            crc = (crc >> 8) ^ TABLES[0][((crc ^ byte as u32) & 0xff) as usize];
        }
        self.crc = crc;
    }

    /// Final checksum. The state may continue to absorb data afterwards;
    /// `finalize` is a pure read.
    pub fn finalize(&self) -> u32 {
        !self.crc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Known-answer vectors, cross-checked against PHP `crc32()` / zlib.
    #[test]
    fn known_answer_vectors() {
        let vectors: &[(&[u8], u32)] = &[
            (b"", 0x0000_0000),
            (b"a", 0xE8B7_BE43),
            (b"abc", 0x3524_41C2),
            (b"123456789", 0xCBF4_3926), // the CRC-32 "check" value
            (b"The quick brown fox jumps over the lazy dog", 0x414F_A339),
            (b"hello world", 0x0D4A_1185),
        ];
        for &(input, expected) in vectors {
            assert_eq!(crc32(input), expected, "slicing mismatch for {input:?}");
            assert_eq!(
                crc32_sarwate(input),
                expected,
                "sarwate mismatch for {input:?}"
            );
            assert_eq!(
                crc32_bitwise(input),
                expected,
                "bitwise mismatch for {input:?}"
            );
        }
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"alice:photos:2018-09-10";
        let mut inc = Crc32::new();
        inc.update(&data[..5]);
        inc.update(&data[5..12]);
        inc.update(&data[12..]);
        assert_eq!(inc.finalize(), crc32(data));
    }

    #[test]
    fn finalize_is_nondestructive() {
        let mut state = Crc32::new();
        state.update(b"abc");
        let first = state.finalize();
        assert_eq!(state.finalize(), first);
        state.update(b"def");
        assert_eq!(state.finalize(), crc32(b"abcdef"));
    }

    #[test]
    fn empty_update_is_identity() {
        let mut state = Crc32::new();
        state.update(b"janus");
        let before = state.finalize();
        state.update(b"");
        assert_eq!(state.finalize(), before);
    }

    proptest! {
        #[test]
        fn all_implementations_agree(data in proptest::collection::vec(any::<u8>(), 0..512)) {
            let expected = crc32_bitwise(&data);
            prop_assert_eq!(crc32_sarwate(&data), expected);
            prop_assert_eq!(crc32(&data), expected);
            prop_assert_eq!(crc32_const(&data), expected);
        }

        #[test]
        fn arbitrary_splits_agree(
            data in proptest::collection::vec(any::<u8>(), 0..256),
            split in 0usize..256,
        ) {
            let split = split.min(data.len());
            let mut inc = Crc32::new();
            inc.update(&data[..split]);
            inc.update(&data[split..]);
            prop_assert_eq!(inc.finalize(), crc32(&data));
        }

        #[test]
        fn single_bit_flip_changes_crc(
            data in proptest::collection::vec(any::<u8>(), 1..128),
            byte_idx in 0usize..128,
            bit in 0u8..8,
        ) {
            // CRC32 detects all single-bit errors by construction.
            let byte_idx = byte_idx % data.len();
            let mut flipped = data.clone();
            flipped[byte_idx] ^= 1 << bit;
            prop_assert_ne!(crc32(&data), crc32(&flipped));
        }
    }
}
