//! Generators for the paper's four QoS-key families (Fig. 6).
//!
//! The key-pressure study simulates four kinds of key:
//!
//! 1. randomly generated UUIDs in `xxxxxxxx-xxxx-xxxx-xxxx-xxxxxxxxxxxx`
//!    format,
//! 2. randomly generated date-time strings in `YYYY-MM-DD-HH-MM-SS` format,
//! 3. unique words from the English vocabulary, and
//! 4. sequential numbers starting from 1500000001.
//!
//! The English vocabulary is the one substitution: we do not ship a 500 k
//! word dictionary, so family (3) synthesizes unique English-like words as
//! `prefix + root + suffix` over embedded morpheme lists (≈1.3 M distinct
//! combinations). The property that matters for the study — natural-language
//! keys of varying length drawn from a skewed alphabet, unlike hex or
//! digits — is preserved.

use crate::rng::Rng;
use janus_types::QosKey;

/// The four key families of the paper's Fig. 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum KeyFamily {
    /// `xxxxxxxx-xxxx-xxxx-xxxx-xxxxxxxxxxxx`, random hex.
    Uuid,
    /// `YYYY-MM-DD-HH-MM-SS`, random instants in 2000–2037.
    Timestamp,
    /// Unique English-like vocabulary words.
    EnglishVocabulary,
    /// Sequential integers from 1500000001 (the paper's exact range).
    SequentialNumbers,
}

impl KeyFamily {
    /// All four families, in the paper's order.
    pub const ALL: [KeyFamily; 4] = [
        KeyFamily::Uuid,
        KeyFamily::Timestamp,
        KeyFamily::EnglishVocabulary,
        KeyFamily::SequentialNumbers,
    ];

    /// Human-readable label used in figure output.
    pub fn label(self) -> &'static str {
        match self {
            KeyFamily::Uuid => "UUID",
            KeyFamily::Timestamp => "TimeStamp",
            KeyFamily::EnglishVocabulary => "English Vocabulary",
            KeyFamily::SequentialNumbers => "Sequential Numbers",
        }
    }
}

/// First value of the paper's sequential-number family.
pub const SEQUENTIAL_START: u64 = 1_500_000_001;

const PREFIXES: &[&str] = &[
    "", "un", "re", "in", "dis", "en", "non", "over", "mis", "sub", "pre", "inter", "fore",
    "de", "trans", "super", "semi", "anti", "mid", "under", "out", "co", "auto", "bi",
];

const ROOTS: &[&str] = &[
    "act", "form", "port", "struct", "dict", "duc", "grad", "ject", "log", "man", "mit",
    "path", "ped", "pel", "pend", "phon", "photo", "scrib", "sect", "sent", "spect", "tain",
    "tend", "tract", "vent", "vert", "vid", "voc", "graph", "meter", "cede", "claim", "clud",
    "cred", "cycl", "fer", "flect", "gen", "loc", "mort", "nov", "rupt", "sign", "sol",
    "spir", "tact", "therm", "turb", "vac", "ver", "light", "water", "earth", "wind", "fire",
    "stone", "wood", "iron", "gold", "silver", "cloud", "rain", "snow", "storm", "river",
];

const SUFFIXES: &[&str] = &[
    "", "s", "ed", "ing", "ly", "er", "ion", "able", "al", "ful", "ic", "ive", "less",
    "ment", "ness", "ous", "est", "ish", "ism", "ist", "ity", "ize", "ward", "wise",
];

/// Deterministic generator of QoS keys from one [`KeyFamily`].
///
/// The same `(family, seed)` pair always yields the same key sequence, so
/// figure harnesses and tests are reproducible. Sequential and vocabulary
/// families enumerate without repetition; UUID and timestamp families draw
/// randomly (collisions are possible but astronomically rare for UUIDs and
/// harmless for the study).
#[derive(Debug, Clone)]
pub struct KeyGenerator {
    family: KeyFamily,
    rng: Rng,
    counter: u64,
}

impl KeyGenerator {
    /// A generator for `family`, deterministic in `seed`.
    pub fn new(family: KeyFamily, seed: u64) -> Self {
        KeyGenerator {
            family,
            rng: Rng::seed_from_u64(seed ^ family as u64),
            counter: 0,
        }
    }

    /// The family this generator draws from.
    pub fn family(&self) -> KeyFamily {
        self.family
    }

    /// Produce the next key.
    pub fn next_key(&mut self) -> QosKey {
        let s = self.next_string();
        QosKey::new(&s).expect("generated keys are always valid")
    }

    /// Produce the next key as a plain string (simulator hot path).
    pub fn next_string(&mut self) -> String {
        let n = self.counter;
        self.counter += 1;
        match self.family {
            KeyFamily::Uuid => {
                let (a, b) = (self.rng.next_u64(), self.rng.next_u64());
                format!(
                    "{:08x}-{:04x}-{:04x}-{:04x}-{:012x}",
                    (a >> 32) as u32,
                    (a >> 16) as u16,
                    a as u16,
                    (b >> 48) as u16,
                    b & 0xFFFF_FFFF_FFFF
                )
            }
            KeyFamily::Timestamp => {
                let year = self.rng.gen_range_inclusive(2000, 2037);
                let month = self.rng.gen_range_inclusive(1, 12);
                let day = self.rng.gen_range_inclusive(1, 28);
                let hour = self.rng.gen_range(24);
                let min = self.rng.gen_range(60);
                let sec = self.rng.gen_range(60);
                format!("{year:04}-{month:02}-{day:02}-{hour:02}-{min:02}-{sec:02}")
            }
            KeyFamily::EnglishVocabulary => {
                // Enumerate the prefix x root x suffix cross-product in an
                // order that mixes all three positions early, then extend
                // with a numeric generation counter once exhausted.
                let total = (PREFIXES.len() * ROOTS.len() * SUFFIXES.len()) as u64;
                let idx = n % total;
                let generation = n / total;
                let p = PREFIXES[(idx % PREFIXES.len() as u64) as usize];
                let r = ROOTS[((idx / PREFIXES.len() as u64) % ROOTS.len() as u64) as usize];
                let s = SUFFIXES
                    [((idx / (PREFIXES.len() * ROOTS.len()) as u64) % SUFFIXES.len() as u64)
                        as usize];
                if generation == 0 {
                    format!("{p}{r}{s}")
                } else {
                    format!("{p}{r}{s}{generation}")
                }
            }
            KeyFamily::SequentialNumbers => (SEQUENTIAL_START + n).to_string(),
        }
    }

    /// Generate `count` keys.
    pub fn take_keys(&mut self, count: usize) -> Vec<QosKey> {
        (0..count).map(|_| self.next_key()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn uuid_format() {
        let mut gen = KeyGenerator::new(KeyFamily::Uuid, 1);
        for _ in 0..100 {
            let k = gen.next_string();
            assert_eq!(k.len(), 36);
            let dash_positions: Vec<_> =
                k.char_indices().filter(|(_, c)| *c == '-').map(|(i, _)| i).collect();
            assert_eq!(dash_positions, vec![8, 13, 18, 23]);
            assert!(k
                .chars()
                .all(|c| c == '-' || c.is_ascii_hexdigit()));
        }
    }

    #[test]
    fn timestamp_format() {
        let mut gen = KeyGenerator::new(KeyFamily::Timestamp, 2);
        for _ in 0..100 {
            let k = gen.next_string();
            assert_eq!(k.len(), 19, "bad timestamp {k}");
            let parts: Vec<_> = k.split('-').collect();
            assert_eq!(parts.len(), 6);
            let year: u32 = parts[0].parse().unwrap();
            let month: u32 = parts[1].parse().unwrap();
            let day: u32 = parts[2].parse().unwrap();
            let hour: u32 = parts[3].parse().unwrap();
            assert!((2000..2038).contains(&year));
            assert!((1..=12).contains(&month));
            assert!((1..=28).contains(&day));
            assert!(hour < 24);
        }
    }

    #[test]
    fn sequential_matches_paper_range() {
        let mut gen = KeyGenerator::new(KeyFamily::SequentialNumbers, 0);
        assert_eq!(gen.next_string(), "1500000001");
        assert_eq!(gen.next_string(), "1500000002");
        // 500,000th key is 1500500000, exactly the paper's end of range.
        let mut gen = KeyGenerator::new(KeyFamily::SequentialNumbers, 0);
        let last = (0..500_000).map(|_| gen.next_string()).last().unwrap();
        assert_eq!(last, "1500500000");
    }

    #[test]
    fn english_words_look_like_words() {
        let mut gen = KeyGenerator::new(KeyFamily::EnglishVocabulary, 0);
        for _ in 0..1000 {
            let k = gen.next_string();
            assert!(!k.is_empty());
            assert!(k.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn english_words_unique_at_study_scale() {
        let mut gen = KeyGenerator::new(KeyFamily::EnglishVocabulary, 0);
        let mut seen = HashSet::new();
        for _ in 0..500_000 {
            assert!(seen.insert(gen.next_string()), "duplicate vocabulary key");
        }
    }

    #[test]
    fn deterministic_under_same_seed() {
        for family in KeyFamily::ALL {
            let a: Vec<_> = KeyGenerator::new(family, 42).take_keys(50);
            let b: Vec<_> = KeyGenerator::new(family, 42).take_keys(50);
            assert_eq!(a, b, "family {family:?} not deterministic");
        }
    }

    #[test]
    fn different_seeds_differ_for_random_families() {
        for family in [KeyFamily::Uuid, KeyFamily::Timestamp] {
            let a: Vec<_> = KeyGenerator::new(family, 1).take_keys(10);
            let b: Vec<_> = KeyGenerator::new(family, 2).take_keys(10);
            assert_ne!(a, b, "family {family:?} ignored the seed");
        }
    }

    #[test]
    fn uuids_unique_at_study_scale() {
        let mut gen = KeyGenerator::new(KeyFamily::Uuid, 7);
        let mut seen = HashSet::new();
        for _ in 0..100_000 {
            assert!(seen.insert(gen.next_string()), "UUID collision");
        }
    }

    #[test]
    fn labels_match_figure_legend() {
        assert_eq!(KeyFamily::Uuid.label(), "UUID");
        assert_eq!(KeyFamily::SequentialNumbers.label(), "Sequential Numbers");
    }
}
