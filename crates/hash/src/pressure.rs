//! Key-pressure analysis: how evenly routing spreads keys over servers.
//!
//! The paper defines *key pressure* as the percentage of the key population
//! a QoS server receives; with `N` servers a perfectly uniform router gives
//! every server `100/N` percent. Fig. 6 reports, for 500 000 keys of each
//! family routed across 20 servers, a minimum pressure of 4.933 %, a
//! maximum of 5.065 % and standard deviations below 0.03 %.

use crate::keygen::{KeyFamily, KeyGenerator};
use crate::routing::Router;

/// Distribution of one key population across the QoS-server fleet.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct KeyPressure {
    /// Key family the population was drawn from (None for ad-hoc key sets).
    pub family: Option<KeyFamily>,
    /// Number of keys routed.
    pub total_keys: usize,
    /// Keys received per server.
    pub per_server: Vec<usize>,
}

impl KeyPressure {
    /// Route `keys` strings through `router` and tally per-server counts.
    pub fn measure_strings<R: Router>(
        router: &R,
        keys: impl IntoIterator<Item = String>,
    ) -> Self {
        let mut per_server = vec![0usize; router.backends()];
        let mut total = 0usize;
        for key in keys {
            let k = janus_types::QosKey::new(&key).expect("valid key");
            per_server[router.route(&k)] += 1;
            total += 1;
        }
        KeyPressure {
            family: None,
            total_keys: total,
            per_server,
        }
    }

    /// Generate `count` keys of `family` (seeded) and measure their spread.
    pub fn measure_family<R: Router>(
        router: &R,
        family: KeyFamily,
        count: usize,
        seed: u64,
    ) -> Self {
        let mut gen = KeyGenerator::new(family, seed);
        let mut per_server = vec![0usize; router.backends()];
        for _ in 0..count {
            let key = gen.next_string();
            per_server[router_route_str(router, &key)] += 1;
        }
        KeyPressure {
            family: Some(family),
            total_keys: count,
            per_server,
        }
    }

    /// Pressure (fraction of the population) on each server, as percents.
    pub fn percentages(&self) -> Vec<f64> {
        self.per_server
            .iter()
            .map(|&c| 100.0 * c as f64 / self.total_keys.max(1) as f64)
            .collect()
    }

    /// Smallest per-server pressure, percent.
    pub fn min_percent(&self) -> f64 {
        self.percentages().into_iter().fold(f64::INFINITY, f64::min)
    }

    /// Largest per-server pressure, percent.
    pub fn max_percent(&self) -> f64 {
        self.percentages().into_iter().fold(0.0, f64::max)
    }

    /// Population standard deviation of per-server pressure, percent.
    pub fn stddev_percent(&self) -> f64 {
        let pct = self.percentages();
        let n = pct.len() as f64;
        let mean = pct.iter().sum::<f64>() / n;
        (pct.iter().map(|p| (p - mean).powi(2)).sum::<f64>() / n).sqrt()
    }

    /// The uniform ideal: `100 / servers` percent.
    pub fn ideal_percent(&self) -> f64 {
        100.0 / self.per_server.len() as f64
    }
}

fn router_route_str<R: Router>(router: &R, key: &str) -> usize {
    let k = janus_types::QosKey::new(key).expect("valid key");
    router.route(&k)
}

/// The full Fig. 6 study: all four families routed over one fleet.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct PressureReport {
    /// Number of QoS servers behind the router layer.
    pub servers: usize,
    /// Keys per family.
    pub keys_per_family: usize,
    /// One measurement per family, in [`KeyFamily::ALL`] order.
    pub measurements: Vec<KeyPressure>,
}

impl PressureReport {
    /// Run the study with the paper's parameters by default
    /// (`servers = 20`, `keys_per_family = 500_000`).
    pub fn run<R: Router>(router: &R, keys_per_family: usize, seed: u64) -> Self {
        let measurements = KeyFamily::ALL
            .iter()
            .map(|&family| KeyPressure::measure_family(router, family, keys_per_family, seed))
            .collect();
        PressureReport {
            servers: router.backends(),
            keys_per_family,
            measurements,
        }
    }

    /// Global minimum pressure across all families, percent.
    pub fn global_min_percent(&self) -> f64 {
        self.measurements
            .iter()
            .map(KeyPressure::min_percent)
            .fold(f64::INFINITY, f64::min)
    }

    /// Global maximum pressure across all families, percent.
    pub fn global_max_percent(&self) -> f64 {
        self.measurements
            .iter()
            .map(KeyPressure::max_percent)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::ModuloRouter;

    #[test]
    fn counts_sum_to_total() {
        let router = ModuloRouter::new(20);
        let p = KeyPressure::measure_family(&router, KeyFamily::Uuid, 10_000, 1);
        assert_eq!(p.per_server.iter().sum::<usize>(), 10_000);
        assert_eq!(p.per_server.len(), 20);
    }

    #[test]
    fn percentages_sum_to_100() {
        let router = ModuloRouter::new(20);
        let p = KeyPressure::measure_family(&router, KeyFamily::Timestamp, 5_000, 1);
        let sum: f64 = p.percentages().iter().sum();
        assert!((sum - 100.0).abs() < 1e-9);
    }

    /// The paper's Fig. 6 claim at reduced scale: pressure within ±0.5 % of
    /// the 5 % ideal for every family. (The full 500 k-key run lives in the
    /// fig6 bench binary.)
    #[test]
    fn all_families_near_uniform_on_20_servers() {
        let router = ModuloRouter::new(20);
        let report = PressureReport::run(&router, 50_000, 2018);
        for m in &report.measurements {
            let family = m.family.unwrap();
            assert!(
                m.min_percent() > 4.3,
                "{family:?} min pressure {}",
                m.min_percent()
            );
            assert!(
                m.max_percent() < 5.7,
                "{family:?} max pressure {}",
                m.max_percent()
            );
            assert!(
                m.stddev_percent() < 0.3,
                "{family:?} stddev {}",
                m.stddev_percent()
            );
        }
    }

    #[test]
    fn ideal_percent_is_uniform_share() {
        let router = ModuloRouter::new(20);
        let p = KeyPressure::measure_family(&router, KeyFamily::Uuid, 100, 1);
        assert!((p.ideal_percent() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn measure_strings_ad_hoc() {
        let router = ModuloRouter::new(2);
        let p = KeyPressure::measure_strings(
            &router,
            ["a", "b", "c", "d"].into_iter().map(String::from),
        );
        assert_eq!(p.total_keys, 4);
        assert_eq!(p.per_server.iter().sum::<usize>(), 4);
        assert!(p.family.is_none());
    }

    #[test]
    fn report_global_bounds_bracket_family_bounds() {
        let router = ModuloRouter::new(10);
        let report = PressureReport::run(&router, 10_000, 7);
        for m in &report.measurements {
            assert!(report.global_min_percent() <= m.min_percent() + 1e-12);
            assert!(report.global_max_percent() >= m.max_percent() - 1e-12);
        }
    }
}
