//! Back-end selection: which QoS server owns a key.
//!
//! The paper's algorithm (Fig. 2): `seed = CRC32(QoS key); n = mod(seed, N)`.
//! With a fixed number of QoS servers, requests with the same key are always
//! routed to the same server regardless of which router node computes the
//! hash — that is what makes the QoS-server layer a set of *independent*
//! partitions with no cross-node communication.
//!
//! [`ModuloRouter`] is that algorithm. [`ConsistentRing`] is the natural
//! extension for fleets whose size changes: it bounds the fraction of keys
//! that move when a server is added or removed, at the cost of slightly
//! less uniform spread. The paper keeps N fixed (failed servers are
//! *replaced*, not removed), so `ModuloRouter` is what the production path
//! uses.

use crate::crc32::crc32;
use janus_types::QosKey;

/// Index of a QoS server within the back-end fleet.
pub type RouteTarget = usize;

/// Anything that can map a QoS key to a back-end server index.
pub trait Router: Send + Sync {
    /// Number of back-end servers.
    fn backends(&self) -> usize;

    /// The server that owns `key`. Guaranteed `< backends()`.
    fn route(&self, key: &QosKey) -> RouteTarget;
}

/// The paper's `CRC32(key) mod N` partitioner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuloRouter {
    backends: usize,
}

impl ModuloRouter {
    /// A router over `backends` QoS servers.
    ///
    /// # Panics
    /// Panics if `backends` is zero — a Janus deployment always has at
    /// least one QoS server.
    pub fn new(backends: usize) -> Self {
        assert!(backends > 0, "router needs at least one backend");
        ModuloRouter { backends }
    }

    /// Route raw key bytes (used by the simulator, which skips `QosKey`
    /// construction on its hot path).
    pub fn route_bytes(&self, key: &[u8]) -> RouteTarget {
        (crc32(key) as usize) % self.backends
    }
}

impl Router for ModuloRouter {
    fn backends(&self) -> usize {
        self.backends
    }

    fn route(&self, key: &QosKey) -> RouteTarget {
        // The key caches its CRC32 at construction, so routing a QosKey
        // never re-hashes the text (`routing_matches_key_cache` pins the
        // two functions together).
        (key.crc32() as usize) % self.backends
    }
}

/// A consistent-hash ring with virtual nodes.
///
/// Each backend is placed on the ring at `vnodes` pseudo-random positions
/// (derived by hashing `backend_index:replica_index`); a key belongs to the
/// first backend clockwise from its hash. Adding or removing one backend
/// only remaps the keys in the arcs it owned (~`1/N` of the key space)
/// instead of the ~`(N-1)/N` a modulo router remaps.
#[derive(Debug, Clone)]
pub struct ConsistentRing {
    /// Ring points sorted by position: `(position, backend)`.
    points: Vec<(u32, RouteTarget)>,
    backends: usize,
}

impl ConsistentRing {
    /// Default virtual-node count: enough for <10% load imbalance at
    /// typical fleet sizes.
    pub const DEFAULT_VNODES: usize = 128;

    /// Ring over `backends` servers with [`Self::DEFAULT_VNODES`] virtual
    /// nodes each.
    pub fn new(backends: usize) -> Self {
        Self::with_vnodes(backends, Self::DEFAULT_VNODES)
    }

    /// Ring with an explicit virtual-node count per backend.
    ///
    /// # Panics
    /// Panics if `backends` or `vnodes` is zero.
    pub fn with_vnodes(backends: usize, vnodes: usize) -> Self {
        assert!(backends > 0, "ring needs at least one backend");
        assert!(vnodes > 0, "ring needs at least one vnode per backend");
        let mut points = Vec::with_capacity(backends * vnodes);
        for backend in 0..backends {
            for replica in 0..vnodes {
                let label = format!("{backend}:{replica}");
                points.push((crc32(label.as_bytes()), backend));
            }
        }
        // Ties (two labels hashing to the same u32) are broken by backend
        // index so the ring is deterministic regardless of insert order.
        points.sort_unstable();
        ConsistentRing { points, backends }
    }

    /// The ring position a key hashes to (exposed for tests/analysis).
    /// Reads the key's cached checksum — no re-hash.
    pub fn position_of(&self, key: &QosKey) -> u32 {
        key.crc32()
    }
}

impl Router for ConsistentRing {
    fn backends(&self) -> usize {
        self.backends
    }

    fn route(&self, key: &QosKey) -> RouteTarget {
        let pos = key.crc32();
        // First point at or after `pos`, wrapping to the start.
        let idx = self.points.partition_point(|&(p, _)| p < pos);
        let (_, backend) = self.points[idx % self.points.len()];
        backend
    }
}

/// Fraction of `keys` whose route changes when the fleet grows from
/// `router_a.backends()` to `router_b.backends()` servers. Used by the
/// routing ablation bench to contrast modulo vs consistent hashing.
pub fn remap_fraction<R: Router>(router_a: &R, router_b: &R, keys: &[QosKey]) -> f64 {
    if keys.is_empty() {
        return 0.0;
    }
    let moved = keys
        .iter()
        .filter(|k| router_a.route(k) != router_b.route(k))
        .count();
    moved as f64 / keys.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keygen::{KeyFamily, KeyGenerator};

    fn key(s: &str) -> QosKey {
        QosKey::new(s).unwrap()
    }

    #[test]
    fn modulo_route_matches_formula() {
        let router = ModuloRouter::new(20);
        let k = key("alice");
        assert_eq!(router.route(&k), (crc32(b"alice") as usize) % 20);
    }

    #[test]
    fn routing_matches_key_cache() {
        // Routers read `QosKey::crc32()` (cached at key construction) and
        // the simulator hashes raw bytes via `route_bytes`; both paths
        // must stay byte-identical or router nodes would disagree on key
        // ownership.
        let router = ModuloRouter::new(13);
        let ring = ConsistentRing::new(4);
        let mut gen = KeyGenerator::new(KeyFamily::Uuid, 11);
        for _ in 0..500 {
            let k = gen.next_key();
            assert_eq!(k.crc32(), crc32(k.as_bytes()));
            assert_eq!(router.route(&k), router.route_bytes(k.as_bytes()));
            assert_eq!(ring.position_of(&k), crc32(k.as_bytes()));
        }
    }

    #[test]
    fn modulo_is_deterministic_across_instances() {
        // Two router *nodes* must agree: same key -> same QoS server.
        let a = ModuloRouter::new(7);
        let b = ModuloRouter::new(7);
        for s in ["u1", "u2", "10.1.2.3", "x:y"] {
            assert_eq!(a.route(&key(s)), b.route(&key(s)));
        }
    }

    #[test]
    fn modulo_target_in_range() {
        let router = ModuloRouter::new(3);
        let mut gen = KeyGenerator::new(KeyFamily::Uuid, 42);
        for _ in 0..1000 {
            assert!(router.route(&gen.next_key()) < 3);
        }
    }

    #[test]
    #[should_panic(expected = "at least one backend")]
    fn zero_backends_panics() {
        ModuloRouter::new(0);
    }

    #[test]
    fn single_backend_gets_everything() {
        let router = ModuloRouter::new(1);
        assert_eq!(router.route(&key("anything")), 0);
    }

    #[test]
    fn ring_target_in_range() {
        let ring = ConsistentRing::new(5);
        let mut gen = KeyGenerator::new(KeyFamily::Timestamp, 1);
        for _ in 0..1000 {
            assert!(ring.route(&gen.next_key()) < 5);
        }
    }

    #[test]
    fn ring_is_deterministic() {
        let a = ConsistentRing::new(9);
        let b = ConsistentRing::new(9);
        let mut gen = KeyGenerator::new(KeyFamily::Uuid, 7);
        for _ in 0..500 {
            let k = gen.next_key();
            assert_eq!(a.route(&k), b.route(&k));
        }
    }

    #[test]
    fn ring_spread_is_reasonable() {
        let ring = ConsistentRing::new(10);
        let mut counts = [0usize; 10];
        let mut gen = KeyGenerator::new(KeyFamily::Uuid, 99);
        let n = 50_000;
        for _ in 0..n {
            counts[ring.route(&gen.next_key())] += 1;
        }
        let expected = n / 10;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                c > expected / 2 && c < expected * 2,
                "backend {i} got {c} of {n}"
            );
        }
    }

    #[test]
    fn modulo_remaps_most_keys_on_resize() {
        let before = ModuloRouter::new(10);
        let after = ModuloRouter::new(11);
        let mut gen = KeyGenerator::new(KeyFamily::Uuid, 3);
        let keys: Vec<_> = (0..5000).map(|_| gen.next_key()).collect();
        let frac = remap_fraction(&before, &after, &keys);
        assert!(frac > 0.8, "modulo remapped only {frac:.3}");
    }

    #[test]
    fn ring_remaps_few_keys_on_resize() {
        let before = ConsistentRing::new(10);
        let after = ConsistentRing::new(11);
        let mut gen = KeyGenerator::new(KeyFamily::Uuid, 3);
        let keys: Vec<_> = (0..5000).map(|_| gen.next_key()).collect();
        let frac = remap_fraction(&before, &after, &keys);
        // Ideal is 1/11 ≈ 0.09; allow slack for vnode placement noise.
        assert!(frac < 0.25, "ring remapped {frac:.3}");
    }

    #[test]
    fn remap_fraction_of_identity_is_zero() {
        let router = ModuloRouter::new(4);
        let keys = vec![key("a"), key("b")];
        assert_eq!(remap_fraction(&router, &router.clone(), &keys), 0.0);
        assert_eq!(remap_fraction(&router, &router.clone(), &[]), 0.0);
    }
}
