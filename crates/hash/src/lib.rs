#![warn(missing_docs)]
//! Request-routing hash layer for Janus.
//!
//! The request router segregates QoS requests into independent partitions:
//! `server = CRC32(key) mod N` (paper, Fig. 2). This crate provides:
//!
//! * [`crc32`](mod@crc32) — the 32-bit IEEE cyclic redundancy checksum, implemented
//!   from scratch (bitwise reference, Sarwate table, and slicing-by-8 for
//!   the hot path).
//! * [`routing`] — the mod-N partitioner used by the router layer, plus a
//!   consistent-hash ring as the natural extension for resizable QoS
//!   server fleets (§IV of DESIGN.md, ablation 5).
//! * [`keygen`] — generators for the four key families of the paper's
//!   key-pressure study (Fig. 6): random UUIDs, date-time strings, English
//!   vocabulary words, and sequential numbers.
//! * [`pressure`] — the key-pressure analysis itself: the fraction of the
//!   key population each QoS server receives.

pub mod crc32;
pub mod keygen;
pub mod pressure;
pub mod rng;
pub mod routing;

pub use crc32::{crc32, Crc32};
pub use keygen::{KeyFamily, KeyGenerator};
pub use pressure::{KeyPressure, PressureReport};
pub use rng::{mix64, Rng, SplitMix64};
pub use routing::{ConsistentRing, ModuloRouter, RouteTarget, Router};
