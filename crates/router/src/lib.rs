#![warn(missing_docs)]
//! The request router layer (paper §II-B, §III-B).
//!
//! A request router is a *stateless* web application: it accepts QoS
//! requests over HTTP (`GET /qos?key=<qos-key>`), picks the owning QoS
//! server with `CRC32(key) mod N`, forwards the request over UDP with the
//! 100 µs × 5-retry discipline, and relays the verdict. If every retry is
//! lost it returns a configurable **default reply** instead of an error —
//! admission control must answer quickly even when a partition is sick.
//!
//! Statelessness is the point: any router node computes the same hash, so
//! the fleet scales out by just adding nodes behind the load balancer, and
//! a router can be killed at any time without losing QoS state.
//!
//! Back ends are identified by DNS names resolved through the
//! [`janus_net::dns`] substrate ("the request router identifies the QoS
//! server nodes in the back end via their DNS names"), which is how
//! master→slave failover reaches routers without reconfiguration; direct
//! socket addresses are also accepted for simple deployments.

use janus_hash::{ModuloRouter, Router as _};
use janus_net::dns::Resolver;
use janus_net::fault::FaultPlan;
use janus_net::http::{HttpHandler, HttpRequest, HttpResponse, HttpServer, StatusCode};
use janus_net::udp::{UdpRpcClient, UdpRpcConfig};
use janus_net::udp_pool::{BatchConfig, PooledUdpRpcClient};
use janus_types::{JanusError, QosKey, QosRequest, Result, Verdict};
use std::future::Future;
use std::net::SocketAddr;
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How the router addresses one QoS server partition.
#[derive(Debug, Clone)]
pub enum Backend {
    /// A fixed socket address.
    Direct(SocketAddr),
    /// A DNS name (e.g. `qos-3.janus.internal`) resolved per request
    /// through the router's TTL-caching resolver. Used for HA pairs.
    Named(String),
}

impl From<SocketAddr> for Backend {
    fn from(addr: SocketAddr) -> Backend {
        Backend::Direct(addr)
    }
}

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// The QoS server fleet, in partition order. The fleet size N is
    /// baked into the hash, so all routers must agree on this list.
    pub backends: Vec<Backend>,
    /// UDP retry discipline (paper: 100 µs × 5 retries).
    pub udp: UdpRpcConfig,
    /// The verdict to return when the QoS server never answers.
    /// Fail-open (`Allow`) favours availability; fail-closed (`Deny`)
    /// favours protection. The paper leaves the "default reply"
    /// unspecified, so it is explicit configuration here.
    pub default_verdict: Verdict,
    /// Use one shared UDP socket with response demultiplexing instead of
    /// the paper's PHP-style socket-per-request (an optimization
    /// ablation; see `janus_net::udp_pool`). Default: false, the
    /// faithful discipline.
    pub pooled_rpc: bool,
    /// With `pooled_rpc`, coalesce concurrent requests headed to the
    /// same QoS server into one batched datagram (size-or-deadline
    /// trigger; see [`BatchConfig`]). Ignored for the per-request
    /// client, which stays on the paper's single-frame wire format.
    pub batching: bool,
}

impl RouterConfig {
    /// A config for a fixed fleet of direct addresses with LAN-friendly
    /// retry timing and a fail-open default.
    pub fn direct(backends: impl IntoIterator<Item = SocketAddr>) -> Self {
        RouterConfig {
            backends: backends.into_iter().map(Backend::Direct).collect(),
            udp: UdpRpcConfig::lan_defaults(),
            default_verdict: Verdict::Allow,
            pooled_rpc: false,
            batching: true,
        }
    }
}

/// Counters exported by a router node.
#[derive(Debug, Default)]
pub struct RouterStats {
    /// QoS requests served over HTTP.
    pub served: AtomicU64,
    /// Requests answered by the QoS server.
    pub forwarded_ok: AtomicU64,
    /// Requests that exhausted the retry budget and got the default reply.
    pub defaulted: AtomicU64,
    /// Malformed HTTP requests rejected.
    pub bad_requests: AtomicU64,
}

/// A running request-router node.
pub struct RequestRouter {
    http: HttpServer,
    stats: Arc<RouterStats>,
    partitions: usize,
}

enum RpcBackend {
    /// A fresh socket per request (the paper's PHP router).
    PerRequest(UdpRpcClient),
    /// One shared socket, demultiplexed by request id.
    Pooled(PooledUdpRpcClient),
}

struct RouterHandler {
    hash: ModuloRouter,
    backends: Vec<Backend>,
    resolver: Option<Arc<Resolver>>,
    rpc: RpcBackend,
    default_verdict: Verdict,
    stats: Arc<RouterStats>,
    next_id: AtomicU64,
}

impl RouterHandler {
    async fn qos_check(&self, key: QosKey) -> Result<Verdict> {
        let partition = self.hash.route(&key);
        let addr = match &self.backends[partition] {
            Backend::Direct(addr) => *addr,
            Backend::Named(name) => match &self.resolver {
                Some(resolver) => resolver.resolve_one(name)?,
                None => {
                    return Err(JanusError::config(format!(
                        "backend {name:?} is a DNS name but the router has no resolver"
                    )))
                }
            },
        };
        let response = match &self.rpc {
            RpcBackend::PerRequest(rpc) => {
                let id = self.next_id.fetch_add(1, Ordering::Relaxed);
                rpc.call(addr, &QosRequest::new(id, key)).await?
            }
            RpcBackend::Pooled(pool) => pool.check(addr, key).await?,
        };
        Ok(response.verdict)
    }
}

impl HttpHandler for RouterHandler {
    fn handle(
        &self,
        request: HttpRequest,
        _peer: SocketAddr,
    ) -> Pin<Box<dyn Future<Output = HttpResponse> + Send + '_>> {
        Box::pin(async move {
            self.stats.served.fetch_add(1, Ordering::Relaxed);
            match request.path() {
                "/qos" => {
                    let Some(key) = request.query_param("key") else {
                        self.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
                        return HttpResponse::status(StatusCode::BAD_REQUEST);
                    };
                    let Ok(key) = QosKey::new(&key) else {
                        self.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
                        return HttpResponse::status(StatusCode::BAD_REQUEST);
                    };
                    let verdict = match self.qos_check(key).await {
                        Ok(verdict) => {
                            self.stats.forwarded_ok.fetch_add(1, Ordering::Relaxed);
                            verdict
                        }
                        Err(_) => {
                            // Retry budget exhausted (or resolution
                            // failed): the default reply keeps the client
                            // unblocked (paper §III-B).
                            self.stats.defaulted.fetch_add(1, Ordering::Relaxed);
                            self.default_verdict
                        }
                    };
                    HttpResponse::ok(verdict.to_string())
                }
                "/healthz" => HttpResponse::ok("ok"),
                _ => {
                    self.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
                    HttpResponse::status(StatusCode::NOT_FOUND)
                }
            }
        })
    }
}

impl RequestRouter {
    /// Spawn a router node. `resolver` is required iff any backend is
    /// [`Backend::Named`].
    pub async fn spawn(
        config: RouterConfig,
        resolver: Option<Arc<Resolver>>,
    ) -> Result<RequestRouter> {
        if config.backends.is_empty() {
            return Err(JanusError::config("router needs at least one backend"));
        }
        if resolver.is_none()
            && config
                .backends
                .iter()
                .any(|b| matches!(b, Backend::Named(_)))
        {
            return Err(JanusError::config(
                "named backends require a resolver",
            ));
        }
        let stats = Arc::new(RouterStats::default());
        let partitions = config.backends.len();
        let rpc = if config.pooled_rpc {
            let batch = if config.batching {
                BatchConfig::default()
            } else {
                BatchConfig::disabled()
            };
            RpcBackend::Pooled(
                PooledUdpRpcClient::bind_with_batch(config.udp, batch, FaultPlan::none())
                    .await?,
            )
        } else {
            RpcBackend::PerRequest(UdpRpcClient::new(config.udp))
        };
        let handler = Arc::new(RouterHandler {
            hash: ModuloRouter::new(partitions),
            backends: config.backends,
            resolver,
            rpc,
            default_verdict: config.default_verdict,
            stats: Arc::clone(&stats),
            next_id: AtomicU64::new(rand_seed()),
        });
        let http = HttpServer::spawn(handler).await?;
        Ok(RequestRouter {
            http,
            stats,
            partitions,
        })
    }

    /// The HTTP address clients (or the gateway LB) talk to.
    pub fn addr(&self) -> SocketAddr {
        self.http.addr()
    }

    /// Number of QoS-server partitions this router hashes over.
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// Counters.
    pub fn stats(&self) -> &Arc<RouterStats> {
        &self.stats
    }

    /// Stop accepting requests.
    pub fn shutdown(&self) {
        self.http.shutdown();
    }
}

/// Seed request ids from the router's identity so two router nodes never
/// reuse the same id space (ids only need per-socket uniqueness, but
/// distinct spaces make debugging traces unambiguous).
fn rand_seed() -> u64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64)
        .unwrap_or(0);
    (std::process::id() as u64) << 32 | nanos
}

/// Build the HTTP request a QoS client sends for `key` (shared by the
/// client library and tests).
pub fn qos_http_request(key: &QosKey) -> HttpRequest {
    HttpRequest::get(format!(
        "/qos?key={}",
        janus_net::http::percent_encode(key.as_str())
    ))
}

/// Interpret a router HTTP response as a verdict.
pub fn parse_qos_response(response: &HttpResponse) -> Result<Verdict> {
    if response.status != StatusCode::OK {
        return Err(JanusError::http(format!(
            "router answered {}",
            response.status
        )));
    }
    match response.body_text().trim() {
        "TRUE" => Ok(Verdict::Allow),
        "FALSE" => Ok(Verdict::Deny),
        other => Err(JanusError::http(format!("bad verdict body {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_net::http::HttpClient;
    use janus_server::{QosServer, QosServerConfig};
    use janus_types::QosRule;

    fn key(s: &str) -> QosKey {
        QosKey::new(s).unwrap()
    }

    async fn standalone_server(rules: &[(&str, u64, u64)]) -> QosServer {
        let server = QosServer::spawn(
            QosServerConfig::test_defaults(),
            None,
            janus_clock::system(),
        )
        .await
        .unwrap();
        let now = server.clock().now();
        for (k, cap, rate) in rules {
            server
                .table()
                .insert(QosRule::per_second(key(k), *cap, *rate), now);
        }
        server
    }

    async fn check(client: &mut HttpClient, k: &str) -> Verdict {
        let resp = client.request(&qos_http_request(&key(k))).await.unwrap();
        parse_qos_response(&resp).unwrap()
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn routes_and_relays_verdicts() {
        let server = standalone_server(&[("alice", 2, 0)]).await;
        let router = RequestRouter::spawn(RouterConfig::direct([server.udp_addr()]), None)
            .await
            .unwrap();
        let mut client = HttpClient::connect(router.addr()).await.unwrap();
        assert_eq!(check(&mut client, "alice").await, Verdict::Allow);
        assert_eq!(check(&mut client, "alice").await, Verdict::Allow);
        assert_eq!(check(&mut client, "alice").await, Verdict::Deny);
        assert_eq!(router.stats().forwarded_ok.load(Ordering::Relaxed), 3);
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn partitions_requests_across_backends() {
        // Two QoS servers; keys should split between them per CRC32 mod 2,
        // and the same key must always hit the same server.
        let a = standalone_server(&[]).await;
        let b = standalone_server(&[]).await;
        // Both allow-all so every check succeeds regardless of partition.
        let mut config = QosServerConfig::test_defaults();
        config.default_policy = janus_bucket::DefaultRulePolicy::AllowAll;
        drop((a, b));
        let a = QosServer::spawn(config.clone(), None, janus_clock::system())
            .await
            .unwrap();
        let b = QosServer::spawn(config, None, janus_clock::system())
            .await
            .unwrap();
        let router =
            RequestRouter::spawn(RouterConfig::direct([a.udp_addr(), b.udp_addr()]), None)
                .await
                .unwrap();
        let mut client = HttpClient::connect(router.addr()).await.unwrap();
        for i in 0..40 {
            assert_eq!(check(&mut client, &format!("user-{i}")).await, Verdict::Allow);
        }
        let hash = ModuloRouter::new(2);
        let a_expected = (0..40)
            .filter(|i| hash.route(&key(&format!("user-{i}"))) == 0)
            .count() as u64;
        let a_stats = a.stats().answered.load(Ordering::Relaxed);
        let b_stats = b.stats().answered.load(Ordering::Relaxed);
        assert_eq!(a_stats, a_expected);
        assert_eq!(a_stats + b_stats, 40);
        assert!(a_stats > 0 && b_stats > 0, "one partition starved: {a_stats}/{b_stats}");
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn dead_backend_gets_default_reply() {
        // Router pointed at a dead UDP port: every request times out and
        // the default verdict is returned.
        let dead = tokio::net::UdpSocket::bind(("127.0.0.1", 0)).await.unwrap();
        let dead_addr = dead.local_addr().unwrap();
        drop(dead);
        let mut config = RouterConfig::direct([dead_addr]);
        config.udp = UdpRpcConfig {
            timeout: std::time::Duration::from_millis(1),
            max_retries: 2,
        };
        config.default_verdict = Verdict::Deny;
        let router = RequestRouter::spawn(config, None).await.unwrap();
        let mut client = HttpClient::connect(router.addr()).await.unwrap();
        assert_eq!(check(&mut client, "anyone").await, Verdict::Deny);
        assert_eq!(router.stats().defaulted.load(Ordering::Relaxed), 1);
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn named_backend_follows_dns_failover() {
        use janus_net::dns::{Resolver, Zone};
        let master = standalone_server(&[]).await;
        let mut config = QosServerConfig::test_defaults();
        config.default_policy = janus_bucket::DefaultRulePolicy::AllowAll;
        let slave = QosServer::spawn(config, None, janus_clock::system())
            .await
            .unwrap();

        let zone = Zone::new();
        zone.insert_failover(
            "qos-0.janus",
            master.udp_addr(),
            Some(slave.udp_addr()),
            std::time::Duration::ZERO, // no client caching: failover is instant
        );
        let resolver = Arc::new(Resolver::new(Arc::clone(&zone), janus_clock::system()));

        let mut rconfig = RouterConfig::direct([]);
        rconfig.backends = vec![Backend::Named("qos-0.janus".into())];
        rconfig.default_verdict = Verdict::Deny;
        let router = RequestRouter::spawn(rconfig, Some(resolver)).await.unwrap();
        let mut client = HttpClient::connect(router.addr()).await.unwrap();

        // Master denies unknown keys (Deny policy); slave allows all.
        assert_eq!(check(&mut client, "probe").await, Verdict::Deny);
        zone.promote_standby("qos-0.janus").unwrap();
        assert_eq!(check(&mut client, "probe").await, Verdict::Allow);
    }

    #[tokio::test]
    async fn rejects_bad_requests() {
        let server = standalone_server(&[]).await;
        let router = RequestRouter::spawn(RouterConfig::direct([server.udp_addr()]), None)
            .await
            .unwrap();
        let mut client = HttpClient::connect(router.addr()).await.unwrap();
        let resp = client.request(&HttpRequest::get("/qos")).await.unwrap();
        assert_eq!(resp.status, StatusCode::BAD_REQUEST);
        let resp = client
            .request(&HttpRequest::get("/nonsense"))
            .await
            .unwrap();
        assert_eq!(resp.status, StatusCode::NOT_FOUND);
        assert_eq!(router.stats().bad_requests.load(Ordering::Relaxed), 2);
    }

    #[tokio::test]
    async fn health_endpoint() {
        let server = standalone_server(&[]).await;
        let router = RequestRouter::spawn(RouterConfig::direct([server.udp_addr()]), None)
            .await
            .unwrap();
        let resp = HttpClient::oneshot(router.addr(), &HttpRequest::get("/healthz"))
            .await
            .unwrap();
        assert_eq!(resp.body_text(), "ok");
    }

    #[tokio::test]
    async fn config_validation() {
        assert!(RequestRouter::spawn(RouterConfig::direct([]), None)
            .await
            .is_err());
        let mut config = RouterConfig::direct([]);
        config.backends = vec![Backend::Named("x".into())];
        assert!(RequestRouter::spawn(config, None).await.is_err());
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn pooled_rpc_mode_routes_identically() {
        let server = standalone_server(&[("pooled", 3, 0)]).await;
        let mut config = RouterConfig::direct([server.udp_addr()]);
        config.pooled_rpc = true;
        let router = RequestRouter::spawn(config, None).await.unwrap();
        let mut client = HttpClient::connect(router.addr()).await.unwrap();
        assert_eq!(check(&mut client, "pooled").await, Verdict::Allow);
        assert_eq!(check(&mut client, "pooled").await, Verdict::Allow);
        assert_eq!(check(&mut client, "pooled").await, Verdict::Allow);
        assert_eq!(check(&mut client, "pooled").await, Verdict::Deny);
        assert_eq!(router.stats().forwarded_ok.load(Ordering::Relaxed), 4);
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn pooled_unbatched_ablation_routes_identically() {
        // The paper-faithful single-frame wire format must remain
        // selectable underneath the pooled client.
        let server = standalone_server(&[("plain", 2, 0)]).await;
        let mut config = RouterConfig::direct([server.udp_addr()]);
        config.pooled_rpc = true;
        config.batching = false;
        let router = RequestRouter::spawn(config, None).await.unwrap();
        let mut client = HttpClient::connect(router.addr()).await.unwrap();
        assert_eq!(check(&mut client, "plain").await, Verdict::Allow);
        assert_eq!(check(&mut client, "plain").await, Verdict::Allow);
        assert_eq!(check(&mut client, "plain").await, Verdict::Deny);
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn keys_with_special_characters_roundtrip() {
        let server = standalone_server(&[("a b&c=d", 1, 0)]).await;
        let router = RequestRouter::spawn(RouterConfig::direct([server.udp_addr()]), None)
            .await
            .unwrap();
        let mut client = HttpClient::connect(router.addr()).await.unwrap();
        assert_eq!(check(&mut client, "a b&c=d").await, Verdict::Allow);
        assert_eq!(check(&mut client, "a b&c=d").await, Verdict::Deny);
    }
}
