#![warn(missing_docs)]
//! The request router layer (paper §II-B, §III-B).
//!
//! A request router is a *stateless* web application: it accepts QoS
//! requests over HTTP (`GET /qos?key=<qos-key>`), picks the owning QoS
//! server with `CRC32(key) mod N`, forwards the request over UDP with the
//! 100 µs × 5-retry discipline, and relays the verdict. If every retry is
//! lost it returns a configurable **default reply** instead of an error —
//! admission control must answer quickly even when a partition is sick.
//!
//! Statelessness is the point: any router node computes the same hash, so
//! the fleet scales out by just adding nodes behind the load balancer, and
//! a router can be killed at any time without losing QoS state.
//!
//! Back ends are identified by DNS names resolved through the
//! [`janus_net::dns`] substrate ("the request router identifies the QoS
//! server nodes in the back end via their DNS names"), which is how
//! master→slave failover reaches routers without reconfiguration; direct
//! socket addresses are also accepted for simple deployments.

use crate::core::{
    GrayConfig, LeaseEvent, LocalAnswer, RouterCore, RouterCoreConfig, RouterLeaseConfig,
    RouterStep,
};
use janus_clock::SharedClock;
use janus_net::breaker::{BreakerConfig, BreakerState};
use janus_net::dns::Resolver;
use janus_net::fault::FaultPlan;
use janus_net::http::{HttpHandler, HttpRequest, HttpResponse, HttpServer, StatusCode};
use janus_net::udp::{UdpRpcClient, UdpRpcConfig};
use janus_net::udp_pool::{BatchConfig, PooledUdpRpcClient};
use janus_types::{JanusError, QosKey, QosRequest, QosResponse, Result, Verdict};
use std::future::Future;
use std::net::SocketAddr;
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

pub mod core;

/// How the router addresses one QoS server partition.
#[derive(Debug, Clone)]
pub enum Backend {
    /// A fixed socket address.
    Direct(SocketAddr),
    /// A DNS name (e.g. `qos-3.janus.internal`) resolved per request
    /// through the router's TTL-caching resolver. Used for HA pairs.
    Named(String),
}

impl From<SocketAddr> for Backend {
    fn from(addr: SocketAddr) -> Backend {
        Backend::Direct(addr)
    }
}

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// The QoS server fleet, in partition order. The fleet size N is
    /// baked into the hash, so all routers must agree on this list.
    pub backends: Vec<Backend>,
    /// UDP retry discipline (paper: 100 µs × 5 retries).
    pub udp: UdpRpcConfig,
    /// The verdict to return when the QoS server never answers.
    /// Fail-open (`Allow`) favours availability; fail-closed (`Deny`)
    /// favours protection. The paper leaves the "default reply"
    /// unspecified, so it is explicit configuration here.
    pub default_verdict: Verdict,
    /// Use one shared UDP socket with response demultiplexing instead of
    /// the paper's PHP-style socket-per-request (an optimization
    /// ablation; see `janus_net::udp_pool`). Default: false, the
    /// faithful discipline.
    pub pooled_rpc: bool,
    /// With `pooled_rpc`, coalesce concurrent requests headed to the
    /// same QoS server into one batched datagram (size-or-deadline
    /// trigger; see [`BatchConfig`]). Ignored for the per-request
    /// client, which stays on the paper's single-frame wire format.
    pub batching: bool,
    /// Per-partition circuit breaking plus degraded local admission.
    /// While a partition's breaker is open the router answers its keys
    /// from a local leaky bucket seeded by rule hints learned from the
    /// QoS server (scaled by `fleet_size`), instead of burning the full
    /// retry budget per request. `None` is the paper-faithful ablation:
    /// no breakers, no hint soliciting, default reply on every timeout.
    pub breaker: Option<BreakerConfig>,
    /// How many router nodes share admission duty. Degraded local
    /// buckets enforce `1/fleet_size` of a hinted rule so the fleet
    /// jointly approximates the purchased rate. Clamped to at least 1.
    pub fleet_size: usize,
    /// Propagate the end-to-end deadline: stamp every UDP attempt with
    /// the remaining retry budget and a per-logical-request nonce (see
    /// [`UdpRpcConfig::stamp_deadlines`], which this flag turns on), so
    /// the QoS server can shed work this router has already given up on
    /// and answer duplicate attempts from a cached verdict instead of
    /// charging the bucket twice. Safe against old servers — the final
    /// attempt always falls back to the legacy frame.
    pub deadline_propagation: bool,
    /// Participate in credit leases (DESIGN.md ablation 13): solicit
    /// short-TTL slices of hot keys from the QoS server and admit them
    /// from a router-local bucket with zero network I/O, renewing
    /// proactively and reconciling spend asynchronously. Safe against
    /// old servers — they drop the lease frame kind and retries fall
    /// back to the lease-free encoding.
    pub lease: bool,
    /// Gray-failure resistance (DESIGN.md ablation 15): per-partition
    /// adaptive attempt timeouts, credit-safe same-nonce hedging, and a
    /// node-global retry budget. `None` (the default) keeps the paper's
    /// fixed wire discipline byte-for-byte.
    pub gray: Option<GrayConfig>,
}

impl RouterConfig {
    /// A config for a fixed fleet of direct addresses with LAN-friendly
    /// retry timing, a fail-open default, and brownout protection on.
    pub fn direct(backends: impl IntoIterator<Item = SocketAddr>) -> Self {
        RouterConfig {
            backends: backends.into_iter().map(Backend::Direct).collect(),
            udp: UdpRpcConfig::lan_defaults(),
            default_verdict: Verdict::Allow,
            pooled_rpc: false,
            batching: true,
            breaker: Some(BreakerConfig::default()),
            fleet_size: 1,
            deadline_propagation: true,
            lease: false,
            gray: None,
        }
    }
}

/// Counters exported by a router node.
#[derive(Debug, Default)]
pub struct RouterStats {
    /// QoS requests served over HTTP.
    pub served: AtomicU64,
    /// Requests answered by the QoS server.
    pub forwarded_ok: AtomicU64,
    /// Requests that exhausted the retry budget and got the default reply.
    pub defaulted: AtomicU64,
    /// Malformed HTTP requests rejected.
    pub bad_requests: AtomicU64,
    /// Requests answered without touching the network because the
    /// partition's breaker was open.
    pub breaker_fast_fails: AtomicU64,
    /// Degraded local admissions that allowed the request.
    pub degraded_allowed: AtomicU64,
    /// Degraded local admissions that denied the request.
    pub degraded_denied: AtomicU64,
    /// Rule hints learned (first sightings and shape changes).
    pub hints_learned: AtomicU64,
    /// Requests admitted from a held credit lease — zero network I/O.
    pub lease_admits: AtomicU64,
    /// Lease renewals installed (same-epoch re-grants).
    pub lease_renewals: AtomicU64,
    /// Held leases superseded by an epoch bump (server-side revocation).
    pub lease_revocations: AtomicU64,
    /// Hedged (second in-flight, same-nonce) attempts put on the wire.
    pub hedges_sent: AtomicU64,
    /// Hedged attempts answered after the hedge fired — the window in
    /// which the duplicate could have been the copy that won.
    pub hedge_wins: AtomicU64,
    /// Retries or hedges refused because the global retry budget was dry.
    pub retry_budget_exhausted: AtomicU64,
    /// Latest adaptively-derived per-attempt timeout, µs (gauge; 0 until
    /// the adaptive mode first engages).
    pub adaptive_timeout_us: AtomicU64,
}

/// A running request-router node.
pub struct RequestRouter {
    http: HttpServer,
    stats: Arc<RouterStats>,
    partitions: usize,
    handler: Arc<RouterHandler>,
}

enum RpcBackend {
    /// A fresh socket per request (the paper's PHP router).
    PerRequest(UdpRpcClient),
    /// One shared socket, demultiplexed by request id.
    Pooled(PooledUdpRpcClient),
}

struct RouterHandler {
    /// The sans-IO decision core: partition hashing, breakers, learned
    /// hints and degraded buckets. The handler owns only the I/O halves —
    /// resolution, the RPC transport, stats attribution.
    core: RouterCore,
    backends: Vec<Backend>,
    resolver: Option<Arc<Resolver>>,
    rpc: RpcBackend,
    stats: Arc<RouterStats>,
    next_id: AtomicU64,
    clock: SharedClock,
    /// The transport's configured fixed timeout — the baseline the
    /// core's adaptive policy falls back to while warming up.
    baseline_timeout: std::time::Duration,
}

/// How a verdict was produced, for stats attribution.
enum Served {
    /// The owning QoS server answered.
    Backend(Verdict),
    /// A held credit lease admitted the request locally (always Allow).
    Leased,
    /// The partition is browned out; a router-local bucket answered.
    Degraded(Verdict),
    /// No backend answer and no learned rule: the configured default.
    Default,
}

impl RouterHandler {
    fn resolve(&self, partition: usize) -> Result<SocketAddr> {
        match &self.backends[partition] {
            Backend::Direct(addr) => Ok(*addr),
            Backend::Named(name) => match &self.resolver {
                Some(resolver) => resolver.resolve_one(name),
                None => Err(JanusError::config(format!(
                    "backend {name:?} is a DNS name but the router has no resolver"
                ))),
            },
        }
    }

    async fn qos_check(&self, key: QosKey) -> Served {
        let (partition, solicit_hint, lease_ask) = match self.core.begin(&key, self.clock.now()) {
            RouterStep::LeaseAdmit { .. } => {
                self.stats.lease_admits.fetch_add(1, Ordering::Relaxed);
                return Served::Leased;
            }
            RouterStep::FastFail { answer, .. } => {
                self.stats
                    .breaker_fast_fails
                    .fetch_add(1, Ordering::Relaxed);
                return self.serve_local(answer);
            }
            RouterStep::Forward {
                partition,
                solicit_hint,
                lease_ask,
            } => (partition, solicit_hint, lease_ask),
        };
        let result = match self.resolve(partition) {
            Ok(addr) => {
                self.call_backend(addr, partition, &key, solicit_hint, lease_ask)
                    .await
            }
            Err(e) => Err(e),
        };
        self.mirror_gray_stats();
        match result {
            Ok(response) => {
                let outcome = self
                    .core
                    .on_response(partition, &key, &response, self.clock.now());
                if outcome.hint_learned {
                    self.stats.hints_learned.fetch_add(1, Ordering::Relaxed);
                }
                match outcome.lease {
                    Some(LeaseEvent::Renewed) => {
                        self.stats.lease_renewals.fetch_add(1, Ordering::Relaxed);
                    }
                    Some(LeaseEvent::Revoked) => {
                        self.stats.lease_revocations.fetch_add(1, Ordering::Relaxed);
                    }
                    Some(LeaseEvent::Granted) | None => {}
                }
                Served::Backend(response.verdict)
            }
            Err(_) => match self.core.on_failure(partition, &key, self.clock.now()) {
                Some(answer) => self.serve_local(answer),
                None => Served::Default,
            },
        }
    }

    /// Attribute a core-produced local answer to the right counters.
    fn serve_local(&self, answer: LocalAnswer) -> Served {
        match answer {
            LocalAnswer::Degraded(verdict) => {
                match verdict {
                    Verdict::Allow => self.stats.degraded_allowed.fetch_add(1, Ordering::Relaxed),
                    Verdict::Deny => self.stats.degraded_denied.fetch_add(1, Ordering::Relaxed),
                };
                Served::Degraded(verdict)
            }
            LocalAnswer::Default(_) => Served::Default,
        }
    }

    /// One UDP exchange. With breakers on, the first attempt solicits a
    /// rule hint; with leases on, it piggybacks the lease report from
    /// the core (retries inside the client fall back to the plain
    /// frame, so hint- and lease-unaware servers cost at most one
    /// attempt). The wire discipline (adaptive timeout, hedge delay,
    /// retry budget, RTT recording) comes from the core per partition;
    /// with the gray plane off it is the all-`None` no-op and both
    /// transports reproduce the legacy byte-for-byte behaviour.
    async fn call_backend(
        &self,
        addr: SocketAddr,
        partition: usize,
        key: &QosKey,
        solicit: bool,
        lease_ask: Option<janus_types::LeaseReport>,
    ) -> Result<QosResponse> {
        let discipline = self.core.discipline(partition, self.baseline_timeout);
        match &self.rpc {
            RpcBackend::PerRequest(rpc) => {
                let id = self.next_id.fetch_add(1, Ordering::Relaxed);
                let mut request = if solicit {
                    QosRequest::soliciting_hint(id, key.clone())
                } else {
                    QosRequest::new(id, key.clone())
                };
                if let Some(report) = lease_ask {
                    request = request.with_lease(report);
                }
                rpc.call_disciplined(addr, &request, &discipline).await
            }
            RpcBackend::Pooled(pool) => {
                pool.check_disciplined(addr, key.clone(), solicit, lease_ask, &discipline)
                    .await
            }
        }
    }

    /// Mirror the gray-plane counters into the exported [`RouterStats`].
    /// The live counters are shared with the transports via the
    /// discipline; this copies their current values (cheap, monotone),
    /// so the stats struct stays plain atomics.
    fn mirror_gray_stats(&self) {
        if !self.core.gray_enabled() {
            return;
        }
        let hedge = self.core.hedge_stats();
        self.stats
            .hedges_sent
            .store(hedge.hedges_sent.load(Ordering::Relaxed), Ordering::Relaxed);
        self.stats
            .hedge_wins
            .store(hedge.hedge_wins.load(Ordering::Relaxed), Ordering::Relaxed);
        self.stats.adaptive_timeout_us.store(
            hedge.adaptive_timeout_us.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
        if let Some(budget) = self.core.retry_budget() {
            self.stats
                .retry_budget_exhausted
                .store(budget.exhausted(), Ordering::Relaxed);
        }
    }
}

impl HttpHandler for RouterHandler {
    fn handle(
        &self,
        request: HttpRequest,
        _peer: SocketAddr,
    ) -> Pin<Box<dyn Future<Output = HttpResponse> + Send + '_>> {
        Box::pin(async move {
            self.stats.served.fetch_add(1, Ordering::Relaxed);
            match request.path() {
                "/qos" => {
                    let Some(key) = request.query_param("key") else {
                        self.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
                        return HttpResponse::status(StatusCode::BAD_REQUEST);
                    };
                    let Ok(key) = QosKey::new(&key) else {
                        self.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
                        return HttpResponse::status(StatusCode::BAD_REQUEST);
                    };
                    let verdict = match self.qos_check(key).await {
                        Served::Backend(verdict) => {
                            self.stats.forwarded_ok.fetch_add(1, Ordering::Relaxed);
                            verdict
                        }
                        // The lease admit was counted in qos_check; a
                        // held slice only ever admits.
                        Served::Leased => Verdict::Allow,
                        // Degraded counters were recorded at the bucket.
                        Served::Degraded(verdict) => verdict,
                        Served::Default => {
                            // Retry budget exhausted (or resolution
                            // failed) and no learned rule: the default
                            // reply keeps the client unblocked (§III-B).
                            self.stats.defaulted.fetch_add(1, Ordering::Relaxed);
                            self.core.default_verdict()
                        }
                    };
                    HttpResponse::ok(verdict.to_string())
                }
                // Healthy while any partition is reachable; a node whose
                // every breaker is open serves nothing but defaults, so
                // it reports unhealthy and the LB drains it.
                "/healthz" => {
                    if self.core.all_breakers_open(self.clock.now()) {
                        HttpResponse::status(StatusCode::SERVICE_UNAVAILABLE)
                    } else {
                        HttpResponse::ok("ok")
                    }
                }
                _ => {
                    self.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
                    HttpResponse::status(StatusCode::NOT_FOUND)
                }
            }
        })
    }
}

impl RequestRouter {
    /// Spawn a router node. `resolver` is required iff any backend is
    /// [`Backend::Named`].
    pub async fn spawn(
        config: RouterConfig,
        resolver: Option<Arc<Resolver>>,
    ) -> Result<RequestRouter> {
        if config.backends.is_empty() {
            return Err(JanusError::config("router needs at least one backend"));
        }
        if resolver.is_none()
            && config
                .backends
                .iter()
                .any(|b| matches!(b, Backend::Named(_)))
        {
            return Err(JanusError::config("named backends require a resolver"));
        }
        let stats = Arc::new(RouterStats::default());
        let partitions = config.backends.len();
        let mut udp = config.udp;
        udp.stamp_deadlines |= config.deadline_propagation;
        // Hedging re-presents an attempt nonce, which only the stamped
        // frame carries; the discipline degrades gracefully without it,
        // but a gray config almost certainly wants deadline propagation.
        udp.stamp_deadlines |= config.gray.is_some();
        let baseline_timeout = udp.timeout;
        let rpc = if config.pooled_rpc {
            let batch = if config.batching {
                BatchConfig::default()
            } else {
                BatchConfig::disabled()
            };
            RpcBackend::Pooled(
                PooledUdpRpcClient::bind_with_batch(udp, batch, FaultPlan::none()).await?,
            )
        } else {
            RpcBackend::PerRequest(UdpRpcClient::new(udp))
        };
        let handler = Arc::new(RouterHandler {
            core: RouterCore::new(RouterCoreConfig {
                partitions,
                default_verdict: config.default_verdict,
                fleet_size: config.fleet_size,
                breaker: config.breaker,
                // Holder identity only has to be stable for this node's
                // lifetime and unlikely to collide within the fleet.
                lease: config
                    .lease
                    .then(|| RouterLeaseConfig::new(rand_seed() as u32)),
                gray: config.gray,
            }),
            backends: config.backends,
            resolver,
            rpc,
            stats: Arc::clone(&stats),
            next_id: AtomicU64::new(rand_seed()),
            clock: janus_clock::system(),
            baseline_timeout,
        });
        let http = HttpServer::spawn(Arc::clone(&handler)).await?;
        Ok(RequestRouter {
            http,
            stats,
            partitions,
            handler,
        })
    }

    /// The HTTP address clients (or the gateway LB) talk to.
    pub fn addr(&self) -> SocketAddr {
        self.http.addr()
    }

    /// Number of QoS-server partitions this router hashes over.
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// Counters.
    pub fn stats(&self) -> &Arc<RouterStats> {
        &self.stats
    }

    /// Breaker state for `partition`; `None` when breakers are disabled
    /// or the partition index is out of range.
    pub fn breaker_state(&self, partition: usize) -> Option<BreakerState> {
        self.handler
            .core
            .breaker_state(partition, self.handler.clock.now())
    }

    /// Times `partition`'s breaker has tripped open; `None` as above.
    pub fn breaker_opens(&self, partition: usize) -> Option<u64> {
        self.handler.core.breaker_opens(partition)
    }

    /// True when every partition's breaker is currently open (the
    /// condition under which `/healthz` reports 503).
    pub fn all_breakers_open(&self) -> bool {
        self.handler
            .core
            .all_breakers_open(self.handler.clock.now())
    }

    /// Keys with a learned rule hint (diagnostics).
    pub fn hinted_keys(&self) -> usize {
        self.handler.core.hinted_keys()
    }

    /// Keys currently holding a live credit lease (diagnostics).
    pub fn leased_keys(&self) -> usize {
        self.handler.core.leased_keys()
    }

    /// Stop accepting requests.
    pub fn shutdown(&self) {
        self.http.shutdown();
    }
}

/// Seed request ids from the router's identity so two router nodes never
/// reuse the same id space (ids only need per-socket uniqueness, but
/// distinct spaces make debugging traces unambiguous).
///
/// Mixing in a process-global spawn counter guarantees distinct seeds for
/// routers created inside one process (a whole test deployment shares one
/// pid, and two spawns can share a clock reading); splitmix64 finalization
/// spreads the entropy over all 64 bits instead of packing pid and nanos
/// into disjoint halves.
fn rand_seed() -> u64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    static SPAWNS: AtomicU64 = AtomicU64::new(0);
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let spawn = SPAWNS.fetch_add(1, Ordering::Relaxed);
    let mut z = (std::process::id() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ nanos
        ^ spawn.wrapping_mul(0xD1B5_4A32_D192_ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Build the HTTP request a QoS client sends for `key` (shared by the
/// client library and tests).
pub fn qos_http_request(key: &QosKey) -> HttpRequest {
    HttpRequest::get(format!(
        "/qos?key={}",
        janus_net::http::percent_encode(key.as_str())
    ))
}

/// Interpret a router HTTP response as a verdict.
pub fn parse_qos_response(response: &HttpResponse) -> Result<Verdict> {
    if response.status != StatusCode::OK {
        return Err(JanusError::http(format!(
            "router answered {}",
            response.status
        )));
    }
    match response.body_text().trim() {
        "TRUE" => Ok(Verdict::Allow),
        "FALSE" => Ok(Verdict::Deny),
        other => Err(JanusError::http(format!("bad verdict body {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_hash::{ModuloRouter, Router as _};
    use janus_net::http::HttpClient;
    use janus_server::{QosServer, QosServerConfig};
    use janus_types::QosRule;

    fn key(s: &str) -> QosKey {
        QosKey::new(s).unwrap()
    }

    async fn standalone_server(rules: &[(&str, u64, u64)]) -> QosServer {
        let server = QosServer::spawn(
            QosServerConfig::test_defaults(),
            None,
            janus_clock::system(),
        )
        .await
        .unwrap();
        let now = server.clock().now();
        for (k, cap, rate) in rules {
            server
                .table()
                .insert(QosRule::per_second(key(k), *cap, *rate), now);
        }
        server
    }

    async fn check(client: &mut HttpClient, k: &str) -> Verdict {
        let resp = client.request(&qos_http_request(&key(k))).await.unwrap();
        parse_qos_response(&resp).unwrap()
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn routes_and_relays_verdicts() {
        let server = standalone_server(&[("alice", 2, 0)]).await;
        let router = RequestRouter::spawn(RouterConfig::direct([server.udp_addr()]), None)
            .await
            .unwrap();
        let mut client = HttpClient::connect(router.addr()).await.unwrap();
        assert_eq!(check(&mut client, "alice").await, Verdict::Allow);
        assert_eq!(check(&mut client, "alice").await, Verdict::Allow);
        assert_eq!(check(&mut client, "alice").await, Verdict::Deny);
        assert_eq!(router.stats().forwarded_ok.load(Ordering::Relaxed), 3);
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn partitions_requests_across_backends() {
        // Two QoS servers; keys should split between them per CRC32 mod 2,
        // and the same key must always hit the same server.
        let a = standalone_server(&[]).await;
        let b = standalone_server(&[]).await;
        // Both allow-all so every check succeeds regardless of partition.
        let mut config = QosServerConfig::test_defaults();
        config.default_policy = janus_bucket::DefaultRulePolicy::AllowAll;
        drop((a, b));
        let a = QosServer::spawn(config.clone(), None, janus_clock::system())
            .await
            .unwrap();
        let b = QosServer::spawn(config, None, janus_clock::system())
            .await
            .unwrap();
        let router = RequestRouter::spawn(RouterConfig::direct([a.udp_addr(), b.udp_addr()]), None)
            .await
            .unwrap();
        let mut client = HttpClient::connect(router.addr()).await.unwrap();
        for i in 0..40 {
            assert_eq!(
                check(&mut client, &format!("user-{i}")).await,
                Verdict::Allow
            );
        }
        let hash = ModuloRouter::new(2);
        let a_expected = (0..40)
            .filter(|i| hash.route(&key(&format!("user-{i}"))) == 0)
            .count() as u64;
        let a_stats = a.stats().answered.load(Ordering::Relaxed);
        let b_stats = b.stats().answered.load(Ordering::Relaxed);
        assert_eq!(a_stats, a_expected);
        assert_eq!(a_stats + b_stats, 40);
        assert!(
            a_stats > 0 && b_stats > 0,
            "one partition starved: {a_stats}/{b_stats}"
        );
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn dead_backend_gets_default_reply() {
        // Router pointed at a dead UDP port: every request times out and
        // the default verdict is returned.
        let dead = tokio::net::UdpSocket::bind(("127.0.0.1", 0)).await.unwrap();
        let dead_addr = dead.local_addr().unwrap();
        drop(dead);
        let mut config = RouterConfig::direct([dead_addr]);
        config.udp = UdpRpcConfig {
            timeout: std::time::Duration::from_millis(1),
            max_retries: 2,
            ..Default::default()
        };
        config.default_verdict = Verdict::Deny;
        let router = RequestRouter::spawn(config, None).await.unwrap();
        let mut client = HttpClient::connect(router.addr()).await.unwrap();
        assert_eq!(check(&mut client, "anyone").await, Verdict::Deny);
        assert_eq!(router.stats().defaulted.load(Ordering::Relaxed), 1);
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn named_backend_follows_dns_failover() {
        use janus_net::dns::{Resolver, Zone};
        let master = standalone_server(&[]).await;
        let mut config = QosServerConfig::test_defaults();
        config.default_policy = janus_bucket::DefaultRulePolicy::AllowAll;
        let slave = QosServer::spawn(config, None, janus_clock::system())
            .await
            .unwrap();

        let zone = Zone::new();
        zone.insert_failover(
            "qos-0.janus",
            master.udp_addr(),
            Some(slave.udp_addr()),
            std::time::Duration::ZERO, // no client caching: failover is instant
        );
        let resolver = Arc::new(Resolver::new(Arc::clone(&zone), janus_clock::system()));

        let mut rconfig = RouterConfig::direct([]);
        rconfig.backends = vec![Backend::Named("qos-0.janus".into())];
        rconfig.default_verdict = Verdict::Deny;
        let router = RequestRouter::spawn(rconfig, Some(resolver)).await.unwrap();
        let mut client = HttpClient::connect(router.addr()).await.unwrap();

        // Master denies unknown keys (Deny policy); slave allows all.
        assert_eq!(check(&mut client, "probe").await, Verdict::Deny);
        zone.promote_standby("qos-0.janus").unwrap();
        assert_eq!(check(&mut client, "probe").await, Verdict::Allow);
    }

    #[tokio::test]
    async fn rejects_bad_requests() {
        let server = standalone_server(&[]).await;
        let router = RequestRouter::spawn(RouterConfig::direct([server.udp_addr()]), None)
            .await
            .unwrap();
        let mut client = HttpClient::connect(router.addr()).await.unwrap();
        let resp = client.request(&HttpRequest::get("/qos")).await.unwrap();
        assert_eq!(resp.status, StatusCode::BAD_REQUEST);
        let resp = client
            .request(&HttpRequest::get("/nonsense"))
            .await
            .unwrap();
        assert_eq!(resp.status, StatusCode::NOT_FOUND);
        assert_eq!(router.stats().bad_requests.load(Ordering::Relaxed), 2);
    }

    #[tokio::test]
    async fn health_endpoint() {
        let server = standalone_server(&[]).await;
        let router = RequestRouter::spawn(RouterConfig::direct([server.udp_addr()]), None)
            .await
            .unwrap();
        let resp = HttpClient::oneshot(router.addr(), &HttpRequest::get("/healthz"))
            .await
            .unwrap();
        assert_eq!(resp.body_text(), "ok");
    }

    #[tokio::test]
    async fn config_validation() {
        assert!(RequestRouter::spawn(RouterConfig::direct([]), None)
            .await
            .is_err());
        let mut config = RouterConfig::direct([]);
        config.backends = vec![Backend::Named("x".into())];
        assert!(RequestRouter::spawn(config, None).await.is_err());
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn pooled_rpc_mode_routes_identically() {
        let server = standalone_server(&[("pooled", 3, 0)]).await;
        let mut config = RouterConfig::direct([server.udp_addr()]);
        config.pooled_rpc = true;
        let router = RequestRouter::spawn(config, None).await.unwrap();
        let mut client = HttpClient::connect(router.addr()).await.unwrap();
        assert_eq!(check(&mut client, "pooled").await, Verdict::Allow);
        assert_eq!(check(&mut client, "pooled").await, Verdict::Allow);
        assert_eq!(check(&mut client, "pooled").await, Verdict::Allow);
        assert_eq!(check(&mut client, "pooled").await, Verdict::Deny);
        assert_eq!(router.stats().forwarded_ok.load(Ordering::Relaxed), 4);
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn pooled_unbatched_ablation_routes_identically() {
        // The paper-faithful single-frame wire format must remain
        // selectable underneath the pooled client.
        let server = standalone_server(&[("plain", 2, 0)]).await;
        let mut config = RouterConfig::direct([server.udp_addr()]);
        config.pooled_rpc = true;
        config.batching = false;
        let router = RequestRouter::spawn(config, None).await.unwrap();
        let mut client = HttpClient::connect(router.addr()).await.unwrap();
        assert_eq!(check(&mut client, "plain").await, Verdict::Allow);
        assert_eq!(check(&mut client, "plain").await, Verdict::Allow);
        assert_eq!(check(&mut client, "plain").await, Verdict::Deny);
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn breaker_trips_on_dead_backend_and_fast_fails() {
        let dead = tokio::net::UdpSocket::bind(("127.0.0.1", 0)).await.unwrap();
        let dead_addr = dead.local_addr().unwrap();
        drop(dead);
        let mut config = RouterConfig::direct([dead_addr]);
        config.udp = UdpRpcConfig {
            timeout: std::time::Duration::from_millis(1),
            max_retries: 1,
            ..Default::default()
        };
        config.default_verdict = Verdict::Deny;
        config.breaker = Some(BreakerConfig {
            failure_threshold: 3,
            open_timeout: std::time::Duration::from_secs(60),
        });
        let router = RequestRouter::spawn(config, None).await.unwrap();
        let mut client = HttpClient::connect(router.addr()).await.unwrap();
        for _ in 0..10 {
            assert_eq!(check(&mut client, "anyone").await, Verdict::Deny);
        }
        assert_eq!(router.breaker_state(0), Some(BreakerState::Open));
        assert_eq!(router.breaker_opens(0), Some(1));
        let stats = router.stats();
        // Three timed-out requests tripped the breaker; the remaining
        // seven never touched the network.
        assert_eq!(stats.defaulted.load(Ordering::Relaxed), 3);
        assert_eq!(stats.breaker_fast_fails.load(Ordering::Relaxed), 7);
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn degraded_admission_serves_learned_rule_during_outage() {
        // Learn the rule shape while healthy, kill the partition, and
        // verify the router enforces the learned shape locally instead of
        // answering blind.
        let server = standalone_server(&[("tenant", 5, 0)]).await;
        let mut config = RouterConfig::direct([server.udp_addr()]);
        config.udp = UdpRpcConfig {
            timeout: std::time::Duration::from_millis(5),
            max_retries: 1,
            ..Default::default()
        };
        config.default_verdict = Verdict::Deny;
        config.breaker = Some(BreakerConfig {
            failure_threshold: 2,
            open_timeout: std::time::Duration::from_secs(60),
        });
        let router = RequestRouter::spawn(config, None).await.unwrap();
        let mut client = HttpClient::connect(router.addr()).await.unwrap();
        assert_eq!(check(&mut client, "tenant").await, Verdict::Allow);
        assert_eq!(router.hinted_keys(), 1, "hint was not learned");

        server.shutdown();
        drop(server);
        tokio::time::sleep(std::time::Duration::from_millis(50)).await;

        let mut allowed = 0;
        let mut denied = 0;
        for _ in 0..20 {
            match check(&mut client, "tenant").await {
                Verdict::Allow => allowed += 1,
                Verdict::Deny => denied += 1,
            }
        }
        let stats = router.stats();
        assert_eq!(router.breaker_state(0), Some(BreakerState::Open));
        // Request 1 fails below threshold (blind default Deny); request 2
        // trips the breaker and every request from there is served from
        // the local bucket: capacity 5, zero refill => exactly 5 allowed.
        assert_eq!(allowed, 5, "degraded bucket did not enforce capacity");
        assert_eq!(denied, 15);
        assert_eq!(stats.degraded_allowed.load(Ordering::Relaxed), 5);
        assert_eq!(stats.degraded_denied.load(Ordering::Relaxed), 14);
        assert_eq!(stats.defaulted.load(Ordering::Relaxed), 1);
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn degraded_bucket_splits_rule_across_fleet() {
        let server = standalone_server(&[("shared", 8, 0)]).await;
        let mut config = RouterConfig::direct([server.udp_addr()]);
        config.udp = UdpRpcConfig {
            timeout: std::time::Duration::from_millis(5),
            max_retries: 1,
            ..Default::default()
        };
        config.default_verdict = Verdict::Deny;
        config.breaker = Some(BreakerConfig {
            failure_threshold: 1,
            open_timeout: std::time::Duration::from_secs(60),
        });
        config.fleet_size = 4; // this node may serve 8/4 = 2 locally
        let router = RequestRouter::spawn(config, None).await.unwrap();
        let mut client = HttpClient::connect(router.addr()).await.unwrap();
        assert_eq!(check(&mut client, "shared").await, Verdict::Allow);
        server.shutdown();
        drop(server);
        tokio::time::sleep(std::time::Duration::from_millis(50)).await;
        let mut allowed = 0;
        for _ in 0..10 {
            if check(&mut client, "shared").await == Verdict::Allow {
                allowed += 1;
            }
        }
        assert_eq!(allowed, 2, "fleet split not enforced");
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn healthz_degrades_to_503_when_all_breakers_open() {
        let dead = tokio::net::UdpSocket::bind(("127.0.0.1", 0)).await.unwrap();
        let dead_addr = dead.local_addr().unwrap();
        drop(dead);
        let mut config = RouterConfig::direct([dead_addr]);
        config.udp = UdpRpcConfig {
            timeout: std::time::Duration::from_millis(1),
            max_retries: 0,
            ..Default::default()
        };
        config.breaker = Some(BreakerConfig {
            failure_threshold: 1,
            open_timeout: std::time::Duration::from_secs(60),
        });
        let router = RequestRouter::spawn(config, None).await.unwrap();
        let resp = HttpClient::oneshot(router.addr(), &HttpRequest::get("/healthz"))
            .await
            .unwrap();
        assert_eq!(resp.status, StatusCode::OK, "healthy before any failure");
        let mut client = HttpClient::connect(router.addr()).await.unwrap();
        check(&mut client, "victim").await;
        assert!(router.all_breakers_open());
        let resp = HttpClient::oneshot(router.addr(), &HttpRequest::get("/healthz"))
            .await
            .unwrap();
        assert_eq!(resp.status, StatusCode::SERVICE_UNAVAILABLE);
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn breaker_ablation_preserves_paper_behavior() {
        let dead = tokio::net::UdpSocket::bind(("127.0.0.1", 0)).await.unwrap();
        let dead_addr = dead.local_addr().unwrap();
        drop(dead);
        let mut config = RouterConfig::direct([dead_addr]);
        config.udp = UdpRpcConfig {
            timeout: std::time::Duration::from_millis(1),
            max_retries: 1,
            ..Default::default()
        };
        config.default_verdict = Verdict::Deny;
        config.breaker = None; // paper-faithful: retry budget every time
        let router = RequestRouter::spawn(config, None).await.unwrap();
        let mut client = HttpClient::connect(router.addr()).await.unwrap();
        for _ in 0..10 {
            assert_eq!(check(&mut client, "anyone").await, Verdict::Deny);
        }
        let stats = router.stats();
        assert_eq!(stats.defaulted.load(Ordering::Relaxed), 10);
        assert_eq!(stats.breaker_fast_fails.load(Ordering::Relaxed), 0);
        assert_eq!(router.breaker_state(0), None);
        assert_eq!(router.hinted_keys(), 0, "ablation must not solicit hints");
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn deadline_propagation_reaches_the_wire() {
        // An unanswering sink in place of the QoS server: the router
        // burns its retry budget, and we inspect the per-attempt frames.
        let sink = tokio::net::UdpSocket::bind(("127.0.0.1", 0)).await.unwrap();
        let sink_addr = sink.local_addr().unwrap();
        let mut config = RouterConfig::direct([sink_addr]);
        config.udp = UdpRpcConfig {
            timeout: std::time::Duration::from_millis(20),
            max_retries: 1,
            ..Default::default()
        };
        config.default_verdict = Verdict::Deny;
        config.breaker = None;
        assert!(config.deadline_propagation, "direct() enables propagation");
        let router = RequestRouter::spawn(config, None).await.unwrap();
        let mut client = HttpClient::connect(router.addr()).await.unwrap();
        let check = tokio::spawn(async move { check(&mut client, "tenant").await });
        let mut kinds = Vec::new();
        let mut buf = [0u8; 2048];
        for _ in 0..2 {
            let (len, _) = sink.recv_from(&mut buf).await.unwrap();
            kinds.push(buf[..len][3]);
        }
        assert_eq!(check.await.unwrap(), Verdict::Deny, "default reply");
        // Attempt 0 carries the deadline stamp; the final attempt is the
        // legacy frame an old QoS server still understands.
        use janus_types::codec::{KIND_REQUEST, KIND_REQUEST_DEADLINE};
        assert_eq!(kinds, vec![KIND_REQUEST_DEADLINE, KIND_REQUEST]);
    }

    #[test]
    fn rand_seed_is_unique_within_a_process() {
        let seeds: std::collections::HashSet<u64> = (0..1000).map(|_| rand_seed()).collect();
        assert_eq!(seeds.len(), 1000, "seed collision within one process");
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn hedge_reuses_nonce_and_never_double_charges() {
        use janus_net::latency::{HedgePolicy, RetryBudgetConfig, TimeoutPolicy};

        // A slow-but-alive backend: every response deferred out-of-band,
        // none dropped — the gray shape a breaker never sees. The hedge
        // policy is pinned eager (floor == ceil == 1 µs) so every
        // post-warmup attempt sends its duplicate long before the
        // deferred answer lands, across both dispatch modes.
        for pooled in [false, true] {
            let faults = FaultPlan::new(0.0, 0.0, std::time::Duration::ZERO, 0x9E37);
            faults.set_reordering(1.0, std::time::Duration::from_millis(1));
            let server = QosServer::spawn_with_faults(
                QosServerConfig::test_defaults(),
                None,
                janus_clock::system(),
                Arc::clone(&faults),
            )
            .await
            .unwrap();
            server.table().insert(
                QosRule::per_second(key("hedged"), 10, 0),
                server.clock().now(),
            );

            let mut config = RouterConfig::direct([server.udp_addr()]);
            config.pooled_rpc = pooled;
            config.default_verdict = Verdict::Deny;
            // The deferred answer must beat the attempt timeout, or the
            // paper's 100 µs discipline would retry instead of hedging.
            config.udp = UdpRpcConfig {
                timeout: std::time::Duration::from_millis(50),
                max_retries: 2,
                ..Default::default()
            };
            config.gray = Some(GrayConfig {
                timeout: TimeoutPolicy::Fixed,
                hedge: Some(HedgePolicy {
                    percentile: 95,
                    floor: std::time::Duration::from_micros(1),
                    ceil: std::time::Duration::from_micros(1),
                }),
                // Every primary funds a whole hedge: no refusals cloud
                // the double-charge accounting this test pins down.
                budget: Some(RetryBudgetConfig {
                    deposit_pct: 100,
                    min_reserve: 10,
                    cap: 100,
                }),
                window: 64,
            });
            let router = RequestRouter::spawn(config, None).await.unwrap();
            let mut client = HttpClient::connect(router.addr()).await.unwrap();

            let mut allowed = 0;
            for _ in 0..40 {
                if check(&mut client, "hedged").await == Verdict::Allow {
                    allowed += 1;
                }
            }

            let hedges = router.stats().hedges_sent.load(Ordering::Relaxed);
            assert!(hedges > 0, "pooled={pooled}: no hedge ever fired");
            // Every hedge re-presents its primary's attempt nonce, so the
            // duplicate is absorbed by the server's dedup window instead
            // of charging the bucket a second time...
            assert!(
                server.stats().dedup_hits.load(Ordering::Relaxed) > 0,
                "pooled={pooled}: no duplicate ever reached the dedup window"
            );
            // ...which is why capacity 10 yields exactly 10 allows no
            // matter how many duplicates went out. A hedge that drew a
            // fresh nonce would spend extra credits and fail this count.
            assert_eq!(
                allowed, 10,
                "pooled={pooled}: {hedges} hedges double-charged the bucket"
            );
        }
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn keys_with_special_characters_roundtrip() {
        let server = standalone_server(&[("a b&c=d", 1, 0)]).await;
        let router = RequestRouter::spawn(RouterConfig::direct([server.udp_addr()]), None)
            .await
            .unwrap();
        let mut client = HttpClient::connect(router.addr()).await.unwrap();
        assert_eq!(check(&mut client, "a b&c=d").await, Verdict::Allow);
        assert_eq!(check(&mut client, "a b&c=d").await, Verdict::Deny);
    }
}
