//! Sans-IO admission core for the request router.
//!
//! Every *decision* a router node makes around one QoS check — which
//! partition owns the key, whether the partition's circuit breaker lets
//! the RPC out at all, whether a failed RPC should be answered from the
//! degraded local bucket or the blind default, and what to learn from a
//! hint-carrying response — is pure state-machine logic over an injected
//! clock. This module extracts that logic from the HTTP handler in
//! [`crate`] so the production tokio path and the deterministic simulator
//! in `janus-dst` drive the *same* code. No sockets, no tasks, no wall
//! clock: this file compiles with nothing but `std`, `janus-types`,
//! `janus-clock`, `janus-hash`, `janus-bucket` and the std-only modules
//! of `janus-net`.
//!
//! The retry schedule of the RPC itself — deadline stamping, nonce
//! reuse, the legacy final attempt — is the sibling sans-IO core
//! [`janus_net::attempt::AttemptPlan`]; a transport (or the simulator)
//! composes the two: `RouterCore` decides *whether and where* to call,
//! `AttemptPlan` decides *what each attempt sends*.
//!
//! Flow per request: [`begin`](RouterCore::begin) →
//! [`RouterStep::Forward`] (perform the RPC) or [`RouterStep::FastFail`]
//! (answer locally, no network); after a forwarded RPC, report
//! [`on_response`](RouterCore::on_response) or
//! [`on_failure`](RouterCore::on_failure).

use janus_bucket::{AtomicBucket, LeakyBucket};
use janus_clock::Nanos;
use janus_hash::{ModuloRouter, Router as _};
use janus_net::breaker::{Admission, BreakerConfig, BreakerState, CircuitBreaker};
use janus_net::latency::{
    HedgePolicy, HedgeStats, RetryBudget, RetryBudgetConfig, SharedLatency, TimeoutPolicy,
    WireDiscipline,
};
use janus_types::sync::Mutex;
use janus_types::{Lease, LeaseReport, QosKey, QosResponse, RuleHint, Verdict};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// The decision half of [`crate::RouterConfig`]: everything the core
/// needs, nothing the transport owns (addresses, sockets, retry timing).
#[derive(Debug, Clone)]
pub struct RouterCoreConfig {
    /// Number of QoS-server partitions the fleet hashes over (≥ 1).
    pub partitions: usize,
    /// The verdict served when the backend never answers and no rule
    /// shape was ever learned for the key.
    pub default_verdict: Verdict,
    /// Router nodes sharing admission duty: degraded buckets enforce
    /// `1/fleet_size` of a hinted rule (clamped to at least 1).
    pub fleet_size: usize,
    /// Per-partition circuit breaking plus degraded local admission;
    /// `None` is the paper-faithful ablation (no breakers, no hints).
    pub breaker: Option<BreakerConfig>,
    /// Credit-lease participation: solicit short-TTL slices of hot keys
    /// and admit them locally with zero network I/O. `None` keeps every
    /// check on the RPC path (the pre-lease behaviour).
    pub lease: Option<RouterLeaseConfig>,
    /// Gray-failure discipline: per-partition adaptive timeouts,
    /// credit-safe same-nonce hedging and the node-global retry budget
    /// (DESIGN.md ablation 15). `None` keeps the paper's fixed wire
    /// discipline — the default, byte-identical to the pre-gray plane.
    pub gray: Option<GrayConfig>,
}

/// The router half of the gray-failure plane: how this node learns
/// latency, when it hedges, and how hard retry traffic is capped.
#[derive(Debug, Clone)]
pub struct GrayConfig {
    /// Per-attempt timeout derivation. [`TimeoutPolicy::Fixed`] keeps
    /// the transport's configured timeout while still learning RTTs (so
    /// hedging works without adaptive timeouts).
    pub timeout: TimeoutPolicy,
    /// Hedge in-flight attempts after the learned-tail delay; `None`
    /// never hedges.
    pub hedge: Option<HedgePolicy>,
    /// Cap retry + hedge traffic with a node-global token bucket;
    /// `None` leaves the configured retry schedule unbounded.
    pub budget: Option<RetryBudgetConfig>,
    /// Attempt-RTT samples tracked per partition.
    pub window: usize,
}

impl Default for GrayConfig {
    fn default() -> Self {
        GrayConfig {
            timeout: TimeoutPolicy::adaptive_defaults(),
            hedge: Some(HedgePolicy::default()),
            budget: Some(RetryBudgetConfig::default()),
            window: 64,
        }
    }
}

/// The router half of the credit-lease plane (DESIGN.md ablation 13).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterLeaseConfig {
    /// This node's stable identity in servers' lease ledgers.
    pub holder: u32,
    /// Renew proactively once this percentage of the TTL has elapsed
    /// (clamped to ≤ 100), so a healthy exchange never lets a hot
    /// lease lapse.
    pub renew_percent: u32,
}

impl RouterLeaseConfig {
    /// Lease participation as `holder`, renewing at 3/4 TTL.
    pub fn new(holder: u32) -> Self {
        RouterLeaseConfig {
            holder,
            renew_percent: 75,
        }
    }
}

/// What [`RouterCore::begin`] decided for one QoS check.
#[derive(Debug)]
pub enum RouterStep {
    /// Perform the RPC against `partition`. `solicit_hint` is set when
    /// breakers are enabled: the first attempt asks the QoS server for
    /// the rule shape so degraded admission has something to enforce.
    Forward {
        /// The partition owning the key (`CRC32(key) mod N`).
        partition: usize,
        /// Ask the server to attach the key's rule shape.
        solicit_hint: bool,
        /// Lease solicitation / renewal / return-and-reconcile to
        /// piggyback on the first attempt, when leases are enabled.
        lease_ask: Option<LeaseReport>,
    },
    /// A live lease covered the check: `Allow`, decided against the
    /// router-local slice with zero network I/O.
    LeaseAdmit {
        /// The partition that granted the lease (for stats attribution).
        partition: usize,
    },
    /// The partition's breaker is open: answer locally without touching
    /// the network.
    FastFail {
        /// The partition whose breaker fast-failed.
        partition: usize,
        /// The locally produced answer.
        answer: LocalAnswer,
    },
}

/// A verdict produced without the backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalAnswer {
    /// The key's degraded bucket (seeded from a learned rule hint,
    /// scaled by fleet size) answered.
    Degraded(Verdict),
    /// No rule shape was ever learned: the configured default reply.
    Default(Verdict),
}

impl LocalAnswer {
    /// The verdict to relay, however it was produced.
    pub fn verdict(&self) -> Verdict {
        match *self {
            LocalAnswer::Degraded(verdict) | LocalAnswer::Default(verdict) => verdict,
        }
    }
}

/// What a lease-carrying (or lease-relevant) response did to the local
/// lease cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseEvent {
    /// A fresh lease was installed for a key that held none.
    Granted,
    /// The held lease was renewed at the same epoch: a fresh slice, with
    /// the cumulative spent count carried forward.
    Renewed,
    /// The grant's epoch superseded the held lease (the server revoked
    /// it on a rule change); the stale slice is dropped and the new one
    /// installed with its spent count reset.
    Revoked,
}

/// What [`RouterCore::on_response`] learned from one successful RPC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResponseOutcome {
    /// The response's rule hint was new or changed.
    pub hint_learned: bool,
    /// The response carried a lease grant (and what it did locally).
    pub lease: Option<LeaseEvent>,
}

/// One held lease: a router-local bucket seeded from the granted slice,
/// plus the book-keeping the reconciliation protocol needs.
#[derive(Debug)]
struct LeaseEntry {
    /// The delegated slice, refilling at the granted share.
    bucket: AtomicBucket,
    /// Grant epoch; a grant at a different epoch supersedes this entry.
    epoch: u32,
    /// Local admits stop here; the entry converts to a return report.
    expires_at: Nanos,
    /// Piggyback a renewal ask on the next forwarded request after this.
    renew_at: Nanos,
    /// Cumulative admits under (key, holder, epoch) — what reconciliation
    /// reports. Carried across same-epoch renewals, reset on epoch bump.
    spent: u32,
    /// A renewal ask is in flight; don't re-ask on every request.
    renew_pending: bool,
}

/// The sans-IO router core: partition hashing, per-partition circuit
/// breakers, learned rule hints and degraded local buckets (see module
/// docs). Thread-safe — the two maps sit behind their own locks and the
/// breakers are internally synchronized, so the production handler calls
/// it concurrently from every HTTP connection while the simulator owns
/// one outright.
#[derive(Debug)]
pub struct RouterCore {
    hash: ModuloRouter,
    default_verdict: Verdict,
    fleet_size: usize,
    /// One breaker per partition; empty when the feature is off.
    breakers: Vec<CircuitBreaker>,
    /// Rule shapes learned from hint-carrying responses, kept across
    /// outages so degraded admission has something to enforce.
    hints: Mutex<HashMap<QosKey, RuleHint>>,
    /// Router-local buckets for degraded admission. A key's bucket is
    /// created once (seeded full at the fleet-scaled shape) and persists
    /// across outage episodes, so repeated brownouts never re-grant the
    /// burst — over-admission stays bounded by one scaled capacity.
    degraded: Mutex<HashMap<QosKey, LeakyBucket>>,
    /// Lease participation; `None` disables the whole plane.
    lease: Option<RouterLeaseConfig>,
    /// Live leases, admitting locally until dry, renewal or expiry.
    leases: Mutex<HashMap<QosKey, LeaseEntry>>,
    /// Expired leases awaiting a return-and-reconcile report, consumed
    /// by the next forwarded request for the key.
    returns: Mutex<HashMap<QosKey, LeaseReport>>,
    /// Gray-failure discipline; `None` disables the whole plane.
    gray: Option<GrayConfig>,
    /// Per-partition attempt-RTT windows (empty when gray is off).
    rtt: Vec<Arc<SharedLatency>>,
    /// Node-global retry/hedge budget (present only when configured).
    budget: Option<Arc<RetryBudget>>,
    /// Hedge counters the transports report into.
    hedge_stats: Arc<HedgeStats>,
}

impl RouterCore {
    /// A core for `config`. `partitions` is clamped to at least 1 (the
    /// shell validates the backend list before getting here).
    pub fn new(config: RouterCoreConfig) -> Self {
        let partitions = config.partitions.max(1);
        let breakers = match config.breaker {
            Some(breaker) => (0..partitions)
                .map(|_| CircuitBreaker::new(breaker))
                .collect(),
            None => Vec::new(),
        };
        let rtt = match &config.gray {
            Some(gray) => (0..partitions)
                .map(|_| Arc::new(SharedLatency::new(gray.window.max(1))))
                .collect(),
            None => Vec::new(),
        };
        let budget = config
            .gray
            .as_ref()
            .and_then(|gray| gray.budget)
            .map(|cfg| Arc::new(RetryBudget::new(cfg)));
        RouterCore {
            hash: ModuloRouter::new(partitions),
            default_verdict: config.default_verdict,
            fleet_size: config.fleet_size.max(1),
            breakers,
            hints: Mutex::new(HashMap::new()),
            degraded: Mutex::new(HashMap::new()),
            lease: config.lease,
            leases: Mutex::new(HashMap::new()),
            returns: Mutex::new(HashMap::new()),
            gray: config.gray,
            rtt,
            budget,
            hedge_stats: Arc::new(HedgeStats::new()),
        }
    }

    /// Whether the breaker/hint refinement is on at all.
    pub fn breakers_enabled(&self) -> bool {
        !self.breakers.is_empty()
    }

    /// Whether this node participates in credit leases.
    pub fn leases_enabled(&self) -> bool {
        self.lease.is_some()
    }

    /// The partition owning `key`.
    pub fn route(&self, key: &QosKey) -> usize {
        self.hash.route(key)
    }

    /// The configured default reply.
    pub fn default_verdict(&self) -> Verdict {
        self.default_verdict
    }

    /// Start one QoS check at `now`: admit against a held lease with no
    /// network I/O, forward to the owning partition, or fast-fail from
    /// local state while its breaker is open. The lease fast path runs
    /// first — a leased key keeps admitting even through a brownout.
    pub fn begin(&self, key: &QosKey, now: Nanos) -> RouterStep {
        let partition = self.route(key);
        if self.lease.is_some() && self.lease_admit(key, now) {
            return RouterStep::LeaseAdmit { partition };
        }
        if self.breakers_enabled() {
            if let Admission::FastFail = self.breakers[partition].try_acquire(now) {
                return RouterStep::FastFail {
                    partition,
                    answer: self.local_answer(key, now),
                };
            }
        }
        RouterStep::Forward {
            partition,
            solicit_hint: self.breakers_enabled(),
            lease_ask: self.lease_ask(key, now),
        }
    }

    /// Try to cover one check from the key's held lease. `true` means
    /// the slice paid for it (the admit was pre-debited at the server at
    /// grant time). An expired lease is converted into a pending
    /// return-and-reconcile report; a dry slice falls through to the RPC
    /// path, which may still find credit in the authoritative bucket.
    fn lease_admit(&self, key: &QosKey, now: Nanos) -> bool {
        let Some(cfg) = self.lease else { return false };
        let mut leases = self.leases.lock();
        let Some(entry) = leases.get_mut(key) else {
            return false;
        };
        if now >= entry.expires_at {
            // Hand back the unused remainder (not the spent count): by
            // removing the entry first, the remainder is credit this
            // holder provably stopped admitting against, which is the
            // only amount the server can safely refund.
            let remaining = u32::try_from(entry.bucket.credit(now).whole()).unwrap_or(u32::MAX);
            let report = LeaseReport::returning(cfg.holder, entry.epoch, remaining, true);
            leases.remove(key);
            self.returns.lock().insert(key.clone(), report);
            return false;
        }
        if entry.bucket.try_consume(now) == Verdict::Allow {
            entry.spent = entry.spent.saturating_add(1);
            true
        } else {
            false
        }
    }

    /// The lease report (if any) to piggyback on a forwarded request: a
    /// pending return-and-reconcile first, then a renewal once the TTL
    /// fraction has elapsed, then a plain solicitation for unleased keys.
    fn lease_ask(&self, key: &QosKey, now: Nanos) -> Option<LeaseReport> {
        let cfg = self.lease?;
        if let Some(report) = self.returns.lock().remove(key) {
            return Some(report);
        }
        let mut leases = self.leases.lock();
        match leases.get_mut(key) {
            None => Some(LeaseReport::soliciting(cfg.holder)),
            Some(entry) => {
                if now >= entry.renew_at && !entry.renew_pending {
                    entry.renew_pending = true;
                    Some(LeaseReport::renewing(cfg.holder, entry.epoch, entry.spent))
                } else {
                    None
                }
            }
        }
    }

    /// Install (or replace) the lease granted by a response. Same epoch
    /// means renewal: the fresh slice replaces the old bucket and the
    /// cumulative spent count carries forward. A different epoch means
    /// the server revoked the held lease (rule change): the stale slice
    /// is dropped and accounting restarts at zero.
    fn install_lease(
        &self,
        cfg: RouterLeaseConfig,
        key: &QosKey,
        lease: Lease,
        now: Nanos,
    ) -> LeaseEvent {
        let ttl = Duration::from_micros(u64::from(lease.ttl_us));
        let renew = Duration::from_micros(
            u64::from(lease.ttl_us) * u64::from(cfg.renew_percent.min(100)) / 100,
        );
        let entry = LeaseEntry {
            bucket: AtomicBucket::full(lease.slice, lease.refill, now),
            epoch: lease.epoch,
            expires_at: now.saturating_add(ttl),
            renew_at: now.saturating_add(renew),
            spent: 0,
            renew_pending: false,
        };
        let mut leases = self.leases.lock();
        match leases.insert(key.clone(), entry) {
            None => LeaseEvent::Granted,
            Some(old) if old.epoch == lease.epoch => {
                if let Some(fresh) = leases.get_mut(key) {
                    fresh.spent = old.spent;
                }
                LeaseEvent::Renewed
            }
            Some(_) => LeaseEvent::Revoked,
        }
    }

    /// Report a successful RPC at `now`: closes/feeds the partition's
    /// breaker, learns the response's rule hint and installs any lease
    /// grant. The outcome says what was learned (for stats attribution).
    pub fn on_response(
        &self,
        partition: usize,
        key: &QosKey,
        response: &QosResponse,
        now: Nanos,
    ) -> ResponseOutcome {
        let mut outcome = ResponseOutcome::default();
        if self.breakers_enabled() {
            self.breakers[partition].record_success();
            if let Some(hint) = response.hint {
                outcome.hint_learned = self.learn_hint(key, hint);
            }
        }
        if let Some(cfg) = self.lease {
            match response.lease {
                Some(lease) => {
                    outcome.lease = Some(self.install_lease(cfg, key, lease, now));
                }
                None => {
                    // An answered ask without a grant: let a later
                    // request re-ask instead of waiting forever.
                    if let Some(entry) = self.leases.lock().get_mut(key) {
                        entry.renew_pending = false;
                    }
                }
            }
        }
        outcome
    }

    /// Report an RPC that exhausted its retry budget (or could not be
    /// dispatched) at `now`. Returns the local answer to serve when the
    /// failure tripped (or found) an open breaker; `None` means the
    /// caller serves the blind default.
    pub fn on_failure(&self, partition: usize, key: &QosKey, now: Nanos) -> Option<LocalAnswer> {
        if !self.breakers_enabled() {
            return None;
        }
        self.breakers[partition].record_failure(now);
        self.breakers[partition]
            .is_open(now)
            .then(|| self.local_answer(key, now))
    }

    /// Serve a verdict without the backend: the key's degraded bucket if
    /// a rule shape was ever learned, the blind default otherwise.
    pub fn local_answer(&self, key: &QosKey, now: Nanos) -> LocalAnswer {
        let hint = self.hints.lock().get(key).copied();
        let Some(hint) = hint else {
            return LocalAnswer::Default(self.default_verdict);
        };
        let shape = hint.split_across(self.fleet_size);
        let mut buckets = self.degraded.lock();
        let bucket = buckets
            .entry(key.clone())
            .or_insert_with(|| LeakyBucket::full(shape.capacity, shape.refill_rate, now));
        LocalAnswer::Degraded(bucket.try_consume(now))
    }

    /// Cache a hinted rule shape. A shape *change* drops the key's
    /// degraded bucket so the next brownout rebuilds it with the new
    /// rule (re-seeding only on a genuine rule update). Returns `true`
    /// when the hint was new or changed.
    fn learn_hint(&self, key: &QosKey, hint: RuleHint) -> bool {
        let mut hints = self.hints.lock();
        let previous = hints.get(key).copied();
        if previous == Some(hint) {
            return false;
        }
        hints.insert(key.clone(), hint);
        if previous.is_some() {
            self.degraded.lock().remove(key);
        }
        true
    }

    /// Breaker state for `partition` at `now`; `None` when breakers are
    /// disabled or the partition is out of range.
    pub fn breaker_state(&self, partition: usize, now: Nanos) -> Option<BreakerState> {
        self.breakers.get(partition).map(|b| b.state(now))
    }

    /// Times `partition`'s breaker has tripped open; `None` as above.
    pub fn breaker_opens(&self, partition: usize) -> Option<u64> {
        self.breakers.get(partition).map(|b| b.opens())
    }

    /// True when every partition's breaker is currently fast-failing —
    /// this node cannot reach any QoS state and should be drained.
    pub fn all_breakers_open(&self, now: Nanos) -> bool {
        !self.breakers.is_empty() && self.breakers.iter().all(|b| b.is_open(now))
    }

    /// Whether the gray-failure discipline is on at all.
    pub fn gray_enabled(&self) -> bool {
        self.gray.is_some()
    }

    /// Record one observed attempt RTT (microseconds) against the
    /// partition that served it. No-op while the gray plane is off.
    pub fn record_rtt(&self, partition: usize, rtt_us: u64) {
        if let Some(window) = self.rtt.get(partition) {
            window.record(rtt_us);
        }
    }

    /// The per-attempt timeout to use against `partition`, derived from
    /// its learned latency window; `baseline` is the transport's
    /// configured fixed timeout (returned verbatim while the gray plane
    /// is off, the policy is [`TimeoutPolicy::Fixed`], or the window is
    /// still warming up).
    pub fn attempt_timeout(&self, partition: usize, baseline: Duration) -> Duration {
        match (&self.gray, self.rtt.get(partition)) {
            (Some(gray), Some(window)) => window.with(|w| gray.timeout.timeout_for(w, baseline)),
            _ => baseline,
        }
    }

    /// The hedge delay for an attempt against `partition`, or `None`
    /// while hedging is off or the partition's window is still warming
    /// up (no hedge is sent).
    pub fn hedge_delay(&self, partition: usize) -> Option<Duration> {
        let gray = self.gray.as_ref()?;
        let hedge = gray.hedge.as_ref()?;
        self.rtt
            .get(partition)
            .and_then(|window| window.with(|w| hedge.delay_for(w)))
    }

    /// Build the [`WireDiscipline`] one RPC against `partition` should
    /// carry; `baseline` is the transport's configured fixed timeout.
    /// With the gray plane off this is the all-`None` no-op discipline,
    /// so the transports reproduce the paper's wire behaviour exactly.
    pub fn discipline(&self, partition: usize, baseline: Duration) -> WireDiscipline {
        let Some(gray) = &self.gray else {
            return WireDiscipline::default();
        };
        let timeout = match gray.timeout {
            TimeoutPolicy::Fixed => None,
            TimeoutPolicy::Adaptive { .. } => Some(self.attempt_timeout(partition, baseline)),
        };
        WireDiscipline {
            timeout,
            hedge_delay: self.hedge_delay(partition),
            budget: self.budget.clone(),
            stats: Some(Arc::clone(&self.hedge_stats)),
            rtt: self.rtt.get(partition).cloned(),
        }
    }

    /// The node-global retry/hedge budget, when configured.
    pub fn retry_budget(&self) -> Option<&Arc<RetryBudget>> {
        self.budget.as_ref()
    }

    /// The hedge counters the transports report into
    /// (`hedges_sent` / `hedge_wins` / `adaptive_timeout_us`).
    pub fn hedge_stats(&self) -> &Arc<HedgeStats> {
        &self.hedge_stats
    }

    /// Keys with a learned rule hint (diagnostics).
    pub fn hinted_keys(&self) -> usize {
        self.hints.lock().len()
    }

    /// Keys currently holding a live lease (diagnostics).
    pub fn leased_keys(&self) -> usize {
        self.leases.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_types::{Credits, RefillRate};
    use std::time::Duration;

    const T0: Nanos = Nanos::from_secs(50);

    fn key(s: &str) -> QosKey {
        QosKey::new(s).unwrap()
    }

    fn core(partitions: usize, threshold: u32) -> RouterCore {
        RouterCore::new(RouterCoreConfig {
            partitions,
            default_verdict: Verdict::Deny,
            fleet_size: 1,
            breaker: Some(BreakerConfig {
                failure_threshold: threshold,
                open_timeout: Duration::from_secs(60),
            }),
            lease: None,
            gray: None,
        })
    }

    fn leased_core(holder: u32) -> RouterCore {
        RouterCore::new(RouterCoreConfig {
            partitions: 1,
            default_verdict: Verdict::Deny,
            fleet_size: 1,
            breaker: None,
            lease: Some(RouterLeaseConfig::new(holder)),
            gray: None,
        })
    }

    fn grant(id: u64, slice: u64, rate: u64, ttl_us: u32, epoch: u32) -> QosResponse {
        QosResponse::new(id, Verdict::Allow).with_lease(Lease::new(
            Credits::from_whole(slice),
            RefillRate::per_second(rate),
            ttl_us,
            epoch,
        ))
    }

    fn forwarded_ask(core: &RouterCore, k: &QosKey, now: Nanos) -> Option<LeaseReport> {
        match core.begin(k, now) {
            RouterStep::Forward { lease_ask, .. } => lease_ask,
            step => panic!("expected a forward, got {step:?}"),
        }
    }

    fn hinted(id: u64, capacity: u64, rate: u64) -> QosResponse {
        QosResponse::new(id, Verdict::Allow).with_hint(RuleHint::new(
            Credits::from_whole(capacity),
            RefillRate::per_second(rate),
        ))
    }

    #[test]
    fn routing_is_stable_and_forwarding_solicits_hints() {
        let core = core(4, 3);
        let k = key("tenant");
        let p = core.route(&k);
        for _ in 0..3 {
            match core.begin(&k, T0) {
                RouterStep::Forward {
                    partition,
                    solicit_hint,
                    lease_ask,
                } => {
                    assert_eq!(partition, p);
                    assert!(solicit_hint, "breakers on => solicit");
                    assert_eq!(lease_ask, None, "leases off => no ask");
                }
                step => panic!("healthy partition must forward, got {step:?}"),
            }
        }
    }

    #[test]
    fn ablation_never_fast_fails_and_learns_nothing() {
        let core = RouterCore::new(RouterCoreConfig {
            partitions: 2,
            default_verdict: Verdict::Allow,
            fleet_size: 1,
            breaker: None,
            lease: None,
            gray: None,
        });
        let k = key("tenant");
        let p = core.route(&k);
        for _ in 0..20 {
            assert!(core.on_failure(p, &k, T0).is_none(), "no breakers: default");
            match core.begin(&k, T0) {
                RouterStep::Forward { solicit_hint, .. } => {
                    assert!(!solicit_hint, "ablation must not solicit")
                }
                step => panic!("ablation never fast-fails, got {step:?}"),
            }
        }
        assert_eq!(
            core.on_response(p, &k, &hinted(1, 10, 1), T0),
            ResponseOutcome::default()
        );
        assert_eq!(core.hinted_keys(), 0);
        assert_eq!(core.breaker_state(p, T0), None);
    }

    #[test]
    fn failures_trip_breaker_then_requests_fast_fail_locally() {
        let core = core(1, 3);
        let k = key("tenant");
        assert!(core.on_failure(0, &k, T0).is_none());
        assert!(core.on_failure(0, &k, T0).is_none());
        // Third consecutive failure trips the breaker: the failing
        // request itself is answered locally (blind default here).
        assert_eq!(
            core.on_failure(0, &k, T0),
            Some(LocalAnswer::Default(Verdict::Deny))
        );
        assert_eq!(core.breaker_state(0, T0), Some(BreakerState::Open));
        assert_eq!(core.breaker_opens(0), Some(1));
        assert!(core.all_breakers_open(T0));
        match core.begin(&k, T0) {
            RouterStep::FastFail { partition, answer } => {
                assert_eq!(partition, 0);
                assert_eq!(answer, LocalAnswer::Default(Verdict::Deny));
            }
            step => panic!("open breaker must fast-fail, got {step:?}"),
        }
    }

    #[test]
    fn degraded_bucket_enforces_learned_shape_across_brownout() {
        let core = core(1, 1);
        let k = key("tenant");
        // Healthy exchange learns the shape: capacity 5, zero refill.
        assert!(core.on_response(0, &k, &hinted(1, 5, 0), T0).hint_learned);
        assert_eq!(core.hinted_keys(), 1);
        // Partition dies; breaker trips on the first failure and the
        // tripping request itself is served from the bucket (credit 1/5).
        assert_eq!(
            core.on_failure(0, &k, T0),
            Some(LocalAnswer::Degraded(Verdict::Allow))
        );
        let mut allowed = 1;
        for _ in 0..20 {
            match core.local_answer(&k, T0) {
                LocalAnswer::Degraded(Verdict::Allow) => allowed += 1,
                LocalAnswer::Degraded(Verdict::Deny) => {}
                LocalAnswer::Default(_) => panic!("shape was learned"),
            }
        }
        assert_eq!(allowed, 5, "degraded bucket must enforce capacity");
    }

    #[test]
    fn degraded_bucket_splits_shape_across_fleet() {
        let core = RouterCore::new(RouterCoreConfig {
            partitions: 1,
            default_verdict: Verdict::Deny,
            fleet_size: 4,
            breaker: Some(BreakerConfig {
                failure_threshold: 1,
                open_timeout: Duration::from_secs(60),
            }),
            lease: None,
            gray: None,
        });
        let k = key("shared");
        assert!(core.on_response(0, &k, &hinted(1, 8, 0), T0).hint_learned);
        let allowed = (0..10)
            .filter(|_| core.local_answer(&k, T0).verdict() == Verdict::Allow)
            .count();
        assert_eq!(allowed, 2, "8 capacity / 4 nodes = 2 local");
    }

    #[test]
    fn changed_hint_reseeds_the_degraded_bucket() {
        let core = core(1, 1);
        let k = key("tenant");
        assert!(core.on_response(0, &k, &hinted(1, 2, 0), T0).hint_learned);
        // Drain the old bucket dry.
        assert_eq!(core.local_answer(&k, T0).verdict(), Verdict::Allow);
        assert_eq!(core.local_answer(&k, T0).verdict(), Verdict::Allow);
        assert_eq!(core.local_answer(&k, T0).verdict(), Verdict::Deny);
        // Same shape again: not "learned", bucket untouched (still dry).
        assert!(!core.on_response(0, &k, &hinted(2, 2, 0), T0).hint_learned);
        assert_eq!(core.local_answer(&k, T0).verdict(), Verdict::Deny);
        // A genuine rule update re-seeds at the new shape.
        assert!(core.on_response(0, &k, &hinted(3, 4, 0), T0).hint_learned);
        let allowed = (0..6)
            .filter(|_| core.local_answer(&k, T0).verdict() == Verdict::Allow)
            .count();
        assert_eq!(allowed, 4, "rebuilt bucket seeds at the new capacity");
    }

    #[test]
    fn open_breaker_probes_after_timeout_and_success_closes() {
        let core = RouterCore::new(RouterCoreConfig {
            partitions: 1,
            default_verdict: Verdict::Deny,
            fleet_size: 1,
            breaker: Some(BreakerConfig {
                failure_threshold: 1,
                open_timeout: Duration::from_millis(250),
            }),
            lease: None,
            gray: None,
        });
        let k = key("tenant");
        assert!(core.on_failure(0, &k, T0).is_some());
        assert!(matches!(core.begin(&k, T0), RouterStep::FastFail { .. }));
        // Past the open window the next check is let through as a probe.
        let later = T0.saturating_add(Duration::from_millis(300));
        assert!(matches!(core.begin(&k, later), RouterStep::Forward { .. }));
        // ...and only one: a second caller fast-fails while it is out.
        assert!(matches!(core.begin(&k, later), RouterStep::FastFail { .. }));
        core.on_response(0, &k, &QosResponse::new(9, Verdict::Allow), later);
        assert_eq!(core.breaker_state(0, later), Some(BreakerState::Closed));
        assert!(matches!(core.begin(&k, later), RouterStep::Forward { .. }));
    }

    #[test]
    fn unleased_key_solicits_then_lease_admits_with_zero_network_io() {
        let core = leased_core(7);
        let k = key("hot");
        // No lease held: every forward solicits one.
        assert_eq!(
            forwarded_ask(&core, &k, T0),
            Some(LeaseReport::soliciting(7))
        );
        // A grant arrives: slice 3, zero refill, 10 ms TTL, epoch 1.
        let outcome = core.on_response(0, &k, &grant(1, 3, 0, 10_000, 1), T0);
        assert_eq!(outcome.lease, Some(LeaseEvent::Granted));
        assert_eq!(core.leased_keys(), 1);
        // The next three checks admit locally — no Forward step at all.
        for _ in 0..3 {
            assert!(matches!(core.begin(&k, T0), RouterStep::LeaseAdmit { .. }));
        }
        // Slice dry: fall back to the RPC path (the authoritative bucket
        // may still have credit), without re-soliciting — a lease is held.
        assert_eq!(forwarded_ask(&core, &k, T0), None);
    }

    #[test]
    fn renewal_is_asked_once_past_the_ttl_fraction() {
        let core = leased_core(7);
        let k = key("hot");
        core.on_response(0, &k, &grant(1, 100, 0, 10_000, 1), T0);
        // Before 3/4 TTL: locally admitted, nothing to ask.
        let early = T0.saturating_add(Duration::from_micros(7_000));
        assert!(matches!(
            core.begin(&k, early),
            RouterStep::LeaseAdmit { .. }
        ));
        // Past 7.5 ms the slice still admits, but a forwarded request
        // (forced here by draining nothing — use lease_ask directly via
        // a dry-key forward after expiry of credit is impossible with
        // slice 100, so inspect the ask path) piggybacks a renewal.
        let late = T0.saturating_add(Duration::from_micros(8_000));
        assert_eq!(
            core.lease_ask(&k, late),
            Some(LeaseReport::renewing(7, 1, 1)),
            "renewal carries the cumulative spent count"
        );
        // The ask is pending: no duplicate renewal on the next forward.
        assert_eq!(core.lease_ask(&k, late), None);
        // The renewal lands (same epoch): fresh slice, spent carried.
        let outcome = core.on_response(0, &k, &grant(2, 100, 0, 10_000, 1), late);
        assert_eq!(outcome.lease, Some(LeaseEvent::Renewed));
        assert!(matches!(
            core.begin(&k, late),
            RouterStep::LeaseAdmit { .. }
        ));
        assert_eq!(
            core.lease_ask(&k, late.saturating_add(Duration::from_micros(8_000))),
            Some(LeaseReport::renewing(7, 1, 2)),
            "spent accumulates across same-epoch renewals"
        );
    }

    #[test]
    fn expired_lease_returns_and_reconciles_on_the_next_forward() {
        let core = leased_core(9);
        let k = key("hot");
        core.on_response(0, &k, &grant(1, 5, 0, 1_000, 1), T0);
        assert!(matches!(core.begin(&k, T0), RouterStep::LeaseAdmit { .. }));
        assert!(matches!(core.begin(&k, T0), RouterStep::LeaseAdmit { .. }));
        // Past the TTL the lease stops admitting; the same check falls
        // back to an RPC carrying the return-and-reconcile report.
        let late = T0.saturating_add(Duration::from_micros(1_500));
        match core.begin(&k, late) {
            RouterStep::Forward { lease_ask, .. } => {
                let report = lease_ask.expect("expiry must produce a return");
                assert!(report.giving_back, "unspent credit goes back");
                assert!(report.solicit, "still hot: re-solicit");
                // 2 of 5 spent: the return hands back the 3 unused.
                assert_eq!((report.holder, report.epoch, report.spent), (9, 1, 3));
            }
            step => panic!("expired lease must forward, got {step:?}"),
        }
        assert_eq!(core.leased_keys(), 0);
        // The return was consumed: the next forward solicits afresh.
        assert_eq!(
            forwarded_ask(&core, &k, late),
            Some(LeaseReport::soliciting(9))
        );
    }

    #[test]
    fn epoch_bump_revokes_the_held_lease() {
        let core = leased_core(3);
        let k = key("hot");
        core.on_response(0, &k, &grant(1, 5, 0, 10_000, 1), T0);
        assert!(matches!(core.begin(&k, T0), RouterStep::LeaseAdmit { .. }));
        // The server revoked epoch 1 (rule change) and granted epoch 2.
        let outcome = core.on_response(0, &k, &grant(2, 5, 0, 10_000, 2), T0);
        assert_eq!(outcome.lease, Some(LeaseEvent::Revoked));
        // Accounting restarted: the next renewal reports epoch 2 spend.
        assert!(matches!(core.begin(&k, T0), RouterStep::LeaseAdmit { .. }));
        let late = T0.saturating_add(Duration::from_micros(8_000));
        assert_eq!(
            core.lease_ask(&k, late),
            Some(LeaseReport::renewing(3, 2, 1))
        );
    }

    #[test]
    fn leases_compose_with_breakers_and_survive_brownout() {
        let core = RouterCore::new(RouterCoreConfig {
            partitions: 1,
            default_verdict: Verdict::Deny,
            fleet_size: 1,
            breaker: Some(BreakerConfig {
                failure_threshold: 1,
                open_timeout: Duration::from_secs(60),
            }),
            lease: Some(RouterLeaseConfig::new(1)),
            gray: None,
        });
        let k = key("hot");
        core.on_response(0, &k, &grant(1, 2, 0, 50_000, 1), T0);
        // The partition dies and the breaker opens...
        assert!(core.on_failure(0, &k, T0).is_some());
        // ...but leased admits keep flowing: zero network I/O needed.
        assert!(matches!(core.begin(&k, T0), RouterStep::LeaseAdmit { .. }));
        assert!(matches!(core.begin(&k, T0), RouterStep::LeaseAdmit { .. }));
        // Slice dry during the brownout: now the breaker answers.
        assert!(matches!(core.begin(&k, T0), RouterStep::FastFail { .. }));
    }

    fn gray_core(partitions: usize, gray: GrayConfig) -> RouterCore {
        RouterCore::new(RouterCoreConfig {
            partitions,
            default_verdict: Verdict::Deny,
            fleet_size: 1,
            breaker: None,
            lease: None,
            gray: Some(gray),
        })
    }

    #[test]
    fn gray_off_keeps_the_legacy_wire_discipline() {
        let core = core(2, 3);
        assert!(!core.gray_enabled());
        let baseline = Duration::from_micros(100);
        core.record_rtt(0, 5_000); // no window exists: silently dropped
        assert_eq!(core.attempt_timeout(0, baseline), baseline);
        assert_eq!(core.hedge_delay(0), None);
        assert!(core.retry_budget().is_none());
        assert!(core.discipline(0, baseline).is_noop());
    }

    #[test]
    fn adaptive_timeout_engages_only_after_warmup() {
        let core = gray_core(1, GrayConfig::default());
        let baseline = Duration::from_micros(100);
        for _ in 0..(janus_net::latency::ADAPTIVE_WARMUP - 1) {
            core.record_rtt(0, 200);
            assert_eq!(core.attempt_timeout(0, baseline), baseline);
        }
        core.record_rtt(0, 200);
        // 3 × p99 of an all-200µs window.
        assert_eq!(
            core.attempt_timeout(0, baseline),
            Duration::from_micros(600)
        );
        let d = core.discipline(0, baseline);
        assert_eq!(d.timeout, Some(Duration::from_micros(600)));
        assert!(!d.is_noop());
    }

    #[test]
    fn latency_windows_are_isolated_per_partition() {
        let core = gray_core(2, GrayConfig::default());
        for _ in 0..janus_net::latency::ADAPTIVE_WARMUP {
            core.record_rtt(0, 400);
        }
        assert_eq!(core.hedge_delay(0), Some(Duration::from_micros(400)));
        assert_eq!(core.hedge_delay(1), None, "partition 1 never warmed up");
        let baseline = Duration::from_micros(100);
        assert_eq!(core.attempt_timeout(1, baseline), baseline);
        assert_eq!(
            core.attempt_timeout(0, baseline),
            Duration::from_micros(1_200)
        );
    }

    #[test]
    fn retry_budget_is_shared_across_partitions() {
        let core = gray_core(4, GrayConfig::default());
        let baseline = Duration::from_micros(100);
        let d0 = core.discipline(0, baseline);
        let d3 = core.discipline(3, baseline);
        let shared = d0.budget.expect("budget is on by default");
        for _ in 0..10 {
            assert!(shared.try_withdraw(), "default reserve banks 10 retries");
        }
        // One node-wide bucket: draining it via partition 0's discipline
        // drains it for partition 3 too.
        assert!(!d3.budget.expect("same bucket").try_withdraw());
        assert_eq!(core.retry_budget().unwrap().exhausted(), 1);
        let sent = &core.hedge_stats().hedges_sent;
        assert_eq!(sent.load(std::sync::atomic::Ordering::Relaxed), 0);
    }

    #[test]
    fn fixed_timeout_mode_hedges_without_overriding_the_timeout() {
        let core = gray_core(
            1,
            GrayConfig {
                timeout: TimeoutPolicy::Fixed,
                ..GrayConfig::default()
            },
        );
        for _ in 0..janus_net::latency::ADAPTIVE_WARMUP {
            core.record_rtt(0, 300);
        }
        let d = core.discipline(0, Duration::from_micros(100));
        assert_eq!(d.timeout, None, "Fixed mode keeps the transport timeout");
        assert_eq!(d.hedge_delay, Some(Duration::from_micros(300)));
    }

    #[test]
    fn discipline_rtt_feeds_back_into_the_core_windows() {
        let core = gray_core(1, GrayConfig::default());
        let d = core.discipline(0, Duration::from_micros(100));
        let rtt = d.rtt.expect("discipline carries the partition window");
        for _ in 0..janus_net::latency::ADAPTIVE_WARMUP {
            rtt.record(250);
        }
        // The transport records through its discipline; the next call's
        // discipline sees the warmed window.
        assert_eq!(core.hedge_delay(0), Some(Duration::from_micros(250)));
    }
}
