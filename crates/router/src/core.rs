//! Sans-IO admission core for the request router.
//!
//! Every *decision* a router node makes around one QoS check — which
//! partition owns the key, whether the partition's circuit breaker lets
//! the RPC out at all, whether a failed RPC should be answered from the
//! degraded local bucket or the blind default, and what to learn from a
//! hint-carrying response — is pure state-machine logic over an injected
//! clock. This module extracts that logic from the HTTP handler in
//! [`crate`] so the production tokio path and the deterministic simulator
//! in `janus-dst` drive the *same* code. No sockets, no tasks, no wall
//! clock: this file compiles with nothing but `std`, `janus-types`,
//! `janus-clock`, `janus-hash`, `janus-bucket` and the std-only modules
//! of `janus-net`.
//!
//! The retry schedule of the RPC itself — deadline stamping, nonce
//! reuse, the legacy final attempt — is the sibling sans-IO core
//! [`janus_net::attempt::AttemptPlan`]; a transport (or the simulator)
//! composes the two: `RouterCore` decides *whether and where* to call,
//! `AttemptPlan` decides *what each attempt sends*.
//!
//! Flow per request: [`begin`](RouterCore::begin) →
//! [`RouterStep::Forward`] (perform the RPC) or [`RouterStep::FastFail`]
//! (answer locally, no network); after a forwarded RPC, report
//! [`on_response`](RouterCore::on_response) or
//! [`on_failure`](RouterCore::on_failure).

use janus_bucket::LeakyBucket;
use janus_clock::Nanos;
use janus_hash::{ModuloRouter, Router as _};
use janus_net::breaker::{Admission, BreakerConfig, BreakerState, CircuitBreaker};
use janus_types::sync::Mutex;
use janus_types::{QosKey, QosResponse, RuleHint, Verdict};
use std::collections::HashMap;

/// The decision half of [`crate::RouterConfig`]: everything the core
/// needs, nothing the transport owns (addresses, sockets, retry timing).
#[derive(Debug, Clone)]
pub struct RouterCoreConfig {
    /// Number of QoS-server partitions the fleet hashes over (≥ 1).
    pub partitions: usize,
    /// The verdict served when the backend never answers and no rule
    /// shape was ever learned for the key.
    pub default_verdict: Verdict,
    /// Router nodes sharing admission duty: degraded buckets enforce
    /// `1/fleet_size` of a hinted rule (clamped to at least 1).
    pub fleet_size: usize,
    /// Per-partition circuit breaking plus degraded local admission;
    /// `None` is the paper-faithful ablation (no breakers, no hints).
    pub breaker: Option<BreakerConfig>,
}

/// What [`RouterCore::begin`] decided for one QoS check.
#[derive(Debug)]
pub enum RouterStep {
    /// Perform the RPC against `partition`. `solicit_hint` is set when
    /// breakers are enabled: the first attempt asks the QoS server for
    /// the rule shape so degraded admission has something to enforce.
    Forward {
        /// The partition owning the key (`CRC32(key) mod N`).
        partition: usize,
        /// Ask the server to attach the key's rule shape.
        solicit_hint: bool,
    },
    /// The partition's breaker is open: answer locally without touching
    /// the network.
    FastFail {
        /// The partition whose breaker fast-failed.
        partition: usize,
        /// The locally produced answer.
        answer: LocalAnswer,
    },
}

/// A verdict produced without the backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalAnswer {
    /// The key's degraded bucket (seeded from a learned rule hint,
    /// scaled by fleet size) answered.
    Degraded(Verdict),
    /// No rule shape was ever learned: the configured default reply.
    Default(Verdict),
}

impl LocalAnswer {
    /// The verdict to relay, however it was produced.
    pub fn verdict(&self) -> Verdict {
        match *self {
            LocalAnswer::Degraded(verdict) | LocalAnswer::Default(verdict) => verdict,
        }
    }
}

/// The sans-IO router core: partition hashing, per-partition circuit
/// breakers, learned rule hints and degraded local buckets (see module
/// docs). Thread-safe — the two maps sit behind their own locks and the
/// breakers are internally synchronized, so the production handler calls
/// it concurrently from every HTTP connection while the simulator owns
/// one outright.
#[derive(Debug)]
pub struct RouterCore {
    hash: ModuloRouter,
    default_verdict: Verdict,
    fleet_size: usize,
    /// One breaker per partition; empty when the feature is off.
    breakers: Vec<CircuitBreaker>,
    /// Rule shapes learned from hint-carrying responses, kept across
    /// outages so degraded admission has something to enforce.
    hints: Mutex<HashMap<QosKey, RuleHint>>,
    /// Router-local buckets for degraded admission. A key's bucket is
    /// created once (seeded full at the fleet-scaled shape) and persists
    /// across outage episodes, so repeated brownouts never re-grant the
    /// burst — over-admission stays bounded by one scaled capacity.
    degraded: Mutex<HashMap<QosKey, LeakyBucket>>,
}

impl RouterCore {
    /// A core for `config`. `partitions` is clamped to at least 1 (the
    /// shell validates the backend list before getting here).
    pub fn new(config: RouterCoreConfig) -> Self {
        let partitions = config.partitions.max(1);
        let breakers = match config.breaker {
            Some(breaker) => (0..partitions)
                .map(|_| CircuitBreaker::new(breaker))
                .collect(),
            None => Vec::new(),
        };
        RouterCore {
            hash: ModuloRouter::new(partitions),
            default_verdict: config.default_verdict,
            fleet_size: config.fleet_size.max(1),
            breakers,
            hints: Mutex::new(HashMap::new()),
            degraded: Mutex::new(HashMap::new()),
        }
    }

    /// Whether the breaker/hint refinement is on at all.
    pub fn breakers_enabled(&self) -> bool {
        !self.breakers.is_empty()
    }

    /// The partition owning `key`.
    pub fn route(&self, key: &QosKey) -> usize {
        self.hash.route(key)
    }

    /// The configured default reply.
    pub fn default_verdict(&self) -> Verdict {
        self.default_verdict
    }

    /// Start one QoS check at `now`: forward to the owning partition, or
    /// fast-fail from local state while its breaker is open.
    pub fn begin(&self, key: &QosKey, now: Nanos) -> RouterStep {
        let partition = self.route(key);
        if self.breakers_enabled() {
            if let Admission::FastFail = self.breakers[partition].try_acquire(now) {
                return RouterStep::FastFail {
                    partition,
                    answer: self.local_answer(key, now),
                };
            }
        }
        RouterStep::Forward {
            partition,
            solicit_hint: self.breakers_enabled(),
        }
    }

    /// Report a successful RPC: closes/feeds the partition's breaker and
    /// learns the response's rule hint. Returns `true` when the hint was
    /// new or changed (for stats attribution).
    pub fn on_response(&self, partition: usize, key: &QosKey, response: &QosResponse) -> bool {
        if !self.breakers_enabled() {
            return false;
        }
        self.breakers[partition].record_success();
        match response.hint {
            Some(hint) => self.learn_hint(key, hint),
            None => false,
        }
    }

    /// Report an RPC that exhausted its retry budget (or could not be
    /// dispatched) at `now`. Returns the local answer to serve when the
    /// failure tripped (or found) an open breaker; `None` means the
    /// caller serves the blind default.
    pub fn on_failure(&self, partition: usize, key: &QosKey, now: Nanos) -> Option<LocalAnswer> {
        if !self.breakers_enabled() {
            return None;
        }
        self.breakers[partition].record_failure(now);
        self.breakers[partition]
            .is_open(now)
            .then(|| self.local_answer(key, now))
    }

    /// Serve a verdict without the backend: the key's degraded bucket if
    /// a rule shape was ever learned, the blind default otherwise.
    pub fn local_answer(&self, key: &QosKey, now: Nanos) -> LocalAnswer {
        let hint = self.hints.lock().get(key).copied();
        let Some(hint) = hint else {
            return LocalAnswer::Default(self.default_verdict);
        };
        let shape = hint.split_across(self.fleet_size);
        let mut buckets = self.degraded.lock();
        let bucket = buckets
            .entry(key.clone())
            .or_insert_with(|| LeakyBucket::full(shape.capacity, shape.refill_rate, now));
        LocalAnswer::Degraded(bucket.try_consume(now))
    }

    /// Cache a hinted rule shape. A shape *change* drops the key's
    /// degraded bucket so the next brownout rebuilds it with the new
    /// rule (re-seeding only on a genuine rule update). Returns `true`
    /// when the hint was new or changed.
    fn learn_hint(&self, key: &QosKey, hint: RuleHint) -> bool {
        let mut hints = self.hints.lock();
        let previous = hints.get(key).copied();
        if previous == Some(hint) {
            return false;
        }
        hints.insert(key.clone(), hint);
        if previous.is_some() {
            self.degraded.lock().remove(key);
        }
        true
    }

    /// Breaker state for `partition` at `now`; `None` when breakers are
    /// disabled or the partition is out of range.
    pub fn breaker_state(&self, partition: usize, now: Nanos) -> Option<BreakerState> {
        self.breakers.get(partition).map(|b| b.state(now))
    }

    /// Times `partition`'s breaker has tripped open; `None` as above.
    pub fn breaker_opens(&self, partition: usize) -> Option<u64> {
        self.breakers.get(partition).map(|b| b.opens())
    }

    /// True when every partition's breaker is currently fast-failing —
    /// this node cannot reach any QoS state and should be drained.
    pub fn all_breakers_open(&self, now: Nanos) -> bool {
        !self.breakers.is_empty() && self.breakers.iter().all(|b| b.is_open(now))
    }

    /// Keys with a learned rule hint (diagnostics).
    pub fn hinted_keys(&self) -> usize {
        self.hints.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_types::{Credits, RefillRate};
    use std::time::Duration;

    const T0: Nanos = Nanos::from_secs(50);

    fn key(s: &str) -> QosKey {
        QosKey::new(s).unwrap()
    }

    fn core(partitions: usize, threshold: u32) -> RouterCore {
        RouterCore::new(RouterCoreConfig {
            partitions,
            default_verdict: Verdict::Deny,
            fleet_size: 1,
            breaker: Some(BreakerConfig {
                failure_threshold: threshold,
                open_timeout: Duration::from_secs(60),
            }),
        })
    }

    fn hinted(id: u64, capacity: u64, rate: u64) -> QosResponse {
        QosResponse::new(id, Verdict::Allow).with_hint(RuleHint::new(
            Credits::from_whole(capacity),
            RefillRate::per_second(rate),
        ))
    }

    #[test]
    fn routing_is_stable_and_forwarding_solicits_hints() {
        let core = core(4, 3);
        let k = key("tenant");
        let p = core.route(&k);
        for _ in 0..3 {
            match core.begin(&k, T0) {
                RouterStep::Forward {
                    partition,
                    solicit_hint,
                } => {
                    assert_eq!(partition, p);
                    assert!(solicit_hint, "breakers on => solicit");
                }
                step => panic!("healthy partition must forward, got {step:?}"),
            }
        }
    }

    #[test]
    fn ablation_never_fast_fails_and_learns_nothing() {
        let core = RouterCore::new(RouterCoreConfig {
            partitions: 2,
            default_verdict: Verdict::Allow,
            fleet_size: 1,
            breaker: None,
        });
        let k = key("tenant");
        let p = core.route(&k);
        for _ in 0..20 {
            assert!(core.on_failure(p, &k, T0).is_none(), "no breakers: default");
            match core.begin(&k, T0) {
                RouterStep::Forward { solicit_hint, .. } => {
                    assert!(!solicit_hint, "ablation must not solicit")
                }
                step => panic!("ablation never fast-fails, got {step:?}"),
            }
        }
        assert!(!core.on_response(p, &k, &hinted(1, 10, 1)));
        assert_eq!(core.hinted_keys(), 0);
        assert_eq!(core.breaker_state(p, T0), None);
    }

    #[test]
    fn failures_trip_breaker_then_requests_fast_fail_locally() {
        let core = core(1, 3);
        let k = key("tenant");
        assert!(core.on_failure(0, &k, T0).is_none());
        assert!(core.on_failure(0, &k, T0).is_none());
        // Third consecutive failure trips the breaker: the failing
        // request itself is answered locally (blind default here).
        assert_eq!(
            core.on_failure(0, &k, T0),
            Some(LocalAnswer::Default(Verdict::Deny))
        );
        assert_eq!(core.breaker_state(0, T0), Some(BreakerState::Open));
        assert_eq!(core.breaker_opens(0), Some(1));
        assert!(core.all_breakers_open(T0));
        match core.begin(&k, T0) {
            RouterStep::FastFail { partition, answer } => {
                assert_eq!(partition, 0);
                assert_eq!(answer, LocalAnswer::Default(Verdict::Deny));
            }
            step => panic!("open breaker must fast-fail, got {step:?}"),
        }
    }

    #[test]
    fn degraded_bucket_enforces_learned_shape_across_brownout() {
        let core = core(1, 1);
        let k = key("tenant");
        // Healthy exchange learns the shape: capacity 5, zero refill.
        assert!(core.on_response(0, &k, &hinted(1, 5, 0)));
        assert_eq!(core.hinted_keys(), 1);
        // Partition dies; breaker trips on the first failure and the
        // tripping request itself is served from the bucket (credit 1/5).
        assert_eq!(
            core.on_failure(0, &k, T0),
            Some(LocalAnswer::Degraded(Verdict::Allow))
        );
        let mut allowed = 1;
        for _ in 0..20 {
            match core.local_answer(&k, T0) {
                LocalAnswer::Degraded(Verdict::Allow) => allowed += 1,
                LocalAnswer::Degraded(Verdict::Deny) => {}
                LocalAnswer::Default(_) => panic!("shape was learned"),
            }
        }
        assert_eq!(allowed, 5, "degraded bucket must enforce capacity");
    }

    #[test]
    fn degraded_bucket_splits_shape_across_fleet() {
        let core = RouterCore::new(RouterCoreConfig {
            partitions: 1,
            default_verdict: Verdict::Deny,
            fleet_size: 4,
            breaker: Some(BreakerConfig {
                failure_threshold: 1,
                open_timeout: Duration::from_secs(60),
            }),
        });
        let k = key("shared");
        assert!(core.on_response(0, &k, &hinted(1, 8, 0)));
        let allowed = (0..10)
            .filter(|_| core.local_answer(&k, T0).verdict() == Verdict::Allow)
            .count();
        assert_eq!(allowed, 2, "8 capacity / 4 nodes = 2 local");
    }

    #[test]
    fn changed_hint_reseeds_the_degraded_bucket() {
        let core = core(1, 1);
        let k = key("tenant");
        assert!(core.on_response(0, &k, &hinted(1, 2, 0)));
        // Drain the old bucket dry.
        assert_eq!(core.local_answer(&k, T0).verdict(), Verdict::Allow);
        assert_eq!(core.local_answer(&k, T0).verdict(), Verdict::Allow);
        assert_eq!(core.local_answer(&k, T0).verdict(), Verdict::Deny);
        // Same shape again: not "learned", bucket untouched (still dry).
        assert!(!core.on_response(0, &k, &hinted(2, 2, 0)));
        assert_eq!(core.local_answer(&k, T0).verdict(), Verdict::Deny);
        // A genuine rule update re-seeds at the new shape.
        assert!(core.on_response(0, &k, &hinted(3, 4, 0)));
        let allowed = (0..6)
            .filter(|_| core.local_answer(&k, T0).verdict() == Verdict::Allow)
            .count();
        assert_eq!(allowed, 4, "rebuilt bucket seeds at the new capacity");
    }

    #[test]
    fn open_breaker_probes_after_timeout_and_success_closes() {
        let core = RouterCore::new(RouterCoreConfig {
            partitions: 1,
            default_verdict: Verdict::Deny,
            fleet_size: 1,
            breaker: Some(BreakerConfig {
                failure_threshold: 1,
                open_timeout: Duration::from_millis(250),
            }),
        });
        let k = key("tenant");
        assert!(core.on_failure(0, &k, T0).is_some());
        assert!(matches!(core.begin(&k, T0), RouterStep::FastFail { .. }));
        // Past the open window the next check is let through as a probe.
        let later = T0.saturating_add(Duration::from_millis(300));
        assert!(matches!(core.begin(&k, later), RouterStep::Forward { .. }));
        // ...and only one: a second caller fast-fails while it is out.
        assert!(matches!(core.begin(&k, later), RouterStep::FastFail { .. }));
        core.on_response(0, &k, &QosResponse::new(9, Verdict::Allow));
        assert_eq!(core.breaker_state(0, later), Some(BreakerState::Closed));
        assert!(matches!(core.begin(&k, later), RouterStep::Forward { .. }));
    }
}
