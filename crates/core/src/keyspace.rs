//! Keyspace-churn soak: cycle a drifting hot set through far more
//! distinct keys than the table has slots and score the memory engine.
//!
//! The overload soak (`crate::overload`) saturates one hot key; this
//! soak does the opposite — nearly every request names a *new* key. Each
//! closed-loop driver picks from a Zipf window whose base slides forward
//! every `drift_every` picks ([`janus_workload::KeyPicker::drifting_zipf`]),
//! so old hot keys go cold and become reclaim fodder while new ones keep
//! arriving. The server runs the lock-free table with a deliberately tiny
//! initial slot count, idle-key reclamation on, and a real database
//! behind it for the cold tier.
//!
//! Scored invariants ([`KeyspaceReport::passed`]):
//!
//! * **Flat residency** — the open-slot high-watermark stays within
//!   `residency_multiplier` (default 2×) of the measured live working
//!   set (`answered_rate × (idle_ttl + 2 × reclaim_interval)` plus the
//!   instantaneous Zipf windows), even though the soak cycles orders of
//!   magnitude more distinct keys than that. Reclamation, not table
//!   growth, absorbs the churn.
//! * **Bounded latency** — client p99 stays under an absolute floor;
//!   resize migration and reclaim sweeps must not stall the hot path.
//! * **Credit exactness / no minting** — a zero-refill meter key is
//!   touched every couple of idle TTLs, so it is repeatedly demoted to
//!   the cold tier and readmitted. Across every demote/readmit cycle it
//!   must admit exactly `min(touches, capacity)` — one extra allow means
//!   a reclaim or readmission minted credit (hard fail).
//! * **Churn evidence** — the engine actually resized (`resizes ≥ 1`)
//!   and actually reclaimed (`reclaimed_keys > 0`); a soak that never
//!   exercised the machinery proves nothing.
//!
//! `tests/keyspace.rs` runs the ≈100k-key smoke shape and archives the
//! report as `results/keyspace_soak.json`; EXPERIMENTS.md documents the
//! 10M-key full soak.

use janus_bucket::DefaultRulePolicy;
use janus_db::{DbServer, RulesEngine};
use janus_net::udp::{UdpRpcClient, UdpRpcConfig};
use janus_server::{QosServer, QosServerConfig, TableKind};
use janus_types::{JanusError, QosKey, QosRequest, QosRule, Result, Verdict};
use janus_workload::{Histogram, KeyPicker};
use serde::Serialize;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tuning for one keyspace-churn soak run.
#[derive(Debug, Clone)]
pub struct KeyspaceSoakConfig {
    /// Closed-loop driver tasks, each with its own drifting key window.
    pub concurrency: usize,
    /// Total requests issued across all drivers (the distinct-key count
    /// tracks this 1:1 at `drift_every = 1`).
    pub total_requests: u64,
    /// Instantaneous Zipf window of each driver.
    pub window: usize,
    /// Zipf exponent inside the window.
    pub zipf_exponent: f64,
    /// Picks per window-base advance; 1 is maximum churn.
    pub drift_every: u64,
    /// Every driver sleeps ~1ms after this many requests, capping offered
    /// load so the reclaim sweep (bounded keys per tick) can keep up.
    /// 0 disables pacing.
    pub pace_every: u64,
    /// Initial slot count of the lock-free table — deliberately tiny so
    /// the soak crosses the resize watermark early.
    pub table_slots: usize,
    /// Idle TTL after which an untouched key is demoted to the cold tier.
    pub idle_ttl: Duration,
    /// Reclaim sweep interval.
    pub reclaim_interval: Duration,
    /// Burst capacity of the zero-refill meter key.
    pub meter_capacity: u64,
    /// Gap between meter-key touches; a couple of idle TTLs, so the key
    /// is demoted and readmitted between touches.
    pub meter_interval: Duration,
    /// Absolute client p99 bound.
    pub p99_floor: Duration,
    /// Resident high-watermark must stay within this multiple of the
    /// measured live working set.
    pub residency_multiplier: f64,
    /// Per-attempt response timeout of the soak clients.
    pub request_timeout: Duration,
    /// Retries after the first attempt.
    pub max_retries: u32,
    /// Workload seed (each driver derives its own from this).
    pub seed: u64,
    /// The server under test; `table`, `table_slots`, `idle_ttl` and
    /// `reclaim_interval` are overwritten from the fields above.
    pub server: QosServerConfig,
}

impl Default for KeyspaceSoakConfig {
    fn default() -> Self {
        let mut server = QosServerConfig::test_defaults();
        // Drifting keys are unknown to the database: the default policy
        // must grant them buckets or nothing would ever be resident.
        server.default_policy = DefaultRulePolicy::Limited {
            capacity: 4,
            rate_per_sec: 100,
        };
        KeyspaceSoakConfig {
            concurrency: 2,
            total_requests: 100_000,
            window: 64,
            zipf_exponent: 1.0,
            drift_every: 1,
            pace_every: 16,
            table_slots: 32,
            idle_ttl: Duration::from_millis(50),
            reclaim_interval: Duration::from_millis(5),
            meter_capacity: 25,
            meter_interval: Duration::from_millis(120),
            p99_floor: Duration::from_millis(10),
            residency_multiplier: 2.0,
            request_timeout: Duration::from_millis(5),
            max_retries: 3,
            seed: 0xC0FFEE,
            server,
        }
    }
}

/// Everything a keyspace soak measured, plus the pass/fail verdicts.
#[derive(Debug, Clone, Serialize)]
pub struct KeyspaceReport {
    /// Requests issued across all drivers.
    pub requests: u64,
    /// Requests that got an answer (allow or deny).
    pub answered: u64,
    /// Requests admitted.
    pub allowed: u64,
    /// Requests throttled.
    pub denied: u64,
    /// Requests that exhausted the retry budget unanswered.
    pub errors: u64,
    /// Distinct keys the drivers cycled through (window bases plus the
    /// instantaneous windows).
    pub distinct_keys: u64,
    /// Answered throughput, requests per second.
    pub throughput_rps: f64,
    /// Client-observed p99 call latency, microseconds.
    pub p99_us: u64,
    /// The absolute p99 bound scored against, microseconds.
    pub p99_bound_us: u64,
    /// `p99_us <= p99_bound_us`.
    pub latency_ok: bool,
    /// Highest resident open-slot count sampled during the soak.
    pub resident_high_watermark: u64,
    /// The residency bound scored against (multiplier × measured live
    /// working set, plus one sweep batch of slack).
    pub resident_bound: u64,
    /// `resident_high_watermark <= resident_bound`.
    pub residency_ok: bool,
    /// Times the zero-refill meter key was touched.
    pub meter_touches: u64,
    /// Allow verdicts the meter key produced across every
    /// demote/readmit cycle.
    pub meter_allowed: u64,
    /// The meter key's burst capacity.
    pub meter_capacity: u64,
    /// `meter_allowed == min(meter_touches, meter_capacity)` — demotion
    /// and readmission preserved credit exactly.
    pub credit_exact_ok: bool,
    /// `meter_allowed <= meter_capacity` — the hard no-minting bound.
    pub no_mint_ok: bool,
    /// Completed generation doublings.
    pub resizes: u64,
    /// Live rules carried across generations by incremental migration.
    pub migrated_slots: u64,
    /// Idle keys demoted to the cold tier.
    pub reclaimed_keys: u64,
    /// Resident open slots when the soak ended.
    pub open_slots_final: u64,
    /// `resizes >= 1` — the watermark machinery actually ran.
    pub resizes_ok: bool,
    /// `reclaimed_keys > 0` — the reclamation machinery actually ran.
    pub reclaim_ok: bool,
    /// Wall-clock length of the soak.
    pub elapsed_ms: u64,
}

impl KeyspaceReport {
    /// All scored invariants held.
    pub fn passed(&self) -> bool {
        self.latency_ok
            && self.residency_ok
            && self.credit_exact_ok
            && self.no_mint_ok
            && self.resizes_ok
            && self.reclaim_ok
    }

    /// Pretty-printed JSON for archiving (`results/keyspace_soak.json`).
    pub fn to_json_string(&self) -> Result<String> {
        serde_json::to_string_pretty(self)
            .map_err(|e| JanusError::state(format!("keyspace report serialization: {e}")))
    }
}

/// Run the keyspace-churn schedule end to end and score the invariants.
pub async fn run_keyspace_soak(config: KeyspaceSoakConfig) -> Result<KeyspaceReport> {
    let started = Instant::now();
    // A real database backs the cold tier: reclaim sweeps checkpoint
    // credit and hotness into it, readmissions fetch from it.
    let db = DbServer::spawn(Arc::new(RulesEngine::new())).await?;
    let meter_key = QosKey::new("soak-meter")?;
    db.engine().put(QosRule::per_second(
        meter_key.clone(),
        config.meter_capacity,
        0,
    ));

    let mut server_config = config.server.clone();
    server_config.table = TableKind::LockFree;
    server_config.table_slots = config.table_slots;
    server_config.idle_ttl = Some(config.idle_ttl);
    server_config.reclaim_interval = config.reclaim_interval;
    let server =
        QosServer::spawn(server_config, Some(db.addr().into()), janus_clock::system()).await?;

    let rpc = UdpRpcConfig {
        timeout: config.request_timeout,
        max_retries: config.max_retries,
        ..UdpRpcConfig::lan_defaults()
    };

    // Residency sampler: track the open-slot high-watermark while the
    // drivers churn.
    let done = Arc::new(AtomicBool::new(false));
    let watermark = Arc::new(AtomicU64::new(0));
    let sampler = {
        let stats = Arc::clone(server.stats());
        let done = Arc::clone(&done);
        let watermark = Arc::clone(&watermark);
        tokio::spawn(async move {
            while !done.load(Ordering::Relaxed) {
                let open = stats.engine.open_slots.load(Ordering::Relaxed);
                watermark.fetch_max(open, Ordering::Relaxed);
                tokio::time::sleep(Duration::from_millis(2)).await;
            }
        })
    };

    // Meter task: touch the zero-refill key every couple of idle TTLs so
    // it keeps getting demoted to the cold tier and readmitted.
    let meter = {
        let client = UdpRpcClient::new(rpc.clone());
        let addr = server.udp_addr();
        let key = meter_key.clone();
        let interval = config.meter_interval;
        let done = Arc::clone(&done);
        tokio::spawn(async move {
            let (mut touches, mut allowed) = (0u64, 0u64);
            let mut id = 1u64 << 48;
            while !done.load(Ordering::Relaxed) {
                if let Ok(response) = client.call(addr, &QosRequest::new(id, key.clone())).await {
                    touches += 1;
                    if response.verdict == Verdict::Allow {
                        allowed += 1;
                    }
                }
                id += 1;
                tokio::time::sleep(interval).await;
            }
            (touches, allowed)
        })
    };

    // Closed-loop churn drivers, each with its own drifting window.
    let per_driver = (config.total_requests / config.concurrency.max(1) as u64).max(1);
    let mut drivers = Vec::with_capacity(config.concurrency);
    for w in 0..config.concurrency {
        let client = UdpRpcClient::new(rpc.clone());
        let addr = server.udp_addr();
        let mut picker = KeyPicker::drifting_zipf(
            &format!("soak-w{w}-"),
            config.window,
            config.zipf_exponent,
            config.drift_every,
            config.seed.wrapping_add(w as u64),
        );
        let pace_every = config.pace_every;
        drivers.push(tokio::spawn(async move {
            let mut latency = Histogram::new();
            let (mut allowed, mut denied, mut errors) = (0u64, 0u64, 0u64);
            let mut id = (w as u64) << 32;
            for i in 0..per_driver {
                let key = picker.pick();
                let begun = Instant::now();
                match client.call(addr, &QosRequest::new(id, key)).await {
                    Ok(response) => {
                        latency.record_duration(begun.elapsed());
                        match response.verdict {
                            Verdict::Allow => allowed += 1,
                            Verdict::Deny => denied += 1,
                        }
                    }
                    Err(_) => errors += 1,
                }
                id += 1;
                if pace_every > 0 && (i + 1) % pace_every == 0 {
                    tokio::time::sleep(Duration::from_millis(1)).await;
                }
            }
            let distinct = picker.drift_base() + picker.population() as u64;
            (latency, allowed, denied, errors, distinct)
        }));
    }

    let mut latency = Histogram::new();
    let (mut allowed, mut denied, mut errors, mut distinct_keys) = (0u64, 0u64, 0u64, 0u64);
    for driver in drivers {
        let (l, a, d, e, k) = driver
            .await
            .map_err(|e| JanusError::state(format!("soak driver died: {e}")))?;
        latency.merge(&l);
        allowed += a;
        denied += d;
        errors += e;
        distinct_keys += k;
    }
    done.store(true, Ordering::Relaxed);
    let (meter_touches, meter_allowed) = meter
        .await
        .map_err(|e| JanusError::state(format!("meter task died: {e}")))?;
    let _ = sampler.await;

    let elapsed = started.elapsed();
    let answered = allowed + denied;
    let throughput_rps = answered as f64 / elapsed.as_secs_f64().max(1e-9);
    let snapshot = server.stats().snapshot();

    // The live working set: keys touched within one demotion horizon
    // (idle TTL plus a couple of sweep intervals) at the measured rate,
    // plus every driver's instantaneous window and the meter key. The
    // high-watermark must stay within the configured multiple of it —
    // plus one sweep batch of slack, since demotion happens in bounded
    // batches — no matter how many distinct keys cycled through.
    let horizon = config.idle_ttl + 2 * config.reclaim_interval;
    let working_set =
        throughput_rps * horizon.as_secs_f64() + (config.window * config.concurrency + 1) as f64;
    let resident_bound = (config.residency_multiplier * working_set) as u64 + 256;
    let resident_high_watermark = watermark.load(Ordering::Relaxed);

    let p99_us = latency.quantile(0.99) / 1_000;
    let p99_bound_us = config.p99_floor.as_micros() as u64;
    let meter_expected = meter_touches.min(config.meter_capacity);

    Ok(KeyspaceReport {
        requests: per_driver * config.concurrency as u64,
        answered,
        allowed,
        denied,
        errors,
        distinct_keys,
        throughput_rps,
        p99_us,
        p99_bound_us,
        latency_ok: p99_us <= p99_bound_us,
        resident_high_watermark,
        resident_bound,
        residency_ok: resident_high_watermark <= resident_bound,
        meter_touches,
        meter_allowed,
        meter_capacity: config.meter_capacity,
        credit_exact_ok: meter_allowed == meter_expected,
        no_mint_ok: meter_allowed <= config.meter_capacity,
        resizes: snapshot.resizes,
        migrated_slots: snapshot.migrated_slots,
        reclaimed_keys: snapshot.reclaimed_keys,
        open_slots_final: snapshot.open_slots,
        resizes_ok: snapshot.resizes >= 1,
        reclaim_ok: snapshot.reclaimed_keys > 0,
        elapsed_ms: elapsed.as_millis() as u64,
    })
}
