#![warn(missing_docs)]
//! Janus: a generic, horizontally scalable QoS framework for SaaS
//! applications.
//!
//! This crate assembles the four layers — load balancer, request router,
//! QoS server, database — into a running deployment and gives
//! applications the one call they need:
//!
//! ```no_run
//! # async fn demo() -> janus_types::Result<()> {
//! use janus_core::{Deployment, DeploymentConfig};
//! use janus_types::{QosKey, QosRule};
//!
//! let mut config = DeploymentConfig::default();
//! config.rules = vec![QosRule::per_second(QosKey::new("alice")?, 1000, 100)];
//! let deployment = Deployment::launch(config).await?;
//!
//! let mut client = deployment.client().await?;
//! if client.qos_check(&QosKey::new("alice")?).await? {
//!     // serve the request
//! } else {
//!     // throttle: HTTP 403
//! }
//! # Ok(()) }
//! ```
//!
//! The architecture (paper Fig. 1): the client talks HTTP to a load
//! balancer (gateway or DNS), which spreads requests over stateless
//! request routers; each router forwards over UDP to the QoS server that
//! owns the key (`CRC32(key) mod N`); QoS servers hold leaky buckets and
//! lazily hydrate rules from the database. Nodes within a layer never
//! talk to each other — that is what makes every layer scale out
//! linearly.

mod admin;
mod autoscale;
pub mod chaos;
mod client;
mod deployment;
pub mod gray;
pub mod keyspace;
pub mod overload;

pub use admin::{AdminApi, FleetStats};
pub use autoscale::{Autoscaler, AutoscalerConfig, ScaleEvent};
pub use chaos::{run_chaos_soak, ChaosConfig, ChaosReport, PhaseReport};
pub use client::{Endpoint, QosClient};
pub use deployment::{Deployment, DeploymentConfig, LbMode};
pub use gray::{run_gray_soak, GrayPhase, GraySoakConfig, GraySoakReport};
pub use keyspace::{run_keyspace_soak, KeyspaceReport, KeyspaceSoakConfig};
pub use overload::{run_overload_soak, OverloadPhase, OverloadReport, OverloadSoakConfig};

// Re-export the pieces applications and experiments touch directly, so a
// single dependency on `janus-core` suffices.
pub use janus_bucket::{DefaultRulePolicy, LeakyBucket, QosTable};
pub use janus_lb::{HealthCheckConfig, LbPolicy};
pub use janus_net::udp::UdpRpcConfig;
pub use janus_net::{BreakerConfig, BreakerState, RetryBackoff};
pub use janus_router::{parse_qos_response, qos_http_request};
pub use janus_server::{DbTarget, DispatchMode, QosServerConfig, TableKind};
pub use janus_types::{Credits, QosKey, QosRule, RefillRate, Verdict};
