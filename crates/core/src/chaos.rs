//! Scripted chaos soak: drive a metered key through a fault schedule
//! (master kill → partition blackout → DB outage → heal) and check the
//! brownout invariants.
//!
//! The soak runs a full HA deployment (gateway LB with active health
//! checks, two routers with circuit breakers, one replicated QoS
//! partition, Multi-AZ database) and hammers a single metered key
//! through every phase. Three properties are scored:
//!
//! * **Safety** — total admissions never exceed the rule's budget plus
//!   the bounded slack each authority transfer may add (see
//!   [`ChaosReport::admission_bound`]). Degraded local admission must
//!   not oversell.
//! * **Availability** — every request gets *an* answer (allow or deny);
//!   the error fraction stays under a floor even while the partition is
//!   dark.
//! * **Recovery** — after the partition heals, every router's breaker
//!   closes within a budget (one half-open probe interval plus traffic).
//!
//! The harness returns a [`ChaosReport`]; `tests/chaos.rs` asserts the
//! verdicts and archives the report as `results/chaos_soak.json`.

use crate::client::QosClient;
use crate::deployment::{Deployment, DeploymentConfig, LbMode};
use janus_lb::{HealthCheckConfig, LbPolicy};
use janus_net::BreakerConfig;
use janus_types::{JanusError, QosKey, QosRule, Result, Verdict};
use serde::Serialize;
use std::time::{Duration, Instant};

/// Tuning for one chaos soak run.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Bucket capacity of the metered rule.
    pub capacity: u64,
    /// Refill rate of the metered rule, credits per second.
    pub refill_per_sec: u64,
    /// Requests hammered in each phase.
    pub requests_per_phase: u32,
    /// Pause between consecutive requests.
    pub request_gap: Duration,
    /// Router-side circuit breaker discipline.
    pub breaker: BreakerConfig,
    /// Minimum acceptable fraction of requests that get an answer.
    pub availability_floor: f64,
    /// How long after healing every breaker must be closed again.
    pub breaker_recovery_budget: Duration,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            capacity: 30,
            refill_per_sec: 20,
            requests_per_phase: 60,
            request_gap: Duration::from_millis(5),
            breaker: BreakerConfig {
                failure_threshold: 3,
                open_timeout: Duration::from_millis(150),
            },
            availability_floor: 0.95,
            breaker_recovery_budget: Duration::from_secs(2),
        }
    }
}

/// Outcome counts for one phase of the schedule.
#[derive(Debug, Clone, Serialize)]
pub struct PhaseReport {
    /// Phase name (`baseline`, `master-kill-failover`, ...).
    pub name: String,
    /// Requests issued.
    pub requests: u32,
    /// Requests admitted.
    pub allowed: u32,
    /// Requests throttled.
    pub denied: u32,
    /// Requests that got no answer at all (client-visible errors).
    pub errors: u32,
    /// Wall-clock length of the phase.
    pub duration_ms: u64,
}

/// Everything a soak run measured, plus the pass/fail verdicts.
#[derive(Debug, Clone, Serialize)]
pub struct ChaosReport {
    /// Per-phase outcome counts, in schedule order.
    pub phases: Vec<PhaseReport>,
    /// Admissions summed over the whole soak.
    pub total_allowed: u64,
    /// Throttles summed over the whole soak.
    pub total_denied: u64,
    /// Unanswered requests summed over the whole soak.
    pub total_errors: u64,
    /// Wall-clock length of the soak.
    pub elapsed_ms: u64,
    /// The safety ceiling: `capacity × authority_transfers + refill ×
    /// elapsed`. Each transfer of admission authority (initial fill,
    /// slave promotion with replication lag, degraded-bucket seeding,
    /// heal-time re-hydration) may re-grant at most one capacity.
    pub admission_bound: u64,
    /// `total_allowed <= admission_bound`.
    pub safety_ok: bool,
    /// Fraction of requests that got an answer.
    pub availability: f64,
    /// The floor the run was scored against.
    pub availability_floor: f64,
    /// `availability >= availability_floor`.
    pub availability_ok: bool,
    /// Breaker fast-fails over the router fleet (blackout evidence).
    pub breaker_fast_fails: u64,
    /// Degraded-mode local admissions over the router fleet.
    pub degraded_allowed: u64,
    /// Degraded-mode local denials over the router fleet.
    pub degraded_denied: u64,
    /// Routers the gateway ejected on failed health probes.
    pub gateway_ejections: u64,
    /// Ejected routers the gateway later readmitted.
    pub gateway_readmissions: u64,
    /// Time from heal to every breaker closed, if within budget.
    pub breaker_recovered_ms: Option<u64>,
    /// Whether every breaker closed within the recovery budget.
    pub breaker_recovery_ok: bool,
}

impl ChaosReport {
    /// All three invariants held.
    pub fn passed(&self) -> bool {
        self.safety_ok && self.availability_ok && self.breaker_recovery_ok
    }

    /// Pretty-printed JSON for archiving (`results/chaos_soak.json`).
    pub fn to_json_string(&self) -> Result<String> {
        serde_json::to_string_pretty(self)
            .map_err(|e| JanusError::state(format!("chaos report serialization: {e}")))
    }
}

/// Authority transfers a full soak performs, each worth at most one
/// capacity of slack: initial hydration, slave promotion (replication
/// lag may re-grant spent credit), router-local degraded seeding
/// (split across the fleet, at most one capacity total), and heal-time
/// re-hydration by the replacement node.
const AUTHORITY_TRANSFERS: u64 = 4;

async fn hammer(
    client: &mut QosClient,
    key: &QosKey,
    config: &ChaosConfig,
    name: &str,
) -> PhaseReport {
    let started = Instant::now();
    let (mut allowed, mut denied, mut errors) = (0u32, 0u32, 0u32);
    for _ in 0..config.requests_per_phase {
        match client.qos_check(key).await {
            Ok(true) => allowed += 1,
            Ok(false) => denied += 1,
            Err(_) => errors += 1,
        }
        tokio::time::sleep(config.request_gap).await;
    }
    PhaseReport {
        name: name.to_string(),
        requests: config.requests_per_phase,
        allowed,
        denied,
        errors,
        duration_ms: started.elapsed().as_millis() as u64,
    }
}

/// Run the fault schedule end to end and score the invariants.
pub async fn run_chaos_soak(config: ChaosConfig) -> Result<ChaosReport> {
    let key = QosKey::new("chaos-tenant")?;
    let deployment_config = DeploymentConfig {
        qos_servers: 1,
        routers: 2,
        lb: LbMode::Gateway(LbPolicy::RoundRobin),
        default_verdict: Verdict::Deny,
        ha: true,
        db_ha: true,
        replication_interval: Duration::from_millis(25),
        breaker: Some(config.breaker),
        gateway_health: Some(HealthCheckConfig {
            interval: Duration::from_millis(20),
            fail_threshold: 2,
            probe_timeout: Duration::from_millis(100),
        }),
        rules: vec![QosRule::per_second(
            key.clone(),
            config.capacity,
            config.refill_per_sec,
        )],
        ..DeploymentConfig::default()
    };
    let mut deployment = Deployment::launch(deployment_config).await?;
    let mut client = deployment.client().await?;
    let soak_started = Instant::now();
    let mut phases = Vec::new();

    // Phase 1: everything healthy.
    phases.push(hammer(&mut client, &key, &config, "baseline").await);

    // Phase 2: the partition master dies; DNS failover promotes the
    // slave, which answers with (approximately) the replicated credit.
    deployment.kill_qos_master(0);
    deployment.await_failover(0, Duration::from_secs(5)).await?;
    phases.push(hammer(&mut client, &key, &config, "master-kill-failover").await);

    // Phase 3: the promoted slave dies too — total partition blackout.
    // Breakers trip and routers serve degraded local admission from the
    // learned rule shape.
    deployment.kill_qos_slave(0);
    phases.push(hammer(&mut client, &key, &config, "partition-blackout").await);

    // Phase 4: the database master dies while the partition is still
    // dark. Multi-AZ failover promotes the standby, so heal-time
    // hydration still has a rules source.
    deployment.kill_db_master();
    deployment.await_db_failover(Duration::from_secs(5)).await?;
    phases.push(hammer(&mut client, &key, &config, "db-outage-during-blackout").await);

    // Phase 5: heal the partition and measure breaker recovery: drive
    // light traffic until every router's half-open probe has closed.
    deployment.heal_partition(0).await?;
    let heal_started = Instant::now();
    let mut recovered: Option<Duration> = None;
    let mut recovery_allowed = 0u64;
    while heal_started.elapsed() < config.breaker_recovery_budget {
        if let Ok(true) = client.qos_check(&key).await {
            recovery_allowed += 1;
        }
        if deployment.breakers_closed_everywhere(0) {
            recovered = Some(heal_started.elapsed());
            break;
        }
        tokio::time::sleep(Duration::from_millis(10)).await;
    }
    phases.push(hammer(&mut client, &key, &config, "healed").await);

    let elapsed = soak_started.elapsed();
    let total_allowed = phases.iter().map(|p| u64::from(p.allowed)).sum::<u64>() + recovery_allowed;
    let total_denied = phases.iter().map(|p| u64::from(p.denied)).sum();
    let total_errors = phases.iter().map(|p| u64::from(p.errors)).sum();
    let total_requests: u64 = phases.iter().map(|p| u64::from(p.requests)).sum();
    let admission_bound = config.capacity * AUTHORITY_TRANSFERS
        + (config.refill_per_sec as f64 * elapsed.as_secs_f64()).ceil() as u64;
    let availability = if total_requests == 0 {
        1.0
    } else {
        (total_requests - total_errors) as f64 / total_requests as f64
    };
    let (degraded_allowed, degraded_denied) = deployment.router_degraded_totals();
    let gateway_stats = deployment.gateway().map(|g| {
        let stats = g.stats();
        (
            stats.ejections.load(std::sync::atomic::Ordering::Relaxed),
            stats
                .readmissions
                .load(std::sync::atomic::Ordering::Relaxed),
        )
    });

    Ok(ChaosReport {
        phases,
        total_allowed,
        total_denied,
        total_errors,
        elapsed_ms: elapsed.as_millis() as u64,
        admission_bound,
        safety_ok: total_allowed <= admission_bound,
        availability,
        availability_floor: config.availability_floor,
        availability_ok: availability >= config.availability_floor,
        breaker_fast_fails: deployment.router_fast_fail_total(),
        degraded_allowed,
        degraded_denied,
        gateway_ejections: gateway_stats.map_or(0, |(e, _)| e),
        gateway_readmissions: gateway_stats.map_or(0, |(_, r)| r),
        breaker_recovered_ms: recovered.map(|d| d.as_millis() as u64),
        breaker_recovery_ok: recovered.is_some(),
    })
}
