//! Assembling the four layers into a running Janus deployment.

use crate::client::{Endpoint, QosClient};
use janus_clock::SharedClock;
use janus_db::{DbClient, DbServer, RulesEngine};
use janus_lb::{DnsLb, GatewayLb, HealthCheckConfig, LbPolicy};
use janus_net::dns::{spawn_tcp_health_monitor, HealthMonitor, Resolver, Zone};
use janus_net::BreakerConfig;
use janus_router::{Backend, RequestRouter, RouterConfig};
use janus_server::{DbTarget, QosServer, QosServerConfig, SlaveReplicator};
use janus_types::{JanusError, QosRule, Result, Verdict};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

/// Which load balancer fronts the router fleet.
#[derive(Debug, Clone)]
pub enum LbMode {
    /// ELB-style HTTP reverse proxy.
    Gateway(LbPolicy),
    /// Route53-style DNS load balancing with the given record TTL.
    Dns {
        /// A-record TTL; the paper's evaluation uses 30 s.
        ttl: Duration,
    },
    /// No LB: clients talk straight to the first router (single-node
    /// development setups).
    None,
    /// The paper's large-scale combination (§II-A): several gateway LB
    /// nodes, spread over by DNS — "the client connects to different
    /// gateway load balancer nodes via DNS resolution, while the gateway
    /// load balancer nodes further distribute the requests".
    DnsOverGateways {
        /// Gateway LB node count.
        gateways: usize,
        /// DNS record TTL for the gateway list.
        ttl: Duration,
        /// Per-gateway routing policy.
        policy: LbPolicy,
    },
}

/// Deployment shape and tuning.
#[derive(Debug, Clone)]
pub struct DeploymentConfig {
    /// Number of QoS server partitions (the `N` of `CRC32 mod N`).
    pub qos_servers: usize,
    /// Number of stateless router nodes.
    pub routers: usize,
    /// Load balancer flavour.
    pub lb: LbMode,
    /// Per-QoS-server tuning.
    pub server: QosServerConfig,
    /// Router → QoS server retry discipline.
    pub udp: janus_net::udp::UdpRpcConfig,
    /// Router's reply when a partition never answers.
    pub default_verdict: Verdict,
    /// Routers use a shared, demultiplexed UDP socket instead of the
    /// paper's socket-per-request discipline (see
    /// `janus_net::udp_pool`).
    pub pooled_rpc: bool,
    /// With `pooled_rpc`, routers coalesce concurrent requests to the
    /// same QoS server into batched datagrams (the optimized data
    /// plane). Ignored for the per-request discipline.
    pub batching: bool,
    /// Spawn a slave per QoS server plus a health monitor that promotes
    /// it via DNS failover.
    pub ha: bool,
    /// Multi-AZ database: a standby node receiving replicated writes,
    /// promoted via DNS failover when the master dies (the paper's RDS
    /// configuration). QoS servers address the database by DNS name so
    /// the failover is transparent to them.
    pub db_ha: bool,
    /// Slave replication interval (only with `ha`).
    pub replication_interval: Duration,
    /// Probe interval of the QoS/DB failover health monitors (with `ha`
    /// or `db_ha`). Shorter detects crashes faster at the price of more
    /// probe traffic.
    pub health_probe_interval: Duration,
    /// Consecutive failed probes before a failover monitor promotes the
    /// standby.
    pub health_fail_threshold: u32,
    /// Per-partition circuit breaker on every router. `None` reproduces
    /// the paper exactly: full retry budget on every request, default
    /// reply on exhaustion, no degraded local admission.
    pub breaker: Option<BreakerConfig>,
    /// Active `/healthz` probing by gateway LB nodes, ejecting routers
    /// that report themselves browned out (all breakers open) or stop
    /// answering. `None` keeps the passive skip-on-connect-error LB.
    pub gateway_health: Option<HealthCheckConfig>,
    /// Initial contents of the `qos_rules` table.
    pub rules: Vec<QosRule>,
}

impl Default for DeploymentConfig {
    fn default() -> Self {
        DeploymentConfig {
            qos_servers: 2,
            routers: 2,
            lb: LbMode::Gateway(LbPolicy::RoundRobin),
            server: QosServerConfig::test_defaults(),
            udp: janus_net::udp::UdpRpcConfig::lan_defaults(),
            default_verdict: Verdict::Allow,
            pooled_rpc: false,
            batching: true,
            ha: false,
            db_ha: false,
            replication_interval: Duration::from_millis(50),
            health_probe_interval: Duration::from_millis(25),
            health_fail_threshold: 3,
            breaker: None,
            gateway_health: None,
            rules: Vec::new(),
        }
    }
}

struct Partition {
    master: Option<QosServer>,
    slave: Option<QosServer>,
    replicator: Option<SlaveReplicator>,
    monitor: Option<HealthMonitor>,
    dns_name: String,
}

/// The database layer of a deployment: a single node, or a Multi-AZ
/// master/standby pair behind a DNS failover record.
struct DbLayer {
    master: Option<DbServer>,
    standby: Option<DbServer>,
    monitor: Option<HealthMonitor>,
}

/// DNS name of the database failover record.
const DB_DNS_NAME: &str = "db.janus.internal";

/// A running Janus deployment on loopback: one process, many nodes.
pub struct Deployment {
    clock: SharedClock,
    zone: Arc<Zone>,
    db: DbLayer,
    partitions: Vec<Partition>,
    routers: RwLock<Vec<RequestRouter>>,
    gateways: Vec<GatewayLb>,
    dns_lb: Option<DnsLb>,
    /// Everything needed to spawn another router node at runtime.
    router_template: RouterTemplate,
    /// Everything needed to respawn a QoS server node at runtime
    /// (healing a blacked-out partition in fault drills).
    server_config: QosServerConfig,
    db_target: DbTarget,
}

struct RouterTemplate {
    backends: Vec<Backend>,
    udp: janus_net::udp::UdpRpcConfig,
    default_verdict: Verdict,
    pooled_rpc: bool,
    batching: bool,
    breaker: Option<BreakerConfig>,
    fleet_size: usize,
    lb_ttl: Option<Duration>,
}

impl Deployment {
    /// Launch every layer per `config`.
    pub async fn launch(config: DeploymentConfig) -> Result<Deployment> {
        if config.qos_servers == 0 {
            return Err(JanusError::config("need at least one QoS server"));
        }
        if config.routers == 0 {
            return Err(JanusError::config("need at least one router"));
        }
        let clock = janus_clock::system();
        let zone = Zone::new();

        // Database layer.
        let db = if config.db_ha {
            // Standby first (the master needs its address), both engines
            // seeded with the initial rules (a fresh standby starts from
            // the same snapshot, then receives forwarded writes).
            let standby_engine = Arc::new(RulesEngine::new());
            standby_engine.load(config.rules.iter().cloned());
            let standby = DbServer::spawn(standby_engine).await?;
            let master_engine = Arc::new(RulesEngine::new());
            master_engine.load(config.rules.iter().cloned());
            let master = DbServer::spawn_with_standby(master_engine, standby.addr()).await?;
            zone.insert_failover(
                DB_DNS_NAME,
                master.addr(),
                Some(standby.addr()),
                Duration::ZERO,
            );
            // The DB speaks TCP, so its own port doubles as health probe.
            let monitor = spawn_tcp_health_monitor(
                Arc::clone(&zone),
                DB_DNS_NAME.to_string(),
                |addr| addr,
                config.health_probe_interval,
                config.health_fail_threshold,
            );
            DbLayer {
                master: Some(master),
                standby: Some(standby),
                monitor: Some(monitor),
            }
        } else {
            let engine = Arc::new(RulesEngine::new());
            engine.load(config.rules.iter().cloned());
            DbLayer {
                master: Some(DbServer::spawn(engine).await?),
                standby: None,
                monitor: None,
            }
        };
        let db_target = if config.db_ha {
            DbTarget::Named {
                name: DB_DNS_NAME.to_string(),
                resolver: Arc::new(Resolver::new(Arc::clone(&zone), Arc::clone(&clock))),
            }
        } else {
            DbTarget::Direct(db.master.as_ref().expect("master exists at launch").addr())
        };

        // QoS server layer: one failover DNS record per partition.
        let mut partitions = Vec::with_capacity(config.qos_servers);
        let mut ha_ports: HashMap<SocketAddr, SocketAddr> = HashMap::new();
        for index in 0..config.qos_servers {
            let master = QosServer::spawn(
                config.server.clone(),
                Some(db_target.clone()),
                Arc::clone(&clock),
            )
            .await?;
            let dns_name = format!("qos-{index}.janus.internal");
            ha_ports.insert(master.udp_addr(), master.ha_addr());

            let (slave, replicator) = if config.ha {
                let slave = QosServer::spawn(
                    config.server.clone(),
                    Some(db_target.clone()),
                    Arc::clone(&clock),
                )
                .await?;
                let replicator = SlaveReplicator::spawn(
                    master.ha_addr(),
                    Arc::clone(slave.table()),
                    Arc::clone(&clock),
                    config.replication_interval,
                );
                ha_ports.insert(slave.udp_addr(), slave.ha_addr());
                (Some(slave), Some(replicator))
            } else {
                (None, None)
            };

            zone.insert_failover(
                &dns_name,
                master.udp_addr(),
                slave.as_ref().map(|s| s.udp_addr()),
                // Routers must see a failover quickly; the record is only
                // consulted on the control plane, so a zero TTL is cheap.
                Duration::ZERO,
            );

            let monitor = if config.ha {
                let probe_map = ha_ports.clone();
                Some(spawn_tcp_health_monitor(
                    Arc::clone(&zone),
                    dns_name.clone(),
                    move |udp_addr| probe_map.get(&udp_addr).copied().unwrap_or(udp_addr),
                    config.health_probe_interval,
                    config.health_fail_threshold,
                ))
            } else {
                None
            };

            partitions.push(Partition {
                master: Some(master),
                slave,
                replicator,
                monitor,
                dns_name,
            });
        }

        // Request router layer.
        let backends: Vec<Backend> = partitions
            .iter()
            .map(|p| Backend::Named(p.dns_name.clone()))
            .collect();
        let mut routers = Vec::with_capacity(config.routers);
        for _ in 0..config.routers {
            let resolver = Arc::new(Resolver::new(Arc::clone(&zone), Arc::clone(&clock)));
            let router_config = RouterConfig {
                backends: backends.clone(),
                udp: config.udp.clone(),
                default_verdict: config.default_verdict,
                pooled_rpc: config.pooled_rpc,
                batching: config.batching,
                breaker: config.breaker,
                fleet_size: config.routers,
                deadline_propagation: true,
                lease: false,
            };
            routers.push(RequestRouter::spawn(router_config, Some(resolver)).await?);
        }

        // Load balancer layer.
        let gateway_health = config.gateway_health;
        let spawn_gateway = move |addrs: Vec<SocketAddr>, policy: LbPolicy| async move {
            match gateway_health {
                Some(health) => GatewayLb::spawn_with_health(addrs, policy, health).await,
                None => GatewayLb::spawn(addrs, policy).await,
            }
        };
        let router_addrs: Vec<SocketAddr> = routers.iter().map(|r| r.addr()).collect();
        let (gateways, dns_lb) = match config.lb {
            LbMode::Gateway(policy) => (vec![spawn_gateway(router_addrs, policy).await?], None),
            LbMode::Dns { ttl } => (
                Vec::new(),
                Some(DnsLb::publish(
                    Arc::clone(&zone),
                    "janus.endpoint",
                    router_addrs,
                    ttl,
                )?),
            ),
            LbMode::DnsOverGateways {
                gateways: count,
                ttl,
                policy,
            } => {
                if count == 0 {
                    return Err(JanusError::config("need at least one gateway"));
                }
                let mut gateways = Vec::with_capacity(count);
                for _ in 0..count {
                    gateways.push(spawn_gateway(router_addrs.clone(), policy).await?);
                }
                let gateway_addrs = gateways.iter().map(|g| g.addr()).collect();
                let dns_lb =
                    DnsLb::publish(Arc::clone(&zone), "janus.endpoint", gateway_addrs, ttl)?;
                (gateways, Some(dns_lb))
            }
            LbMode::None => (Vec::new(), None),
        };

        let lb_ttl = match config.lb {
            LbMode::Dns { ttl } | LbMode::DnsOverGateways { ttl, .. } => Some(ttl),
            _ => None,
        };
        Ok(Deployment {
            clock,
            zone,
            db,
            partitions,
            routers: RwLock::new(routers),
            gateways,
            dns_lb,
            server_config: config.server,
            db_target,
            router_template: RouterTemplate {
                backends,
                udp: config.udp,
                default_verdict: config.default_verdict,
                pooled_rpc: config.pooled_rpc,
                batching: config.batching,
                breaker: config.breaker,
                fleet_size: config.routers,
                lb_ttl,
            },
        })
    }

    /// Build a QoS client, modelling a fresh client host (its own DNS
    /// cache under DNS load balancing).
    pub async fn client(&self) -> Result<QosClient> {
        Ok(QosClient::new(self.endpoint()))
    }

    /// The endpoint clients of this deployment use.
    pub fn endpoint(&self) -> Endpoint {
        // DNS (plain or over gateways) takes precedence: that is the
        // published service name.
        if let Some(dns_lb) = &self.dns_lb {
            Endpoint::Dns {
                name: dns_lb.name().to_string(),
                resolver: Arc::new(Resolver::new(
                    Arc::clone(&self.zone),
                    Arc::clone(&self.clock),
                )),
            }
        } else if let Some(gateway) = self.gateways.first() {
            Endpoint::Direct(gateway.addr())
        } else {
            Endpoint::Direct(self.routers.read()[0].addr())
        }
    }

    /// Administrative handle to the rule database (the currently active
    /// node).
    pub async fn db_client(&self) -> Result<DbClient> {
        DbClient::connect(self.active_db_addr()?).await
    }

    /// The address of the currently active database node (master, or the
    /// promoted standby after a DB failover).
    pub fn active_db_addr(&self) -> Result<SocketAddr> {
        if self.db.monitor.is_some() {
            self.zone.active_primary(DB_DNS_NAME)
        } else {
            Ok(self
                .db
                .master
                .as_ref()
                .ok_or_else(|| JanusError::state("database master was killed"))?
                .addr())
        }
    }

    /// Insert or replace a rule at runtime — effective on next sighting,
    /// no restarts (paper §II-D).
    pub async fn upsert_rule(&self, rule: &QosRule) -> Result<()> {
        self.db_client().await?.upsert_rule(rule).await
    }

    /// The active-at-launch database master node (None after
    /// [`kill_db_master`](Self::kill_db_master)).
    pub fn db(&self) -> &DbServer {
        self.db.master.as_ref().expect("database master was killed")
    }

    /// The database standby, when `db_ha` is on.
    pub fn db_standby(&self) -> Option<&DbServer> {
        self.db.standby.as_ref()
    }

    /// Kill the database master (crash injection; requires `db_ha`). The
    /// health monitor promotes the standby within a few probe intervals
    /// and QoS servers re-resolve on their next reconnect.
    pub fn kill_db_master(&mut self) {
        if let Some(master) = self.db.master.take() {
            master.shutdown();
        }
    }

    /// Wait until the DB failover record points at the standby.
    pub async fn await_db_failover(&self, timeout: Duration) -> Result<SocketAddr> {
        let standby = self
            .db
            .standby
            .as_ref()
            .map(|s| s.addr())
            .ok_or_else(|| JanusError::state("deployment has no DB standby"))?;
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if self.zone.active_primary(DB_DNS_NAME)? == standby {
                return Ok(standby);
            }
            if std::time::Instant::now() >= deadline {
                return Err(JanusError::state("DB failover did not happen in time"));
            }
            tokio::time::sleep(Duration::from_millis(10)).await;
        }
    }

    /// Number of router nodes currently serving.
    pub fn router_count(&self) -> usize {
        self.routers.read().len()
    }

    /// Requests served per router node, in fleet order.
    pub fn router_served_counts(&self) -> Vec<u64> {
        self.routers
            .read()
            .iter()
            .map(|r| r.stats().served.load(std::sync::atomic::Ordering::Relaxed))
            .collect()
    }

    /// Requests answered by a router's default reply, summed over the
    /// fleet.
    pub fn router_defaulted_total(&self) -> u64 {
        self.routers
            .read()
            .iter()
            .map(|r| {
                r.stats()
                    .defaulted
                    .load(std::sync::atomic::Ordering::Relaxed)
            })
            .sum()
    }

    /// Resize the router fleet to `target` nodes (the paper's Auto
    /// Scaling group on the router layer, §V-A). Routers are stateless,
    /// so scale-out is spawn + register and scale-in is deregister +
    /// drain. The load balancer (gateway or DNS) is updated atomically;
    /// in-flight requests on removed routers complete.
    pub async fn scale_routers(&self, target: usize) -> Result<usize> {
        if target == 0 {
            return Err(JanusError::config("cannot scale the router layer to zero"));
        }
        // Spawn any new nodes before taking the lock (async).
        let current = self.router_count();
        let mut fresh = Vec::new();
        for _ in current..target {
            let resolver = Arc::new(Resolver::new(
                Arc::clone(&self.zone),
                Arc::clone(&self.clock),
            ));
            let router_config = RouterConfig {
                backends: self.router_template.backends.clone(),
                udp: self.router_template.udp.clone(),
                default_verdict: self.router_template.default_verdict,
                pooled_rpc: self.router_template.pooled_rpc,
                batching: self.router_template.batching,
                breaker: self.router_template.breaker,
                // The degraded-bucket split keeps using the launch-time
                // fleet size: a scaled fleet briefly over- or
                // under-splits, which the soak's slack bound absorbs.
                fleet_size: self.router_template.fleet_size,
                deadline_propagation: true,
                lease: false,
            };
            fresh.push(RequestRouter::spawn(router_config, Some(resolver)).await?);
        }
        let removed: Vec<RequestRouter> = {
            let mut routers = self.routers.write();
            routers.extend(fresh);
            let keep = target.min(routers.len());
            routers.split_off(keep)
        };
        let addrs: Vec<SocketAddr> = self.routers.read().iter().map(|r| r.addr()).collect();
        for gateway in &self.gateways {
            gateway.set_backends(addrs.clone())?;
        }
        // Under plain DNS mode the record lists routers; under
        // DNS-over-gateways it lists gateways, which do not change here.
        if self.gateways.is_empty() {
            if let Some(dns_lb) = &self.dns_lb {
                dns_lb
                    .update_targets(addrs, self.router_template.lb_ttl.unwrap_or(Duration::ZERO))?;
            }
        }
        for router in removed {
            router.shutdown();
        }
        Ok(self.router_count())
    }

    /// The gateway LB nodes (empty under pure-DNS or no-LB modes).
    pub fn gateways(&self) -> &[GatewayLb] {
        &self.gateways
    }

    /// The first gateway LB, if this deployment uses any.
    pub fn gateway(&self) -> Option<&GatewayLb> {
        self.gateways.first()
    }

    /// The DNS LB, if this deployment uses one.
    pub fn dns_lb(&self) -> Option<&DnsLb> {
        self.dns_lb.as_ref()
    }

    /// The shared DNS zone (failover records, endpoint record).
    pub fn zone(&self) -> &Arc<Zone> {
        &self.zone
    }

    /// DNS name of the database failover record (fault-injection tests
    /// rewire it to simulate a hung rather than dead database).
    pub fn db_dns_name(&self) -> &'static str {
        DB_DNS_NAME
    }

    /// The clock all nodes share.
    pub fn clock(&self) -> &SharedClock {
        &self.clock
    }

    /// Master QoS server of partition `index` (None after a kill).
    pub fn qos_master(&self, index: usize) -> Option<&QosServer> {
        self.partitions[index].master.as_ref()
    }

    /// Slave QoS server of partition `index`, when HA is on.
    pub fn qos_slave(&self, index: usize) -> Option<&QosServer> {
        self.partitions[index].slave.as_ref()
    }

    /// Number of QoS partitions.
    pub fn qos_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Kill the master of partition `index` (crash injection). With HA
    /// enabled the health monitor will promote the slave within a few
    /// probe intervals; the replicator is stopped as the slave is about
    /// to become authoritative.
    pub fn kill_qos_master(&mut self, index: usize) {
        let partition = &mut self.partitions[index];
        if let Some(replicator) = &partition.replicator {
            replicator.stop();
        }
        if let Some(master) = partition.master.take() {
            master.shutdown();
        }
    }

    /// Kill the slave of partition `index` (crash injection). Combined
    /// with [`kill_qos_master`](Self::kill_qos_master) this blacks the
    /// partition out entirely — no node answers admission RPCs until
    /// [`heal_partition`](Self::heal_partition).
    pub fn kill_qos_slave(&mut self, index: usize) {
        let partition = &mut self.partitions[index];
        if let Some(replicator) = &partition.replicator {
            replicator.stop();
        }
        if let Some(slave) = partition.slave.take() {
            slave.shutdown();
        }
    }

    /// Respawn a fresh master for a blacked-out partition and repoint
    /// its DNS record at it (healing after a blackout drill). The new
    /// node starts with an empty table and re-learns rules from the DB
    /// on first sighting, exactly like a node replaced by auto scaling.
    /// Any failover monitor for the partition is stopped first — its
    /// probe map predates the new node, so it would fight the record.
    pub async fn heal_partition(&mut self, index: usize) -> Result<SocketAddr> {
        let master = QosServer::spawn(
            self.server_config.clone(),
            Some(self.db_target.clone()),
            Arc::clone(&self.clock),
        )
        .await?;
        let partition = &mut self.partitions[index];
        if let Some(monitor) = partition.monitor.take() {
            monitor.stop();
        }
        self.zone.insert_failover(
            &partition.dns_name,
            master.udp_addr(),
            partition.slave.as_ref().map(|s| s.udp_addr()),
            Duration::ZERO,
        );
        let addr = master.udp_addr();
        partition.master = Some(master);
        Ok(addr)
    }

    /// Breaker fast-fails summed over the router fleet (0 with the
    /// breaker disabled).
    pub fn router_fast_fail_total(&self) -> u64 {
        self.routers
            .read()
            .iter()
            .map(|r| {
                r.stats()
                    .breaker_fast_fails
                    .load(std::sync::atomic::Ordering::Relaxed)
            })
            .sum()
    }

    /// Degraded-mode local admissions `(allowed, denied)` summed over
    /// the router fleet.
    pub fn router_degraded_totals(&self) -> (u64, u64) {
        let routers = self.routers.read();
        let allowed = routers
            .iter()
            .map(|r| {
                r.stats()
                    .degraded_allowed
                    .load(std::sync::atomic::Ordering::Relaxed)
            })
            .sum();
        let denied = routers
            .iter()
            .map(|r| {
                r.stats()
                    .degraded_denied
                    .load(std::sync::atomic::Ordering::Relaxed)
            })
            .sum();
        (allowed, denied)
    }

    /// True while at least one router holds the circuit breaker for
    /// `partition` open.
    pub fn breaker_open_anywhere(&self, partition: usize) -> bool {
        self.routers
            .read()
            .iter()
            .any(|r| r.breaker_state(partition) == Some(janus_net::BreakerState::Open))
    }

    /// True once no router's breaker for `partition` is open or probing
    /// (i.e. the fleet has confirmed the partition healthy again).
    pub fn breakers_closed_everywhere(&self, partition: usize) -> bool {
        self.routers.read().iter().all(|r| {
            matches!(
                r.breaker_state(partition),
                None | Some(janus_net::BreakerState::Closed)
            )
        })
    }

    /// Addresses of the live router nodes, in fleet order.
    pub fn router_addrs(&self) -> Vec<SocketAddr> {
        self.routers.read().iter().map(|r| r.addr()).collect()
    }

    /// Wait until the failover record of partition `index` points at the
    /// slave, or time out.
    pub async fn await_failover(&self, index: usize, timeout: Duration) -> Result<SocketAddr> {
        let partition = &self.partitions[index];
        let slave_addr = partition
            .slave
            .as_ref()
            .map(|s| s.udp_addr())
            .ok_or_else(|| JanusError::state("partition has no slave"))?;
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if self.zone.active_primary(&partition.dns_name)? == slave_addr {
                return Ok(slave_addr);
            }
            if std::time::Instant::now() >= deadline {
                return Err(JanusError::state("failover did not happen in time"));
            }
            tokio::time::sleep(Duration::from_millis(10)).await;
        }
    }

    /// Shut every node down.
    pub fn shutdown(&self) {
        for gateway in &self.gateways {
            gateway.shutdown();
        }
        for router in self.routers.read().iter() {
            router.shutdown();
        }
        for partition in &self.partitions {
            if let Some(monitor) = &partition.monitor {
                monitor.stop();
            }
            if let Some(replicator) = &partition.replicator {
                replicator.stop();
            }
            if let Some(master) = &partition.master {
                master.shutdown();
            }
            if let Some(slave) = &partition.slave {
                slave.shutdown();
            }
        }
        if let Some(monitor) = &self.db.monitor {
            monitor.stop();
        }
        if let Some(master) = &self.db.master {
            master.shutdown();
        }
        if let Some(standby) = &self.db.standby {
            standby.shutdown();
        }
    }
}

impl Drop for Deployment {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use janus_types::QosKey;

    fn key(s: &str) -> QosKey {
        QosKey::new(s).unwrap()
    }

    fn rules(specs: &[(&str, u64, u64)]) -> Vec<QosRule> {
        specs
            .iter()
            .map(|(k, cap, rate)| QosRule::per_second(key(k), *cap, *rate))
            .collect()
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn gateway_deployment_end_to_end() {
        let mut config = DeploymentConfig::default();
        config.rules = rules(&[("alice", 3, 0)]);
        config.default_verdict = Verdict::Deny;
        let deployment = Deployment::launch(config).await.unwrap();
        let mut client = deployment.client().await.unwrap();
        let mut allowed = 0;
        for _ in 0..6 {
            if client.qos_check(&key("alice")).await.unwrap() {
                allowed += 1;
            }
        }
        assert_eq!(allowed, 3);
        // Unknown keys fall to the Deny default policy on the QoS server.
        assert!(!client.qos_check(&key("stranger")).await.unwrap());
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn dns_deployment_end_to_end() {
        let mut config = DeploymentConfig::default();
        config.lb = LbMode::Dns {
            ttl: Duration::from_secs(30),
        };
        config.rules = rules(&[("bob", 2, 0)]);
        let deployment = Deployment::launch(config).await.unwrap();
        let mut client = deployment.client().await.unwrap();
        assert!(client.qos_check(&key("bob")).await.unwrap());
        assert!(client.qos_check(&key("bob")).await.unwrap());
        assert!(!client.qos_check(&key("bob")).await.unwrap());
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn no_lb_deployment() {
        let mut config = DeploymentConfig::default();
        config.lb = LbMode::None;
        config.routers = 1;
        config.qos_servers = 1;
        config.rules = rules(&[("solo", 1, 0)]);
        let deployment = Deployment::launch(config).await.unwrap();
        let mut client = deployment.client().await.unwrap();
        assert!(client.qos_check(&key("solo")).await.unwrap());
        assert!(!client.qos_check(&key("solo")).await.unwrap());
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn rules_added_at_runtime_are_effective() {
        let config = DeploymentConfig {
            default_verdict: Verdict::Deny,
            ..Default::default()
        };
        let deployment = Deployment::launch(config).await.unwrap();
        let mut client = deployment.client().await.unwrap();
        assert!(!client.qos_check(&key("latecomer")).await.unwrap());
        deployment
            .upsert_rule(&QosRule::per_second(key("vip"), 5, 5))
            .await
            .unwrap();
        assert!(client.qos_check(&key("vip")).await.unwrap());
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn gateway_spreads_over_routers() {
        let mut config = DeploymentConfig::default();
        config.routers = 2;
        config.rules = rules(&[("spread", 1000, 1000)]);
        let deployment = Deployment::launch(config).await.unwrap();
        let mut client = deployment.client().await.unwrap();
        for _ in 0..20 {
            client.qos_check(&key("spread")).await.unwrap();
        }
        let counts = deployment.router_served_counts();
        assert_eq!(counts.iter().sum::<u64>(), 20);
        assert!(
            counts.iter().all(|&c| c == 10),
            "round robin skewed: {counts:?}"
        );
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn ha_failover_preserves_service_and_credit() {
        let mut config = DeploymentConfig::default();
        config.qos_servers = 1;
        config.routers = 1;
        config.ha = true;
        config.default_verdict = Verdict::Deny;
        config.rules = rules(&[("survivor", 100, 0)]);
        let mut deployment = Deployment::launch(config).await.unwrap();
        let mut client = deployment.client().await.unwrap();

        // Consume 40 credits on the master.
        for _ in 0..40 {
            assert!(client.qos_check(&key("survivor")).await.unwrap());
        }
        // Let replication catch up, then crash the master.
        tokio::time::sleep(Duration::from_millis(200)).await;
        deployment.kill_qos_master(0);
        deployment
            .await_failover(0, Duration::from_secs(5))
            .await
            .unwrap();

        // The slave answers with (approximately) the replicated credit:
        // at most 60 more requests may pass, not a fresh 100.
        let mut allowed = 0;
        for _ in 0..100 {
            if client.qos_check(&key("survivor")).await.unwrap() {
                allowed += 1;
            }
        }
        assert!(
            (55..=65).contains(&allowed),
            "slave admitted {allowed}, expected ~60 (replicated credit)"
        );
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn breaker_deployment_survives_blackout_and_heals() {
        let mut config = DeploymentConfig::default();
        config.qos_servers = 1;
        config.routers = 1;
        config.lb = LbMode::None;
        config.default_verdict = Verdict::Deny;
        config.breaker = Some(BreakerConfig {
            failure_threshold: 2,
            open_timeout: Duration::from_millis(200),
        });
        config.rules = rules(&[("metered", 4, 0)]);
        let mut deployment = Deployment::launch(config).await.unwrap();
        let mut client = deployment.client().await.unwrap();

        // One healthy request teaches the router the rule shape.
        assert!(client.qos_check(&key("metered")).await.unwrap());

        // Blackout: the only node of the only partition dies (no HA).
        deployment.kill_qos_master(0);
        let mut allowed_during_outage = 0;
        for _ in 0..12 {
            if client.qos_check(&key("metered")).await.unwrap() {
                allowed_during_outage += 1;
            }
        }
        // Request 1 exhausts retries -> default Deny and trips attempt 2's
        // breaker; from then on the degraded bucket (capacity 4, rate 0)
        // answers locally: 4 allows, then denies.
        assert_eq!(allowed_during_outage, 4, "degraded bucket oversold");
        assert!(deployment.breaker_open_anywhere(0));
        assert!(deployment.router_fast_fail_total() >= 1);
        let (degraded_allowed, degraded_denied) = deployment.router_degraded_totals();
        assert_eq!(degraded_allowed, 4);
        assert!(degraded_denied >= 6);

        // Heal: fresh node, DNS repointed; after the open timeout the
        // half-open probe closes the breaker on a live answer.
        deployment.heal_partition(0).await.unwrap();
        tokio::time::sleep(Duration::from_millis(250)).await;
        assert!(client.qos_check(&key("metered")).await.unwrap());
        assert!(deployment.breakers_closed_everywhere(0));
    }

    #[tokio::test]
    async fn rejects_zero_sized_layers() {
        let mut config = DeploymentConfig::default();
        config.qos_servers = 0;
        assert!(Deployment::launch(config).await.is_err());
        let mut config = DeploymentConfig::default();
        config.routers = 0;
        assert!(Deployment::launch(config).await.is_err());
    }
}
