//! The operator surface: rule administration and fleet statistics over
//! HTTP.
//!
//! The paper assumes "the service provider can define different QoS
//! rules" and that rules are created, modified and deleted over time
//! (§II-D) but leaves the operator tooling out of scope. This module
//! provides it:
//!
//! ```text
//! GET    /rules                 -> JSON array of every rule
//! GET    /rules/{key}           -> one rule, or 404
//! PUT    /rules/{key}?capacity=1000&rate=100[&credit=500]
//! DELETE /rules/{key}           -> 200 / 404
//! GET    /stats                 -> fleet counters (routers, partitions, LB, DB)
//! GET    /healthz               -> "ok"
//! ```
//!
//! Rule changes go straight to the database, so they follow the paper's
//! propagation rules: new keys are effective on first sighting; keys with
//! live buckets converge at the QoS servers' next sync interval.

use crate::deployment::Deployment;
use janus_net::http::{
    percent_decode, HttpHandler, HttpRequest, HttpResponse, HttpServer, Method, StatusCode,
};
use janus_types::{Credits, QosKey, QosRule, RefillRate, Result};
use serde::Serialize;
use std::future::Future;
use std::net::SocketAddr;
use std::pin::Pin;
use std::sync::Arc;

/// Fleet-wide statistics returned by `GET /stats`.
#[derive(Debug, Serialize)]
pub struct FleetStats {
    /// Router nodes currently serving.
    pub routers: usize,
    /// Requests served per router node.
    pub router_served: Vec<u64>,
    /// Default replies issued across the router fleet.
    pub router_defaulted: u64,
    /// QoS partitions.
    pub partitions: usize,
    /// Per-partition decision counters.
    pub partition_answered: Vec<u64>,
    /// Per-partition datagrams shed for any reason: full queue, expired
    /// deadline budget, or the sojourn governor.
    pub partition_shed: Vec<u64>,
    /// Per-partition database fetches (first sightings).
    pub partition_db_fetches: Vec<u64>,
    /// Rules currently in the database.
    pub rules: u64,
}

struct AdminHandler {
    deployment: Arc<Deployment>,
}

impl AdminHandler {
    async fn get_rules(&self) -> Result<HttpResponse> {
        let mut db = self.deployment.db_client().await?;
        let rules = db.load_all().await?;
        Ok(json_response(&rules))
    }

    async fn get_rule(&self, key: &QosKey) -> Result<HttpResponse> {
        let mut db = self.deployment.db_client().await?;
        match db.get_rule(key).await? {
            Some(rule) => Ok(json_response(&rule)),
            None => Ok(HttpResponse::status(StatusCode::NOT_FOUND)),
        }
    }

    async fn put_rule(&self, key: QosKey, request: &HttpRequest) -> Result<HttpResponse> {
        let (Some(capacity), Some(rate)) = (
            parse_param(request, "capacity"),
            parse_param(request, "rate"),
        ) else {
            return Ok(HttpResponse::status(StatusCode::BAD_REQUEST)
                .with_header("x-error", "capacity and rate are required integers"));
        };
        let mut rule = QosRule::new(
            key,
            Credits::from_whole(capacity),
            RefillRate::per_second(rate),
        );
        if let Some(credit) = parse_param(request, "credit") {
            rule.credit = Credits::from_whole(credit).min(rule.capacity);
        }
        let mut db = self.deployment.db_client().await?;
        db.upsert_rule(&rule).await?;
        Ok(json_response(&rule))
    }

    async fn delete_rule(&self, key: &QosKey) -> Result<HttpResponse> {
        let mut db = self.deployment.db_client().await?;
        if db.delete_rule(key).await? {
            Ok(HttpResponse::ok("deleted"))
        } else {
            Ok(HttpResponse::status(StatusCode::NOT_FOUND))
        }
    }

    async fn stats(&self) -> Result<HttpResponse> {
        use std::sync::atomic::Ordering;
        let deployment = &self.deployment;
        let partitions = deployment.qos_partitions();
        let mut answered = Vec::with_capacity(partitions);
        let mut shed = Vec::with_capacity(partitions);
        let mut db_fetches = Vec::with_capacity(partitions);
        for index in 0..partitions {
            // A killed master reports zeros rather than erroring.
            let stats = deployment.qos_master(index).map(|m| Arc::clone(m.stats()));
            answered.push(
                stats
                    .as_ref()
                    .map(|s| s.answered.load(Ordering::Relaxed))
                    .unwrap_or(0),
            );
            shed.push(stats.as_ref().map(|s| s.shed_total()).unwrap_or(0));
            db_fetches.push(
                stats
                    .as_ref()
                    .map(|s| s.db_fetches.load(Ordering::Relaxed))
                    .unwrap_or(0),
            );
        }
        let mut db = deployment.db_client().await?;
        let stats = FleetStats {
            routers: deployment.router_count(),
            router_served: deployment.router_served_counts(),
            router_defaulted: deployment.router_defaulted_total(),
            partitions,
            partition_answered: answered,
            partition_shed: shed,
            partition_db_fetches: db_fetches,
            rules: db.count().await?,
        };
        Ok(json_response(&stats))
    }
}

fn json_response<T: Serialize>(value: &T) -> HttpResponse {
    let body = serde_json::to_vec_pretty(value).expect("serializable");
    HttpResponse {
        status: StatusCode::OK,
        headers: vec![("content-type".into(), "application/json".into())],
        body,
    }
}

fn parse_param(request: &HttpRequest, name: &str) -> Option<u64> {
    request.query_param(name)?.parse().ok()
}

/// Extract and validate the `{key}` segment of `/rules/{key}`.
fn rule_key(path: &str) -> Option<QosKey> {
    let encoded = path.strip_prefix("/rules/")?;
    if encoded.is_empty() || encoded.contains('/') {
        return None;
    }
    QosKey::new(percent_decode(encoded)).ok()
}

impl HttpHandler for AdminHandler {
    fn handle(
        &self,
        request: HttpRequest,
        _peer: SocketAddr,
    ) -> Pin<Box<dyn Future<Output = HttpResponse> + Send + '_>> {
        Box::pin(async move {
            let outcome = match (request.method, request.path()) {
                (Method::Get, "/healthz") => Ok(HttpResponse::ok("ok")),
                (Method::Get, "/stats") => self.stats().await,
                (Method::Get, "/rules") => self.get_rules().await,
                (method, path) if path.starts_with("/rules/") => match rule_key(path) {
                    None => Ok(HttpResponse::status(StatusCode::BAD_REQUEST)),
                    Some(key) => match method {
                        Method::Get => self.get_rule(&key).await,
                        Method::Put | Method::Post => self.put_rule(key, &request).await,
                        Method::Delete => self.delete_rule(&key).await,
                    },
                },
                _ => Ok(HttpResponse::status(StatusCode::NOT_FOUND)),
            };
            outcome.unwrap_or_else(|_| HttpResponse::status(StatusCode::SERVICE_UNAVAILABLE))
        })
    }
}

/// A running admin API server.
pub struct AdminApi {
    http: HttpServer,
}

impl AdminApi {
    /// Serve the admin API for `deployment` on an ephemeral loopback
    /// port.
    pub async fn spawn(deployment: Arc<Deployment>) -> Result<AdminApi> {
        let handler = Arc::new(AdminHandler { deployment });
        Ok(AdminApi {
            http: HttpServer::spawn(handler).await?,
        })
    }

    /// The admin endpoint.
    pub fn addr(&self) -> SocketAddr {
        self.http.addr()
    }

    /// Stop serving.
    pub fn shutdown(&self) {
        self.http.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DeploymentConfig, QosClient};
    use janus_net::http::HttpClient;
    use janus_types::Verdict;

    async fn setup() -> (Arc<Deployment>, AdminApi) {
        let config = DeploymentConfig {
            qos_servers: 1,
            routers: 1,
            rules: vec![QosRule::per_second(QosKey::new("seed").unwrap(), 10, 1)],
            default_verdict: Verdict::Deny,
            ..Default::default()
        };
        let deployment = Arc::new(Deployment::launch(config).await.unwrap());
        let admin = AdminApi::spawn(Arc::clone(&deployment)).await.unwrap();
        (deployment, admin)
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn rule_crud_cycle() {
        let (_deployment, admin) = setup().await;
        let mut http = HttpClient::connect(admin.addr()).await.unwrap();

        // Create.
        let resp = http
            .request(&HttpRequest {
                method: Method::Put,
                target: "/rules/alice%3Aphotos?capacity=1000&rate=100".into(),
                headers: vec![],
                body: vec![],
            })
            .await
            .unwrap();
        assert_eq!(resp.status, StatusCode::OK, "{}", resp.body_text());

        // Read one.
        let resp = http
            .request(&HttpRequest::get("/rules/alice%3Aphotos"))
            .await
            .unwrap();
        assert_eq!(resp.status, StatusCode::OK);
        let rule: QosRule = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(rule.key.as_str(), "alice:photos");
        assert_eq!(rule.capacity, Credits::from_whole(1000));

        // List.
        let resp = http.request(&HttpRequest::get("/rules")).await.unwrap();
        let rules: Vec<QosRule> = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(rules.len(), 2); // seed + alice

        // Delete.
        let resp = http
            .request(&HttpRequest {
                method: Method::Delete,
                target: "/rules/alice%3Aphotos".into(),
                headers: vec![],
                body: vec![],
            })
            .await
            .unwrap();
        assert_eq!(resp.status, StatusCode::OK);
        let resp = http
            .request(&HttpRequest::get("/rules/alice%3Aphotos"))
            .await
            .unwrap();
        assert_eq!(resp.status, StatusCode::NOT_FOUND);
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn admin_created_rules_govern_admission() {
        let (deployment, admin) = setup().await;
        HttpClient::oneshot(
            admin.addr(),
            &HttpRequest {
                method: Method::Put,
                target: "/rules/newbie?capacity=2&rate=0".into(),
                headers: vec![],
                body: vec![],
            },
        )
        .await
        .unwrap();
        let mut client = QosClient::new(deployment.endpoint());
        let key = QosKey::new("newbie").unwrap();
        assert!(client.qos_check(&key).await.unwrap());
        assert!(client.qos_check(&key).await.unwrap());
        assert!(!client.qos_check(&key).await.unwrap());
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn stats_reflect_traffic() {
        let (deployment, admin) = setup().await;
        let mut client = QosClient::new(deployment.endpoint());
        for _ in 0..5 {
            let _ = client.qos_check(&QosKey::new("seed").unwrap()).await;
        }
        let resp = HttpClient::oneshot(admin.addr(), &HttpRequest::get("/stats"))
            .await
            .unwrap();
        assert_eq!(resp.status, StatusCode::OK);
        let stats: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(stats["routers"], 1);
        assert_eq!(stats["partitions"], 1);
        assert_eq!(stats["rules"], 1);
        assert_eq!(stats["partition_answered"][0], 5);
        assert_eq!(stats["router_served"][0], 5);
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn rejects_malformed_requests() {
        let (_deployment, admin) = setup().await;
        let mut http = HttpClient::connect(admin.addr()).await.unwrap();
        // Missing params.
        let resp = http
            .request(&HttpRequest {
                method: Method::Put,
                target: "/rules/x?capacity=5".into(),
                headers: vec![],
                body: vec![],
            })
            .await
            .unwrap();
        assert_eq!(resp.status, StatusCode::BAD_REQUEST);
        // Nested path.
        let resp = http.request(&HttpRequest::get("/rules/a/b")).await.unwrap();
        assert_eq!(resp.status, StatusCode::BAD_REQUEST);
        // Unknown route.
        let resp = http.request(&HttpRequest::get("/nope")).await.unwrap();
        assert_eq!(resp.status, StatusCode::NOT_FOUND);
        // 404 on missing rule delete.
        let resp = http
            .request(&HttpRequest {
                method: Method::Delete,
                target: "/rules/ghost".into(),
                headers: vec![],
                body: vec![],
            })
            .await
            .unwrap();
        assert_eq!(resp.status, StatusCode::NOT_FOUND);
    }
}
