//! Gray-failure soak: one partition turns slow-but-alive, then heals.
//!
//! Unlike the blackout chaos soak ([`crate::chaos`]), nothing here ever
//! drops a datagram or kills a node: the fault is a per-datagram defer
//! on the QoS server's socket (requests *and* responses), the
//! gray-failure shape that never trips a consecutive-timeout circuit
//! breaker. The router runs the full gray plane — adaptive per-attempt
//! timeouts learned from observed RTT, credit-safe same-nonce hedges,
//! and the node-global retry budget (DESIGN.md ablation 15) — and three
//! properties are scored:
//!
//! * **Availability** — every request gets an answer through the slow
//!   window (adaptive timeouts cut losses at `clamp(p99 × multiplier)`
//!   instead of riding the fixed 20 ms discipline to the deadline).
//! * **Recovery** — after the link heals, the rolling p99 returns to a
//!   small multiple of the healthy baseline within a budget.
//! * **Bounded amplification** — extra wire attempts (retries + hedges)
//!   measured at the server stay under the retry budget's deposit
//!   stream: `wire / primaries ≤ 1 + deposit% + reserve/primaries +
//!   slack`. A gray partition must not provoke a retry storm.
//!
//! The harness returns a [`GraySoakReport`]; `tests/gray_soak.rs`
//! asserts the verdicts and archives `results/gray_soak.json`.

use janus_net::fault::FaultPlan;
use janus_net::http::HttpClient;
use janus_router::core::GrayConfig;
use janus_router::{parse_qos_response, qos_http_request, RequestRouter, RouterConfig};
use janus_server::{QosServer, QosServerConfig};
use janus_types::{JanusError, QosKey, QosRule, Result, Verdict};
use serde::Serialize;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// Tuning for one gray soak run.
#[derive(Debug, Clone, Copy)]
pub struct GraySoakConfig {
    /// Requests hammered in each phase.
    pub requests_per_phase: u32,
    /// Pause between consecutive requests.
    pub request_gap: Duration,
    /// Per-datagram defer while the partition is gray. Applied on both
    /// directions of the server socket, so the observed RTT grows by
    /// twice this — 5 ms each way turns a ~200 µs loopback round trip
    /// into ~10 ms, the "50× slower" shape from the paper's LAN budget.
    pub gray_delay: Duration,
    /// Healed rolling p99 must come back under `healthy_p99 ×
    /// recovery_multiplier` (or [`GraySoakConfig::recovery_floor`],
    /// whichever is larger) within this budget.
    pub recovery_budget: Duration,
    /// Multiplier on the healthy p99 that counts as recovered.
    pub recovery_multiplier: u64,
    /// Absolute recovery ceiling floor, so a sub-100 µs healthy baseline
    /// on a quiet box doesn't demand the impossible of a busy CI one.
    pub recovery_floor: Duration,
    /// Extra amplification allowed over the budget's analytic bound,
    /// absorbing measurement noise (in-flight attempts at phase edges).
    pub amplification_slack: f64,
}

impl Default for GraySoakConfig {
    fn default() -> Self {
        GraySoakConfig {
            requests_per_phase: 150,
            request_gap: Duration::from_millis(1),
            gray_delay: Duration::from_millis(5),
            recovery_budget: Duration::from_secs(2),
            recovery_multiplier: 10,
            recovery_floor: Duration::from_millis(2),
            amplification_slack: 0.25,
        }
    }
}

/// Outcome counts and latency marks for one phase.
#[derive(Debug, Clone, Serialize)]
pub struct GrayPhase {
    /// Phase name (`healthy`, `gray`, `healed`).
    pub name: String,
    /// Requests issued.
    pub requests: u32,
    /// Requests admitted.
    pub allowed: u32,
    /// Requests throttled (including default replies under Deny).
    pub denied: u32,
    /// Requests that got no answer at all.
    pub errors: u32,
    /// Median end-to-end latency, µs.
    pub p50_us: u64,
    /// Tail end-to-end latency, µs.
    pub p99_us: u64,
    /// Wall-clock length of the phase.
    pub duration_ms: u64,
}

/// Everything a gray soak measured, plus the pass/fail verdicts.
#[derive(Debug, Clone, Serialize)]
pub struct GraySoakReport {
    /// Per-phase outcomes, in schedule order.
    pub phases: Vec<GrayPhase>,
    /// Healthy-phase p99, µs — the recovery baseline.
    pub healthy_p99_us: u64,
    /// Gray-phase p99, µs.
    pub gray_p99_us: u64,
    /// Healed-phase p99, µs.
    pub healed_p99_us: u64,
    /// Time from heal until the rolling p99 came back under the
    /// recovery ceiling, if within budget.
    pub recovered_ms: Option<u64>,
    /// The ceiling the recovery was scored against, µs.
    pub recovery_ceiling_us: u64,
    /// Whether the p99 recovered within budget.
    pub recovery_ok: bool,
    /// Fraction of requests that got an answer.
    pub availability: f64,
    /// `availability == 1.0` — the gray plane must never hang a caller.
    pub availability_ok: bool,
    /// Hedged attempts the router issued.
    pub hedges_sent: u64,
    /// Hedged calls whose answer landed after the hedge went out.
    pub hedge_wins: u64,
    /// Retries/hedges refused by the exhausted retry budget.
    pub retry_budget_exhausted: u64,
    /// Last adaptive per-attempt timeout the router derived, µs.
    pub adaptive_timeout_us: u64,
    /// HTTP requests issued (primary wire attempts).
    pub primaries: u64,
    /// Datagrams the server saw (answered + dedup-absorbed + shed):
    /// primaries plus every retry and hedge that reached the wire.
    pub wire_attempts: u64,
    /// `wire_attempts / primaries`.
    pub amplification: f64,
    /// The budget-derived ceiling the amplification was scored against.
    pub amplification_bound: f64,
    /// `amplification <= amplification_bound`.
    pub amplification_ok: bool,
    /// Wall-clock length of the soak.
    pub elapsed_ms: u64,
}

impl GraySoakReport {
    /// All three invariants held.
    pub fn passed(&self) -> bool {
        self.availability_ok && self.recovery_ok && self.amplification_ok
    }

    /// Pretty-printed JSON for archiving (`results/gray_soak.json`).
    pub fn to_json_string(&self) -> Result<String> {
        serde_json::to_string_pretty(self)
            .map_err(|e| JanusError::state(format!("gray report serialization: {e}")))
    }
}

/// Nearest-rank percentile over raw µs samples.
fn percentile_us(samples: &mut [u64], pct: u64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    let rank = ((samples.len() as u64 * pct).div_ceil(100)).clamp(1, samples.len() as u64);
    samples[(rank - 1) as usize]
}

struct Hammered {
    phase: GrayPhase,
    samples: Vec<u64>,
}

async fn hammer(
    client: &mut HttpClient,
    key: &QosKey,
    config: &GraySoakConfig,
    name: &str,
) -> Hammered {
    let started = Instant::now();
    let (mut allowed, mut denied, mut errors) = (0u32, 0u32, 0u32);
    let mut samples = Vec::with_capacity(config.requests_per_phase as usize);
    for _ in 0..config.requests_per_phase {
        let t = Instant::now();
        match client.request(&qos_http_request(key)).await {
            Ok(resp) => match parse_qos_response(&resp) {
                Ok(Verdict::Allow) => allowed += 1,
                Ok(Verdict::Deny) => denied += 1,
                Err(_) => errors += 1,
            },
            Err(_) => errors += 1,
        }
        samples.push(t.elapsed().as_micros() as u64);
        tokio::time::sleep(config.request_gap).await;
    }
    let mut sorted = samples.clone();
    let phase = GrayPhase {
        name: name.to_string(),
        requests: config.requests_per_phase,
        allowed,
        denied,
        errors,
        p50_us: percentile_us(&mut sorted, 50),
        p99_us: percentile_us(&mut sorted, 99),
        duration_ms: started.elapsed().as_millis() as u64,
    };
    Hammered { phase, samples }
}

/// Run the gray schedule (healthy → one partition 50× slower → heal)
/// end to end and score availability, p99 recovery and amplification.
pub async fn run_gray_soak(config: GraySoakConfig) -> Result<GraySoakReport> {
    let key = QosKey::new("gray-tenant")?;
    // The slow link: every datagram through the server's socket is
    // deferred (never dropped) while the gray window is open.
    let faults = FaultPlan::new(0.0, 0.0, Duration::ZERO, 0x6A71);
    let server = QosServer::spawn_with_faults(
        QosServerConfig::test_defaults(),
        None,
        janus_clock::system(),
        std::sync::Arc::clone(&faults),
    )
    .await?;
    server.table().insert(
        QosRule::per_second(key.clone(), 1_000_000, 1_000_000),
        server.clock().now(),
    );

    let gray = GrayConfig::default();
    let budget = gray.budget.expect("default gray config carries a budget");
    let mut router_config = RouterConfig::direct([server.udp_addr()]);
    router_config.default_verdict = Verdict::Deny;
    // Breakers only trip on *hard* consecutive timeouts; leaving them on
    // shows the gray window never closes them — the adaptive plane, not
    // the breaker, is what keeps the tail bounded.
    router_config.gray = Some(gray);
    let router = RequestRouter::spawn(router_config, None).await?;
    let mut client = HttpClient::connect(router.addr()).await?;

    let soak_started = Instant::now();
    let mut phases = Vec::new();

    // Phase 1: healthy baseline — also warms the RTT windows so the
    // adaptive timeout and hedge delay are learned, not the fallbacks.
    let healthy = hammer(&mut client, &key, &config, "healthy").await;
    let healthy_p99 = healthy.phase.p99_us;
    phases.push(healthy.phase);

    // Phase 2: the partition goes gray — alive, answering, 50× slower.
    faults.set_reordering(1.0, config.gray_delay);
    let gray_phase = hammer(&mut client, &key, &config, "gray").await;
    let gray_p99 = gray_phase.phase.p99_us;
    phases.push(gray_phase.phase);

    // Phase 3: heal, then probe until the rolling p99 (last 50 answers)
    // is back under the ceiling.
    faults.set_reordering(0.0, Duration::ZERO);
    let ceiling_us =
        (healthy_p99 * config.recovery_multiplier).max(config.recovery_floor.as_micros() as u64);
    let heal_started = Instant::now();
    let mut recovered: Option<Duration> = None;
    let mut window: Vec<u64> = Vec::new();
    let mut probes = 0u64;
    while heal_started.elapsed() < config.recovery_budget {
        let t = Instant::now();
        let _ = client.request(&qos_http_request(&key)).await;
        probes += 1;
        window.push(t.elapsed().as_micros() as u64);
        if window.len() > 50 {
            window.remove(0);
        }
        if window.len() >= 20 {
            let mut sorted = window.clone();
            if percentile_us(&mut sorted, 99) <= ceiling_us {
                recovered = Some(heal_started.elapsed());
                break;
            }
        }
        tokio::time::sleep(config.request_gap).await;
    }
    let healed = hammer(&mut client, &key, &config, "healed").await;
    let healed_p99 = healed.phase.p99_us;
    phases.push(healed.phase);

    // Scoring. Wire attempts are counted where they land: every router
    // datagram — primary, retry or hedge — reaches the server (the gray
    // fault defers, never drops) and shows up as an answer, a
    // dedup-window hit, or a shed.
    let sstats = server.stats();
    let wire_attempts = sstats.answered.load(Ordering::Relaxed)
        + sstats.dedup_hits.load(Ordering::Relaxed)
        + sstats.shed_full.load(Ordering::Relaxed)
        + sstats.shed_expired.load(Ordering::Relaxed)
        + sstats.shed_sojourn.load(Ordering::Relaxed);
    let primaries = u64::from(config.requests_per_phase) * 3 + probes;
    let amplification = wire_attempts as f64 / primaries as f64;
    let amplification_bound = 1.0
        + f64::from(budget.deposit_pct) / 100.0
        + (f64::from(budget.min_reserve) + 1.0) / primaries as f64
        + config.amplification_slack;

    let rstats = router.stats();
    let total_requests: u64 = phases.iter().map(|p| u64::from(p.requests)).sum();
    let total_errors: u64 = phases.iter().map(|p| u64::from(p.errors)).sum();
    let availability = if total_requests == 0 {
        1.0
    } else {
        (total_requests - total_errors) as f64 / total_requests as f64
    };

    Ok(GraySoakReport {
        phases,
        healthy_p99_us: healthy_p99,
        gray_p99_us: gray_p99,
        healed_p99_us: healed_p99,
        recovered_ms: recovered.map(|d| d.as_millis() as u64),
        recovery_ceiling_us: ceiling_us,
        recovery_ok: recovered.is_some(),
        availability,
        availability_ok: total_errors == 0,
        hedges_sent: rstats.hedges_sent.load(Ordering::Relaxed),
        hedge_wins: rstats.hedge_wins.load(Ordering::Relaxed),
        retry_budget_exhausted: rstats.retry_budget_exhausted.load(Ordering::Relaxed),
        adaptive_timeout_us: rstats.adaptive_timeout_us.load(Ordering::Relaxed),
        primaries,
        wire_attempts,
        amplification,
        amplification_bound,
        amplification_ok: amplification <= amplification_bound,
        elapsed_ms: soak_started.elapsed().as_millis() as u64,
    })
}
