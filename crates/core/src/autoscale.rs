//! Router-layer autoscaling.
//!
//! "The request router layer can be managed by an Auto Scaling group,
//! where the capacity of the request router layer can be automatically
//! adjusted based on a variety of metrics" (paper §V-A). Routers are
//! stateless, so this is the easy kind of elasticity: the autoscaler
//! watches the fleet's served-requests rate and resizes through
//! [`Deployment::scale_routers`], which atomically updates the load
//! balancer.

use crate::deployment::Deployment;
use janus_types::Result;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;
use tokio::sync::watch;

/// Autoscaler tuning.
#[derive(Debug, Clone)]
pub struct AutoscalerConfig {
    /// Never scale below this many routers.
    pub min_routers: usize,
    /// Never scale above this many routers.
    pub max_routers: usize,
    /// The per-router request rate the fleet should sit at.
    pub target_rps_per_router: f64,
    /// Scale out when observed per-router rate exceeds
    /// `target × out_factor`.
    pub out_factor: f64,
    /// Scale in when observed per-router rate falls below
    /// `target × in_factor`.
    pub in_factor: f64,
    /// Metric evaluation period.
    pub evaluate_every: Duration,
    /// Evaluations to skip after any scaling action (settling time).
    pub cooldown_evaluations: u32,
}

impl Default for AutoscalerConfig {
    fn default() -> Self {
        AutoscalerConfig {
            min_routers: 1,
            max_routers: 10,
            target_rps_per_router: 10_000.0,
            out_factor: 0.8,
            in_factor: 0.3,
            evaluate_every: Duration::from_secs(5),
            cooldown_evaluations: 2,
        }
    }
}

impl AutoscalerConfig {
    fn validate(&self) -> Result<()> {
        if self.min_routers == 0 || self.min_routers > self.max_routers {
            return Err(janus_types::JanusError::config(
                "need 0 < min_routers <= max_routers",
            ));
        }
        if self.target_rps_per_router <= 0.0 || self.target_rps_per_router.is_nan() {
            return Err(janus_types::JanusError::config(
                "target rate must be positive",
            ));
        }
        if self.in_factor >= self.out_factor {
            return Err(janus_types::JanusError::config(
                "in_factor must be below out_factor (hysteresis)",
            ));
        }
        Ok(())
    }
}

/// One scaling action, for observability and tests.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleEvent {
    /// Fleet size before.
    pub from: usize,
    /// Fleet size after.
    pub to: usize,
    /// Observed per-router request rate that triggered the action.
    pub observed_rps_per_router: f64,
}

/// A running autoscaler. Dropping the handle stops it.
pub struct Autoscaler {
    stop: watch::Sender<bool>,
    events: Arc<Mutex<Vec<ScaleEvent>>>,
}

impl Autoscaler {
    /// Start autoscaling `deployment`'s router layer.
    pub fn spawn(deployment: Arc<Deployment>, config: AutoscalerConfig) -> Result<Autoscaler> {
        config.validate()?;
        let (stop, mut stop_rx) = watch::channel(false);
        let events = Arc::new(Mutex::new(Vec::new()));
        let events_task = Arc::clone(&events);
        tokio::spawn(async move {
            let mut ticker = tokio::time::interval(config.evaluate_every);
            ticker.set_missed_tick_behavior(tokio::time::MissedTickBehavior::Delay);
            ticker.tick().await; // immediate first tick: establish baseline
            let mut last_total: u64 = deployment.router_served_counts().iter().sum();
            let mut cooldown = 0u32;
            loop {
                tokio::select! {
                    _ = stop_rx.changed() => return,
                    _ = ticker.tick() => {}
                }
                let total: u64 = deployment.router_served_counts().iter().sum();
                let rate =
                    (total.saturating_sub(last_total)) as f64 / config.evaluate_every.as_secs_f64();
                last_total = total;
                if cooldown > 0 {
                    cooldown -= 1;
                    continue;
                }
                let count = deployment.router_count();
                let per_router = rate / count as f64;
                let target = if per_router > config.target_rps_per_router * config.out_factor
                    && count < config.max_routers
                {
                    count + 1
                } else if per_router < config.target_rps_per_router * config.in_factor
                    && count > config.min_routers
                {
                    count - 1
                } else {
                    continue;
                };
                if deployment.scale_routers(target).await.is_ok() {
                    events_task.lock().push(ScaleEvent {
                        from: count,
                        to: target,
                        observed_rps_per_router: per_router,
                    });
                    cooldown = config.cooldown_evaluations;
                }
            }
        });
        Ok(Autoscaler { stop, events })
    }

    /// Scaling actions taken so far.
    pub fn events(&self) -> Vec<ScaleEvent> {
        self.events.lock().clone()
    }

    /// Stop evaluating.
    pub fn stop(&self) {
        let _ = self.stop.send(true);
    }
}

impl Drop for Autoscaler {
    fn drop(&mut self) {
        let _ = self.stop.send(true);
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use crate::{DeploymentConfig, QosKey, QosRule};

    #[test]
    fn config_validation() {
        assert!(AutoscalerConfig::default().validate().is_ok());
        let mut c = AutoscalerConfig::default();
        c.min_routers = 0;
        assert!(c.validate().is_err());
        let mut c = AutoscalerConfig::default();
        c.min_routers = 5;
        c.max_routers = 2;
        assert!(c.validate().is_err());
        let mut c = AutoscalerConfig::default();
        c.in_factor = 0.9;
        c.out_factor = 0.8;
        assert!(c.validate().is_err());
        let mut c = AutoscalerConfig::default();
        c.target_rps_per_router = 0.0;
        assert!(c.validate().is_err());
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn scales_out_under_load_and_in_when_quiet() {
        let config = DeploymentConfig {
            routers: 1,
            rules: vec![QosRule::per_second(
                QosKey::new("busy").unwrap(),
                1_000_000,
                1_000_000,
            )],
            ..Default::default()
        };
        let deployment = Arc::new(crate::Deployment::launch(config).await.unwrap());
        let autoscaler = Autoscaler::spawn(
            Arc::clone(&deployment),
            AutoscalerConfig {
                min_routers: 1,
                max_routers: 3,
                target_rps_per_router: 50.0, // tiny, so test load trips it
                out_factor: 0.8,
                in_factor: 0.2,
                evaluate_every: Duration::from_millis(100),
                cooldown_evaluations: 0,
            },
        )
        .unwrap();

        // Drive ~8 concurrent checkers for a second: well above
        // 50 rps/router.
        let stop_load = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut drivers = Vec::new();
        for _ in 0..8 {
            let deployment = Arc::clone(&deployment);
            let stop_load = Arc::clone(&stop_load);
            drivers.push(tokio::spawn(async move {
                let mut client = deployment.client().await.unwrap();
                let key = QosKey::new("busy").unwrap();
                while !stop_load.load(std::sync::atomic::Ordering::Relaxed) {
                    let _ = client.qos_check(&key).await;
                }
            }));
        }
        // Wait for scale-out to max.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while deployment.router_count() < 3 {
            assert!(
                std::time::Instant::now() < deadline,
                "never scaled out: count={} events={:?}",
                deployment.router_count(),
                autoscaler.events()
            );
            tokio::time::sleep(Duration::from_millis(50)).await;
        }
        // New routers actually serve traffic.
        tokio::time::sleep(Duration::from_millis(300)).await;
        let counts = deployment.router_served_counts();
        assert!(counts.iter().all(|&c| c > 0), "idle new router: {counts:?}");

        // Quiet down: the fleet shrinks back to the minimum.
        stop_load.store(true, std::sync::atomic::Ordering::Relaxed);
        for d in drivers {
            d.await.unwrap();
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while deployment.router_count() > 1 {
            assert!(
                std::time::Instant::now() < deadline,
                "never scaled in: count={} events={:?}",
                deployment.router_count(),
                autoscaler.events()
            );
            tokio::time::sleep(Duration::from_millis(50)).await;
        }
        // Events recorded out and in.
        let events = autoscaler.events();
        assert!(events.iter().any(|e| e.to > e.from));
        assert!(events.iter().any(|e| e.to < e.from));
        autoscaler.stop();
    }
}
