//! Overload soak: drive one QoS server past saturation with duplicated,
//! deadline-stamped traffic and score the overload-control invariants.
//!
//! The soak talks to the server the way a deadline-propagating router
//! does — `stamp_deadlines` on, so every attempt carries its remaining
//! budget and logical-request nonce — and injects datagram duplication on
//! the request path, which is indistinguishable from a router retry at
//! the server. Three phases:
//!
//! 1. **Calibrate** — closed-loop workers hammer an effectively unmetered
//!    key with no faults, measuring the healthy throughput and p99.
//! 2. **Overload** — twice the workers, duplication on: offered load is
//!    ~2× the calibrated saturation point plus the duplicate copies.
//! 3. **Meter** — each zero-refill metered key takes several times its
//!    burst in logical requests, every datagram subject to duplication.
//!
//! Scored invariants ([`OverloadReport::passed`]):
//!
//! * **Bounded latency** — overload p99 stays under
//!   `max(healthy p99 × p99_multiplier, p99_floor)`; the floor absorbs
//!   loopback scheduler jitter on busy CI boxes.
//! * **Goodput** — answered throughput under 2× offered load stays above
//!   `goodput_floor` of the calibrated healthy throughput (no congestion
//!   collapse: shed cheap, answer the rest).
//! * **Credit exactness** — every zero-refill metered key admits *exactly*
//!   its capacity despite duplicated attempts: the dedup window must
//!   absorb every duplicate (at-least-once delivery, exactly-once
//!   charging), and the drain must still spend the whole burst.
//! * **Dedup evidence** — the server reports duplicate hits, proving the
//!   duplication actually exercised the window.
//!
//! The harness returns an [`OverloadReport`]; `tests/overload.rs` asserts
//! the verdicts and archives the report as `results/overload_soak.json`.

use janus_net::udp::{UdpRpcClient, UdpRpcConfig};
use janus_net::FaultPlan;
use janus_server::{QosServer, QosServerConfig};
use janus_types::{JanusError, QosKey, QosRequest, QosRule, Result, Verdict};
use janus_workload::Histogram;
use serde::Serialize;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tuning for one overload soak run.
#[derive(Debug, Clone)]
pub struct OverloadSoakConfig {
    /// Closed-loop workers in the calibration phase; the overload phase
    /// doubles this.
    pub concurrency: usize,
    /// Wall-clock length of the calibration and overload phases each.
    pub phase_duration: Duration,
    /// Per-attempt response timeout of the soak clients.
    pub request_timeout: Duration,
    /// Retries after the first attempt.
    pub max_retries: u32,
    /// Probability that a request datagram is duplicated (overload and
    /// meter phases).
    pub duplicate_prob: f64,
    /// How long after the original the duplicate copy is transmitted.
    pub duplicate_delay: Duration,
    /// Zero-refill metered keys checked for credit exactness.
    pub meter_keys: usize,
    /// Burst capacity of each metered key.
    pub meter_capacity: u64,
    /// Overload p99 must stay under `healthy p99 × p99_multiplier` …
    pub p99_multiplier: f64,
    /// … or under this absolute floor, whichever is larger (loopback
    /// jitter makes a pure multiple flaky when the healthy p99 is tiny).
    pub p99_floor: Duration,
    /// Overload-phase answered throughput must stay above this fraction
    /// of the calibrated healthy throughput.
    pub goodput_floor: f64,
    /// The server under test. Defaults to two workers and a modest FIFO
    /// so the overload phase actually queues.
    pub server: QosServerConfig,
}

impl Default for OverloadSoakConfig {
    fn default() -> Self {
        let mut server = QosServerConfig::test_defaults();
        server.workers = 2;
        server.fifo_capacity = 512;
        OverloadSoakConfig {
            concurrency: 4,
            phase_duration: Duration::from_millis(750),
            request_timeout: Duration::from_millis(5),
            max_retries: 3,
            duplicate_prob: 0.4,
            duplicate_delay: Duration::from_micros(200),
            meter_keys: 4,
            meter_capacity: 20,
            p99_multiplier: 5.0,
            p99_floor: Duration::from_millis(5),
            goodput_floor: 0.7,
            server,
        }
    }
}

/// Outcome counts for one closed-loop phase.
#[derive(Debug, Clone, Serialize)]
pub struct OverloadPhase {
    /// Phase name (`calibrate`, `overload`).
    pub name: String,
    /// Closed-loop workers driving the phase.
    pub workers: usize,
    /// Requests that got an answer (allow or deny).
    pub answered: u64,
    /// Requests admitted.
    pub allowed: u64,
    /// Requests throttled.
    pub denied: u64,
    /// Requests that exhausted the retry budget unanswered.
    pub errors: u64,
    /// Answered throughput, requests per second.
    pub throughput_rps: f64,
    /// Client-observed p99 call latency, microseconds.
    pub p99_us: u64,
    /// Wall-clock length of the phase.
    pub duration_ms: u64,
}

/// Everything an overload soak measured, plus the pass/fail verdicts.
#[derive(Debug, Clone, Serialize)]
pub struct OverloadReport {
    /// The calibration and overload phases, in order.
    pub phases: Vec<OverloadPhase>,
    /// `max(healthy p99 × multiplier, floor)`, microseconds.
    pub p99_bound_us: u64,
    /// Overload p99 stayed under the bound.
    pub latency_ok: bool,
    /// Overload answered throughput over calibrated throughput.
    pub goodput_ratio: f64,
    /// The floor the ratio was scored against.
    pub goodput_floor: f64,
    /// `goodput_ratio >= goodput_floor`.
    pub goodput_ok: bool,
    /// Allow verdicts observed per metered key, in key order.
    pub meter_allowed: Vec<u64>,
    /// The burst capacity every metered key was provisioned with.
    pub meter_capacity: u64,
    /// Every metered key admitted exactly its capacity.
    pub credit_exact_ok: bool,
    /// Request datagrams the fault plan duplicated across the soak.
    pub duplicates_injected: u64,
    /// Duplicate attempts the server absorbed from its dedup window.
    pub dedup_hits: u64,
    /// `dedup_hits > 0` — the duplication actually reached the window.
    pub dedup_ok: bool,
    /// Server-side sheds: full queue.
    pub shed_full: u64,
    /// Server-side sheds: deadline budget spent.
    pub shed_expired: u64,
    /// Server-side sheds: sojourn governor.
    pub shed_sojourn: u64,
    /// Server-side 99th-percentile queue sojourn, microseconds.
    pub sojourn_p99_us: u64,
    /// Wall-clock length of the soak.
    pub elapsed_ms: u64,
}

impl OverloadReport {
    /// All four invariants held.
    pub fn passed(&self) -> bool {
        self.latency_ok && self.goodput_ok && self.credit_exact_ok && self.dedup_ok
    }

    /// Pretty-printed JSON for archiving (`results/overload_soak.json`).
    pub fn to_json_string(&self) -> Result<String> {
        serde_json::to_string_pretty(self)
            .map_err(|e| JanusError::state(format!("overload report serialization: {e}")))
    }
}

struct PhaseOutcome {
    answered: u64,
    allowed: u64,
    denied: u64,
    errors: u64,
    latency: Histogram,
    elapsed: Duration,
}

impl PhaseOutcome {
    fn report(&self, name: &str, workers: usize) -> OverloadPhase {
        OverloadPhase {
            name: name.to_string(),
            workers,
            answered: self.answered,
            allowed: self.allowed,
            denied: self.denied,
            errors: self.errors,
            throughput_rps: self.answered as f64 / self.elapsed.as_secs_f64().max(1e-9),
            p99_us: self.latency.quantile(0.99) / 1_000,
            duration_ms: self.elapsed.as_millis() as u64,
        }
    }
}

/// Closed-loop hammer: `workers` tasks issue back-to-back calls against
/// `key` until `duration` elapses. Ids are partitioned per task so a
/// stale response can never satisfy another task's call.
async fn hammer(
    server: SocketAddr,
    key: &QosKey,
    rpc: &UdpRpcConfig,
    faults: &Arc<FaultPlan>,
    workers: usize,
    duration: Duration,
    id_base: u64,
) -> Result<PhaseOutcome> {
    let started = Instant::now();
    let mut handles = Vec::with_capacity(workers);
    for task in 0..workers {
        let client = UdpRpcClient::with_faults(rpc.clone(), Arc::clone(faults));
        let key = key.clone();
        let mut id = id_base + ((task as u64) << 32);
        handles.push(tokio::spawn(async move {
            let mut latency = Histogram::new();
            let (mut allowed, mut denied, mut errors) = (0u64, 0u64, 0u64);
            let phase_end = Instant::now() + duration;
            while Instant::now() < phase_end {
                let begun = Instant::now();
                match client.call(server, &QosRequest::new(id, key.clone())).await {
                    Ok(response) => {
                        latency.record_duration(begun.elapsed());
                        match response.verdict {
                            Verdict::Allow => allowed += 1,
                            Verdict::Deny => denied += 1,
                        }
                    }
                    Err(_) => errors += 1,
                }
                id += 1;
            }
            (latency, allowed, denied, errors)
        }));
    }
    let mut outcome = PhaseOutcome {
        answered: 0,
        allowed: 0,
        denied: 0,
        errors: 0,
        latency: Histogram::new(),
        elapsed: Duration::ZERO,
    };
    for handle in handles {
        let (latency, allowed, denied, errors) = handle
            .await
            .map_err(|e| JanusError::state(format!("soak worker died: {e}")))?;
        outcome.latency.merge(&latency);
        outcome.allowed += allowed;
        outcome.denied += denied;
        outcome.errors += errors;
    }
    outcome.answered = outcome.allowed + outcome.denied;
    outcome.elapsed = started.elapsed();
    Ok(outcome)
}

/// Run the overload schedule end to end and score the invariants.
pub async fn run_overload_soak(config: OverloadSoakConfig) -> Result<OverloadReport> {
    let soak_started = Instant::now();
    // Standalone server: rules are inserted directly into its table, so
    // the soak measures the admission plane, not a database.
    let server = QosServer::spawn(config.server.clone(), None, janus_clock::system()).await?;
    let hot = QosKey::new("overload-hot")?;
    let now = server.clock().now();
    // The throughput key never runs dry: the soak's congestion signal
    // must come from queueing, not from a drained bucket.
    server
        .table()
        .insert(QosRule::per_second(hot.clone(), 1_000_000_000, 0), now);
    let meter_names: Vec<QosKey> = (0..config.meter_keys)
        .map(|i| QosKey::new(format!("overload-meter-{i}")))
        .collect::<Result<_>>()?;
    for key in &meter_names {
        server.table().insert(
            QosRule::per_second(key.clone(), config.meter_capacity, 0),
            now,
        );
    }

    let rpc = UdpRpcConfig {
        timeout: config.request_timeout,
        max_retries: config.max_retries,
        stamp_deadlines: true,
        ..UdpRpcConfig::lan_defaults()
    };
    let clean = FaultPlan::none();
    let duplicating = FaultPlan::new(0.0, 0.0, Duration::ZERO, 0xC0DE1);
    duplicating.set_duplication(config.duplicate_prob, config.duplicate_delay);

    // Phase 1: calibrate the healthy operating point.
    let calibrate = hammer(
        server.udp_addr(),
        &hot,
        &rpc,
        &clean,
        config.concurrency,
        config.phase_duration,
        0,
    )
    .await?;

    // Phase 2: double the closed-loop workers and duplicate datagrams —
    // offered load is ~2× the calibrated saturation point, and every
    // duplicate looks like a router retry to the server.
    let overload = hammer(
        server.udp_addr(),
        &hot,
        &rpc,
        &duplicating,
        config.concurrency * 2,
        config.phase_duration,
        1 << 20,
    )
    .await?;

    // Phase 3: drain every zero-refill metered key with several times its
    // burst in logical requests, all under duplication. Sequential per
    // key so a full queue can never explain a missing admission.
    let mut meter_allowed = Vec::with_capacity(meter_names.len());
    let meter_client = UdpRpcClient::with_faults(rpc.clone(), Arc::clone(&duplicating));
    for (key_index, key) in meter_names.iter().enumerate() {
        let mut allowed = 0u64;
        let attempts = config.meter_capacity * 3;
        for seq in 0..attempts {
            let id = (2 << 20) + (key_index as u64) * attempts + seq;
            if let Ok(response) = meter_client
                .call(server.udp_addr(), &QosRequest::new(id, key.clone()))
                .await
            {
                if response.verdict == Verdict::Allow {
                    allowed += 1;
                }
            }
        }
        meter_allowed.push(allowed);
    }

    let snapshot = server.stats().snapshot();
    let phases = vec![
        calibrate.report("calibrate", config.concurrency),
        overload.report("overload", config.concurrency * 2),
    ];
    let p99_bound_us = ((phases[0].p99_us as f64) * config.p99_multiplier)
        .max(config.p99_floor.as_micros() as f64) as u64;
    let goodput_ratio = if phases[0].throughput_rps > 0.0 {
        phases[1].throughput_rps / phases[0].throughput_rps
    } else {
        0.0
    };
    let credit_exact_ok = meter_allowed
        .iter()
        .all(|&allowed| allowed == config.meter_capacity);

    Ok(OverloadReport {
        p99_bound_us,
        latency_ok: phases[1].p99_us <= p99_bound_us,
        goodput_ratio,
        goodput_floor: config.goodput_floor,
        goodput_ok: goodput_ratio >= config.goodput_floor,
        phases,
        meter_allowed,
        meter_capacity: config.meter_capacity,
        credit_exact_ok,
        duplicates_injected: duplicating.duplicated(),
        dedup_hits: snapshot.dedup_hits,
        dedup_ok: snapshot.dedup_hits > 0,
        shed_full: snapshot.shed_full,
        shed_expired: snapshot.shed_expired,
        shed_sojourn: snapshot.shed_sojourn,
        sojourn_p99_us: snapshot.sojourn_p99_us,
        elapsed_ms: soak_started.elapsed().as_millis() as u64,
    })
}
