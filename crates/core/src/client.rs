//! The QoS client: what an application embeds.
//!
//! Mirrors the paper's `qos_client.php` wrapper — a single `qos_check`
//! call returning a boolean. The client keeps one keep-alive HTTP
//! connection to its endpoint and transparently reconnects once on
//! failure (a gateway LB node recycling, a router scaling in).

use janus_net::dns::Resolver;
use janus_net::http::HttpClient;
use janus_router::{parse_qos_response, qos_http_request};
use janus_types::{QosKey, Result, Verdict};
use std::net::SocketAddr;
use std::sync::Arc;

/// Where a QoS client sends its checks.
#[derive(Clone)]
pub enum Endpoint {
    /// A fixed address (a gateway LB, or a single router).
    Direct(SocketAddr),
    /// A DNS name resolved through a per-host caching resolver (DNS load
    /// balancing).
    Dns {
        /// The Janus service name.
        name: String,
        /// This client host's stub resolver.
        resolver: Arc<Resolver>,
    },
}

impl std::fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Direct(addr) => write!(f, "Direct({addr})"),
            Endpoint::Dns { name, .. } => write!(f, "Dns({name:?})"),
        }
    }
}

/// An application-side QoS client.
#[derive(Debug)]
pub struct QosClient {
    endpoint: Endpoint,
    connection: Option<HttpClient>,
}

impl QosClient {
    /// A client for `endpoint`. The connection is opened lazily.
    pub fn new(endpoint: Endpoint) -> QosClient {
        QosClient {
            endpoint,
            connection: None,
        }
    }

    /// Resolve the endpoint to the address to connect to right now.
    fn resolve(&self) -> Result<SocketAddr> {
        match &self.endpoint {
            Endpoint::Direct(addr) => Ok(*addr),
            Endpoint::Dns { name, resolver } => resolver.resolve_one(name),
        }
    }

    async fn connection(&mut self) -> Result<&mut HttpClient> {
        if self.connection.is_none() {
            let addr = self.resolve()?;
            self.connection = Some(HttpClient::connect(addr).await?);
        }
        Ok(self.connection.as_mut().expect("just connected"))
    }

    /// The admission check: TRUE = proceed, FALSE = throttle.
    ///
    /// One transparent reconnect is attempted if the cached connection has
    /// gone stale.
    pub async fn qos_check(&mut self, key: &QosKey) -> Result<bool> {
        let request = qos_http_request(key);
        // First attempt over the cached connection.
        let first = match self.connection().await {
            Ok(conn) => conn.request(&request).await,
            Err(e) => Err(e),
        };
        let response = match first {
            Ok(resp) => resp,
            Err(_) => {
                // Stale or refused: reconnect once and retry.
                self.connection = None;
                let conn = self.connection().await?;
                conn.request(&request).await.inspect_err(|_| {})?
            }
        };
        Ok(parse_qos_response(&response)? == Verdict::Allow)
    }

    /// Like [`qos_check`](Self::qos_check) but returns the verdict enum.
    pub async fn check(&mut self, key: &QosKey) -> Result<Verdict> {
        Ok(Verdict::from_bool(self.qos_check(key).await?))
    }

    /// Drop the cached connection (tests use this to force re-resolution,
    /// which is how a real host behaves after its TTL expires).
    pub fn disconnect(&mut self) {
        self.connection = None;
    }

    /// The configured endpoint.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_net::http::{HttpRequest, HttpResponse, HttpServer};
    use std::sync::atomic::{AtomicU64, Ordering};

    async fn fake_router(allow: bool) -> (HttpServer, Arc<AtomicU64>) {
        let hits = Arc::new(AtomicU64::new(0));
        let hits_handler = Arc::clone(&hits);
        let server = HttpServer::spawn(Arc::new(move |req: HttpRequest, _peer: SocketAddr| {
            let hits = Arc::clone(&hits_handler);
            async move {
                hits.fetch_add(1, Ordering::Relaxed);
                assert_eq!(req.path(), "/qos");
                HttpResponse::ok(if allow { "TRUE" } else { "FALSE" })
            }
        }))
        .await
        .unwrap();
        (server, hits)
    }

    #[tokio::test]
    async fn check_returns_boolean() {
        let (router, _) = fake_router(true).await;
        let mut client = QosClient::new(Endpoint::Direct(router.addr()));
        assert!(client.qos_check(&QosKey::new("k").unwrap()).await.unwrap());

        let (router, _) = fake_router(false).await;
        let mut client = QosClient::new(Endpoint::Direct(router.addr()));
        assert!(!client.qos_check(&QosKey::new("k").unwrap()).await.unwrap());
    }

    #[tokio::test]
    async fn reuses_keepalive_connection() {
        let (router, _) = fake_router(true).await;
        let mut client = QosClient::new(Endpoint::Direct(router.addr()));
        for _ in 0..5 {
            client.qos_check(&QosKey::new("k").unwrap()).await.unwrap();
        }
        // All five checks over one TCP connection.
        assert_eq!(router.connections(), 1);
    }

    #[tokio::test]
    async fn reconnects_after_endpoint_restart() {
        let (router, _) = fake_router(true).await;
        let addr = router.addr();
        let mut client = QosClient::new(Endpoint::Direct(addr));
        client.qos_check(&QosKey::new("k").unwrap()).await.unwrap();
        // Kill the server; the cached connection goes stale.
        router.shutdown();
        drop(router);
        tokio::time::sleep(std::time::Duration::from_millis(50)).await;
        // Shutdown lets a kept-alive connection finish its current
        // request, so the first check may still succeed; within a few
        // attempts the stale endpoint must surface an error rather than
        // hang.
        let mut saw_error = false;
        for _ in 0..5 {
            if client.qos_check(&QosKey::new("k").unwrap()).await.is_err() {
                saw_error = true;
                break;
            }
        }
        assert!(saw_error, "dead endpoint never surfaced an error");
    }

    #[tokio::test]
    async fn dns_endpoint_resolves_through_cache() {
        use janus_net::dns::{Resolver, Zone};
        let (router, hits) = fake_router(true).await;
        let zone = Zone::new();
        zone.insert(
            "janus.endpoint",
            vec![router.addr()],
            std::time::Duration::from_secs(30),
        );
        let resolver = Arc::new(Resolver::new(zone, janus_clock::system()));
        let mut client = QosClient::new(Endpoint::Dns {
            name: "janus.endpoint".into(),
            resolver,
        });
        assert!(client.qos_check(&QosKey::new("k").unwrap()).await.unwrap());
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }
}
