//! High-availability: master→slave QoS-table replication.
//!
//! "When high-availability is desired, an optional slave node can be
//! configured for each QoS server. The slave node continuously replicates
//! the local QoS rule table from the master node at a configurable
//! interval." (paper §III-C). The same TCP listener doubles as the health
//! probe target for the DNS failover record: while a connect succeeds the
//! master is considered healthy.
//!
//! Protocol (line-based, like the database wire):
//!
//! ```text
//! slave:   SNAPSHOT\n
//! master:  SNAPSHOT <n>\n  followed by n rule rows
//! ```

use crate::core::{decode_snapshot_header, encode_snapshot};
use janus_bucket::QosTable;
use janus_clock::SharedClock;
use janus_types::{JanusError, QosRule, Result};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tokio::io::{AsyncBufReadExt, AsyncWriteExt, BufReader};
use tokio::net::{TcpListener, TcpStream};
use tokio::sync::watch;

/// Start the HA/health listener for a QoS server's table. Returns the
/// bound TCP address.
pub(crate) async fn spawn_ha_listener(
    table: Arc<dyn QosTable>,
    clock: SharedClock,
    mut shutdown: watch::Receiver<bool>,
) -> Result<SocketAddr> {
    let listener = TcpListener::bind(("127.0.0.1", 0)).await?;
    let addr = listener.local_addr()?;
    tokio::spawn(async move {
        loop {
            tokio::select! {
                _ = shutdown.changed() => return,
                accepted = listener.accept() => {
                    let Ok((stream, _)) = accepted else { return };
                    let table = Arc::clone(&table);
                    let clock = Arc::clone(&clock);
                    tokio::spawn(async move {
                        let _ = serve_ha_connection(stream, table, clock).await;
                    });
                }
            }
        }
    });
    Ok(addr)
}

async fn serve_ha_connection(
    stream: TcpStream,
    table: Arc<dyn QosTable>,
    clock: SharedClock,
) -> Result<()> {
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line).await? == 0 {
            return Ok(());
        }
        match line.trim_end() {
            "SNAPSHOT" => {
                let out = encode_snapshot(&table.snapshot(clock.now()));
                reader.get_mut().write_all(out.as_bytes()).await?;
            }
            // Health probes just connect and close; tolerate anything else.
            _ => {
                reader.get_mut().write_all(b"ERR unknown command\n").await?;
            }
        }
    }
}

/// Fetch one snapshot from a master's HA port.
pub async fn fetch_snapshot(master_ha: SocketAddr) -> Result<Vec<QosRule>> {
    let stream = TcpStream::connect(master_ha).await?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream);
    reader.get_mut().write_all(b"SNAPSHOT\n").await?;
    let mut header = String::new();
    if reader.read_line(&mut header).await? == 0 {
        return Err(JanusError::state("master closed during snapshot"));
    }
    let n = decode_snapshot_header(header.trim_end())
        .ok_or_else(|| JanusError::state(format!("bad snapshot header {header:?}")))?;
    let mut rules = Vec::with_capacity(n);
    for _ in 0..n {
        let mut row = String::new();
        if reader.read_line(&mut row).await? == 0 {
            return Err(JanusError::state("master closed mid-snapshot"));
        }
        rules.push(QosRule::parse_row(row.trim_end_matches(['\r', '\n']))?);
    }
    Ok(rules)
}

/// A slave-side replication loop: pulls the master's table every
/// `interval` and restores it into the slave's local table, so a promoted
/// slave "already has an up-to-date local QoS table".
pub struct SlaveReplicator {
    stop: watch::Sender<bool>,
    rounds: Arc<AtomicU64>,
    failures: Arc<AtomicU64>,
}

impl SlaveReplicator {
    /// Start replicating `master_ha` into `table`.
    pub fn spawn(
        master_ha: SocketAddr,
        table: Arc<dyn QosTable>,
        clock: SharedClock,
        interval: Duration,
    ) -> SlaveReplicator {
        let (stop, mut stop_rx) = watch::channel(false);
        let rounds = Arc::new(AtomicU64::new(0));
        let failures = Arc::new(AtomicU64::new(0));
        let (rounds_task, failures_task) = (Arc::clone(&rounds), Arc::clone(&failures));
        tokio::spawn(async move {
            let mut ticker = tokio::time::interval(interval);
            ticker.set_missed_tick_behavior(tokio::time::MissedTickBehavior::Delay);
            loop {
                tokio::select! {
                    _ = stop_rx.changed() => return,
                    _ = ticker.tick() => {
                        match fetch_snapshot(master_ha).await {
                            Ok(rules) => {
                                table.restore(rules, clock.now());
                                rounds_task.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(_) => {
                                failures_task.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
            }
        });
        SlaveReplicator {
            stop,
            rounds,
            failures,
        }
    }

    /// Successful replication rounds so far.
    pub fn rounds(&self) -> u64 {
        self.rounds.load(Ordering::Relaxed)
    }

    /// Failed replication attempts so far (master unreachable).
    pub fn failures(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }

    /// Stop replicating (the moment of promotion).
    pub fn stop(&self) {
        let _ = self.stop.send(true);
    }
}

impl Drop for SlaveReplicator {
    fn drop(&mut self) {
        let _ = self.stop.send(true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{QosServer, QosServerConfig};
    use janus_bucket::ShardedTable;
    use janus_types::{Credits, QosKey};

    fn rule(s: &str, cap: u64, rate: u64) -> QosRule {
        QosRule::per_second(QosKey::new(s).unwrap(), cap, rate)
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 2)]
    async fn snapshot_roundtrips_master_table() {
        let master = QosServer::spawn(
            QosServerConfig::test_defaults(),
            None,
            janus_clock::system(),
        )
        .await
        .unwrap();
        let now = master.clock().now();
        master.table().insert(rule("a", 100, 10), now);
        master.table().insert(rule("b", 50, 5), now);

        let snapshot = fetch_snapshot(master.ha_addr()).await.unwrap();
        assert_eq!(snapshot.len(), 2);
        let a = snapshot.iter().find(|r| r.key.as_str() == "a").unwrap();
        assert_eq!(a.capacity, Credits::from_whole(100));
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 2)]
    async fn slave_converges_to_master_state() {
        let master = QosServer::spawn(
            QosServerConfig::test_defaults(),
            None,
            janus_clock::system(),
        )
        .await
        .unwrap();
        let now = master.clock().now();
        master.table().insert(rule("tenant", 100, 0), now);
        // Drain some credit so the slave must see partial state.
        for _ in 0..30 {
            master
                .table()
                .decide(&QosKey::new("tenant").unwrap(), master.clock().now());
        }

        let slave_table: Arc<dyn QosTable> = Arc::new(ShardedTable::new());
        let replicator = SlaveReplicator::spawn(
            master.ha_addr(),
            Arc::clone(&slave_table),
            janus_clock::system(),
            Duration::from_millis(20),
        );

        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let snap = slave_table.snapshot(janus_clock::system().now());
            if let Some(r) = snap.iter().find(|r| r.key.as_str() == "tenant") {
                if r.credit == Credits::from_whole(70) {
                    break;
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "slave never converged"
            );
            tokio::time::sleep(Duration::from_millis(10)).await;
        }
        assert!(replicator.rounds() >= 1);
        replicator.stop();
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 2)]
    async fn replicator_counts_failures_against_dead_master() {
        let dead = TcpListener::bind(("127.0.0.1", 0)).await.unwrap();
        let dead_addr = dead.local_addr().unwrap();
        drop(dead);

        let slave_table: Arc<dyn QosTable> = Arc::new(ShardedTable::new());
        let replicator = SlaveReplicator::spawn(
            dead_addr,
            slave_table,
            janus_clock::system(),
            Duration::from_millis(10),
        );
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while replicator.failures() == 0 {
            assert!(std::time::Instant::now() < deadline);
            tokio::time::sleep(Duration::from_millis(10)).await;
        }
        assert_eq!(replicator.rounds(), 0);
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 2)]
    async fn ha_port_answers_health_probe_connects() {
        let server = QosServer::spawn(
            QosServerConfig::test_defaults(),
            None,
            janus_clock::system(),
        )
        .await
        .unwrap();
        // A Route53-style probe is just a TCP connect.
        assert!(TcpStream::connect(server.ha_addr()).await.is_ok());
        server.shutdown();
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 2)]
    async fn unknown_ha_command_gets_error_line() {
        let server = QosServer::spawn(
            QosServerConfig::test_defaults(),
            None,
            janus_clock::system(),
        )
        .await
        .unwrap();
        let stream = TcpStream::connect(server.ha_addr()).await.unwrap();
        let mut reader = BufReader::new(stream);
        reader.get_mut().write_all(b"GIMME\n").await.unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).await.unwrap();
        assert!(line.starts_with("ERR"), "{line}");
    }
}
