//! Overload control primitives: sojourn-based shedding and duplicate
//! suppression.
//!
//! Two small, independently testable pieces the data plane composes:
//!
//! * [`SojournGovernor`] — a CoDel-flavoured queue governor. A worker
//!   feeds it the *sojourn* (enqueue → dequeue delay) of every request it
//!   pops; the governor tracks the minimum sojourn per observation
//!   window. Once a whole window passes in which even the fastest request
//!   sat longer than the target, the queue is standing — serving its tail
//!   wastes work nobody is waiting for, so the governor votes to shed.
//!   Unlike a queue-length threshold, the sojourn signal is independent
//!   of worker count and service time, which is the CoDel insight.
//! * [`DedupWindow`] — a bounded recent-nonce table mapping the attempt
//!   nonce of a deadline-stamped request to its (key, verdict). Retries
//!   and duplicated datagrams carry the same nonce, so a hit answers from
//!   the cached verdict instead of charging the leaky bucket twice —
//!   admission stays credit-exact under at-least-once delivery. The
//!   window also keeps a request-id index so the *legacy-downgraded*
//!   final attempt of a stamped logical request (which carries no nonce)
//!   still finds its cached verdict — closing the dedup bypass noted in
//!   DESIGN.md §4c.
//!
//! Shedding and nonce dedup apply only to deadline-stamped requests
//! (wire kind `0x06`); a pure-legacy frame (one whose request id the
//! window has never tracked) keeps the paper's charge-on-every-attempt
//! semantics untouched.

use janus_clock::Nanos;
use janus_types::{QosKey, RequestId, Verdict};
use std::collections::{HashMap, VecDeque};
use std::time::Duration;

/// Overload-control tunables: staleness shedding, the sojourn governor
/// and duplicate suppression. Every mechanism here applies only to
/// deadline-stamped requests (wire kind `0x06`); legacy frames keep the
/// paper's semantics — queue, decide, charge on every attempt.
#[derive(Debug, Clone)]
pub struct OverloadConfig {
    /// Queue sojourn a request may accumulate before the governor calls
    /// the queue "standing" (CoDel's `target`).
    pub sojourn_target: Duration,
    /// How long sojourns must stay above target before shedding starts
    /// (CoDel's `interval`): a full window in which even the *fastest*
    /// dequeue sat above target.
    pub sojourn_window: Duration,
    /// Run the sojourn governor at all. Off leaves FIFO-full as the only
    /// non-staleness shed trigger (the paper's behaviour).
    pub sojourn_shedding: bool,
    /// Nonces the duplicate-suppression window remembers. 0 disables
    /// dedup entirely (every duplicate charges the bucket, as before).
    pub dedup_window: usize,
    /// The verdict a shed reply carries. `Deny` is the safe default: a
    /// shed request never consumes credit, so admission may undercount
    /// but never oversell.
    pub shed_verdict: Verdict,
    /// Answer sheds (FIFO-full and sojourn) with `shed_verdict` when the
    /// request still has deadline budget, instead of dropping silently
    /// and letting the router burn its whole retry schedule against a
    /// queue that will shed every copy. Legacy frames are always dropped
    /// silently — old routers expect today's semantics.
    pub shed_replies: bool,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            sojourn_target: Duration::from_micros(500),
            sojourn_window: Duration::from_millis(10),
            sojourn_shedding: true,
            dedup_window: 4096,
            shed_verdict: Verdict::Deny,
            shed_replies: true,
        }
    }
}

/// CoDel-style standing-queue detector fed with per-request sojourn
/// times (see module docs). One instance per worker: the signal is local
/// to the queue the worker drains.
#[derive(Debug)]
pub struct SojournGovernor {
    target: Duration,
    window: Duration,
    window_start: Option<Nanos>,
    window_min: Option<Duration>,
    prev_min: Option<Duration>,
}

impl SojournGovernor {
    /// A governor shedding when sojourns stay above `target` for a whole
    /// `window`.
    pub fn new(target: Duration, window: Duration) -> Self {
        SojournGovernor {
            target,
            window,
            window_start: None,
            window_min: None,
            prev_min: None,
        }
    }

    /// Feed one dequeue's sojourn; `true` means the queue has been
    /// standing above target for at least one full window *and* this
    /// request also sat above target — shed it.
    pub fn observe(&mut self, sojourn: Duration, now: Nanos) -> bool {
        let start = *self.window_start.get_or_insert(now);
        if now.saturating_since(start) >= self.window {
            self.prev_min = self.window_min.take();
            self.window_start = Some(now);
        }
        self.window_min = Some(match self.window_min {
            Some(min) => min.min(sojourn),
            None => sojourn,
        });
        self.prev_min.is_some_and(|min| min > self.target) && sojourn > self.target
    }

    /// The sojourn target this governor sheds against.
    pub fn target(&self) -> Duration {
        self.target
    }
}

/// What a [`DedupWindow`] lookup found for an attempt nonce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DedupOutcome {
    /// Never seen (or evicted, or the nonce collided with another key):
    /// process the request normally.
    Miss,
    /// The first copy is queued but not yet decided: drop this duplicate
    /// silently — the in-flight copy's response answers every attempt,
    /// because retries reuse the request id.
    Pending,
    /// Already decided: answer from the cached verdict without touching
    /// the bucket.
    Done(Verdict),
}

/// One tracked logical request: the key it charges, the router-side
/// request id every attempt (including the legacy-downgraded final one)
/// shares, and the verdict once decided.
#[derive(Debug)]
struct DedupEntry {
    key: QosKey,
    id: RequestId,
    verdict: Option<Verdict>,
}

/// A bounded insertion-ordered map of recently seen attempt nonces (see
/// module docs). Eviction is FIFO: once `capacity` nonces are tracked,
/// the oldest is forgotten — an evicted nonce's late duplicate is then
/// processed (and charged) normally, which errs on the conservative side
/// exactly like the pre-nonce protocol always did.
#[derive(Debug)]
pub struct DedupWindow {
    capacity: usize,
    entries: HashMap<u32, DedupEntry>,
    /// Secondary index: request id → nonce. The final attempt of a
    /// stamped schedule downgrades to a legacy frame (no nonce), but it
    /// reuses the logical request id — this index lets
    /// [`lookup_legacy`](Self::lookup_legacy) find the cached verdict
    /// anyway, so the deadline-blind downgrade cannot double-charge.
    by_id: HashMap<RequestId, u32>,
    order: VecDeque<u32>,
}

impl DedupWindow {
    /// A window remembering up to `capacity` nonces (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        DedupWindow {
            capacity,
            entries: HashMap::with_capacity(capacity),
            by_id: HashMap::with_capacity(capacity),
            order: VecDeque::with_capacity(capacity),
        }
    }

    /// Look up `nonce`. A stored entry under a *different* key is a
    /// nonce collision between unrelated logical requests (nonces are
    /// 32-bit randoms) — treated as a miss so the colliding request is
    /// decided on its own bucket rather than served another key's
    /// verdict.
    pub fn lookup(&self, nonce: u32, key: &QosKey) -> DedupOutcome {
        match self.entries.get(&nonce) {
            Some(entry) if entry.key != *key => DedupOutcome::Miss,
            Some(entry) => match entry.verdict {
                Some(verdict) => DedupOutcome::Done(verdict),
                None => DedupOutcome::Pending,
            },
            None => DedupOutcome::Miss,
        }
    }

    /// Look up a *legacy* frame (no attempt metadata) by its request id.
    /// Hits only when a stamped attempt of the same logical request —
    /// same id *and* same key — is tracked: the deadline-blind final
    /// attempt of a stamped schedule then reuses the cached verdict
    /// instead of charging the bucket a second time (DESIGN.md §4c).
    /// Frames from genuinely legacy routers were never inserted, so they
    /// miss and keep the paper's semantics.
    pub fn lookup_legacy(&self, id: RequestId, key: &QosKey) -> DedupOutcome {
        match self
            .by_id
            .get(&id)
            .and_then(|nonce| self.entries.get(nonce))
        {
            Some(entry) if entry.key == *key => match entry.verdict {
                Some(verdict) => DedupOutcome::Done(verdict),
                None => DedupOutcome::Pending,
            },
            _ => DedupOutcome::Miss,
        }
    }

    /// Start tracking `nonce` as in-flight (call after the request is
    /// successfully queued), remembering `id` so the legacy-downgraded
    /// final attempt can still find the entry. A colliding entry is
    /// overwritten — the newer request wins the slot.
    pub fn insert_pending(&mut self, nonce: u32, id: RequestId, key: QosKey) {
        let entry = DedupEntry {
            key,
            id,
            verdict: None,
        };
        if let Some(old) = self.entries.insert(nonce, entry) {
            // Nonce collision overwrite: the slot keeps its FIFO
            // position; drop the loser's reverse mapping.
            if self.by_id.get(&old.id) == Some(&nonce) {
                self.by_id.remove(&old.id);
            }
        } else {
            if self.order.len() >= self.capacity {
                if let Some(evicted) = self.order.pop_front() {
                    if let Some(old) = self.entries.remove(&evicted) {
                        if self.by_id.get(&old.id) == Some(&evicted) {
                            self.by_id.remove(&old.id);
                        }
                    }
                }
            }
            self.order.push_back(nonce);
        }
        self.by_id.insert(id, nonce);
    }

    /// Record the decided verdict for `nonce`. A no-op if the entry was
    /// evicted meanwhile or the slot now belongs to a different key.
    pub fn record(&mut self, nonce: u32, key: &QosKey, verdict: Verdict) {
        if let Some(entry) = self.entries.get_mut(&nonce) {
            if entry.key == *key {
                entry.verdict = Some(verdict);
            }
        }
    }

    /// Nonces currently tracked (diagnostics).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(s: &str) -> QosKey {
        QosKey::new(s).unwrap()
    }

    fn us(n: u64) -> Duration {
        Duration::from_micros(n)
    }

    #[test]
    fn governor_never_sheds_below_target() {
        let mut g = SojournGovernor::new(us(500), Duration::from_millis(10));
        for tick in 0..100u64 {
            let now = Nanos::from_micros(tick * 1_000);
            assert!(!g.observe(us(400), now), "shed at tick {tick}");
        }
    }

    #[test]
    fn governor_sheds_after_a_full_standing_window() {
        let mut g = SojournGovernor::new(us(500), Duration::from_millis(10));
        // First window: every sojourn above target, but no *previous*
        // window proves the queue is standing yet — no shedding.
        for tick in 0..10u64 {
            assert!(!g.observe(us(900), Nanos::from_micros(tick * 1_000)));
        }
        // The window rolls at 10 ms; from here the previous window's min
        // (900 µs) is above target, so slow requests are shed...
        assert!(g.observe(us(900), Nanos::from_micros(10_000)));
        // ...while a fast request in the same window is served.
        assert!(!g.observe(us(100), Nanos::from_micros(11_000)));
    }

    #[test]
    fn governor_recovers_once_a_window_drains() {
        let mut g = SojournGovernor::new(us(500), Duration::from_millis(10));
        for tick in 0..10u64 {
            g.observe(us(900), Nanos::from_micros(tick * 1_000));
        }
        assert!(g.observe(us(900), Nanos::from_micros(10_000)));
        // One fast dequeue inside the new window drags its min below
        // target; once that window completes, shedding stops even for a
        // slow straggler.
        assert!(!g.observe(us(100), Nanos::from_micros(12_000)));
        assert!(
            !g.observe(us(900), Nanos::from_micros(20_500)),
            "previous window had a fast dequeue, queue is not standing"
        );
    }

    #[test]
    fn dedup_roundtrip_miss_pending_done() {
        let mut w = DedupWindow::new(8);
        let k = key("tenant");
        assert_eq!(w.lookup(7, &k), DedupOutcome::Miss);
        w.insert_pending(7, 700, k.clone());
        assert_eq!(w.lookup(7, &k), DedupOutcome::Pending);
        w.record(7, &k, Verdict::Allow);
        assert_eq!(w.lookup(7, &k), DedupOutcome::Done(Verdict::Allow));
    }

    #[test]
    fn dedup_nonce_collision_across_keys_is_a_miss() {
        let mut w = DedupWindow::new(8);
        w.insert_pending(7, 700, key("alice"));
        w.record(7, &key("alice"), Verdict::Deny);
        // Another logical request drew the same nonce for a different
        // key: it must not inherit alice's verdict.
        assert_eq!(w.lookup(7, &key("bob")), DedupOutcome::Miss);
        // Recording under the colliding key is a no-op...
        w.record(7, &key("bob"), Verdict::Allow);
        assert_eq!(
            w.lookup(7, &key("alice")),
            DedupOutcome::Done(Verdict::Deny)
        );
        // ...but re-inserting hands the newer request the slot.
        w.insert_pending(7, 701, key("bob"));
        assert_eq!(w.lookup(7, &key("alice")), DedupOutcome::Miss);
        assert_eq!(w.lookup(7, &key("bob")), DedupOutcome::Pending);
    }

    #[test]
    fn dedup_evicts_oldest_at_capacity() {
        let mut w = DedupWindow::new(3);
        for nonce in 0..3u32 {
            w.insert_pending(nonce, u64::from(nonce) + 100, key("k"));
        }
        assert_eq!(w.len(), 3);
        w.insert_pending(3, 103, key("k"));
        assert_eq!(w.len(), 3, "capacity is a hard bound");
        assert_eq!(w.lookup(0, &key("k")), DedupOutcome::Miss, "oldest evicted");
        assert_eq!(w.lookup(3, &key("k")), DedupOutcome::Pending);
    }

    #[test]
    fn dedup_zero_capacity_is_clamped() {
        let mut w = DedupWindow::new(0);
        w.insert_pending(1, 100, key("k"));
        assert_eq!(w.lookup(1, &key("k")), DedupOutcome::Pending);
        assert!(!w.is_empty());
    }

    #[test]
    fn legacy_lookup_finds_entry_by_request_id() {
        let mut w = DedupWindow::new(8);
        let k = key("tenant");
        // Unknown id: a genuinely legacy frame keeps missing.
        assert_eq!(w.lookup_legacy(900, &k), DedupOutcome::Miss);
        w.insert_pending(42, 900, k.clone());
        // The stamped copy is in flight; its legacy-downgraded final
        // attempt (same id, no nonce) must be absorbed, not re-queued.
        assert_eq!(w.lookup_legacy(900, &k), DedupOutcome::Pending);
        w.record(42, &k, Verdict::Allow);
        // Once decided, the legacy copy gets the cached verdict — no
        // second charge (DESIGN.md §4c).
        assert_eq!(w.lookup_legacy(900, &k), DedupOutcome::Done(Verdict::Allow));
        // Same id under another key is an id collision, not a duplicate.
        assert_eq!(w.lookup_legacy(900, &key("other")), DedupOutcome::Miss);
    }

    #[test]
    fn legacy_index_follows_eviction_and_overwrite() {
        let mut w = DedupWindow::new(2);
        w.insert_pending(1, 100, key("a"));
        w.insert_pending(2, 200, key("b"));
        // Evicting nonce 1 must also drop its id mapping.
        w.insert_pending(3, 300, key("c"));
        assert_eq!(w.lookup_legacy(100, &key("a")), DedupOutcome::Miss);
        assert_eq!(w.lookup_legacy(200, &key("b")), DedupOutcome::Pending);
        // A nonce-collision overwrite rebinds the slot and the index.
        w.insert_pending(2, 201, key("b2"));
        assert_eq!(w.lookup_legacy(200, &key("b")), DedupOutcome::Miss);
        assert_eq!(w.lookup_legacy(201, &key("b2")), DedupOutcome::Pending);
    }
}
