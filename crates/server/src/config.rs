//! QoS server configuration.

use janus_bucket::DefaultRulePolicy;
use janus_db::DbClient;
use janus_net::dns::Resolver;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

/// How a QoS server finds its database.
///
/// The paper's RDS instance "is represented by a DNS name managed by
/// Amazon Route53" so that a Multi-AZ failover is transparent to every
/// QoS server: they simply re-resolve on reconnect. [`DbTarget::Named`]
/// is that mode; [`DbTarget::Direct`] is for single-node setups and
/// tests.
#[derive(Debug, Clone)]
pub enum DbTarget {
    /// A fixed address.
    Direct(SocketAddr),
    /// A DNS failover record resolved at (re)connect time.
    Named {
        /// Record name, e.g. `db.janus.internal`.
        name: String,
        /// The resolver to use (shares the deployment's zone).
        resolver: Arc<Resolver>,
    },
}

impl From<SocketAddr> for DbTarget {
    fn from(addr: SocketAddr) -> DbTarget {
        DbTarget::Direct(addr)
    }
}

impl DbTarget {
    /// Resolve (if named) and connect. `None` on any failure — callers
    /// retry on their next tick or miss.
    pub async fn connect(&self) -> Option<DbClient> {
        let addr = match self {
            DbTarget::Direct(addr) => *addr,
            DbTarget::Named { name, resolver } => resolver.resolve_one(name).ok()?,
        };
        DbClient::connect(addr).await.ok()
    }
}

/// Which local QoS table implementation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableKind {
    /// Lock-striped table: decisions for different keys run in parallel.
    Sharded,
    /// One global lock — the paper's synchronized hash map, kept for the
    /// lock-contention ablation.
    Synchronized,
    /// One partition per worker, matched to key-affinity dispatch: a
    /// worker only ever touches its own partition, so the partition lock
    /// is uncontended. Requires [`DispatchMode::KeyAffinity`].
    PerWorker,
    /// Lock-free open-addressing table over atomic buckets: no lock on
    /// the decision path under either dispatch mode. The server exports
    /// its CAS-retry and probe-length counters through
    /// [`crate::ServerStats`].
    LockFree,
}

/// How the server's UDP ingress maps onto sockets and syscalls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SocketMode {
    /// One listener socket, one `recvfrom` per datagram, listener →
    /// worker queue hand-off — the paper-faithful baseline.
    #[default]
    SingleListener,
    /// One listener socket but batched syscalls: the listener drains
    /// ready datagrams with a single `recvmmsg` and workers flush
    /// responses with `sendmmsg` (portable fallback off Linux). The
    /// dispatch topology is unchanged — this isolates the syscall cost
    /// in the ablation.
    BatchedSyscall,
    /// Per-core sockets: each worker binds its own `SO_REUSEPORT`
    /// socket on the same address and drains/answers its own batches
    /// directly — kernel flow steering replaces the listener→queue hop
    /// entirely. Linux only (spawn fails elsewhere). The kernel steers
    /// by client 4-tuple hash, not QoS key, so this mode is
    /// incompatible with [`TableKind::PerWorker`].
    PerCore,
}

/// How the listener hands requests to workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchMode {
    /// Route each request to the worker `CRC32(key) % workers` through a
    /// per-worker SPSC queue. One key is always decided by the same
    /// worker — the contention-free fast path.
    KeyAffinity,
    /// One shared FIFO all workers pop under a mutex — the paper's
    /// design, kept for the dispatch ablation.
    SharedFifo,
}

// The overload-control tunables live with the mechanisms they tune —
// and with the sans-IO cores that consume them — so the std-only
// simulator can build them without pulling in this (tokio-facing)
// config module. Re-exported here because this is where they always
// lived publicly.
pub use crate::overload::OverloadConfig;

// Same story for the credit-lease policy: it lives with the sans-IO
// ledger in `crate::lease`, re-exported here next to the config that
// embeds it.
pub use crate::lease::LeaseConfig;

/// Tunables for one QoS server node.
#[derive(Debug, Clone)]
pub struct QosServerConfig {
    /// Worker tasks popping the FIFO. The paper sets this to the node's
    /// vCPU count.
    pub workers: usize,
    /// Bounded FIFO between the UDP listener and the workers. When full,
    /// datagrams are shed (the router's retry covers the loss).
    pub fifo_capacity: usize,
    /// House-keeping refill sweep interval.
    pub refill_interval: Duration,
    /// How often to re-query the database for updates to locally-held
    /// rules. `None` disables sync (no database configured).
    pub sync_interval: Duration,
    /// How often to check-point remaining credits back to the database.
    pub checkpoint_interval: Duration,
    /// What to do with keys the database has never heard of.
    pub default_policy: DefaultRulePolicy,
    /// Local table flavour.
    pub table: TableKind,
    /// Issue `SELECT * FROM qos_rules` at startup and preload the local
    /// table. The paper does this on the database side to warm RAM; doing
    /// it on the QoS server also removes first-sighting misses, which is
    /// the right trade when the rule set fits comfortably in memory.
    pub preload: bool,
    /// Listener → worker hand-off strategy.
    pub dispatch: DispatchMode,
    /// Batch the data plane: the listener drains every immediately-ready
    /// datagram per wakeup, workers drain their queue and coalesce
    /// responses headed to the same peer into one datagram. Off
    /// reproduces the paper's one-datagram-per-wakeup behaviour.
    pub batching: bool,
    /// Budget for the per-miss database fetch (connect + `get_rule`). A
    /// hung database connection otherwise stalls the worker — and, under
    /// key-affinity dispatch, every key that hashes to it. On expiry the
    /// request falls back to the default policy and the connection is
    /// dropped for the next miss to rebuild.
    pub db_fetch_timeout: Duration,
    /// Overload control: staleness shedding, sojourn governor, duplicate
    /// suppression.
    pub overload: OverloadConfig,
    /// Credit leases: delegate bucket slices to hot-key routers so they
    /// admit locally with zero network I/O. Off by default — every
    /// pre-lease code path is untouched with `lease.enabled: false`.
    pub lease: LeaseConfig,
    /// Socket/syscall strategy for the UDP data plane.
    pub socket_mode: SocketMode,
    /// Address the admission socket(s) bind. Port 0 picks an ephemeral
    /// port (the default, right for tests); multi-host deployments set
    /// a routable address here instead of the historic hard-coded
    /// loopback.
    pub bind_addr: SocketAddr,
    /// Initial slot count for [`TableKind::LockFree`] (rounded up to a
    /// power of two). The table resizes itself incrementally past a ¾
    /// occupancy watermark, so this only sets the starting footprint.
    pub table_slots: usize,
    /// Demote keys with no decisions for this long from the in-memory
    /// table to the database cold tier, folding their exact credit and
    /// hotness back. `None` (default) keeps every key resident forever —
    /// the paper's behaviour. Only [`TableKind::LockFree`] tracks
    /// idleness; other tables ignore the knob.
    pub idle_ttl: Option<Duration>,
    /// How often the reclaim driver sweeps for idle keys (only with
    /// `idle_ttl` set).
    pub reclaim_interval: Duration,
    /// Rows per warm-up batch: the `preload` scan streams the table in
    /// hottest-first batches of this size instead of one monolithic
    /// `SELECT *`.
    pub warmup_batch: usize,
    /// `SO_BUSY_POLL` budget in µs for [`SocketMode::PerCore`] sockets:
    /// the kernel busy-polls the device queue that long before a
    /// blocking receive sleeps. `None` (default) leaves it off.
    /// Best-effort — unsupported kernels are ignored.
    pub busy_poll_us: Option<u32>,
    /// Pin each [`SocketMode::PerCore`] worker thread to CPU
    /// `worker_index % available_cpus`. Best-effort, off by default.
    pub pin_workers: bool,
}

impl Default for QosServerConfig {
    fn default() -> Self {
        QosServerConfig {
            workers: 4,
            fifo_capacity: 4096,
            refill_interval: Duration::from_millis(100),
            sync_interval: Duration::from_secs(5),
            checkpoint_interval: Duration::from_secs(5),
            default_policy: DefaultRulePolicy::Deny,
            table: TableKind::Sharded,
            preload: false,
            dispatch: DispatchMode::KeyAffinity,
            batching: true,
            db_fetch_timeout: Duration::from_millis(250),
            overload: OverloadConfig::default(),
            lease: LeaseConfig::default(),
            socket_mode: SocketMode::default(),
            bind_addr: default_bind_addr(),
            table_slots: janus_bucket::LockFreeTable::DEFAULT_SLOTS,
            idle_ttl: None,
            reclaim_interval: Duration::from_secs(5),
            warmup_batch: 512,
            busy_poll_us: None,
            pin_workers: false,
        }
    }
}

/// Loopback with an ephemeral port — the historic behaviour, now
/// overridable per deployment.
fn default_bind_addr() -> SocketAddr {
    SocketAddr::from(([127, 0, 0, 1], 0))
}

impl QosServerConfig {
    /// Sensible defaults for fast integration tests: small FIFO, short
    /// intervals. The DB-fetch budget stays generous because a loaded CI
    /// box can take a while to complete a first-sighting fetch.
    pub fn test_defaults() -> Self {
        QosServerConfig {
            workers: 2,
            fifo_capacity: 1024,
            refill_interval: Duration::from_millis(20),
            sync_interval: Duration::from_millis(100),
            checkpoint_interval: Duration::from_millis(100),
            default_policy: DefaultRulePolicy::Deny,
            table: TableKind::Sharded,
            preload: false,
            dispatch: DispatchMode::KeyAffinity,
            batching: true,
            db_fetch_timeout: Duration::from_secs(2),
            overload: OverloadConfig::default(),
            lease: LeaseConfig::default(),
            socket_mode: SocketMode::default(),
            bind_addr: default_bind_addr(),
            table_slots: janus_bucket::LockFreeTable::DEFAULT_SLOTS,
            idle_ttl: None,
            reclaim_interval: Duration::from_millis(100),
            warmup_batch: 512,
            busy_poll_us: None,
            pin_workers: false,
        }
    }

    /// Validate internal consistency.
    pub fn validate(&self) -> janus_types::Result<()> {
        if self.workers == 0 {
            return Err(janus_types::JanusError::config("workers must be > 0"));
        }
        if self.fifo_capacity == 0 {
            return Err(janus_types::JanusError::config("fifo_capacity must be > 0"));
        }
        if self.table == TableKind::PerWorker && self.dispatch != DispatchMode::KeyAffinity {
            return Err(janus_types::JanusError::config(
                "TableKind::PerWorker requires DispatchMode::KeyAffinity \
                 (the per-worker partitions are only uncontended under affinity dispatch)",
            ));
        }
        if self.socket_mode == SocketMode::PerCore && self.table == TableKind::PerWorker {
            return Err(janus_types::JanusError::config(
                "SocketMode::PerCore is incompatible with TableKind::PerWorker: \
                 SO_REUSEPORT steers flows by client 4-tuple hash, not QoS key, \
                 so a key may be decided by any socket owner",
            ));
        }
        if self.db_fetch_timeout.is_zero() {
            return Err(janus_types::JanusError::config(
                "db_fetch_timeout must be > 0",
            ));
        }
        if self.table_slots == 0 {
            return Err(janus_types::JanusError::config("table_slots must be > 0"));
        }
        if self.warmup_batch == 0 {
            return Err(janus_types::JanusError::config("warmup_batch must be > 0"));
        }
        if let Some(ttl) = self.idle_ttl {
            if ttl.is_zero() {
                return Err(janus_types::JanusError::config(
                    "idle_ttl must be > 0 when set",
                ));
            }
            if self.reclaim_interval.is_zero() {
                return Err(janus_types::JanusError::config(
                    "reclaim_interval must be > 0 when idle_ttl is set",
                ));
            }
        }
        if self.lease.enabled {
            if self.lease.ttl.is_zero() {
                return Err(janus_types::JanusError::config(
                    "lease.ttl must be > 0 when leases are enabled",
                ));
            }
            if self.lease.max_holders == 0 || self.lease.slice_fraction == 0 {
                return Err(janus_types::JanusError::config(
                    "lease.max_holders and lease.slice_fraction must be > 0 \
                     when leases are enabled",
                ));
            }
        }
        if self.overload.sojourn_shedding {
            if self.overload.sojourn_target.is_zero() {
                return Err(janus_types::JanusError::config(
                    "overload.sojourn_target must be > 0 when sojourn shedding is on",
                ));
            }
            if self.overload.sojourn_window < self.overload.sojourn_target {
                return Err(janus_types::JanusError::config(
                    "overload.sojourn_window must be >= overload.sojourn_target \
                     (the governor needs a full window of standing sojourns)",
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        assert!(QosServerConfig::default().validate().is_ok());
        assert!(QosServerConfig::test_defaults().validate().is_ok());
    }

    #[test]
    fn zero_workers_invalid() {
        let mut c = QosServerConfig::default();
        c.workers = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn zero_fifo_invalid() {
        let mut c = QosServerConfig::default();
        c.fifo_capacity = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn per_worker_table_requires_affinity_dispatch() {
        let mut c = QosServerConfig::default();
        c.table = TableKind::PerWorker;
        c.dispatch = DispatchMode::KeyAffinity;
        assert!(c.validate().is_ok());
        c.dispatch = DispatchMode::SharedFifo;
        assert!(c.validate().is_err());
    }

    #[test]
    fn lock_free_table_is_valid_under_both_dispatch_modes() {
        let mut c = QosServerConfig::default();
        c.table = TableKind::LockFree;
        c.dispatch = DispatchMode::KeyAffinity;
        assert!(c.validate().is_ok());
        c.dispatch = DispatchMode::SharedFifo;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn per_core_sockets_reject_per_worker_table() {
        let mut c = QosServerConfig::default();
        c.socket_mode = SocketMode::PerCore;
        c.table = TableKind::LockFree;
        assert!(c.validate().is_ok());
        c.table = TableKind::PerWorker;
        assert!(c.validate().is_err(), "reuseport steers by flow, not key");
    }

    #[test]
    fn zero_db_fetch_timeout_invalid() {
        let mut c = QosServerConfig::default();
        c.db_fetch_timeout = Duration::ZERO;
        assert!(c.validate().is_err());
    }

    #[test]
    fn reclaim_shape_is_validated_only_when_idle_ttl_set() {
        let mut c = QosServerConfig::default();
        c.reclaim_interval = Duration::ZERO;
        assert!(c.validate().is_ok(), "no idle_ttl: interval is ignored");
        c.idle_ttl = Some(Duration::from_secs(60));
        assert!(c.validate().is_err(), "zero reclaim_interval rejected");
        c.reclaim_interval = Duration::from_secs(5);
        assert!(c.validate().is_ok());
        c.idle_ttl = Some(Duration::ZERO);
        assert!(c.validate().is_err(), "zero idle_ttl rejected");
    }

    #[test]
    fn zero_table_slots_and_warmup_batch_invalid() {
        let mut c = QosServerConfig::default();
        c.table_slots = 0;
        assert!(c.validate().is_err());
        c.table_slots = 1024;
        c.warmup_batch = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn lease_shape_is_validated_only_when_enabled() {
        let mut c = QosServerConfig::default();
        c.lease.ttl = Duration::ZERO;
        c.lease.max_holders = 0;
        assert!(c.validate().is_ok(), "disabled leases ignore the shape");
        c.lease.enabled = true;
        assert!(c.validate().is_err());
        c.lease.ttl = Duration::from_millis(50);
        assert!(c.validate().is_err(), "zero max_holders must be rejected");
        c.lease.max_holders = 4;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn sojourn_governor_shape_is_validated() {
        let mut c = QosServerConfig::default();
        c.overload.sojourn_target = Duration::ZERO;
        assert!(c.validate().is_err());
        c.overload.sojourn_target = Duration::from_millis(20);
        assert!(
            c.validate().is_err(),
            "window shorter than target must be rejected"
        );
        // With the governor off the shape is irrelevant.
        c.overload.sojourn_shedding = false;
        assert!(c.validate().is_ok());
    }
}
