//! Sans-IO admission cores for the QoS server.
//!
//! Every admission *decision* a QoS server makes — shed a dead-on-arrival
//! request, absorb a duplicate, answer from the dedup cache, shed a
//! standing queue, charge the bucket, suppress a stale send — is pure
//! state-machine logic over an injected clock. This module extracts that
//! logic from the three I/O planes (the async listener/worker plane in
//! [`crate::server`], the per-core `SO_REUSEPORT` plane in
//! [`crate::percore`], and the HA snapshot exchange in [`crate::ha`]) so
//! all of them — and the deterministic simulator in `janus-dst` — drive
//! the *same* code. No sockets, no tasks, no wall clock, no tokio: this
//! file compiles with nothing but `std`, `janus-types`, `janus-clock`
//! and `janus-bucket`.
//!
//! Three layers:
//!
//! * [`IngressCore`] — per-datagram triage before queueing: zero-budget
//!   shed, nonce dedup for stamped frames, request-id dedup for the
//!   legacy-downgraded final attempt (DESIGN.md §4c).
//! * [`WorkerCore`] — dequeue-time triage: staleness shedding and the
//!   CoDel-style sojourn governor, plus the post-decision staleness
//!   check and verdict recording helpers.
//! * [`ServerCore`] — the two cores composed around a [`QosTable`] and
//!   an in-memory FIFO: a whole QoS-server data plane as one
//!   synchronous object, stepped at virtual time by the simulator. The
//!   production planes compose the same cores around real queues and
//!   sockets instead.
//!
//! The HA snapshot wire format ([`encode_snapshot`] /
//! [`decode_snapshot_header`]) lives here too, so the simulator's
//! failover replication exchanges byte-identical snapshots with the
//! production TCP listener.

use crate::lease::{LeaseConfig, LeaseLedger, LeaseLedgerStats};
use crate::overload::{DedupOutcome, DedupWindow, OverloadConfig, SojournGovernor};
use janus_bucket::{DefaultRulePolicy, QosTable};
use janus_clock::Nanos;
use janus_types::{QosRequest, QosResponse, QosRule, RuleHint, Verdict};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

/// The remaining deadline a stamped request arrived with.
pub fn budget_of(request: &QosRequest) -> Option<Duration> {
    request
        .attempt
        .map(|meta| Duration::from_micros(u64::from(meta.budget_us)))
}

/// Build the response for `request`, attaching the rule shape when the
/// request solicited a hint. The decision path has already installed a
/// bucket for the key (DB rule or default policy), so the shape is
/// normally present; a concurrent `remove` simply yields a plain
/// response, which soliciting clients must tolerate anyway.
pub fn respond(table: &Arc<dyn QosTable>, request: &QosRequest, verdict: Verdict) -> QosResponse {
    let response = QosResponse::new(request.id, verdict);
    if !request.solicit_hint {
        return response;
    }
    match table.shape(&request.key) {
        Some((capacity, refill_rate)) => response.with_hint(RuleHint::new(capacity, refill_rate)),
        None => response,
    }
}

/// Cache the decided verdict under the request's attempt nonce so a late
/// duplicate (stamped or legacy-downgraded) is answered without a second
/// charge. A no-op for legacy frames — they were never inserted.
pub fn record_verdict(request: &QosRequest, dedup: &mut DedupWindow, verdict: Verdict) {
    if let Some(meta) = request.attempt {
        dedup.record(meta.nonce, &request.key, verdict);
    }
}

/// Post-decision staleness: `true` when `waited` (arrival → now) has
/// consumed a stamped request's whole budget, making the send wasted
/// work. The charge already happened and the verdict is cached, so a
/// retry gets the cached verdict rather than a second charge. Legacy
/// frames never expire.
pub fn expired_before_send(request: &QosRequest, waited: Duration) -> bool {
    budget_of(request).is_some_and(|budget| waited >= budget)
}

/// The verdict a shed reply should carry, or `None` when the shed must
/// stay silent: legacy frames always shed silently (old routers expect
/// today's semantics), and `shed_replies: false` turns replies off for
/// everyone.
pub fn shed_reply(overload: &OverloadConfig, request: &QosRequest) -> Option<Verdict> {
    (request.attempt.is_some() && overload.shed_replies).then_some(overload.shed_verdict)
}

/// What ingress triage decided for one datagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngressDecision {
    /// A stamped request whose budget arrived as zero is already dead —
    /// shed silently, nobody is waiting.
    ShedExpired,
    /// A duplicate of an already-decided attempt: answer from the cached
    /// verdict without touching the bucket.
    AnswerCached(Verdict),
    /// A duplicate of an attempt still in flight: drop silently — the
    /// first copy's response answers every attempt, because retries
    /// reuse the request id.
    AbsorbDuplicate,
    /// Process normally: queue it (and, once the enqueue succeeds, mark
    /// it pending via [`IngressCore::admitted`]).
    Admit,
}

/// Per-datagram triage before queueing — the pure half of the ingress
/// listener. The caller owns the [`DedupWindow`] (production shares one
/// behind a mutex across planes; the simulator owns it outright) and
/// lends it per call.
#[derive(Debug, Clone)]
pub struct IngressCore {
    overload: OverloadConfig,
}

impl IngressCore {
    /// An ingress core applying `overload`'s policy.
    pub fn new(overload: OverloadConfig) -> Self {
        IngressCore { overload }
    }

    /// The overload policy this core applies.
    pub fn overload(&self) -> &OverloadConfig {
        &self.overload
    }

    /// Triage one datagram (see [`IngressDecision`]). Stamped frames are
    /// deduplicated by attempt nonce; legacy frames by request id, which
    /// is what catches the deadline-blind final attempt of a stamped
    /// schedule (DESIGN.md §4c) — a genuinely legacy request id was
    /// never inserted and misses.
    pub fn triage(&self, request: &QosRequest, dedup: Option<&mut DedupWindow>) -> IngressDecision {
        let outcome = match (request.attempt, dedup) {
            (Some(meta), _) if meta.budget_us == 0 => return IngressDecision::ShedExpired,
            (Some(meta), Some(dedup)) => dedup.lookup(meta.nonce, &request.key),
            (None, Some(dedup)) => dedup.lookup_legacy(request.id, &request.key),
            (_, None) => DedupOutcome::Miss,
        };
        match outcome {
            DedupOutcome::Done(verdict) => IngressDecision::AnswerCached(verdict),
            DedupOutcome::Pending => IngressDecision::AbsorbDuplicate,
            DedupOutcome::Miss => IngressDecision::Admit,
        }
    }

    /// Mark an admitted request pending in the dedup window. Call only
    /// after the enqueue actually succeeded: a shed-on-full request must
    /// not leave a Pending entry absorbing its own retries.
    pub fn admitted(&self, request: &QosRequest, dedup: Option<&mut DedupWindow>) {
        if let (Some(meta), Some(dedup)) = (request.attempt, dedup) {
            dedup.insert_pending(meta.nonce, request.id, request.key.clone());
        }
    }

    /// The verdict a shed reply should carry, or `None` for a silent
    /// shed (see [`shed_reply`]).
    pub fn shed_reply(&self, request: &QosRequest) -> Option<Verdict> {
        shed_reply(&self.overload, request)
    }
}

/// What dequeue-time triage decided for one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerTriage {
    /// Decide it: charge the bucket and answer.
    Decide,
    /// The deadline passed while the job sat queued: shed silently — the
    /// dedup entry stays Pending, so a late duplicate of the same
    /// attempt is absorbed without a charge too.
    ShedExpired,
    /// The queue has been standing above the sojourn target for a full
    /// window: shed (with a reply when [`WorkerCore::shed_reply`] says
    /// so).
    ShedStanding,
}

/// Dequeue-time triage — the pure half of a worker. One instance per
/// worker/queue: the governor's sojourn signal is local to the queue the
/// worker drains, so cores are never shared.
#[derive(Debug)]
pub struct WorkerCore {
    overload: OverloadConfig,
    governor: Option<SojournGovernor>,
}

impl WorkerCore {
    /// A worker core applying `overload`'s policy (the governor runs
    /// only when `sojourn_shedding` is on).
    pub fn new(overload: OverloadConfig) -> Self {
        let governor = overload
            .sojourn_shedding
            .then(|| SojournGovernor::new(overload.sojourn_target, overload.sojourn_window));
        WorkerCore { overload, governor }
    }

    /// Triage one dequeued job given its queue `sojourn`, the current
    /// time and the queue `backlog` (jobs still waiting behind it).
    /// Legacy frames pass straight through — paper semantics — and are
    /// not fed to the governor. The backlog gate keeps an idle queue's
    /// scheduler noise from reading as a standing queue.
    pub fn triage(
        &mut self,
        request: &QosRequest,
        sojourn: Duration,
        now: Nanos,
        backlog: u64,
    ) -> WorkerTriage {
        let Some(budget) = budget_of(request) else {
            return WorkerTriage::Decide;
        };
        if sojourn >= budget {
            return WorkerTriage::ShedExpired;
        }
        if let Some(governor) = &mut self.governor {
            if governor.observe(sojourn, now) && backlog > 0 {
                return WorkerTriage::ShedStanding;
            }
        }
        WorkerTriage::Decide
    }

    /// The verdict a shed reply should carry, or `None` for a silent
    /// shed (see [`shed_reply`]).
    pub fn shed_reply(&self, request: &QosRequest) -> Option<Verdict> {
        shed_reply(&self.overload, request)
    }
}

/// Encode a table snapshot in the HA wire format: `SNAPSHOT <n>\n`
/// followed by `n` tab-separated rule rows.
pub fn encode_snapshot(rules: &[QosRule]) -> String {
    let mut out = format!("SNAPSHOT {}\n", rules.len());
    for rule in rules {
        out.push_str(&rule.to_row());
        out.push('\n');
    }
    out
}

/// Parse the `SNAPSHOT <n>` header line (already trimmed of its
/// newline); `None` if the line is not a well-formed header.
pub fn decode_snapshot_header(line: &str) -> Option<usize> {
    line.strip_prefix("SNAPSHOT ")?.parse().ok()
}

/// Counters a [`ServerCore`] keeps — the sans-IO mirror of the
/// production [`crate::ServerStats`], plain fields instead of atomics
/// because the core is single-threaded by construction.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ServerCoreStats {
    /// Requests shed because the FIFO was full.
    pub shed_full: u64,
    /// Requests shed because their deadline budget was already spent.
    pub shed_expired: u64,
    /// Requests shed by the sojourn governor (standing queue).
    pub shed_sojourn: u64,
    /// Duplicate attempts absorbed by the dedup window.
    pub dedup_hits: u64,
    /// Decisions answered (each one charged a bucket exactly once).
    pub answered: u64,
    /// The subset of `answered` whose verdict was `Allow` — i.e. fresh
    /// decisions that actually consumed a credit. The simulator's credit
    /// oracles difference this across steps.
    pub allowed: u64,
    /// Unknown keys admitted under the default policy.
    pub default_rule_hits: u64,
}

/// A whole QoS-server data plane as one synchronous sans-IO object:
/// [`IngressCore`] and [`WorkerCore`] composed around a [`QosTable`] and
/// an in-memory FIFO. The deterministic simulator steps it at virtual
/// time; its behaviour per request is the production planes' behaviour,
/// because the triage logic *is* the production triage logic.
///
/// No database: unknown keys go straight to the default policy, the way
/// a standalone production server (`db: None`) handles them.
pub struct ServerCore {
    table: Arc<dyn QosTable>,
    ingress: IngressCore,
    worker: WorkerCore,
    dedup: Option<DedupWindow>,
    queue: VecDeque<(QosRequest, Nanos)>,
    fifo_capacity: usize,
    default_policy: DefaultRulePolicy,
    ledger: Option<LeaseLedger>,
    /// Counters, updated as requests flow through.
    pub stats: ServerCoreStats,
}

impl ServerCore {
    /// A server core deciding on `table`, shedding at `fifo_capacity`
    /// queued jobs, applying `overload`'s policy.
    pub fn new(
        table: Arc<dyn QosTable>,
        default_policy: DefaultRulePolicy,
        fifo_capacity: usize,
        overload: OverloadConfig,
    ) -> Self {
        let dedup = (overload.dedup_window > 0).then(|| DedupWindow::new(overload.dedup_window));
        ServerCore {
            table,
            ingress: IngressCore::new(overload.clone()),
            worker: WorkerCore::new(overload),
            dedup,
            queue: VecDeque::new(),
            fifo_capacity: fifo_capacity.max(1),
            default_policy,
            ledger: None,
            stats: ServerCoreStats::default(),
        }
    }

    /// This core with the credit-lease plane enabled under `config`
    /// (a no-op when `config.enabled` is false).
    pub fn with_lease(mut self, config: LeaseConfig) -> Self {
        self.ledger = config.enabled.then(|| LeaseLedger::new(config));
        self
    }

    /// Ledger counters, when the lease plane is enabled. The simulator
    /// differences `drained` across steps to feed the lease oracle.
    pub fn lease_stats(&self) -> Option<LeaseLedgerStats> {
        self.ledger.as_ref().map(|ledger| ledger.stats)
    }

    /// The lease ledger, when enabled (the simulator reaches in for
    /// epochs and holder counts, like tests do).
    pub fn ledger(&self) -> Option<&LeaseLedger> {
        self.ledger.as_ref()
    }

    /// Apply a changed rule: update the table (insert when new) and
    /// revoke outstanding leases for the key by epoch bump — delegated
    /// credit from the old shape means nothing under the new one. The
    /// production DB-sync task follows the same discipline.
    pub fn apply_rule(&mut self, rule: QosRule, now: Nanos) {
        if !self.table.apply_update(&rule, now) {
            self.table.insert(rule.clone(), now);
        }
        if let Some(ledger) = self.ledger.as_mut() {
            ledger.revoke(&rule.key);
        }
    }

    /// The table this core charges (the simulator reaches in for HA
    /// snapshots and invariant checks, like tests do on a production
    /// server).
    pub fn table(&self) -> &Arc<dyn QosTable> {
        &self.table
    }

    /// Jobs currently queued between ingress and the worker.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// The request the next [`poll_worker`](Self::poll_worker) will pop,
    /// if any — the simulator peeks it to attribute charge deltas to a
    /// request id even when the response is suppressed as stale.
    pub fn peek_queue(&self) -> Option<&QosRequest> {
        self.queue.front().map(|(request, _)| request)
    }

    /// One datagram arrives at `now`. Returns the response to send, or
    /// `None` when the request was queued or shed silently.
    pub fn on_request(&mut self, request: QosRequest, now: Nanos) -> Option<QosResponse> {
        match self.ingress.triage(&request, self.dedup.as_mut()) {
            IngressDecision::ShedExpired => {
                self.stats.shed_expired += 1;
                None
            }
            IngressDecision::AnswerCached(verdict) => {
                self.stats.dedup_hits += 1;
                Some(respond(&self.table, &request, verdict))
            }
            IngressDecision::AbsorbDuplicate => {
                self.stats.dedup_hits += 1;
                None
            }
            IngressDecision::Admit => {
                if self.queue.len() >= self.fifo_capacity {
                    self.stats.shed_full += 1;
                    return self
                        .ingress
                        .shed_reply(&request)
                        .map(|verdict| respond(&self.table, &request, verdict));
                }
                self.ingress.admitted(&request, self.dedup.as_mut());
                self.queue.push_back((request, now));
                None
            }
        }
    }

    /// The worker pops one job at `now`. Returns the response to send;
    /// `None` when the queue was empty or the job was shed silently.
    pub fn poll_worker(&mut self, now: Nanos) -> Option<QosResponse> {
        let (request, enqueued_at) = self.queue.pop_front()?;
        let sojourn = now.saturating_since(enqueued_at);
        match self
            .worker
            .triage(&request, sojourn, now, self.queue.len() as u64)
        {
            WorkerTriage::ShedExpired => {
                self.stats.shed_expired += 1;
                None
            }
            WorkerTriage::ShedStanding => {
                self.stats.shed_sojourn += 1;
                self.worker
                    .shed_reply(&request)
                    .map(|verdict| respond(&self.table, &request, verdict))
            }
            WorkerTriage::Decide => {
                let verdict = self.decide_local(&request, now);
                self.stats.answered += 1;
                if verdict == Verdict::Allow {
                    self.stats.allowed += 1;
                }
                if let Some(dedup) = &mut self.dedup {
                    record_verdict(&request, dedup, verdict);
                }
                if expired_before_send(&request, now.saturating_since(enqueued_at)) {
                    self.stats.shed_expired += 1;
                    return None;
                }
                let mut response = respond(&self.table, &request, verdict);
                if let (Some(ledger), Some(report)) = (self.ledger.as_mut(), request.lease) {
                    let table = Arc::clone(&self.table);
                    let key = request.key.clone();
                    let mut charge = || table.decide(&key, now) == Some(Verdict::Allow);
                    if let Some(lease) = ledger.on_report(
                        &request.key,
                        report,
                        table.shape(&request.key),
                        now,
                        &mut charge,
                    ) {
                        response = response.with_lease(lease);
                    }
                }
                Some(response)
            }
        }
    }

    /// Take an HA snapshot of the table (the master side of the
    /// replication exchange).
    pub fn snapshot(&self, now: Nanos) -> Vec<QosRule> {
        self.table.snapshot(now)
    }

    /// Adopt a snapshot wholesale (the slave side).
    pub fn restore(&self, rules: Vec<QosRule>, now: Nanos) {
        self.table.restore(rules, now);
    }

    /// House-keeping refill sweep.
    pub fn sweep_refill(&self, now: Nanos) {
        self.table.sweep_refill(now);
    }

    /// Local table hit, else install the default policy's rule — the
    /// standalone (no database) decision path.
    fn decide_local(&mut self, request: &QosRequest, now: Nanos) -> Verdict {
        if let Some(verdict) = self.table.decide(&request.key, now) {
            return verdict;
        }
        self.stats.default_rule_hits += 1;
        self.table
            .insert(self.default_policy.rule_for(request.key.clone()), now);
        self.table
            .decide(&request.key, now)
            .unwrap_or(Verdict::Deny)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_bucket::ShardedTable;
    use janus_types::{AttemptMeta, QosKey};

    const T0: Nanos = Nanos::from_secs(10);

    fn key(s: &str) -> QosKey {
        QosKey::new(s).unwrap()
    }

    fn stamped(id: u64, k: &str, budget_us: u32, nonce: u32) -> QosRequest {
        QosRequest::new(id, key(k)).with_attempt(AttemptMeta::new(budget_us, nonce))
    }

    fn core_with(capacity: u64, k: &str) -> ServerCore {
        let table: Arc<dyn QosTable> = Arc::new(ShardedTable::new());
        table.insert(QosRule::per_second(key(k), capacity, 0), T0);
        ServerCore::new(
            table,
            DefaultRulePolicy::Deny,
            64,
            OverloadConfig::default(),
        )
    }

    #[test]
    fn each_admission_charges_exactly_once() {
        let mut core = core_with(2, "tenant");
        for (id, expected) in [(1, Verdict::Allow), (2, Verdict::Allow), (3, Verdict::Deny)] {
            assert!(core
                .on_request(QosRequest::new(id, key("tenant")), T0)
                .is_none());
            let response = core.poll_worker(T0).expect("legacy frames always answer");
            assert_eq!(response.verdict, expected, "request {id}");
            assert_eq!(response.id, id);
        }
        assert_eq!(core.stats.answered, 3);
    }

    #[test]
    fn duplicate_nonce_is_absorbed_then_answered_from_cache() {
        let mut core = core_with(1, "tenant");
        let request = stamped(9, "tenant", 10_000, 42);
        assert!(core.on_request(request.clone(), T0).is_none(), "queued");
        // A duplicate while the first copy is still queued is absorbed
        // silently: the first copy's response answers every attempt.
        assert!(core.on_request(request.clone(), T0).is_none());
        assert_eq!(core.stats.dedup_hits, 1);
        assert_eq!(core.queue_len(), 1, "duplicate was not re-queued");

        let first = core.poll_worker(T0).unwrap();
        assert_eq!(first.verdict, Verdict::Allow);
        // The bucket is now empty; only the dedup cache can say Allow.
        let replay = core.on_request(request, T0).expect("cached answer");
        assert_eq!(replay.verdict, Verdict::Allow);
        assert_eq!(core.stats.answered, 1, "bucket charged exactly once");
    }

    #[test]
    fn legacy_downgraded_final_attempt_reuses_cached_verdict() {
        // DESIGN.md §4c regression: the final attempt of a stamped retry
        // schedule downgrades to a legacy frame (no nonce, no budget)
        // but reuses the logical request id. While the original verdict
        // sits in the dedup window it must be answered from cache, not
        // charged a second time.
        let mut core = core_with(1, "tenant");
        let original = stamped(77, "tenant", 10_000, 1234);
        assert!(core.on_request(original.clone(), T0).is_none());
        let decided = core.poll_worker(T0).unwrap();
        assert_eq!(decided.verdict, Verdict::Allow);

        let legacy_copy = original.without_attempt();
        assert!(legacy_copy.attempt.is_none(), "downgrade drops the stamp");
        let answer = core
            .on_request(legacy_copy, T0)
            .expect("cached answer, not a silent queue");
        // The bucket is empty: a real decision would say Deny. Allow
        // proves the verdict came from the dedup cache — no double
        // charge.
        assert_eq!(answer.verdict, Verdict::Allow);
        assert_eq!(core.stats.answered, 1);
        assert_eq!(core.stats.dedup_hits, 1);
    }

    #[test]
    fn legacy_downgrade_absorbed_while_original_is_pending() {
        // The §4c race's other half: the legacy copy lands while the
        // stamped copy is still queued. It must be absorbed (the queued
        // copy's response answers both) — not decided a second time.
        let mut core = core_with(1, "tenant");
        let original = stamped(78, "tenant", 10_000, 99);
        assert!(core.on_request(original.clone(), T0).is_none());
        assert!(core.on_request(original.without_attempt(), T0).is_none());
        assert_eq!(core.queue_len(), 1, "legacy copy was not re-queued");
        assert_eq!(core.stats.dedup_hits, 1);
        assert_eq!(core.poll_worker(T0).unwrap().verdict, Verdict::Allow);
        assert_eq!(core.stats.answered, 1, "one charge for the pair");
    }

    #[test]
    fn pure_legacy_traffic_keeps_paper_semantics() {
        // A genuinely legacy router (never stamped anything) is charged
        // on every attempt, exactly as the paper specifies.
        let mut core = core_with(2, "tenant");
        for _ in 0..2 {
            assert!(core
                .on_request(QosRequest::new(5, key("tenant")), T0)
                .is_none());
            core.poll_worker(T0).unwrap();
        }
        assert_eq!(core.stats.answered, 2, "no dedup for unstamped traffic");
        assert_eq!(core.stats.dedup_hits, 0);
    }

    #[test]
    fn zero_budget_request_is_shed_at_ingress() {
        let mut core = core_with(1, "tenant");
        assert!(core.on_request(stamped(1, "tenant", 0, 7), T0).is_none());
        assert_eq!(core.stats.shed_expired, 1);
        assert_eq!(core.queue_len(), 0);
    }

    #[test]
    fn full_queue_sheds_with_reply_for_stamped_requests() {
        let table: Arc<dyn QosTable> = Arc::new(ShardedTable::new());
        table.insert(QosRule::per_second(key("t"), 100, 0), T0);
        let mut core =
            ServerCore::new(table, DefaultRulePolicy::Deny, 1, OverloadConfig::default());
        assert!(core.on_request(stamped(1, "t", 10_000, 1), T0).is_none());
        // Queue full: the stamped request gets the shed verdict back...
        let shed = core.on_request(stamped(2, "t", 10_000, 2), T0).unwrap();
        assert_eq!(shed.verdict, Verdict::Deny);
        // ...and must NOT leave a Pending entry: its retry is a fresh
        // try, not a duplicate to absorb.
        assert_eq!(core.stats.shed_full, 1);
        assert!(core.on_request(stamped(2, "t", 10_000, 2), T0).is_some());
        assert_eq!(core.stats.shed_full, 2, "retry shed again, not absorbed");
        // A legacy frame sheds silently.
        assert!(core.on_request(QosRequest::new(3, key("t")), T0).is_none());
        assert_eq!(core.stats.shed_full, 3);
    }

    #[test]
    fn lease_soliciting_traffic_earns_a_grant_debited_from_the_bucket() {
        use crate::lease::LeaseConfig;
        use janus_types::LeaseReport;
        let table: Arc<dyn QosTable> = Arc::new(ShardedTable::new());
        table.insert(QosRule::per_second(key("hot"), 20, 0), T0);
        let mut core = ServerCore::new(
            table,
            DefaultRulePolicy::Deny,
            64,
            OverloadConfig::default(),
        )
        .with_lease(LeaseConfig {
            enabled: true,
            ttl: Duration::from_millis(20),
            hot_threshold: 2,
            max_holders: 2,
            slice_fraction: 4,
        });
        let ask = |id| QosRequest::new(id, key("hot")).with_lease(LeaseReport::soliciting(9));
        assert!(core.on_request(ask(1), T0).is_none());
        let first = core.poll_worker(T0).unwrap();
        assert_eq!(first.lease, None, "below the hot threshold");
        assert!(core.on_request(ask(2), T0).is_none());
        let second = core.poll_worker(T0).unwrap();
        let lease = second.lease.expect("second ask crosses the threshold");
        assert_eq!(lease.slice, janus_types::Credits::from_whole(5));
        assert_eq!(lease.epoch, 1);
        // The two admissions plus the 5-credit slice left 13 of 20: the
        // grant really debited the authoritative bucket.
        let stats = core.lease_stats().unwrap();
        assert_eq!(stats.drained, 5);
        assert_eq!(stats.grants, 1);
        let mut allows = 0;
        for id in 3..30 {
            assert!(core
                .on_request(QosRequest::new(id, key("hot")), T0)
                .is_none());
            if core.poll_worker(T0).unwrap().verdict == Verdict::Allow {
                allows += 1;
            }
        }
        assert_eq!(allows, 13, "slice credits are gone from the bucket");
    }

    #[test]
    fn apply_rule_revokes_by_epoch_bump() {
        use crate::lease::LeaseConfig;
        use janus_types::LeaseReport;
        let table: Arc<dyn QosTable> = Arc::new(ShardedTable::new());
        table.insert(QosRule::per_second(key("hot"), 20, 0), T0);
        let mut core = ServerCore::new(
            table,
            DefaultRulePolicy::Deny,
            64,
            OverloadConfig::default(),
        )
        .with_lease(LeaseConfig {
            enabled: true,
            ttl: Duration::from_millis(20),
            hot_threshold: 1,
            max_holders: 2,
            slice_fraction: 4,
        });
        let ask = QosRequest::new(1, key("hot")).with_lease(LeaseReport::soliciting(9));
        assert!(core.on_request(ask, T0).is_none());
        assert_eq!(core.poll_worker(T0).unwrap().lease.unwrap().epoch, 1);
        core.apply_rule(QosRule::per_second(key("hot"), 10, 0), T0);
        assert_eq!(core.lease_stats().unwrap().revocations, 1);
        let ask = QosRequest::new(2, key("hot")).with_lease(LeaseReport::soliciting(9));
        assert!(core.on_request(ask, T0).is_none());
        let lease = core.poll_worker(T0).unwrap().lease.unwrap();
        assert_eq!(lease.epoch, 2, "re-grant carries the bumped epoch");
    }

    #[test]
    fn queue_sojourn_past_budget_sheds_at_dequeue() {
        let mut core = core_with(5, "tenant");
        assert!(core.on_request(stamped(1, "tenant", 100, 11), T0).is_none());
        // 100 µs budget, popped 150 µs later: nobody is waiting.
        let later = T0.saturating_add(Duration::from_micros(150));
        assert!(core.poll_worker(later).is_none());
        assert_eq!(core.stats.shed_expired, 1);
        assert_eq!(core.stats.answered, 0, "no charge for a shed job");
    }

    #[test]
    fn unknown_key_falls_back_to_default_policy() {
        let table: Arc<dyn QosTable> = Arc::new(ShardedTable::new());
        let mut core = ServerCore::new(
            table,
            DefaultRulePolicy::AllowAll,
            8,
            OverloadConfig::default(),
        );
        assert!(core
            .on_request(QosRequest::new(1, key("ghost")), T0)
            .is_none());
        let response = core.poll_worker(T0).unwrap();
        assert_eq!(response.verdict, Verdict::Allow);
        assert_eq!(core.stats.default_rule_hits, 1);
    }

    #[test]
    fn worker_core_sheds_standing_queue_only_with_backlog() {
        let overload = OverloadConfig {
            sojourn_target: Duration::from_micros(500),
            sojourn_window: Duration::from_millis(10),
            ..OverloadConfig::default()
        };
        let mut worker = WorkerCore::new(overload);
        let request = stamped(1, "t", 1_000_000, 5);
        let slow = Duration::from_micros(900);
        // A full standing window first (mirrors the governor's own test).
        for tick in 0..10u64 {
            let now = Nanos::from_micros(tick * 1_000);
            assert_eq!(worker.triage(&request, slow, now, 1), WorkerTriage::Decide);
        }
        let now = Nanos::from_micros(10_000);
        assert_eq!(
            worker.triage(&request, slow, now, 1),
            WorkerTriage::ShedStanding
        );
        // Same signal, empty queue: scheduler noise, serve it.
        let mut idle = WorkerCore::new(OverloadConfig::default());
        for tick in 0..10u64 {
            idle.triage(&request, slow, Nanos::from_micros(tick * 1_000), 0);
        }
        assert_eq!(
            idle.triage(&request, slow, Nanos::from_micros(10_000), 0),
            WorkerTriage::Decide
        );
    }

    #[test]
    fn snapshot_wire_roundtrip() {
        let rules = vec![
            QosRule::per_second(key("alice:photos"), 100, 1000),
            QosRule::per_second(key("bob"), 50, 5),
        ];
        let wire = encode_snapshot(&rules);
        let mut lines = wire.lines();
        let n = decode_snapshot_header(lines.next().unwrap()).unwrap();
        assert_eq!(n, 2);
        let parsed: Vec<QosRule> = lines.map(|l| QosRule::parse_row(l).unwrap()).collect();
        assert_eq!(parsed, rules);
        assert_eq!(decode_snapshot_header("SNAPSHOT x"), None);
        assert_eq!(decode_snapshot_header("GIMME 2"), None);
    }
}
