//! The per-core socket plane ([`crate::SocketMode::PerCore`]).
//!
//! Instead of one listener task fanning datagrams out through SPSC
//! queues, every worker owns its own `SO_REUSEPORT` socket bound to the
//! same address. The kernel steers each client flow (by 4-tuple hash) to
//! exactly one socket, so a worker drains its own batches with
//! `recvmmsg`, decides them inline, and answers straight back with
//! `sendmmsg` — no listener→queue hop, no cross-thread hand-off, no
//! queue sojourn at all.
//!
//! Consequences, documented rather than hidden:
//!
//! * `fifo_depth` stays 0 and the sojourn histogram stays empty — there
//!   is no user-space queue to measure. The sojourn governor therefore
//!   never runs; staleness shedding still applies (arrival-stamped).
//! * Flow steering hashes the *client* 4-tuple, not the QoS key, so any
//!   worker may decide any key. [`crate::config::QosServerConfig::validate`]
//!   rejects the per-worker table for this mode; the other table kinds
//!   are safe under concurrent deciders by construction.
//! * Duplicate suppression still serializes through the one shared
//!   dedup window. Duplicates of one attempt come from one client
//!   socket, hence land on one worker, so the Pending→record sequence
//!   is race-free per nonce.
//!
//! Workers are ordinary named OS threads (the blocking `recvmmsg` loop
//! must not occupy tokio executor threads); they re-enter the runtime
//! via [`tokio::runtime::Handle::block_on`] only for the decision path's
//! DB fetch machinery. Linux only: spawning fails cleanly elsewhere
//! because [`janus_net::mmsg::reuseport_socket`] is a stub off-Linux.

use crate::config::{DbTarget, QosServerConfig};
use crate::core::{self, IngressCore, IngressDecision};
use crate::server::{decide, respond, GuestKeys, ServerStats, SharedDedup, SharedLedger};
use janus_bucket::QosTable;
use janus_clock::SharedClock;
use janus_db::DbClient;
use janus_net::buffer_pool::PooledBuf;
use janus_net::fault::{Fate, FaultPlan};
use janus_net::mmsg::{self, RecvSlot, MAX_BATCH};
use janus_net::udp::RECV_BUF_BYTES;
use janus_types::codec::{self, Frame};
use janus_types::{QosRequest, QosResponse, Result, Verdict};
use std::io::ErrorKind;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How long a blocking `recvmmsg` waits before surfacing a timeout so
/// the worker can notice shutdown. Bounds shutdown latency; unrelated to
/// request deadlines.
const READ_TIMEOUT: Duration = Duration::from_millis(25);

/// Everything a per-core worker needs besides its socket. One clone per
/// worker thread.
#[derive(Clone)]
pub(crate) struct PerCoreCtx {
    pub table: Arc<dyn QosTable>,
    pub stats: Arc<ServerStats>,
    pub clock: SharedClock,
    pub db_target: Option<DbTarget>,
    pub default_policy: janus_bucket::DefaultRulePolicy,
    pub guest_keys: GuestKeys,
    pub db_fetch_timeout: Duration,
    pub core: IngressCore,
    pub dedup: Option<SharedDedup>,
    pub ledger: Option<SharedLedger>,
    pub faults: Arc<FaultPlan>,
}

/// Bind `config.workers` `SO_REUSEPORT` sockets on `config.bind_addr`
/// (the first learns the port when it was 0, the rest join it) and spawn
/// one draining worker thread per socket. Returns the shared address.
pub(crate) fn spawn_percore_plane(
    config: &QosServerConfig,
    ctx: PerCoreCtx,
    mut shutdown: tokio::sync::watch::Receiver<bool>,
) -> Result<SocketAddr> {
    let handle = tokio::runtime::Handle::current();
    let first = mmsg::reuseport_socket(config.bind_addr)?;
    let addr = first.local_addr()?;
    let mut sockets = vec![first];
    for _ in 1..config.workers {
        sockets.push(mmsg::reuseport_socket(addr)?);
    }

    // Translate the async shutdown signal into a flag the blocking
    // threads poll between (time-bounded) receive calls.
    let stop = Arc::new(AtomicBool::new(false));
    {
        let stop = Arc::clone(&stop);
        tokio::spawn(async move {
            let _ = shutdown.changed().await;
            stop.store(true, Ordering::Relaxed);
        });
    }

    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    for (i, socket) in sockets.into_iter().enumerate() {
        socket.set_read_timeout(Some(READ_TIMEOUT))?;
        if let Some(micros) = config.busy_poll_us {
            // Best-effort: needs CAP_NET_ADMIN on older kernels.
            let _ = mmsg::set_busy_poll(&socket, micros);
        }
        let pin = config.pin_workers.then_some(i % cpus);
        let ctx = ctx.clone();
        let stop = Arc::clone(&stop);
        let handle = handle.clone();
        std::thread::Builder::new()
            .name(format!("qos-percore-{i}"))
            .spawn(move || worker_loop(socket, ctx, stop, handle, pin))?;
    }
    Ok(addr)
}

/// One worker's life: drain a batch, decide every request in it,
/// coalesce responses per peer, flush them in one `sendmmsg`.
fn worker_loop(
    socket: UdpSocket,
    ctx: PerCoreCtx,
    stop: Arc<AtomicBool>,
    handle: tokio::runtime::Handle,
    pin: Option<usize>,
) {
    if let Some(cpu) = pin {
        // Advisory: a denied affinity mask costs nothing but locality.
        let _ = mmsg::pin_current_thread(cpu);
    }
    let mut db: Option<DbClient> = None;
    // Scratch buffers come from the shared pool once and are reused for
    // every batch this thread ever receives.
    let mut bufs: Vec<PooledBuf> = (0..MAX_BATCH)
        .map(|_| ctx.stats.pool.acquire(RECV_BUF_BYTES))
        .collect();
    let mut slots: Vec<RecvSlot> = Vec::with_capacity(MAX_BATCH);
    let mut by_peer: Vec<(SocketAddr, Vec<QosResponse>)> = Vec::new();
    while !stop.load(Ordering::Relaxed) {
        let n = match mmsg::recv_batch(&socket, &mut bufs, &mut slots, Some(&ctx.stats.mmsg)) {
            Ok(n) => n,
            // Read-timeout expiry surfaces as WouldBlock or TimedOut
            // depending on platform; both just mean "check stop again".
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) =>
            {
                continue
            }
            Err(_) => return,
        };
        by_peer.clear();
        for (buf, slot) in bufs.iter().zip(slots.iter()).take(n) {
            let Ok(frames) = codec::decode_all(&buf[..slot.len]) else {
                continue;
            };
            for frame in frames {
                let Frame::Request(request) = frame else {
                    continue;
                };
                if let Some(response) = handle_request(&ctx, &mut db, &handle, request) {
                    match by_peer.iter_mut().find(|(addr, _)| *addr == slot.peer) {
                        Some((_, responses)) => responses.push(response),
                        None => by_peer.push((slot.peer, vec![response])),
                    }
                }
            }
        }
        flush(&ctx, &socket, &mut by_peer);
    }
}

/// The inline equivalent of ingress triage + worker decision, driven by
/// the same sans-IO [`IngressCore`] as the async plane: zero-budget shed,
/// dedup lookup (nonce for stamped frames, request id for the
/// legacy-downgraded final attempt), decide, verdict recording,
/// post-decision staleness. Returns the response to send, or `None` for
/// the silent-shed paths.
fn handle_request(
    ctx: &PerCoreCtx,
    db: &mut Option<DbClient>,
    handle: &tokio::runtime::Handle,
    request: QosRequest,
) -> Option<QosResponse> {
    let arrived = ctx.clock.now();
    {
        let mut guard = ctx.dedup.as_ref().map(|dedup| dedup.lock());
        match ctx.core.triage(&request, guard.as_deref_mut()) {
            IngressDecision::ShedExpired => {
                ctx.stats.shed_expired.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            IngressDecision::AnswerCached(verdict) => {
                ctx.stats.dedup_hits.fetch_add(1, Ordering::Relaxed);
                return Some(respond(&ctx.table, &request, verdict));
            }
            IngressDecision::AbsorbDuplicate => {
                // A duplicate of an attempt this plane is already
                // deciding (it must have raced here via another client
                // socket); the first copy's response answers every
                // attempt.
                ctx.stats.dedup_hits.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            // There is no queue on this plane, so "admitted" means
            // "decided inline right now" — mark it pending immediately.
            IngressDecision::Admit => ctx.core.admitted(&request, guard.as_deref_mut()),
        }
    }
    // The decision path may await a DB fetch; hop back onto the runtime
    // just for that future. Table hits never actually yield.
    let verdict = handle.block_on(decide(
        &ctx.table,
        &ctx.clock,
        &request.key,
        ctx.db_target.as_ref(),
        db,
        &ctx.default_policy,
        &ctx.stats,
        &ctx.guest_keys,
        ctx.db_fetch_timeout,
    ));
    ctx.stats.answered.fetch_add(1, Ordering::Relaxed);
    if let Some(dedup) = &ctx.dedup {
        core::record_verdict(&request, &mut dedup.lock(), verdict);
    }
    // Post-decision staleness: a first-sighting DB fetch may have eaten
    // the budget. The charge stands and the verdict is cached, so a
    // retry gets the cached verdict, never a second charge.
    if core::expired_before_send(&request, ctx.clock.now().saturating_since(arrived)) {
        ctx.stats.shed_expired.fetch_add(1, Ordering::Relaxed);
        return None;
    }
    let mut response = respond(&ctx.table, &request, verdict);
    // Lease half: fold in the piggybacked report through the shared
    // ledger and attach a grant when the key is hot and the bucket
    // covers the debit — same discipline as the async workers.
    if let (Some(ledger), Some(report)) = (&ctx.ledger, request.lease) {
        let now = ctx.clock.now();
        let mut charge = || ctx.table.decide(&request.key, now) == Some(Verdict::Allow);
        let lease = ledger.lock().on_report(
            &request.key,
            report,
            ctx.table.shape(&request.key),
            now,
            &mut charge,
        );
        if let Some(lease) = lease {
            ctx.stats.lease_grants.fetch_add(1, Ordering::Relaxed);
            response = response.with_lease(lease);
        }
    }
    Some(response)
}

/// Drain `by_peer`, judging response fates per datagram exactly like the
/// async plane: clean immediate deliveries coalesce into one `sendmmsg`
/// batch, every other fate takes its own per-datagram path.
fn flush(ctx: &PerCoreCtx, socket: &UdpSocket, by_peer: &mut Vec<(SocketAddr, Vec<QosResponse>)>) {
    let mut ready = Vec::new();
    for (peer, responses) in by_peer.drain(..) {
        let wires = if responses.len() == 1 {
            vec![codec::encode_response(&responses[0])]
        } else {
            let frames: Vec<Frame> = responses.iter().map(|r| Frame::Response(*r)).collect();
            codec::encode_batch(&frames)
        };
        for wire in wires {
            match ctx.faults.judge_fate() {
                Fate::Drop => {}
                Fate::Deliver(delay) if delay.is_zero() => ready.push((wire, peer)),
                Fate::Deliver(delay) => {
                    // Blocking the worker mirrors the async plane, where
                    // the sending task awaits the injected delay inline.
                    std::thread::sleep(delay);
                    ready.push((wire, peer));
                }
                Fate::Duplicate(delay) => {
                    ready.push((wire.clone(), peer));
                    deferred_send(socket, wire, peer, delay);
                }
                Fate::Defer(delay) => deferred_send(socket, wire, peer, delay),
            }
        }
    }
    if ready.is_empty() {
        return;
    }
    let msgs: Vec<(&[u8], SocketAddr)> = ready.iter().map(|(w, p)| (w.as_ref(), *p)).collect();
    // A refused datagram is indistinguishable from a network drop; the
    // router's retry covers it, exactly as on the async plane.
    let _ = mmsg::send_batch(socket, &msgs, Some(&ctx.stats.mmsg));
}

/// Send `wire` to `peer` after `delay`, off-thread, fire-and-forget —
/// the fault plan's deferred/duplicated deliveries.
fn deferred_send<W: AsRef<[u8]> + Send + 'static>(
    socket: &UdpSocket,
    wire: W,
    peer: SocketAddr,
    delay: Duration,
) {
    let Ok(clone) = socket.try_clone() else {
        return;
    };
    std::thread::spawn(move || {
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        let _ = clone.send_to(wire.as_ref(), peer);
    });
}
