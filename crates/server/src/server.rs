//! The QoS server node: listener, dispatch, workers and maintenance tasks.
//!
//! Two data planes are selectable ([`crate::config::DispatchMode`]):
//!
//! * **SharedFifo** — the paper's design: one bounded FIFO, every worker
//!   pops it under a mutex.
//! * **KeyAffinity** — the batched plane: the listener drains every
//!   immediately-ready datagram per wakeup and routes each request to
//!   worker `CRC32(key) % workers` through that worker's own SPSC queue;
//!   the worker drains its queue, decides the batch, and coalesces
//!   responses to the same peer into one batched datagram.

use crate::config::{
    DbTarget, DispatchMode, OverloadConfig, QosServerConfig, SocketMode, TableKind,
};
use crate::core::{self, IngressCore, IngressDecision, WorkerCore, WorkerTriage};
use crate::ha;
use crate::lease::LeaseLedger;
use crate::overload::DedupWindow;
use crate::percore;
use janus_bucket::{
    worker_affinity, LockFreeTable, PartitionedTable, QosTable, ShardedTable, SyncTable,
    TableEngineCells,
};
use janus_clock::{Nanos, SharedClock};
use janus_db::DbClient;
use janus_net::buffer_pool::BufferPool;
use janus_net::fault::FaultPlan;
use janus_net::udp::UdpServerSocket;
use janus_types::{QosKey, QosRequest, QosResponse, Result, Verdict};
use janus_workload::Histogram;
use std::collections::HashSet;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tokio::sync::{mpsc, watch, Mutex};

/// Most datagrams the affinity listener pulls in one wakeup before
/// yielding back to the scheduler (keeps one flood from starving the
/// maintenance tasks).
const LISTENER_DRAIN_LIMIT: usize = 256;

/// Most requests an affinity worker decides per queue drain; also the
/// cap on how many responses coalesce into one send burst.
const WORKER_DRAIN_LIMIT: usize = 16;

/// Keys whose local bucket came from the default policy rather than a
/// database row. The rule-sync task must not treat their absence from
/// the database as a deletion — removing them would re-grant a fresh
/// guest bucket every sync round.
pub(crate) type GuestKeys = Arc<parking_lot::Mutex<HashSet<QosKey>>>;

/// The recent-nonce window shared by the listener (lookups at ingress)
/// and the workers (verdict recording after a decision). One shared
/// window — not one per worker — because under shared-FIFO dispatch any
/// worker may decide any key, and credit exactness requires duplicate
/// detection to be serialized at a single point.
pub(crate) type SharedDedup = Arc<parking_lot::Mutex<DedupWindow>>;

/// The credit-lease ledger shared by every decision site (workers on
/// both dispatch modes, or per-core socket owners) and the rule-sync
/// task (revocation on rule change). One ledger per server — like the
/// dedup window, lease accounting must serialize at a single point
/// because any worker may decide any key under shared-FIFO and per-core
/// dispatch. `None` when the lease plane is disabled.
pub(crate) type SharedLedger = Arc<parking_lot::Mutex<LeaseLedger>>;

/// One queued admission request, stamped with its enqueue time so the
/// dequeuing worker can compute the queue sojourn — the signal behind
/// both staleness shedding and the sojourn governor.
struct Job {
    request: QosRequest,
    peer: SocketAddr,
    enqueued_at: Nanos,
}

// The pure halves of this data plane — budget extraction, response
// shaping, dedup bookkeeping, triage — live in the sans-IO core module
// so the simulator drives the same code; re-exported for the sibling
// planes that import them from here.
pub(crate) use crate::core::{budget_of, respond};

/// Counters exported by a running QoS server.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Requests shed because the FIFO (or a worker's queue) was full.
    pub shed_full: AtomicU64,
    /// Requests shed because their deadline budget was already spent —
    /// at ingress (budget arrived as zero), at dequeue (the queue
    /// sojourn consumed it), or after deciding but before the send.
    pub shed_expired: AtomicU64,
    /// Requests shed by the sojourn governor: the queue was standing
    /// above target for a full window (see
    /// [`crate::overload::SojournGovernor`]).
    pub shed_sojourn: AtomicU64,
    /// Duplicate attempts absorbed by the dedup window — answered from
    /// the cached verdict (or silently dropped while the first copy was
    /// still in flight) instead of charging the bucket again.
    pub dedup_hits: AtomicU64,
    /// Decisions answered.
    pub answered: AtomicU64,
    /// Rules fetched from the database on first sighting.
    pub db_fetches: AtomicU64,
    /// Unknown keys admitted under the default policy.
    pub default_rule_hits: AtomicU64,
    /// House-keeping refill sweeps executed.
    pub refill_sweeps: AtomicU64,
    /// Check-point rounds completed.
    pub checkpoints: AtomicU64,
    /// Rule-sync rounds that found changes.
    pub sync_rounds: AtomicU64,
    /// Lease grants (first-time and renewals) attached to responses —
    /// each one pre-paid by a debit against the authoritative bucket.
    pub lease_grants: AtomicU64,
    /// First-sighting DB fetches abandoned at the fetch budget.
    pub db_timeouts: AtomicU64,
    /// Requests currently queued between listener and workers (gauge).
    pub fifo_depth: AtomicU64,
    /// Bucket CAS retries on the decision path. Only the lock-free table
    /// writes here (the cell is shared into it at spawn); always zero
    /// under the locked table kinds.
    pub cas_retries: Arc<AtomicU64>,
    /// Open-addressing probe steps beyond the home slot (lock-free table
    /// only) — a clustering / fill-factor proxy.
    pub probe_steps: Arc<AtomicU64>,
    /// Memory-engine gauges shared into the lock-free table at spawn:
    /// resident open slots, active-generation slot count, completed
    /// resizes, migrated slots and reclaimed keys. All zero under the
    /// locked table kinds. (The table writes its CAS-retry and probe
    /// counters into the sibling cells above, not this block's copies.)
    pub engine: TableEngineCells,
    /// Streaming warm-up batches applied at preload (non-empty pages of
    /// the hottest-first cold-tier scan).
    pub warmup_batches: AtomicU64,
    /// Receive-buffer pool for this server's UDP socket; its hit counter
    /// is exported as `pool_recycle_hits`.
    pub pool: Arc<BufferPool>,
    /// Queue sojourn (enqueue → dequeue) of every request a worker
    /// popped, shed or served — the signal the sojourn governor runs on,
    /// exported as percentiles in the snapshot.
    pub sojourn: parking_lot::Mutex<Histogram>,
    /// Batched-syscall counters (`recvmmsg`/`sendmmsg` amortization);
    /// shared into the UDP socket or per-core workers at spawn. Always
    /// zero under [`SocketMode::SingleListener`].
    pub mmsg: Arc<janus_net::mmsg::BatchStats>,
}

/// A point-in-time copy of [`ServerStats`], for benches and experiment
/// harnesses that want one coherent read instead of a field-by-field
/// probe of the atomics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStatsSnapshot {
    /// Requests shed because the FIFO (or a worker's queue) was full.
    pub shed_full: u64,
    /// Requests shed because their deadline budget was already spent.
    pub shed_expired: u64,
    /// Requests shed by the sojourn governor (standing queue).
    pub shed_sojourn: u64,
    /// Duplicate attempts absorbed by the dedup window.
    pub dedup_hits: u64,
    /// Decisions answered.
    pub answered: u64,
    /// Rules fetched from the database on first sighting.
    pub db_fetches: u64,
    /// Unknown keys admitted under the default policy.
    pub default_rule_hits: u64,
    /// House-keeping refill sweeps executed.
    pub refill_sweeps: u64,
    /// Check-point rounds completed.
    pub checkpoints: u64,
    /// Rule-sync rounds that found changes.
    pub sync_rounds: u64,
    /// Lease grants (first-time and renewals) attached to responses.
    pub lease_grants: u64,
    /// First-sighting DB fetches abandoned at the fetch budget.
    pub db_timeouts: u64,
    /// Requests queued between listener and workers right now (gauge —
    /// queue pressure, not a running total).
    pub fifo_depth: u64,
    /// Bucket CAS retries on the decision path (lock-free table only).
    pub cas_retries: u64,
    /// Open-addressing probe steps beyond the home slot (lock-free table
    /// only).
    pub probe_steps: u64,
    /// Published entries resident in the lock-free table's open-addressed
    /// array (gauge; overflow excluded, zero under locked table kinds).
    pub open_slots: u64,
    /// Integer occupancy percentage of the active generation
    /// (`open_slots * 100 / slot_count`; 0 under locked table kinds).
    pub occupancy_pct: u64,
    /// Completed watermark-triggered generation doublings.
    pub resizes: u64,
    /// Live rules carried across generations by incremental migration.
    pub migrated_slots: u64,
    /// Idle keys demoted to the database cold tier by reclaim sweeps.
    pub reclaimed_keys: u64,
    /// Streaming warm-up batches applied at preload.
    pub warmup_batches: u64,
    /// Receive-buffer checkouts served from the recycle pool instead of a
    /// fresh allocation.
    pub pool_recycle_hits: u64,
    /// Median queue sojourn, whole microseconds (0 when nothing popped).
    pub sojourn_p50_us: u64,
    /// 99th-percentile queue sojourn, whole microseconds.
    pub sojourn_p99_us: u64,
    /// Per-datagram syscalls amortized away by `recvmmsg`/`sendmmsg`
    /// (datagrams moved minus kernel crossings spent, both directions).
    pub syscalls_saved: u64,
    /// Median receive batch length in datagrams (0 before any batched
    /// receive).
    pub batch_recv_p50: u64,
    /// 99th-percentile receive batch length in datagrams.
    pub batch_recv_p99: u64,
}

impl ServerStats {
    /// Total sheds across every cause.
    pub fn shed_total(&self) -> u64 {
        self.shed_full.load(Ordering::Relaxed)
            + self.shed_expired.load(Ordering::Relaxed)
            + self.shed_sojourn.load(Ordering::Relaxed)
    }

    /// Read every counter at once.
    pub fn snapshot(&self) -> ServerStatsSnapshot {
        let (sojourn_p50_us, sojourn_p99_us) = {
            let sojourn = self.sojourn.lock();
            (
                sojourn.quantile(0.5) / 1_000,
                sojourn.quantile(0.99) / 1_000,
            )
        };
        let open_slots = self.engine.open_slots.load(Ordering::Relaxed);
        let slot_count = self.engine.slot_count.load(Ordering::Relaxed);
        ServerStatsSnapshot {
            shed_full: self.shed_full.load(Ordering::Relaxed),
            shed_expired: self.shed_expired.load(Ordering::Relaxed),
            shed_sojourn: self.shed_sojourn.load(Ordering::Relaxed),
            dedup_hits: self.dedup_hits.load(Ordering::Relaxed),
            answered: self.answered.load(Ordering::Relaxed),
            db_fetches: self.db_fetches.load(Ordering::Relaxed),
            default_rule_hits: self.default_rule_hits.load(Ordering::Relaxed),
            refill_sweeps: self.refill_sweeps.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            sync_rounds: self.sync_rounds.load(Ordering::Relaxed),
            lease_grants: self.lease_grants.load(Ordering::Relaxed),
            db_timeouts: self.db_timeouts.load(Ordering::Relaxed),
            fifo_depth: self.fifo_depth.load(Ordering::Relaxed),
            cas_retries: self.cas_retries.load(Ordering::Relaxed),
            probe_steps: self.probe_steps.load(Ordering::Relaxed),
            open_slots,
            occupancy_pct: if slot_count == 0 {
                0
            } else {
                open_slots * 100 / slot_count
            },
            resizes: self.engine.resizes.load(Ordering::Relaxed),
            migrated_slots: self.engine.migrated_slots.load(Ordering::Relaxed),
            reclaimed_keys: self.engine.reclaimed_keys.load(Ordering::Relaxed),
            warmup_batches: self.warmup_batches.load(Ordering::Relaxed),
            pool_recycle_hits: self.pool.hits(),
            sojourn_p50_us,
            sojourn_p99_us,
            syscalls_saved: self.mmsg.syscalls_saved(),
            batch_recv_p50: self.mmsg.recv_len_quantile(0.5),
            batch_recv_p99: self.mmsg.recv_len_quantile(0.99),
        }
    }
}

impl ServerStatsSnapshot {
    /// Total sheds across every cause.
    pub fn shed_total(&self) -> u64 {
        self.shed_full + self.shed_expired + self.shed_sojourn
    }
}

/// A running QoS server node.
///
/// Dropping the handle shuts down every task.
pub struct QosServer {
    udp_addr: SocketAddr,
    ha_addr: SocketAddr,
    table: Arc<dyn QosTable>,
    stats: Arc<ServerStats>,
    clock: SharedClock,
    shutdown: watch::Sender<bool>,
}

impl QosServer {
    /// Spawn a QoS server.
    ///
    /// `db` is the database target used for first-sighting lookups, rule
    /// sync and check-pointing (a fixed address, or a DNS failover name
    /// for Multi-AZ setups); `None` runs the server standalone (rules
    /// inserted via [`QosServer::table`], unknown keys handled by the
    /// default policy).
    pub async fn spawn(
        config: QosServerConfig,
        db: Option<DbTarget>,
        clock: SharedClock,
    ) -> Result<QosServer> {
        Self::spawn_with_faults(config, db, clock, FaultPlan::none()).await
    }

    /// Spawn with fault injection on the response path.
    pub async fn spawn_with_faults(
        config: QosServerConfig,
        db: Option<DbTarget>,
        clock: SharedClock,
        faults: Arc<FaultPlan>,
    ) -> Result<QosServer> {
        config.validate()?;
        // Stats first: the lock-free table writes its hot-path counters
        // straight into cells shared with the stats block.
        let stats = Arc::new(ServerStats::default());
        let table: Arc<dyn QosTable> = match config.table {
            TableKind::Sharded => Arc::new(ShardedTable::new()),
            TableKind::Synchronized => Arc::new(SyncTable::new()),
            TableKind::PerWorker => Arc::new(PartitionedTable::new(config.workers)),
            TableKind::LockFree => Arc::new(LockFreeTable::with_cells(
                config.table_slots,
                TableEngineCells {
                    cas_retries: Arc::clone(&stats.cas_retries),
                    probe_steps: Arc::clone(&stats.probe_steps),
                    ..stats.engine.clone()
                },
            )),
        };
        let (shutdown, shutdown_rx) = watch::channel(false);

        // Preload the rule table if asked — streamed in bounded,
        // hottest-first batches (the cold-tier scan) instead of one
        // monolithic `SELECT *`, so a million-row table neither stalls
        // startup on a single giant response nor warms cold keys before
        // hot ones.
        if config.preload {
            if let Some(target) = &db {
                let mut client = target.connect().await.ok_or_else(|| {
                    janus_types::JanusError::db("cannot reach database for preload")
                })?;
                let now = clock.now();
                let mut offset = 0;
                loop {
                    let batch = client.scan_rules(offset, config.warmup_batch).await?;
                    let fetched = batch.len();
                    if fetched > 0 {
                        for rule in batch {
                            table.insert(rule, now);
                        }
                        stats.warmup_batches.fetch_add(1, Ordering::Relaxed);
                    }
                    offset += fetched;
                    if fetched < config.warmup_batch {
                        break;
                    }
                }
            }
        }

        let guest_keys: GuestKeys = Arc::new(parking_lot::Mutex::new(HashSet::new()));

        // Listener -> dispatch -> workers. The dedup window is shared by
        // the listener (lookups at ingress) and every worker (verdict
        // recording): under shared-FIFO dispatch any worker may decide
        // any key, so duplicate detection must serialize at one point.
        let overload = config.overload.clone();
        let dedup: Option<SharedDedup> = (overload.dedup_window > 0).then(|| {
            Arc::new(parking_lot::Mutex::new(DedupWindow::new(
                overload.dedup_window,
            )))
        });
        // The lease ledger is shared the same way: one authoritative
        // bookkeeper per server, consulted at every decision site and by
        // the rule-sync task (epoch-bump revocation on rule change).
        let ledger: Option<SharedLedger> = config.lease.enabled.then(|| {
            Arc::new(parking_lot::Mutex::new(LeaseLedger::new(
                config.lease.clone(),
            )))
        });
        let udp_addr = if config.socket_mode == SocketMode::PerCore {
            // Kernel flow steering replaces the listener→queue hop: each
            // worker thread owns an SO_REUSEPORT socket and drains it
            // with recvmmsg directly (DESIGN.md ablation 12).
            percore::spawn_percore_plane(
                &config,
                percore::PerCoreCtx {
                    table: Arc::clone(&table),
                    stats: Arc::clone(&stats),
                    clock: Arc::clone(&clock),
                    db_target: db.clone(),
                    default_policy: config.default_policy.clone(),
                    guest_keys: Arc::clone(&guest_keys),
                    db_fetch_timeout: config.db_fetch_timeout,
                    core: IngressCore::new(overload.clone()),
                    dedup,
                    ledger: ledger.clone(),
                    faults: Arc::clone(&faults),
                },
                shutdown_rx.clone(),
            )?
        } else {
            let socket = Arc::new(
                UdpServerSocket::bind_with_options(
                    config.bind_addr,
                    faults,
                    Arc::clone(&stats.pool),
                    config.socket_mode == SocketMode::BatchedSyscall,
                    Arc::clone(&stats.mmsg),
                )
                .await?,
            );
            let udp_addr = socket.local_addr()?;
            let worker_ctx = WorkerCtx {
                socket: Arc::clone(&socket),
                table: Arc::clone(&table),
                stats: Arc::clone(&stats),
                clock: Arc::clone(&clock),
                db_target: db.clone(),
                default_policy: config.default_policy.clone(),
                guest_keys: Arc::clone(&guest_keys),
                db_fetch_timeout: config.db_fetch_timeout,
                overload: overload.clone(),
                dedup: dedup.clone(),
                ledger: ledger.clone(),
            };
            match config.dispatch {
                DispatchMode::KeyAffinity => {
                    // Per-worker SPSC queues: the listener is the only sender
                    // for each queue and the owning worker the only receiver,
                    // so neither side ever contends on a shared lock.
                    let per_worker = (config.fifo_capacity / config.workers).max(1);
                    let mut senders = Vec::with_capacity(config.workers);
                    for _ in 0..config.workers {
                        let (tx, rx) = mpsc::channel::<Job>(per_worker);
                        senders.push(tx);
                        spawn_affinity_worker(worker_ctx.clone(), rx, config.batching);
                    }
                    spawn_ingress_listener(
                        IngressCtx {
                            socket: Arc::clone(&socket),
                            stats: Arc::clone(&stats),
                            clock: Arc::clone(&clock),
                            table: Arc::clone(&table),
                            core: IngressCore::new(overload.clone()),
                            dedup,
                            queues: senders,
                        },
                        shutdown_rx.clone(),
                        config.batching,
                    );
                }
                DispatchMode::SharedFifo => {
                    let (fifo_tx, fifo_rx) = mpsc::channel::<Job>(config.fifo_capacity);
                    let fifo_rx = Arc::new(Mutex::new(fifo_rx));
                    spawn_ingress_listener(
                        IngressCtx {
                            socket: Arc::clone(&socket),
                            stats: Arc::clone(&stats),
                            clock: Arc::clone(&clock),
                            table: Arc::clone(&table),
                            core: IngressCore::new(overload.clone()),
                            dedup,
                            queues: vec![fifo_tx],
                        },
                        shutdown_rx.clone(),
                        // The paper's listener takes one datagram per wakeup.
                        false,
                    );
                    for _ in 0..config.workers {
                        spawn_worker(worker_ctx.clone(), Arc::clone(&fifo_rx));
                    }
                }
            }
            udp_addr
        };

        // House-keeping refill.
        spawn_refill(
            Arc::clone(&table),
            Arc::clone(&stats),
            Arc::clone(&clock) as SharedClock,
            config.refill_interval,
            shutdown_rx.clone(),
        );

        // DB sync + check-pointing.
        if let Some(target) = db {
            spawn_sync(
                Arc::clone(&table),
                Arc::clone(&stats),
                Arc::clone(&clock) as SharedClock,
                target.clone(),
                config.sync_interval,
                shutdown_rx.clone(),
                Arc::clone(&guest_keys),
                ledger.clone(),
            );
            spawn_checkpoint(
                Arc::clone(&table),
                Arc::clone(&stats),
                Arc::clone(&clock) as SharedClock,
                target.clone(),
                config.checkpoint_interval,
                shutdown_rx.clone(),
                Arc::clone(&guest_keys),
            );
            if let Some(idle_ttl) = config.idle_ttl {
                spawn_reclaim(
                    Arc::clone(&table),
                    Arc::clone(&clock) as SharedClock,
                    target,
                    idle_ttl,
                    config.reclaim_interval,
                    shutdown_rx.clone(),
                    Arc::clone(&guest_keys),
                );
            }
        }

        // HA / health listener.
        let ha_addr = ha::spawn_ha_listener(
            Arc::clone(&table),
            Arc::clone(&clock) as SharedClock,
            shutdown_rx,
        )
        .await?;

        Ok(QosServer {
            udp_addr,
            ha_addr,
            table,
            stats,
            clock,
            shutdown,
        })
    }

    /// The UDP address admission requests go to.
    pub fn udp_addr(&self) -> SocketAddr {
        self.udp_addr
    }

    /// The TCP address used for HA replication and health checks.
    pub fn ha_addr(&self) -> SocketAddr {
        self.ha_addr
    }

    /// The local QoS table (tests and slaves reach in directly).
    pub fn table(&self) -> &Arc<dyn QosTable> {
        &self.table
    }

    /// Counters.
    pub fn stats(&self) -> &Arc<ServerStats> {
        &self.stats
    }

    /// The clock this server charges buckets with.
    pub fn clock(&self) -> &SharedClock {
        &self.clock
    }

    /// Stop all tasks.
    pub fn shutdown(&self) {
        let _ = self.shutdown.send(true);
    }
}

impl Drop for QosServer {
    fn drop(&mut self) {
        let _ = self.shutdown.send(true);
    }
}

/// Everything a worker task needs, bundled so the spawn functions stay
/// readable as the overload machinery grows the dependency list.
#[derive(Clone)]
struct WorkerCtx {
    socket: Arc<UdpServerSocket>,
    table: Arc<dyn QosTable>,
    stats: Arc<ServerStats>,
    clock: SharedClock,
    db_target: Option<DbTarget>,
    default_policy: janus_bucket::DefaultRulePolicy,
    guest_keys: GuestKeys,
    db_fetch_timeout: Duration,
    overload: OverloadConfig,
    dedup: Option<SharedDedup>,
    ledger: Option<SharedLedger>,
}

impl WorkerCtx {
    /// A fresh per-worker sans-IO core (its governor's sojourn signal is
    /// local to the queue the worker drains, so cores are never shared).
    fn worker_core(&self) -> WorkerCore {
        WorkerCore::new(self.overload.clone())
    }

    /// Dequeue-time triage: record the sojourn, ask the sans-IO core
    /// what to do, then perform the I/O half (counters and shed
    /// replies). Returns the job when it should be decided.
    async fn triage(&self, job: Job, core: &mut WorkerCore) -> Option<Job> {
        let now = self.clock.now();
        let sojourn = now.saturating_since(job.enqueued_at);
        self.stats.sojourn.lock().record_duration(sojourn);
        // Gate the governor's verdict on real backlog: an idle queue's
        // sojourn is scheduler noise, not a standing queue.
        let backlog = self.stats.fifo_depth.load(Ordering::Relaxed);
        match core.triage(&job.request, sojourn, now, backlog) {
            WorkerTriage::Decide => Some(job),
            WorkerTriage::ShedExpired => {
                // The router's deadline passed while the job sat queued:
                // nobody is waiting for this answer. Silent by design —
                // the dedup entry stays Pending, so a late duplicate of
                // the same attempt is absorbed without a charge too.
                self.stats.shed_expired.fetch_add(1, Ordering::Relaxed);
                None
            }
            WorkerTriage::ShedStanding => {
                self.stats.shed_sojourn.fetch_add(1, Ordering::Relaxed);
                if let Some(verdict) = core.shed_reply(&job.request) {
                    let response = respond(&self.table, &job.request, verdict);
                    let _ = self.socket.send_response(&response, job.peer).await;
                }
                None
            }
        }
    }

    /// Cache the decided verdict under the job's attempt nonce so a late
    /// duplicate is answered without a second charge.
    fn record_verdict(&self, job: &Job, verdict: Verdict) {
        if let Some(dedup) = &self.dedup {
            core::record_verdict(&job.request, &mut dedup.lock(), verdict);
        }
    }

    /// Run the lease half of a decided request through the shared
    /// ledger: fold in the piggybacked report, and attach a grant when
    /// the key is hot and the authoritative bucket covers the debit.
    fn attach_lease(&self, job: &Job, response: QosResponse) -> QosResponse {
        let (Some(ledger), Some(report)) = (&self.ledger, job.request.lease) else {
            return response;
        };
        let now = self.clock.now();
        let key = &job.request.key;
        let mut charge = || self.table.decide(key, now) == Some(Verdict::Allow);
        let lease = ledger
            .lock()
            .on_report(key, report, self.table.shape(key), now, &mut charge);
        match lease {
            Some(lease) => {
                self.stats.lease_grants.fetch_add(1, Ordering::Relaxed);
                response.with_lease(lease)
            }
            None => response,
        }
    }

    /// Post-decision staleness check: deciding (a first-sighting DB
    /// fetch, say) may have consumed the rest of the budget, in which
    /// case sending is wasted work. The charge already happened and the
    /// verdict is cached, so a retry gets the cached verdict rather than
    /// a second charge.
    fn expired_before_send(&self, job: &Job) -> bool {
        let waited = self.clock.now().saturating_since(job.enqueued_at);
        let expired = core::expired_before_send(&job.request, waited);
        if expired {
            self.stats.shed_expired.fetch_add(1, Ordering::Relaxed);
        }
        expired
    }
}

fn spawn_worker(ctx: WorkerCtx, fifo: Arc<Mutex<mpsc::Receiver<Job>>>) {
    tokio::spawn(async move {
        let mut db: Option<DbClient> = None;
        let mut worker = ctx.worker_core();
        loop {
            let item = {
                let mut rx = fifo.lock().await;
                rx.recv().await
            };
            let Some(job) = item else { return };
            ctx.stats.fifo_depth.fetch_sub(1, Ordering::Relaxed);
            let Some(job) = ctx.triage(job, &mut worker).await else {
                continue;
            };
            let verdict = decide(
                &ctx.table,
                &ctx.clock,
                &job.request.key,
                ctx.db_target.as_ref(),
                &mut db,
                &ctx.default_policy,
                &ctx.stats,
                &ctx.guest_keys,
                ctx.db_fetch_timeout,
            )
            .await;
            ctx.stats.answered.fetch_add(1, Ordering::Relaxed);
            ctx.record_verdict(&job, verdict);
            if ctx.expired_before_send(&job) {
                continue;
            }
            let response = respond(&ctx.table, &job.request, verdict);
            let response = ctx.attach_lease(&job, response);
            let _ = ctx.socket.send_response(&response, job.peer).await;
        }
    });
}

/// Everything the ingress listener needs: the worker queues plus the
/// sans-IO triage core consulted *before* a request is queued.
struct IngressCtx {
    socket: Arc<UdpServerSocket>,
    stats: Arc<ServerStats>,
    clock: SharedClock,
    table: Arc<dyn QosTable>,
    core: IngressCore,
    dedup: Option<SharedDedup>,
    queues: Vec<mpsc::Sender<Job>>,
}

impl IngressCtx {
    /// Triage one datagram through the sans-IO [`IngressCore`] and
    /// perform the I/O half of its decision:
    ///
    /// 1. a stamped request whose budget arrived as zero is already dead
    ///    — shed silently, nobody is waiting;
    /// 2. a duplicate (by attempt nonce, or by request id for the
    ///    legacy-downgraded final attempt) is answered from the dedup
    ///    window — cached verdict, or silent drop while the first copy
    ///    is in flight;
    /// 3. otherwise hand it to `CRC32(key) % workers` (one shared queue
    ///    degenerates to index 0), shedding when that queue is full. A
    ///    stamped shed gets the configured shed verdict back instead of
    ///    the silent drop legacy frames keep — the router stops burning
    ///    retries against a queue that would shed every copy.
    async fn ingress(&self, request: QosRequest, peer: SocketAddr) {
        let decision = {
            let mut guard = self.dedup.as_ref().map(|dedup| dedup.lock());
            self.core.triage(&request, guard.as_deref_mut())
        };
        match decision {
            IngressDecision::ShedExpired => {
                self.stats.shed_expired.fetch_add(1, Ordering::Relaxed);
                return;
            }
            IngressDecision::AnswerCached(verdict) => {
                self.stats.dedup_hits.fetch_add(1, Ordering::Relaxed);
                let response = respond(&self.table, &request, verdict);
                let _ = self.socket.send_response(&response, peer).await;
                return;
            }
            IngressDecision::AbsorbDuplicate => {
                // The first copy is queued; retries reuse the request
                // id, so its response answers every attempt.
                self.stats.dedup_hits.fetch_add(1, Ordering::Relaxed);
                return;
            }
            IngressDecision::Admit => {}
        }
        // Clone the key only when the queued job must leave a Pending
        // dedup entry behind (the insert itself happens after — and only
        // if — the enqueue succeeds).
        let pending = match (&self.dedup, request.attempt) {
            (Some(_), Some(meta)) => Some((meta.nonce, request.id, request.key.clone())),
            _ => None,
        };
        let idx = worker_affinity(&request.key, self.queues.len());
        let job = Job {
            request,
            peer,
            enqueued_at: self.clock.now(),
        };
        match self.queues[idx].try_send(job) {
            Ok(()) => {
                self.stats.fifo_depth.fetch_add(1, Ordering::Relaxed);
                if let (Some((nonce, id, key)), Some(dedup)) = (pending, &self.dedup) {
                    dedup.lock().insert_pending(nonce, id, key);
                }
            }
            Err(err) => {
                let job = err.into_inner();
                self.stats.shed_full.fetch_add(1, Ordering::Relaxed);
                if let Some(verdict) = self.core.shed_reply(&job.request) {
                    let response = respond(&self.table, &job.request, verdict);
                    let _ = self.socket.send_response(&response, job.peer).await;
                }
            }
        }
    }
}

/// The ingress listener for both dispatch modes: triage each datagram
/// through [`IngressCtx::ingress`], and (with `drain` on) pull every
/// datagram the kernel already holds before sleeping again — one wakeup,
/// many requests.
fn spawn_ingress_listener(ctx: IngressCtx, mut shutdown: watch::Receiver<bool>, drain: bool) {
    tokio::spawn(async move {
        loop {
            tokio::select! {
                _ = shutdown.changed() => return,
                incoming = ctx.socket.recv_request() => {
                    let Ok((request, peer)) = incoming else { return };
                    ctx.ingress(request, peer).await;
                    if drain {
                        for _ in 0..LISTENER_DRAIN_LIMIT {
                            let Some((request, peer)) = ctx.socket.try_recv_request() else {
                                break;
                            };
                            ctx.ingress(request, peer).await;
                        }
                    }
                }
            }
        }
    });
}

/// A key-affinity worker: sole consumer of its own queue. With batching
/// on it drains up to [`WORKER_DRAIN_LIMIT`] queued requests per wakeup,
/// decides them all, then coalesces responses going to the same peer
/// into one batched datagram.
fn spawn_affinity_worker(ctx: WorkerCtx, mut rx: mpsc::Receiver<Job>, batching: bool) {
    tokio::spawn(async move {
        let mut db: Option<DbClient> = None;
        let mut worker = ctx.worker_core();
        let mut batch: Vec<Job> = Vec::with_capacity(WORKER_DRAIN_LIMIT);
        // Responses grouped by destination; linear scan because a drain
        // rarely spans more than a couple of distinct peers.
        let mut by_peer: Vec<(SocketAddr, Vec<QosResponse>)> = Vec::new();
        loop {
            batch.clear();
            by_peer.clear();
            let Some(first) = rx.recv().await else { return };
            batch.push(first);
            if batching {
                while batch.len() < WORKER_DRAIN_LIMIT {
                    match rx.try_recv() {
                        Ok(item) => batch.push(item),
                        Err(_) => break,
                    }
                }
            }
            ctx.stats
                .fifo_depth
                .fetch_sub(batch.len() as u64, Ordering::Relaxed);
            for job in batch.drain(..) {
                let Some(job) = ctx.triage(job, &mut worker).await else {
                    continue;
                };
                let verdict = decide(
                    &ctx.table,
                    &ctx.clock,
                    &job.request.key,
                    ctx.db_target.as_ref(),
                    &mut db,
                    &ctx.default_policy,
                    &ctx.stats,
                    &ctx.guest_keys,
                    ctx.db_fetch_timeout,
                )
                .await;
                ctx.stats.answered.fetch_add(1, Ordering::Relaxed);
                ctx.record_verdict(&job, verdict);
                if ctx.expired_before_send(&job) {
                    continue;
                }
                let response = respond(&ctx.table, &job.request, verdict);
                let response = ctx.attach_lease(&job, response);
                match by_peer.iter_mut().find(|(addr, _)| *addr == job.peer) {
                    Some((_, responses)) => responses.push(response),
                    None => by_peer.push((job.peer, vec![response])),
                }
            }
            // One sendmmsg call covers every zero-delay peer group when
            // the socket is batched; the plain path drains per peer.
            let _ = ctx.socket.send_response_groups(&mut by_peer).await;
        }
    });
}

/// The decision path: local table hit, else database fetch (bounded by
/// `db_fetch_timeout`), else default policy.
#[allow(clippy::too_many_arguments)]
pub(crate) async fn decide(
    table: &Arc<dyn QosTable>,
    clock: &SharedClock,
    key: &QosKey,
    db_target: Option<&DbTarget>,
    db: &mut Option<DbClient>,
    default_policy: &janus_bucket::DefaultRulePolicy,
    stats: &ServerStats,
    guest_keys: &GuestKeys,
    db_fetch_timeout: Duration,
) -> Verdict {
    let now = clock.now();
    if let Some(verdict) = table.decide(key, now) {
        return verdict;
    }
    // First sighting: consult the database. The whole fetch — including
    // (re)connecting — runs under one budget: a hung connection must not
    // stall this worker (under affinity dispatch it would stall every
    // key hashing to it).
    let rule = match db_target {
        Some(target) => {
            let fetched = tokio::time::timeout(db_fetch_timeout, async {
                if db.is_none() {
                    *db = target.connect().await;
                }
                match db.as_mut() {
                    Some(client) => match client.get_rule(key).await {
                        Ok(rule) => Ok(rule),
                        // Connection went bad; signal the caller to drop
                        // it so the next miss reconnects.
                        Err(_) => Err(()),
                    },
                    None => Ok(None),
                }
            })
            .await;
            stats.db_fetches.fetch_add(1, Ordering::Relaxed);
            match fetched {
                Ok(Ok(rule)) => rule,
                Ok(Err(())) => {
                    *db = None;
                    None
                }
                Err(_elapsed) => {
                    // Budget blown: drop the (possibly hung) connection
                    // and fall back to the default policy this once.
                    stats.db_timeouts.fetch_add(1, Ordering::Relaxed);
                    *db = None;
                    None
                }
            }
        }
        None => None,
    };
    let rule = match rule {
        Some(rule) => {
            guest_keys.lock().remove(key);
            rule
        }
        None => {
            stats.default_rule_hits.fetch_add(1, Ordering::Relaxed);
            guest_keys.lock().insert(key.clone());
            default_policy.rule_for(key.clone())
        }
    };
    table.insert(rule, now);
    table.decide(key, now).unwrap_or(Verdict::Deny)
}

fn spawn_refill(
    table: Arc<dyn QosTable>,
    stats: Arc<ServerStats>,
    clock: SharedClock,
    interval: std::time::Duration,
    mut shutdown: watch::Receiver<bool>,
) {
    tokio::spawn(async move {
        let mut ticker = tokio::time::interval(interval);
        ticker.set_missed_tick_behavior(tokio::time::MissedTickBehavior::Delay);
        loop {
            tokio::select! {
                _ = shutdown.changed() => return,
                _ = ticker.tick() => {
                    table.sweep_refill(clock.now());
                    stats.refill_sweeps.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    });
}

#[allow(clippy::too_many_arguments)]
fn spawn_sync(
    table: Arc<dyn QosTable>,
    stats: Arc<ServerStats>,
    clock: SharedClock,
    db_target: DbTarget,
    interval: std::time::Duration,
    mut shutdown: watch::Receiver<bool>,
    guest_keys: GuestKeys,
    ledger: Option<SharedLedger>,
) {
    tokio::spawn(async move {
        let mut ticker = tokio::time::interval(interval);
        ticker.set_missed_tick_behavior(tokio::time::MissedTickBehavior::Delay);
        let mut db: Option<DbClient> = None;
        let mut last_version: Option<u64> = None;
        loop {
            tokio::select! {
                _ = shutdown.changed() => return,
                _ = ticker.tick() => {
                    if db.is_none() {
                        db = db_target.connect().await;
                    }
                    let Some(client) = db.as_mut() else { continue };
                    let version = match client.version().await {
                        Ok(v) => v,
                        Err(_) => { db = None; continue; }
                    };
                    if last_version == Some(version) {
                        continue;
                    }
                    // Re-query every locally-held key (the paper's sync:
                    // "makes queries to the database with the QoS keys in
                    // the local QoS rule table").
                    let mut ok = true;
                    for key in table.keys() {
                        match client.get_rule(&key).await {
                            Ok(Some(rule)) => {
                                // Delegated credit from the old shape
                                // means nothing under the new one:
                                // revoke outstanding leases by epoch
                                // bump — but only on a real change, or
                                // every sync round would kill healthy
                                // leases.
                                let changed = table.shape(&key)
                                    != Some((rule.capacity, rule.refill_rate));
                                let was_guest = guest_keys.lock().remove(&key);
                                if was_guest {
                                    // A guest key got a purchased rule:
                                    // adopt it wholesale, including its
                                    // (fresh) credit.
                                    table.remove(&key);
                                    table.insert(rule, clock.now());
                                } else {
                                    // Routine rule update: new shape,
                                    // accrued credit preserved (clamped).
                                    table.apply_update(&rule, clock.now());
                                }
                                if changed {
                                    if let Some(ledger) = &ledger {
                                        ledger.lock().revoke(&key);
                                    }
                                }
                            }
                            Ok(None) => {
                                // Absent from the database: a deleted
                                // rule — unless the bucket only ever
                                // existed under the default policy, in
                                // which case it stays (removing it would
                                // re-grant guest credit every round).
                                if !guest_keys.lock().contains(&key) {
                                    table.remove(&key);
                                    if let Some(ledger) = &ledger {
                                        ledger.lock().revoke(&key);
                                    }
                                }
                            }
                            Err(_) => { db = None; ok = false; break; }
                        }
                    }
                    if ok {
                        last_version = Some(version);
                        stats.sync_rounds.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
    });
}

#[allow(clippy::too_many_arguments)]
fn spawn_checkpoint(
    table: Arc<dyn QosTable>,
    stats: Arc<ServerStats>,
    clock: SharedClock,
    db_target: DbTarget,
    interval: std::time::Duration,
    mut shutdown: watch::Receiver<bool>,
    guest_keys: GuestKeys,
) {
    tokio::spawn(async move {
        let mut ticker = tokio::time::interval(interval);
        ticker.set_missed_tick_behavior(tokio::time::MissedTickBehavior::Delay);
        let mut db: Option<DbClient> = None;
        loop {
            tokio::select! {
                _ = shutdown.changed() => return,
                _ = ticker.tick() => {
                    if db.is_none() {
                        db = db_target.connect().await;
                    }
                    let Some(client) = db.as_mut() else { continue };
                    let snapshot = table.snapshot(clock.now());
                    let mut ok = true;
                    for rule in snapshot {
                        // Guest buckets have no database row of their own;
                        // writing their credit would clobber a rule the
                        // operator may have *just* created for that key
                        // (the sync thread adopts it at its next round).
                        if guest_keys.lock().contains(&rule.key) {
                            continue;
                        }
                        if client.checkpoint_credit(&rule.key, rule.credit).await.is_err() {
                            db = None;
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        stats.checkpoints.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
    });
}

/// Most idle keys demoted per reclaim sweep — bounds both the sweep's
/// table walk and the persistence burst that follows it.
const RECLAIM_BATCH: usize = 256;

/// Demote keys idle beyond `idle_ttl` from the in-memory table to the
/// database cold tier, folding their exact remaining credit and their
/// accumulated hotness back so a later readmission (first-sighting fetch
/// or warm-up scan) resumes where the key left off.
///
/// Credit exactness is the invariant: a key is only allowed to leave the
/// table once its credit is durably in the database. Any persistence
/// failure un-reclaims the failed row *and* every row not yet attempted —
/// dropping a half-persisted batch would mint fresh credit the next time
/// those keys are sighted.
#[allow(clippy::too_many_arguments)]
fn spawn_reclaim(
    table: Arc<dyn QosTable>,
    clock: SharedClock,
    db_target: DbTarget,
    idle_ttl: Duration,
    interval: Duration,
    mut shutdown: watch::Receiver<bool>,
    guest_keys: GuestKeys,
) {
    tokio::spawn(async move {
        let mut ticker = tokio::time::interval(interval);
        ticker.set_missed_tick_behavior(tokio::time::MissedTickBehavior::Delay);
        let mut db: Option<DbClient> = None;
        loop {
            tokio::select! {
                _ = shutdown.changed() => return,
                _ = ticker.tick() => {
                    let now = clock.now();
                    let reclaimed = table.reclaim_idle(now, idle_ttl, RECLAIM_BATCH);
                    if reclaimed.is_empty() {
                        continue;
                    }
                    if db.is_none() {
                        db = db_target.connect().await;
                    }
                    let Some(client) = db.as_mut() else {
                        table.restore(
                            reclaimed.into_iter().map(|r| r.rule).collect(),
                            now,
                        );
                        continue;
                    };
                    let mut rows = reclaimed.into_iter();
                    let mut failed = Vec::new();
                    for row in rows.by_ref() {
                        // Guest buckets have no database row of their own:
                        // persist the whole rule so the default-policy key
                        // readmits as a first-class row with its exact
                        // remaining credit. Database-backed keys only need
                        // their credit column checkpointed.
                        let persisted = if guest_keys.lock().contains(&row.rule.key) {
                            client.upsert_rule(&row.rule).await
                        } else {
                            client
                                .checkpoint_credit(&row.rule.key, row.rule.credit)
                                .await
                                .map(|_| ())
                        };
                        let persisted = match persisted {
                            Ok(()) => client.record_touches(&row.rule.key, row.touches).await,
                            Err(e) => Err(e),
                        };
                        if persisted.is_err() {
                            failed.push(row);
                            break;
                        }
                    }
                    if failed.is_empty() {
                        continue;
                    }
                    failed.extend(rows);
                    table.restore(failed.into_iter().map(|r| r.rule).collect(), now);
                    db = None;
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_db::{DbServer, RulesEngine};
    use janus_net::udp::{UdpRpcClient, UdpRpcConfig};
    use janus_types::{Credits, QosRule};
    use std::time::Duration;

    fn key(s: &str) -> QosKey {
        QosKey::new(s).unwrap()
    }

    fn rule(s: &str, cap: u64, rate: u64) -> QosRule {
        QosRule::per_second(key(s), cap, rate)
    }

    async fn spawn_db(rules: Vec<QosRule>) -> DbServer {
        let engine = Arc::new(RulesEngine::new());
        engine.load(rules);
        DbServer::spawn(engine).await.unwrap()
    }

    fn rpc() -> UdpRpcClient {
        UdpRpcClient::new(UdpRpcConfig::lan_defaults())
    }

    async fn check(client: &UdpRpcClient, server: &QosServer, id: u64, k: &str) -> Verdict {
        client
            .call(server.udp_addr(), &QosRequest::new(id, key(k)))
            .await
            .unwrap()
            .verdict
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn admits_until_bucket_drains() {
        let db = spawn_db(vec![rule("alice", 5, 0)]).await;
        let server = QosServer::spawn(
            QosServerConfig::test_defaults(),
            Some(db.addr().into()),
            janus_clock::system(),
        )
        .await
        .unwrap();
        let client = rpc();
        let mut allowed = 0;
        for id in 0..10 {
            if check(&client, &server, id, "alice").await == Verdict::Allow {
                allowed += 1;
            }
        }
        assert_eq!(allowed, 5);
        assert_eq!(server.stats().db_fetches.load(Ordering::Relaxed), 1);
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn unknown_key_uses_default_policy() {
        let db = spawn_db(vec![]).await;
        let mut config = QosServerConfig::test_defaults();
        config.default_policy = janus_bucket::DefaultRulePolicy::Limited {
            capacity: 2,
            rate_per_sec: 0,
        };
        let server = QosServer::spawn(config, Some(db.addr().into()), janus_clock::system())
            .await
            .unwrap();
        let client = rpc();
        assert_eq!(check(&client, &server, 1, "stranger").await, Verdict::Allow);
        assert_eq!(check(&client, &server, 2, "stranger").await, Verdict::Allow);
        assert_eq!(check(&client, &server, 3, "stranger").await, Verdict::Deny);
        assert!(server.stats().default_rule_hits.load(Ordering::Relaxed) >= 1);
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn deny_policy_denies_unknown_keys() {
        let db = spawn_db(vec![]).await;
        let server = QosServer::spawn(
            QosServerConfig::test_defaults(),
            Some(db.addr().into()),
            janus_clock::system(),
        )
        .await
        .unwrap();
        let client = rpc();
        assert_eq!(check(&client, &server, 1, "nobody").await, Verdict::Deny);
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn standalone_mode_without_database() {
        let server = QosServer::spawn(
            QosServerConfig::test_defaults(),
            None,
            janus_clock::system(),
        )
        .await
        .unwrap();
        server
            .table()
            .insert(rule("local", 1, 0), server.clock().now());
        let client = rpc();
        assert_eq!(check(&client, &server, 1, "local").await, Verdict::Allow);
        assert_eq!(check(&client, &server, 2, "local").await, Verdict::Deny);
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn preload_warms_local_table() {
        let rules: Vec<_> = (0..50).map(|i| rule(&format!("k{i}"), 10, 1)).collect();
        let db = spawn_db(rules).await;
        let mut config = QosServerConfig::test_defaults();
        config.preload = true;
        let server = QosServer::spawn(config, Some(db.addr().into()), janus_clock::system())
            .await
            .unwrap();
        assert_eq!(server.table().len(), 50);
        // 50 rules fit in one default-size warm-up batch.
        assert_eq!(server.stats().warmup_batches.load(Ordering::Relaxed), 1);
        // A request for a preloaded key must not hit the database.
        let client = rpc();
        assert_eq!(check(&client, &server, 1, "k7").await, Verdict::Allow);
        assert_eq!(server.stats().db_fetches.load(Ordering::Relaxed), 0);
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn preload_streams_in_bounded_hottest_first_batches() {
        let rules: Vec<_> = (0..50).map(|i| rule(&format!("k{i:02}"), 10, 1)).collect();
        let db = spawn_db(rules).await;
        db.engine().record_touches(&key("k33"), 100);
        let mut config = QosServerConfig::test_defaults();
        config.preload = true;
        config.warmup_batch = 16;
        let server = QosServer::spawn(config, Some(db.addr().into()), janus_clock::system())
            .await
            .unwrap();
        // 50 rules / 16 per batch = 16 + 16 + 16 + 2.
        assert_eq!(server.table().len(), 50);
        let snap = server.stats().snapshot();
        assert_eq!(snap.warmup_batches, 4);
        let client = rpc();
        assert_eq!(check(&client, &server, 1, "k33").await, Verdict::Allow);
        assert_eq!(server.stats().db_fetches.load(Ordering::Relaxed), 0);
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn reclaim_demotes_idle_keys_and_readmits_with_exact_credit() {
        let db = spawn_db(vec![rule("idler", 10, 0), rule("busy", 1000, 0)]).await;
        let mut config = QosServerConfig::test_defaults();
        config.table = TableKind::LockFree;
        config.idle_ttl = Some(Duration::from_millis(50));
        config.reclaim_interval = Duration::from_millis(20);
        // Keep the maintenance planes that also write credit out of the
        // picture so the database credit we observe came from reclaim.
        config.checkpoint_interval = Duration::from_secs(3600);
        config.sync_interval = Duration::from_secs(3600);
        let server = QosServer::spawn(config, Some(db.addr().into()), janus_clock::system())
            .await
            .unwrap();
        let client = rpc();
        // Spend 3 of idler's 10 credits, then go idle.
        for id in 0..3 {
            assert_eq!(check(&client, &server, id, "idler").await, Verdict::Allow);
        }
        // Wait out the TTL, keeping a second key warm so sweeps keep
        // running against a non-empty table.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut warm_id = 100;
        while server.table().shape(&key("idler")).is_some() {
            assert!(
                std::time::Instant::now() < deadline,
                "idle key was never reclaimed"
            );
            check(&client, &server, warm_id, "busy").await;
            warm_id += 1;
            tokio::time::sleep(Duration::from_millis(10)).await;
        }
        // The demotion folded the exact remaining credit and the touch
        // count into the cold tier.
        assert_eq!(
            db.engine().get(&key("idler")).unwrap().credit,
            Credits::from_whole(7)
        );
        assert_eq!(db.engine().touches(&key("idler")), 3);
        assert!(server.stats().snapshot().reclaimed_keys >= 1);
        // Readmission resumes where the key left off: 7 allows, then deny.
        let mut allows = 0;
        for id in 1000..1010 {
            if check(&client, &server, id, "idler").await == Verdict::Allow {
                allows += 1;
            }
        }
        assert_eq!(allows, 7, "readmitted key must resume with exact credit");
        // The memory-engine gauges ride the same snapshot.
        let snap = server.stats().snapshot();
        assert!(snap.open_slots >= 2, "idler and busy are both resident");
        assert!(snap.occupancy_pct <= 100);
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn new_rules_effective_immediately() {
        // "new QoS keys/rules are immediately effective as soon as they
        // are added to the database" — no restart, no sync wait.
        let db = spawn_db(vec![]).await;
        let server = QosServer::spawn(
            QosServerConfig::test_defaults(),
            Some(db.addr().into()),
            janus_clock::system(),
        )
        .await
        .unwrap();
        let client = rpc();
        assert_eq!(check(&client, &server, 1, "newbie").await, Verdict::Deny);

        db.engine().put(rule("late-tenant", 3, 0));
        assert_eq!(
            check(&client, &server, 2, "late-tenant").await,
            Verdict::Allow
        );
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn rule_sync_applies_updates_and_deletes() {
        let db = spawn_db(vec![rule("tenant", 1000, 100), rule("doomed", 10, 1)]).await;
        let mut config = QosServerConfig::test_defaults();
        config.sync_interval = Duration::from_millis(30);
        let server = QosServer::spawn(config, Some(db.addr().into()), janus_clock::system())
            .await
            .unwrap();
        let client = rpc();
        // Materialize both buckets locally.
        check(&client, &server, 1, "tenant").await;
        check(&client, &server, 2, "doomed").await;
        assert_eq!(server.table().len(), 2);

        // Shrink one rule, delete the other.
        db.engine().put(rule("tenant", 1, 0));
        db.engine().delete(&key("doomed"));

        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let snap = server.table().snapshot(server.clock().now());
            let tenant = snap.iter().find(|r| r.key.as_str() == "tenant");
            let doomed_gone = !snap.iter().any(|r| r.key.as_str() == "doomed");
            if doomed_gone && tenant.is_some_and(|r| r.capacity == Credits::from_whole(1)) {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "sync never applied: {snap:?}"
            );
            tokio::time::sleep(Duration::from_millis(20)).await;
        }
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn checkpoints_reach_database() {
        let db = spawn_db(vec![rule("cp", 100, 0)]).await;
        let mut config = QosServerConfig::test_defaults();
        config.checkpoint_interval = Duration::from_millis(30);
        let server = QosServer::spawn(config, Some(db.addr().into()), janus_clock::system())
            .await
            .unwrap();
        let client = rpc();
        for id in 0..40 {
            check(&client, &server, id, "cp").await;
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let stored = db.engine().get(&key("cp")).unwrap().credit;
            if stored == Credits::from_whole(60) {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "checkpoint never landed: {stored:?}"
            );
            tokio::time::sleep(Duration::from_millis(20)).await;
        }
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn replacement_server_resumes_from_checkpoint() {
        // Kill a server after consuming most of a bucket; its replacement
        // must start from the check-pointed credit, not a full bucket.
        let db = spawn_db(vec![rule("phoenix", 100, 0)]).await;
        let mut config = QosServerConfig::test_defaults();
        config.checkpoint_interval = Duration::from_millis(20);
        let server = QosServer::spawn(
            config.clone(),
            Some(db.addr().into()),
            janus_clock::system(),
        )
        .await
        .unwrap();
        let client = rpc();
        for id in 0..90 {
            check(&client, &server, id, "phoenix").await;
        }
        // Wait for a checkpoint to land, then kill the server.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while db.engine().get(&key("phoenix")).unwrap().credit != Credits::from_whole(10) {
            assert!(std::time::Instant::now() < deadline, "checkpoint missing");
            tokio::time::sleep(Duration::from_millis(10)).await;
        }
        server.shutdown();
        drop(server);

        let replacement = QosServer::spawn(config, Some(db.addr().into()), janus_clock::system())
            .await
            .unwrap();
        let mut allowed = 0;
        for id in 0..50 {
            if check(&client, &replacement, id, "phoenix").await == Verdict::Allow {
                allowed += 1;
            }
        }
        assert_eq!(allowed, 10, "replacement did not resume from checkpoint");
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn sync_does_not_evict_default_policy_buckets() {
        // Regression: the rule-sync task used to remove buckets whose key
        // has no database row — which re-granted guest credit every sync
        // round. A guest bucket must survive sync and keep denying.
        let db = spawn_db(vec![]).await;
        let mut config = QosServerConfig::test_defaults();
        config.sync_interval = Duration::from_millis(20);
        config.default_policy = janus_bucket::DefaultRulePolicy::Limited {
            capacity: 3,
            rate_per_sec: 0,
        };
        let server = QosServer::spawn(config, Some(db.addr().into()), janus_clock::system())
            .await
            .unwrap();
        let client = rpc();
        let mut admitted = 0;
        for id in 0..6 {
            if check(&client, &server, id, "guest").await == Verdict::Allow {
                admitted += 1;
            }
        }
        assert_eq!(admitted, 3);
        // Let several sync rounds pass, then verify no fresh credit.
        tokio::time::sleep(Duration::from_millis(200)).await;
        assert_eq!(check(&client, &server, 100, "guest").await, Verdict::Deny);

        // Upgrading the guest to a real rule via the database still works.
        db.engine().put(rule("guest", 10, 0));
        tokio::time::sleep(Duration::from_millis(200)).await;
        assert_eq!(check(&client, &server, 101, "guest").await, Verdict::Allow);
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn guest_upgrade_survives_checkpoint_race() {
        // Regression: the checkpoint task used to write the guest
        // bucket's (zero) credit onto a rule row the operator had just
        // created, so the sync thread adopted an empty bucket instead of
        // the purchased burst. The full burst must be available after the
        // upgrade, deterministically.
        let db = spawn_db(vec![]).await;
        let mut config = QosServerConfig::test_defaults();
        config.sync_interval = Duration::from_millis(30);
        config.checkpoint_interval = Duration::from_millis(10); // aggressive
        let server = QosServer::spawn(config, Some(db.addr().into()), janus_clock::system())
            .await
            .unwrap();
        let client = rpc();
        // Establish the guest bucket (Deny policy => empty bucket).
        assert_eq!(check(&client, &server, 1, "upgrader").await, Verdict::Deny);
        // Operator sells the tenant a 3-request burst.
        db.engine().put(rule("upgrader", 3, 0));
        // Give sync and several checkpoint rounds time to interleave.
        tokio::time::sleep(Duration::from_millis(300)).await;
        let mut admitted = 0;
        for id in 10..20 {
            if check(&client, &server, id, "upgrader").await == Verdict::Allow {
                admitted += 1;
            }
        }
        assert_eq!(admitted, 3, "upgrade lost the purchased burst");
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn stats_snapshot_reads_all_counters() {
        let db = spawn_db(vec![rule("snap", 3, 0)]).await;
        let server = QosServer::spawn(
            QosServerConfig::test_defaults(),
            Some(db.addr().into()),
            janus_clock::system(),
        )
        .await
        .unwrap();
        let client = rpc();
        for id in 0..5 {
            check(&client, &server, id, "snap").await;
        }
        let snap = server.stats().snapshot();
        assert_eq!(snap.answered, 5);
        assert_eq!(snap.db_fetches, 1);
        assert_eq!(snap.shed_total(), 0, "healthy run must not shed");
        assert_eq!(snap.dedup_hits, 0, "unique nonces must not hit dedup");
        assert_eq!(snap.db_timeouts, 0);
        assert_eq!(snap.fifo_depth, 0, "queue must drain back to empty");
        assert_eq!(snap, server.stats().snapshot(), "idle snapshots agree");
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn duplicate_nonce_is_answered_from_cache_without_second_charge() {
        let db = spawn_db(vec![rule("dup", 1, 0)]).await;
        let server = QosServer::spawn(
            QosServerConfig::test_defaults(),
            Some(db.addr().into()),
            janus_clock::system(),
        )
        .await
        .unwrap();
        let mut config = UdpRpcConfig::lan_defaults();
        config.stamp_deadlines = true;
        let client = UdpRpcClient::new(config);
        // Two attempts of the same logical request: same nonce, generous
        // budget. The bucket holds exactly one credit.
        let meta = janus_types::AttemptMeta::new(2_000_000, 42);
        let first = client
            .call(
                server.udp_addr(),
                &QosRequest::new(1, key("dup")).with_attempt(meta),
            )
            .await
            .unwrap();
        assert_eq!(first.verdict, Verdict::Allow);
        let second = client
            .call(
                server.udp_addr(),
                &QosRequest::new(2, key("dup")).with_attempt(meta),
            )
            .await
            .unwrap();
        assert_eq!(
            second.verdict,
            Verdict::Allow,
            "a duplicate attempt must be served from the cached verdict, \
             not re-decided against the drained bucket"
        );
        assert!(server.stats().dedup_hits.load(Ordering::Relaxed) >= 1);
        // A genuinely new logical request sees the drained bucket: the
        // duplicate above did not double-charge.
        let fresh = janus_types::AttemptMeta::new(2_000_000, 43);
        let third = client
            .call(
                server.udp_addr(),
                &QosRequest::new(3, key("dup")).with_attempt(fresh),
            )
            .await
            .unwrap();
        assert_eq!(third.verdict, Verdict::Deny);
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn expired_budget_request_is_shed_and_never_charged() {
        let db = spawn_db(vec![rule("stale", 3, 0)]).await;
        let server = QosServer::spawn(
            QosServerConfig::test_defaults(),
            Some(db.addr().into()),
            janus_clock::system(),
        )
        .await
        .unwrap();
        // A raw deadline frame whose budget arrived as zero: the router's
        // deadline passed in flight. The server must shed it silently at
        // ingress — no reply, no bucket charge.
        let dead =
            QosRequest::new(1, key("stale")).with_attempt(janus_types::AttemptMeta::new(0, 7));
        let socket = tokio::net::UdpSocket::bind("127.0.0.1:0").await.unwrap();
        socket
            .send_to(
                &janus_types::codec::encode_request(&dead),
                server.udp_addr(),
            )
            .await
            .unwrap();
        let mut buf = [0u8; 64];
        let reply = tokio::time::timeout(Duration::from_millis(50), socket.recv(&mut buf)).await;
        assert!(reply.is_err(), "an expired request must not be answered");
        assert_eq!(server.stats().shed_expired.load(Ordering::Relaxed), 1);
        // The bucket still holds its full burst: the shed never charged.
        let client = rpc();
        let mut allowed = 0;
        for id in 10..20 {
            if check(&client, &server, id, "stale").await == Verdict::Allow {
                allowed += 1;
            }
        }
        assert_eq!(allowed, 3, "the expired request must not consume credit");
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn per_worker_table_admits_exactly() {
        // The third TableKind under its required dispatch mode: per-key
        // exactness must hold even with concurrent clients, because one
        // key is always decided by the same worker on the same partition.
        let rules: Vec<_> = (0..8).map(|i| rule(&format!("p{i}"), 25, 0)).collect();
        let db = spawn_db(rules).await;
        let mut config = QosServerConfig::test_defaults();
        config.workers = 4;
        config.table = TableKind::PerWorker;
        let server = Arc::new(
            QosServer::spawn(config, Some(db.addr().into()), janus_clock::system())
                .await
                .unwrap(),
        );
        let mut handles = Vec::new();
        for i in 0..8u64 {
            let server = Arc::clone(&server);
            handles.push(tokio::spawn(async move {
                let client = rpc();
                let mut allowed = 0;
                for j in 0..40u64 {
                    if check(&client, &server, i * 1000 + j, &format!("p{i}")).await
                        == Verdict::Allow
                    {
                        allowed += 1;
                    }
                }
                allowed
            }));
        }
        for h in handles {
            assert_eq!(h.await.unwrap(), 25, "per-worker table oversold a bucket");
        }
    }

    /// Drive one table kind with 8 concurrent clients × 40 requests over 8
    /// keys capped at 25 and return the per-client admit counts plus a
    /// final stats snapshot.
    async fn drive_exactness(config: QosServerConfig) -> (Vec<u64>, ServerStatsSnapshot) {
        let rules: Vec<_> = (0..8).map(|i| rule(&format!("p{i}"), 25, 0)).collect();
        let db = spawn_db(rules).await;
        let server = Arc::new(
            QosServer::spawn(config, Some(db.addr().into()), janus_clock::system())
                .await
                .unwrap(),
        );
        let mut handles = Vec::new();
        for i in 0..8u64 {
            let server = Arc::clone(&server);
            handles.push(tokio::spawn(async move {
                let client = rpc();
                let mut allowed = 0u64;
                for j in 0..40u64 {
                    if check(&client, &server, i * 1000 + j, &format!("p{i}")).await
                        == Verdict::Allow
                    {
                        allowed += 1;
                    }
                }
                allowed
            }));
        }
        let mut admits = Vec::new();
        for h in handles {
            admits.push(h.await.unwrap());
        }
        (admits, server.stats().snapshot())
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn lock_free_table_admits_exactly() {
        // The lock-free table must match the sharded/per-worker tables
        // credit-for-credit under concurrent clients: CAS loops may retry
        // but can never double-spend or lose a credit.
        let mut config = QosServerConfig::test_defaults();
        config.workers = 4;
        config.table = TableKind::LockFree;
        let (admits, snap) = drive_exactness(config).await;
        for allowed in admits {
            assert_eq!(allowed, 25, "lock-free table oversold a bucket");
        }
        assert_eq!(snap.answered, 320);
        // 320 datagrams through one listener: the scratch-buffer pool must
        // be recycling by now (first checkout per thread is a miss).
        assert!(
            snap.pool_recycle_hits > 0,
            "recv path is allocating per datagram: {snap:?}"
        );
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn lock_free_table_admits_exactly_under_shared_fifo() {
        // Unlike PerWorker, LockFree is valid under shared-FIFO dispatch,
        // where any worker may decide any key — the harshest interleaving
        // for the CAS loop. Exactness must still hold.
        let mut config = QosServerConfig::test_defaults();
        config.workers = 4;
        config.table = TableKind::LockFree;
        config.dispatch = DispatchMode::SharedFifo;
        let (admits, _snap) = drive_exactness(config).await;
        for allowed in admits {
            assert_eq!(allowed, 25, "lock-free table oversold under shared FIFO");
        }
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn shared_fifo_mode_still_works() {
        // The paper-faithful ablation path: shared FIFO, no batching.
        let db = spawn_db(vec![rule("fifo", 5, 0)]).await;
        let mut config = QosServerConfig::test_defaults();
        config.dispatch = DispatchMode::SharedFifo;
        config.batching = false;
        let server = QosServer::spawn(config, Some(db.addr().into()), janus_clock::system())
            .await
            .unwrap();
        let client = rpc();
        let mut allowed = 0;
        for id in 0..10 {
            if check(&client, &server, id, "fifo").await == Verdict::Allow {
                allowed += 1;
            }
        }
        assert_eq!(allowed, 5);
        assert_eq!(server.stats().snapshot().fifo_depth, 0);
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn hung_database_fetch_times_out_to_default_policy() {
        // A database that accepts the TCP connection and then never
        // speaks: the per-miss fetch budget must expire, the request
        // must fall back to the default policy, and the worker must stay
        // responsive for subsequent requests.
        let hung = tokio::net::TcpListener::bind(("127.0.0.1", 0))
            .await
            .unwrap();
        let hung_addr = hung.local_addr().unwrap();
        tokio::spawn(async move {
            let mut held = Vec::new();
            loop {
                let Ok((stream, _)) = hung.accept().await else {
                    return;
                };
                held.push(stream); // accept and go silent, forever
            }
        });
        let mut config = QosServerConfig::test_defaults();
        config.db_fetch_timeout = Duration::from_millis(50);
        let server = QosServer::spawn(config, Some(hung_addr.into()), janus_clock::system())
            .await
            .unwrap();
        // A generous client timeout: the server needs the full fetch
        // budget before it can answer at all.
        let client = UdpRpcClient::new(UdpRpcConfig {
            timeout: Duration::from_millis(500),
            max_retries: 3,
            ..Default::default()
        });
        assert_eq!(check(&client, &server, 1, "victim").await, Verdict::Deny);
        assert!(
            server.stats().snapshot().db_timeouts >= 1,
            "timeout was not counted"
        );
        // The worker survived: an already-inserted guest bucket answers
        // locally, no DB involved.
        assert_eq!(check(&client, &server, 2, "victim").await, Verdict::Deny);
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn soliciting_request_receives_rule_hint() {
        let db = spawn_db(vec![rule("hinted", 8, 2)]).await;
        let server = QosServer::spawn(
            QosServerConfig::test_defaults(),
            Some(db.addr().into()),
            janus_clock::system(),
        )
        .await
        .unwrap();
        let client = rpc();
        // Plain requests stay hint-free.
        let plain = client
            .call(server.udp_addr(), &QosRequest::new(1, key("hinted")))
            .await
            .unwrap();
        assert_eq!(plain.hint, None);
        // A soliciting request learns the rule shape alongside the verdict.
        let hinted = client
            .call(
                server.udp_addr(),
                &QosRequest::soliciting_hint(2, key("hinted")),
            )
            .await
            .unwrap();
        let hint = hinted.hint.expect("hint solicited but absent");
        assert_eq!(hint.capacity, Credits::from_whole(8));
        assert_eq!(hint.refill_rate.micro_per_sec(), 2_000_000);
        // Guest keys advertise the default policy's shape the same way.
        let guest = client
            .call(
                server.udp_addr(),
                &QosRequest::soliciting_hint(3, key("stranger")),
            )
            .await
            .unwrap();
        assert!(guest.hint.is_some(), "default-policy rule has a shape too");
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn lease_soliciting_hot_key_earns_a_grant_debited_from_the_bucket() {
        use crate::config::LeaseConfig;
        use janus_types::LeaseReport;
        let db = spawn_db(vec![rule("hot", 20, 0)]).await;
        let mut config = QosServerConfig::test_defaults();
        config.lease = LeaseConfig {
            enabled: true,
            ttl: Duration::from_millis(50),
            hot_threshold: 2,
            max_holders: 2,
            slice_fraction: 4,
        };
        let server = QosServer::spawn(config, Some(db.addr().into()), janus_clock::system())
            .await
            .unwrap();
        let client = rpc();
        let ask = |id| QosRequest::new(id, key("hot")).with_lease(LeaseReport::soliciting(9));
        let first = client.call(server.udp_addr(), &ask(1)).await.unwrap();
        assert_eq!(first.lease, None, "below the hot threshold");
        let second = client.call(server.udp_addr(), &ask(2)).await.unwrap();
        let lease = second.lease.expect("second ask crosses the threshold");
        assert_eq!(lease.slice, Credits::from_whole(5));
        assert_eq!(lease.epoch, 1);
        assert_eq!(server.stats().snapshot().lease_grants, 1);
        // The grant debited the authoritative bucket: two admissions plus
        // the 5-credit slice leave 13 of 20 for plain traffic.
        let mut allowed = 0;
        for id in 3..30 {
            if check(&client, &server, id, "hot").await == Verdict::Allow {
                allowed += 1;
            }
        }
        assert_eq!(allowed, 13, "slice credits are gone from the bucket");
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn plain_traffic_never_sees_a_lease_when_disabled() {
        use janus_types::LeaseReport;
        let db = spawn_db(vec![rule("cold", 20, 0)]).await;
        let server = QosServer::spawn(
            QosServerConfig::test_defaults(),
            Some(db.addr().into()),
            janus_clock::system(),
        )
        .await
        .unwrap();
        let client = rpc();
        for id in 0..5 {
            let ask = QosRequest::new(id, key("cold")).with_lease(LeaseReport::soliciting(9));
            let resp = client.call(server.udp_addr(), &ask).await.unwrap();
            assert_eq!(resp.lease, None, "disabled plane must never grant");
        }
        assert_eq!(server.stats().snapshot().lease_grants, 0);
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn affinity_batch_path_carries_hints() {
        // The batched worker path builds responses through the same
        // helper; a soliciting request inside a drained batch must still
        // get its hint.
        let db = spawn_db(vec![rule("bh", 100, 10)]).await;
        let mut config = QosServerConfig::test_defaults();
        config.workers = 2;
        config.batching = true;
        let server = QosServer::spawn(config, Some(db.addr().into()), janus_clock::system())
            .await
            .unwrap();
        let client = rpc();
        for id in 0..10u64 {
            let resp = client
                .call(
                    server.udp_addr(),
                    &QosRequest::soliciting_hint(id, key("bh")),
                )
                .await
                .unwrap();
            assert!(resp.hint.is_some(), "request {id} lost its hint");
        }
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn many_concurrent_clients() {
        let rules: Vec<_> = (0..32)
            .map(|i| rule(&format!("u{i}"), 1000, 1000))
            .collect();
        let db = spawn_db(rules).await;
        let mut config = QosServerConfig::test_defaults();
        config.workers = 4;
        let server = Arc::new(
            QosServer::spawn(config, Some(db.addr().into()), janus_clock::system())
                .await
                .unwrap(),
        );
        let mut handles = Vec::new();
        for i in 0..32u64 {
            let server = Arc::clone(&server);
            handles.push(tokio::spawn(async move {
                let client = rpc();
                for j in 0..20u64 {
                    let v = check(&client, &server, i * 100 + j, &format!("u{i}")).await;
                    assert_eq!(v, Verdict::Allow);
                }
            }));
        }
        for h in handles {
            h.await.unwrap();
        }
        assert_eq!(server.stats().answered.load(Ordering::Relaxed), 640);
    }
}
