//! The server half of the credit-lease plane: the [`LeaseLedger`].
//!
//! A lease delegates a slice of one key's bucket to one router for a
//! short TTL, so the router can admit hot-key traffic locally with zero
//! network I/O (DESIGN.md ablation 13). The ledger is the authoritative
//! bookkeeper: it decides *when* to delegate (hot-key threshold), *how
//! much* (the key's capacity and refill carved into per-holder slices),
//! and — the part that makes the whole scheme safe — it **debits the
//! authoritative bucket for the full slice at grant time**, including the
//! refill share the holder can accrue over one TTL. Delegated admissions
//! are therefore pre-paid: whatever the network does (lost grants,
//! delayed renewals, crashed servers, revoked rules), a router can never
//! admit more than was already removed from the bucket, which is exactly
//! the bound the simulator's lease oracle checks.
//!
//! Reconciliation is asynchronous and piggybacked: routers report their
//! *cumulative* spend per `(key, holder, epoch)` on ordinary admission
//! traffic, and the ledger folds it in with `max`, so duplicated,
//! reordered or lost reports only delay the accounting. Unused credit
//! folds back **only on an explicit return** (the holder promises it has
//! stopped admitting first); silent expiry forfeits the remainder, which
//! errs on the side of under-admission — never over. Returned credit
//! parks in a per-key escrow and funds future grants before the bucket
//! is drained again.
//!
//! Revocation is an epoch bump: when a rule changes, outstanding leases
//! become stale and their holders stop being reconciled; routers notice
//! the new epoch on their next grant and drop the stale lease. Until
//! then a holder burns at most its already-debited slice — the Guan-style
//! inaccuracy bound (over-admission ≤ lease size × fleet).
//!
//! Like the rest of [`crate::core`], this file is sans-IO `std`-only
//! logic over an injected clock, shared verbatim by the tokio shells,
//! the per-core plane and the deterministic simulator.

use janus_clock::Nanos;
use janus_types::{Lease, LeaseReport, QosKey, RefillRate, MICROCREDITS_PER_CREDIT};
use std::collections::HashMap;
use std::time::Duration;

/// Hard cap on the whole credits one grant may debit (slice plus refill
/// precharge). `capacity / slice_fraction` is the policy, but capacity
/// can be astronomical — the shadow-mode `AllowAll` default rule is an
/// effectively infinite bucket — and the ledger debits credit for credit
/// through the `charge` closure, so an uncapped slice would spin the
/// decision path for as long as the bucket lasts. Delegating more than a
/// few thousand credits per TTL buys no extra throughput; it only widens
/// the revocation window.
const MAX_SLICE_CREDITS: u64 = 4096;

/// Policy knobs for the lease plane. Disabled by default: leases are a
/// per-deployment opt-in, and every pre-lease code path (and simulator
/// trace) is byte-identical with `enabled: false`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeaseConfig {
    /// Master switch; `false` means the ledger never grants.
    pub enabled: bool,
    /// Lease validity. Longer TTLs amortize more round trips but widen
    /// the revocation window (a stale lease lives at most one TTL).
    pub ttl: Duration,
    /// Lease-soliciting asks a key must accumulate before the first
    /// grant: only keys hot enough to repay the delegated slice get one.
    pub hot_threshold: u32,
    /// Holders a key's refill is carved into; also the per-key cap on
    /// simultaneous leases and the fleet factor of the inaccuracy bound.
    pub max_holders: u32,
    /// Slice size as a fraction of capacity: `slice = capacity /
    /// slice_fraction`, floored at one credit.
    pub slice_fraction: u32,
}

impl Default for LeaseConfig {
    fn default() -> Self {
        LeaseConfig {
            enabled: false,
            ttl: Duration::from_millis(50),
            hot_threshold: 3,
            max_holders: 4,
            slice_fraction: 4,
        }
    }
}

impl LeaseConfig {
    /// The default policy with the master switch on.
    pub fn enabled() -> Self {
        LeaseConfig {
            enabled: true,
            ..LeaseConfig::default()
        }
    }
}

/// Ledger counters. `drained` and `refunded` are whole credits; the
/// difference is the credit currently delegated (or forfeited to silent
/// expiry), which is what the simulator's lease oracle bounds router-side
/// admits by.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LeaseLedgerStats {
    /// First-time grants handed out.
    pub grants: u64,
    /// Renewals (a holder re-granted before or after expiry).
    pub renewals: u64,
    /// Explicit returns processed.
    pub returns: u64,
    /// Epoch bumps (rule changes invalidating outstanding leases).
    pub revocations: u64,
    /// Whole credits debited from authoritative buckets for leases.
    pub drained: u64,
    /// Whole credits folded back into escrow by explicit returns.
    pub refunded: u64,
}

/// One holder's outstanding delegation for one key (current epoch only).
#[derive(Debug, Clone)]
struct HolderLease {
    /// Cumulative whole credits debited for this holder this epoch
    /// (bucket drains plus escrow draws).
    debited: u64,
    /// Cumulative spend reported by the holder (folded in with `max`).
    spent: u64,
    /// Slice of the most recent grant, for diagnostics.
    slice: u64,
    /// When the most recent grant expires.
    expires_at: Nanos,
}

/// Per-key lease state.
#[derive(Debug, Clone)]
struct KeyLeases {
    /// Lease generation; bumped to revoke.
    epoch: u32,
    /// Lease-soliciting asks seen (hot-key detector).
    asks: u32,
    /// Whole credits returned by holders, funding future grants before
    /// the bucket is drained again.
    escrow: u64,
    /// Outstanding holders, keyed by router identity.
    holders: HashMap<u32, HolderLease>,
}

impl KeyLeases {
    fn new() -> Self {
        KeyLeases {
            epoch: 1,
            asks: 0,
            escrow: 0,
            holders: HashMap::new(),
        }
    }
}

/// The authoritative lease bookkeeper for one QoS server (or one
/// simulated partition). See the module docs for the accounting
/// discipline.
#[derive(Debug, Clone)]
pub struct LeaseLedger {
    config: LeaseConfig,
    keys: HashMap<QosKey, KeyLeases>,
    /// Counters, updated as reports flow through.
    pub stats: LeaseLedgerStats,
}

impl LeaseLedger {
    /// A ledger applying `config`'s policy.
    pub fn new(config: LeaseConfig) -> Self {
        LeaseLedger {
            config,
            keys: HashMap::new(),
            stats: LeaseLedgerStats::default(),
        }
    }

    /// The policy in force.
    pub fn config(&self) -> &LeaseConfig {
        &self.config
    }

    /// The current lease generation of `key` (1 before any revocation).
    pub fn epoch_of(&self, key: &QosKey) -> u32 {
        self.keys.get(key).map_or(1, |k| k.epoch)
    }

    /// Outstanding holders of `key` under the current epoch.
    pub fn holders_of(&self, key: &QosKey) -> usize {
        self.keys.get(key).map_or(0, |k| k.holders.len())
    }

    /// Process the lease half of one admission request: fold in the
    /// cumulative spend, handle a give-back, and answer a solicitation
    /// with a grant when the key is hot and the bucket covers the debit.
    ///
    /// `shape` is the key's `(capacity, refill)` from the authoritative
    /// table; `charge` must drain exactly one whole credit from the
    /// authoritative bucket when it returns `true`. The ledger calls it
    /// once per debited credit, so a grant is covered by real bucket
    /// credit by construction.
    pub fn on_report(
        &mut self,
        key: &QosKey,
        report: LeaseReport,
        shape: Option<(janus_types::Credits, RefillRate)>,
        now: Nanos,
        charge: &mut dyn FnMut() -> bool,
    ) -> Option<Lease> {
        if !self.config.enabled {
            return None;
        }
        let entry = self.keys.entry(key.clone()).or_insert_with(KeyLeases::new);
        // Reconcile-and-return half. Reports for a stale epoch are
        // ignored: their holders were already revoked and their debits
        // already written off.
        if report.epoch == entry.epoch {
            if let Some(holder) = entry.holders.get_mut(&report.holder) {
                if report.giving_back {
                    // The counter field of a return carries the unused
                    // remainder the holder stopped admitting against.
                    // Refunding `debited − spent` instead would be
                    // unsound: a grant response still in flight (the
                    // holder expires waiting, returns, then installs the
                    // late grant) or a holder counter restarted after a
                    // lost return both leave `spent` under-counting, and
                    // the difference would be refunded *and* spendable.
                    // Clamping to the server's own view keeps a buggy or
                    // malicious holder from minting credit.
                    let refund =
                        u64::from(report.spent).min(holder.debited.saturating_sub(holder.spent));
                    entry.escrow += refund;
                    entry.holders.remove(&report.holder);
                    self.stats.refunded += refund;
                    self.stats.returns += 1;
                } else {
                    holder.spent = holder.spent.max(u64::from(report.spent));
                }
            }
        }
        if !report.solicit {
            return None;
        }
        // Grant half: only hot keys with a known rule shape delegate.
        let (capacity, refill) = shape?;
        entry.asks = entry.asks.saturating_add(1);
        if entry.asks < self.config.hot_threshold {
            return None;
        }
        // A solicitation reporting a non-current epoch comes from a
        // holder that holds nothing (fresh solicit, epoch 0) or held a
        // since-revoked lease: any surviving ledger entry for it is
        // abandoned — its counter lifetime ended with whatever report was
        // lost — so forfeit the remainder (never refund) and start clean
        // rather than folding new debits into stale accounting.
        if report.epoch != entry.epoch {
            entry.holders.remove(&report.holder);
        }
        let renewing = entry.holders.contains_key(&report.holder);
        if !renewing && entry.holders.len() as u32 >= self.config.max_holders {
            return None;
        }
        let slice = (capacity.whole() / u64::from(self.config.slice_fraction.max(1)))
            .clamp(1, MAX_SLICE_CREDITS);
        let mut share = RefillRate::from_micro_per_sec(
            refill.micro_per_sec() / u64::from(self.config.max_holders.max(1)),
        );
        // Pre-charge the refill the holder's local bucket can accrue
        // over one TTL, rounded up, so local admits are fully covered by
        // the debit even while the local bucket refills.
        let accrued = share.accrued_over(self.config.ttl).as_micro();
        let mut precharge =
            accrued.saturating_add(MICROCREDITS_PER_CREDIT - 1) / MICROCREDITS_PER_CREDIT;
        if precharge > MAX_SLICE_CREDITS {
            // Capped like the slice (an `AllowAll` refill is effectively
            // infinite) — and the delegated share must shrink with it, or
            // the holder's local bucket would accrue credit nobody paid
            // for. Floor division keeps one TTL's accrual at or under the
            // capped debit.
            precharge = MAX_SLICE_CREDITS;
            let ttl_us = (self.config.ttl.as_micros().max(1) as u64).max(1);
            share = RefillRate::from_micro_per_sec(
                precharge
                    .saturating_mul(MICROCREDITS_PER_CREDIT)
                    .saturating_mul(1_000_000)
                    / ttl_us,
            );
        }
        let want = slice + precharge;
        let from_escrow = entry.escrow.min(want);
        entry.escrow -= from_escrow;
        let mut drained = 0;
        while from_escrow + drained < want && charge() {
            drained += 1;
        }
        // Whatever left the bucket stays debited (counted in `drained`)
        // whether or not the grant goes out — the oracle bound depends
        // on it.
        self.stats.drained += drained;
        let total = from_escrow + drained;
        if total <= precharge {
            // Not enough for even one credit of slice: park what we got
            // in escrow for a later ask instead of granting a dud lease.
            entry.escrow += total;
            return None;
        }
        let granted = total - precharge;
        let holder = entry.holders.entry(report.holder).or_insert(HolderLease {
            debited: 0,
            spent: 0,
            slice: 0,
            expires_at: now,
        });
        holder.debited += total;
        holder.slice = granted;
        holder.expires_at = now.saturating_add(self.config.ttl);
        if renewing {
            self.stats.renewals += 1;
        } else {
            self.stats.grants += 1;
        }
        let ttl_us = self.config.ttl.as_micros().min(u128::from(u32::MAX)) as u32;
        Some(Lease::new(
            janus_types::Credits::from_whole(granted),
            share,
            ttl_us,
            entry.epoch,
        ))
    }

    /// The rule for `key` changed: bump the epoch, dropping every
    /// outstanding lease and the escrow (credit from the old shape means
    /// nothing under the new one). Routers notice the bump on their next
    /// grant; until then stale leases burn at most their already-debited
    /// slices.
    pub fn revoke(&mut self, key: &QosKey) {
        let entry = self.keys.entry(key.clone()).or_insert_with(KeyLeases::new);
        entry.epoch = entry.epoch.wrapping_add(1);
        entry.asks = 0;
        entry.escrow = 0;
        entry.holders.clear();
        self.stats.revocations += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_types::{Credits, QosKey};

    const T0: Nanos = Nanos::from_secs(10);

    fn key(s: &str) -> QosKey {
        QosKey::new(s).unwrap()
    }

    fn config() -> LeaseConfig {
        LeaseConfig {
            enabled: true,
            ttl: Duration::from_millis(20),
            hot_threshold: 2,
            max_holders: 2,
            slice_fraction: 4,
        }
    }

    /// A charge closure backed by a countdown of available credits.
    fn bucket(credits: u64) -> impl FnMut() -> bool {
        let mut remaining = credits;
        move || {
            if remaining > 0 {
                remaining -= 1;
                true
            } else {
                false
            }
        }
    }

    fn shape(capacity: u64, per_second: u64) -> Option<(Credits, RefillRate)> {
        Some((
            Credits::from_whole(capacity),
            RefillRate::per_second(per_second),
        ))
    }

    #[test]
    fn disabled_ledger_never_grants() {
        let mut ledger = LeaseLedger::new(LeaseConfig::default());
        let mut charge = bucket(100);
        for _ in 0..10 {
            assert_eq!(
                ledger.on_report(
                    &key("t"),
                    LeaseReport::soliciting(1),
                    shape(20, 0),
                    T0,
                    &mut charge
                ),
                None
            );
        }
        assert_eq!(ledger.stats.drained, 0);
    }

    #[test]
    fn grants_only_after_hot_threshold_and_debits_the_bucket() {
        let mut ledger = LeaseLedger::new(config());
        let mut charge = bucket(20);
        let ask = LeaseReport::soliciting(7);
        assert_eq!(
            ledger.on_report(&key("t"), ask, shape(20, 0), T0, &mut charge),
            None,
            "first ask is below the hot threshold"
        );
        let lease = ledger
            .on_report(&key("t"), ask, shape(20, 0), T0, &mut charge)
            .expect("second ask crosses the threshold");
        // capacity 20 / slice_fraction 4 = 5 credits, zero refill → no
        // precharge; all 5 drained from the bucket.
        assert_eq!(lease.slice, Credits::from_whole(5));
        assert_eq!(lease.epoch, 1);
        assert_eq!(lease.ttl_us, 20_000);
        assert_eq!(ledger.stats.drained, 5);
        assert_eq!(ledger.stats.grants, 1);
        assert_eq!(ledger.holders_of(&key("t")), 1);
    }

    #[test]
    fn refill_share_is_precharged_over_the_ttl() {
        let mut ledger = LeaseLedger::new(config());
        let mut charge = bucket(100);
        let ask = LeaseReport::soliciting(1);
        ledger.on_report(&key("t"), ask, shape(40, 100), T0, &mut charge);
        let lease = ledger
            .on_report(&key("t"), ask, shape(40, 100), T0, &mut charge)
            .unwrap();
        // Share = 100/s ÷ 2 holders = 50/s; over a 20 ms TTL that's 1
        // credit, pre-charged on top of the 10-credit slice.
        assert_eq!(lease.slice, Credits::from_whole(10));
        assert_eq!(lease.refill, RefillRate::per_second(50));
        assert_eq!(ledger.stats.drained, 11);
    }

    #[test]
    fn unbounded_shapes_cap_the_debit_and_scale_the_share() {
        // The shadow-mode `AllowAll` default rule is an effectively
        // infinite bucket; a grant against it must neither spin the
        // charge loop forever nor delegate refill nobody paid for.
        let mut ledger = LeaseLedger::new(config());
        let mut charge = bucket(u64::MAX);
        let ask = LeaseReport::soliciting(1);
        let huge = || {
            Some((
                Credits::from_whole(u64::MAX / MICROCREDITS_PER_CREDIT),
                RefillRate::from_micro_per_sec(u64::MAX / 2),
            ))
        };
        ledger.on_report(&key("t"), ask, huge(), T0, &mut charge);
        let lease = ledger
            .on_report(&key("t"), ask, huge(), T0, &mut charge)
            .unwrap();
        assert_eq!(lease.slice, Credits::from_whole(MAX_SLICE_CREDITS));
        // Slice plus capped precharge, nothing more.
        assert_eq!(ledger.stats.drained, 2 * MAX_SLICE_CREDITS);
        // The scaled-down share accrues at most the precharge over a TTL.
        let accrued = lease
            .refill
            .accrued_over(Duration::from_millis(20))
            .as_micro();
        assert!(accrued <= MAX_SLICE_CREDITS * MICROCREDITS_PER_CREDIT);
        assert!(accrued > 0, "the capped share still refills");
    }

    #[test]
    fn dry_bucket_grants_partial_slice_or_nothing() {
        let mut ledger = LeaseLedger::new(config());
        // Only 2 credits left: grant shrinks to what the bucket covers.
        let mut charge = bucket(2);
        let ask = LeaseReport::soliciting(1);
        ledger.on_report(&key("t"), ask, shape(20, 0), T0, &mut charge);
        let lease = ledger
            .on_report(&key("t"), ask, shape(20, 0), T0, &mut charge)
            .unwrap();
        assert_eq!(lease.slice, Credits::from_whole(2));
        // Bucket now empty: a renewal ask gets nothing.
        assert_eq!(
            ledger.on_report(&key("t"), ask, shape(20, 0), T0, &mut charge),
            None
        );
        assert_eq!(ledger.stats.drained, 2);
    }

    #[test]
    fn return_folds_unused_credit_into_escrow_for_the_next_grant() {
        let mut ledger = LeaseLedger::new(config());
        let mut charge = bucket(5);
        let ask = LeaseReport::soliciting(1);
        ledger.on_report(&key("t"), ask, shape(20, 0), T0, &mut charge);
        let lease = ledger
            .on_report(&key("t"), ask, shape(20, 0), T0, &mut charge)
            .unwrap();
        assert_eq!(lease.slice, Credits::from_whole(5));
        // Holder spent 2 of 5, returns the 3 unused credits, and
        // re-solicits in the same frame: the remainder funds the new
        // grant, and the dry bucket (0 left) contributes nothing.
        let renewed = ledger
            .on_report(
                &key("t"),
                LeaseReport::returning(1, 1, 3, true),
                shape(20, 0),
                T0,
                &mut charge,
            )
            .expect("escrow funds the re-grant");
        assert_eq!(renewed.slice, Credits::from_whole(3));
        assert_eq!(ledger.stats.returns, 1);
        assert_eq!(ledger.stats.refunded, 3);
        assert_eq!(ledger.stats.drained, 5, "no second bucket drain");
    }

    #[test]
    fn spent_reports_fold_in_with_max_and_cap_the_refund() {
        let mut ledger = LeaseLedger::new(config());
        let mut charge = bucket(10);
        let ask = LeaseReport::soliciting(1);
        ledger.on_report(&key("t"), ask, shape(20, 0), T0, &mut charge);
        ledger
            .on_report(&key("t"), ask, shape(20, 0), T0, &mut charge)
            .unwrap();
        // Duplicated/reordered cumulative reports: 4 then (stale) 2 fold
        // to 4, not 6. A return then over-reporting 5 unused credits is
        // clamped to the server's own view, debited 5 − spent 4 = 1 — a
        // confused holder cannot mint credit.
        let mut no_charge = bucket(0);
        ledger.on_report(
            &key("t"),
            LeaseReport::renewing(1, 1, 4),
            shape(20, 0),
            T0,
            &mut no_charge,
        );
        ledger.on_report(
            &key("t"),
            LeaseReport {
                holder: 1,
                epoch: 1,
                spent: 2,
                solicit: false,
                giving_back: false,
            },
            shape(20, 0),
            T0,
            &mut no_charge,
        );
        ledger.on_report(
            &key("t"),
            LeaseReport::returning(1, 1, 5, false),
            shape(20, 0),
            T0,
            &mut no_charge,
        );
        assert_eq!(ledger.stats.refunded, 1);
    }

    #[test]
    fn duplicate_return_does_not_double_refund() {
        let mut ledger = LeaseLedger::new(config());
        let mut charge = bucket(5);
        let ask = LeaseReport::soliciting(1);
        ledger.on_report(&key("t"), ask, shape(20, 0), T0, &mut charge);
        ledger
            .on_report(&key("t"), ask, shape(20, 0), T0, &mut charge)
            .unwrap();
        let ret = LeaseReport::returning(1, 1, 3, false);
        let mut no_charge = bucket(0);
        ledger.on_report(&key("t"), ret, shape(20, 0), T0, &mut no_charge);
        ledger.on_report(&key("t"), ret, shape(20, 0), T0, &mut no_charge);
        assert_eq!(ledger.stats.returns, 1, "second return found no holder");
        assert_eq!(ledger.stats.refunded, 3);
    }

    #[test]
    fn fresh_solicit_from_a_known_holder_forfeits_the_abandoned_lease() {
        // The lost-return race: a holder's return frame is dropped, so
        // the ledger still carries its entry when the holder (now
        // holding nothing, counter restarted) solicits afresh with
        // epoch 0. The stale entry must be forfeited, not folded into —
        // a later return may only refund the *new* grant's credit.
        let mut ledger = LeaseLedger::new(config());
        let mut charge = bucket(100);
        let ask = LeaseReport::soliciting(1);
        ledger.on_report(&key("t"), ask, shape(20, 0), T0, &mut charge);
        ledger
            .on_report(&key("t"), ask, shape(20, 0), T0, &mut charge)
            .unwrap();
        assert_eq!(ledger.stats.drained, 5);
        // Fresh solicit (epoch 0) from the same holder: old entry
        // (5 debited, nothing reported) is written off, a fresh slice
        // is debited.
        let second = ledger
            .on_report(&key("t"), ask, shape(20, 0), T0, &mut charge)
            .expect("still hot: re-grant");
        assert_eq!(second.slice, Credits::from_whole(5));
        assert_eq!(ledger.stats.drained, 10);
        // Returning the new lease untouched refunds at most its own 5
        // credits — the abandoned 5 stay forfeited.
        let mut no_charge = bucket(0);
        ledger.on_report(
            &key("t"),
            LeaseReport::returning(1, 1, 10, false),
            shape(20, 0),
            T0,
            &mut no_charge,
        );
        assert_eq!(ledger.stats.refunded, 5);
    }

    #[test]
    fn max_holders_caps_simultaneous_leases() {
        let mut ledger = LeaseLedger::new(config());
        let mut charge = bucket(100);
        // Warm the key past the threshold, then fill both holder slots.
        ledger.on_report(
            &key("t"),
            LeaseReport::soliciting(1),
            shape(20, 0),
            T0,
            &mut charge,
        );
        assert!(ledger
            .on_report(
                &key("t"),
                LeaseReport::soliciting(1),
                shape(20, 0),
                T0,
                &mut charge
            )
            .is_some());
        assert!(ledger
            .on_report(
                &key("t"),
                LeaseReport::soliciting(2),
                shape(20, 0),
                T0,
                &mut charge
            )
            .is_some());
        // A third holder is refused; an existing holder still renews.
        assert_eq!(
            ledger.on_report(
                &key("t"),
                LeaseReport::soliciting(3),
                shape(20, 0),
                T0,
                &mut charge
            ),
            None
        );
        assert!(ledger
            .on_report(
                &key("t"),
                LeaseReport::renewing(1, 1, 3),
                shape(20, 0),
                T0,
                &mut charge
            )
            .is_some());
        assert_eq!(ledger.stats.renewals, 1);
    }

    #[test]
    fn revoke_bumps_epoch_and_writes_off_outstanding_leases() {
        let mut ledger = LeaseLedger::new(config());
        let mut charge = bucket(100);
        let ask = LeaseReport::soliciting(1);
        ledger.on_report(&key("t"), ask, shape(20, 0), T0, &mut charge);
        ledger
            .on_report(&key("t"), ask, shape(20, 0), T0, &mut charge)
            .unwrap();
        assert_eq!(ledger.epoch_of(&key("t")), 1);
        ledger.revoke(&key("t"));
        assert_eq!(ledger.epoch_of(&key("t")), 2);
        assert_eq!(ledger.holders_of(&key("t")), 0);
        // A return against the old epoch is ignored — no refund of
        // written-off credit.
        let before = ledger.stats.refunded;
        let mut no_charge = bucket(0);
        ledger.on_report(
            &key("t"),
            LeaseReport::returning(1, 1, 0, false),
            shape(20, 0),
            T0,
            &mut no_charge,
        );
        assert_eq!(ledger.stats.refunded, before);
        // New grants carry the new epoch (after re-proving hotness).
        ledger.on_report(&key("t"), ask, shape(20, 0), T0, &mut charge);
        let lease = ledger
            .on_report(&key("t"), ask, shape(20, 0), T0, &mut charge)
            .unwrap();
        assert_eq!(lease.epoch, 2);
    }

    #[test]
    fn unknown_shape_never_grants() {
        let mut ledger = LeaseLedger::new(config());
        let mut charge = bucket(100);
        for _ in 0..5 {
            assert_eq!(
                ledger.on_report(&key("t"), LeaseReport::soliciting(1), None, T0, &mut charge),
                None
            );
        }
        assert_eq!(ledger.stats.drained, 0);
    }
}
