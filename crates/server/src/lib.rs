#![warn(missing_docs)]
//! The QoS server layer (paper §III-C).
//!
//! A QoS server owns one partition of the key space and answers admission
//! requests over UDP. Its anatomy follows the paper's Java implementation:
//!
//! * a **UDP listener** task receives datagrams and pushes them into a
//!   bounded FIFO,
//! * **N worker** tasks (N = configured vCPUs) pop the FIFO, charge the
//!   key's leaky bucket in the local QoS table, and fire the response back
//!   — without caring whether it arrives (the router retries),
//! * a **house-keeping** task refills the buckets at a fixed interval,
//! * a **DB sync** task re-queries the database for the rules it holds
//!   locally and applies updates,
//! * a **check-pointing** task writes remaining credits back to the
//!   database, so a replacement server resumes from the last checkpoint,
//! * an optional **HA listener** serves the local QoS table to a slave
//!   node, which replicates it at a configurable interval and can be
//!   promoted via the DNS failover record.
//!
//! The local table flavour is configurable: [`TableKind::Synchronized`]
//! reproduces the paper's single-lock design, [`TableKind::Sharded`] is
//! the lock-striped optimization (DESIGN.md ablation 1),
//! [`TableKind::PerWorker`] partitions the table per worker for the
//! key-affinity dispatch path (DESIGN.md ablation 9), and
//! [`TableKind::LockFree`] runs the open-addressing atomic-bucket table
//! with no lock on the decision path under either dispatch mode
//! (DESIGN.md ablation 10), exporting its CAS-retry and probe-length
//! counters through [`ServerStats`].
//!
//! Dispatch itself is configurable too: [`DispatchMode::SharedFifo`] is
//! the paper's single shared queue, [`DispatchMode::KeyAffinity`] routes
//! `CRC32(key) % workers` through per-worker SPSC queues so one key is
//! always decided by the same worker, and (with batching on) the listener
//! drains every ready datagram per wakeup while workers coalesce
//! responses per peer into batched datagrams.
//!
//! The kernel path is configurable on a third axis:
//! [`SocketMode::SingleListener`] is the paper's one-socket,
//! one-`recvfrom`-per-datagram plane; [`SocketMode::BatchedSyscall`]
//! keeps the topology but moves whole batches per kernel crossing with
//! `recvmmsg`/`sendmmsg` (DESIGN.md ablation 12); and
//! [`SocketMode::PerCore`] gives every worker its own `SO_REUSEPORT`
//! socket so kernel flow steering replaces the listener→queue hop
//! entirely, with optional `SO_BUSY_POLL` and core pinning.

mod config;
pub mod core;
mod ha;
mod lease;
mod overload;
mod percore;
mod server;

pub use crate::core::{
    IngressCore, IngressDecision, ServerCore, ServerCoreStats, WorkerCore, WorkerTriage,
};
pub use config::{DbTarget, DispatchMode, OverloadConfig, QosServerConfig, SocketMode, TableKind};
pub use ha::{fetch_snapshot, SlaveReplicator};
pub use lease::{LeaseConfig, LeaseLedger, LeaseLedgerStats};
pub use overload::{DedupOutcome, DedupWindow, SojournGovernor};
pub use server::{QosServer, ServerStats, ServerStatsSnapshot};
