//! Deterministic fault injection for the UDP admission path.
//!
//! UDP "does not ensure reliable communication" (paper §III-B); the router
//! compensates with timeouts and retries. To test that machinery — and to
//! quantify decision latency as a function of loss (DESIGN.md ablation 3)
//! — sockets can be wrapped with a [`FaultPlan`] that drops or delays
//! datagrams with configured probabilities, driven by a seeded RNG so
//! every test run sees the same loss pattern.

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A shared, thread-safe fault injection plan.
///
/// Probabilities are stored as parts-per-million so they can be read and
/// updated atomically mid-test (e.g. "heal the network after 2 seconds").
#[derive(Debug)]
pub struct FaultPlan {
    drop_ppm: AtomicU64,
    delay_ppm: AtomicU64,
    delay: Mutex<Duration>,
    rng: Mutex<StdRng>,
    dropped: AtomicU64,
    delayed: AtomicU64,
}

impl FaultPlan {
    /// A plan that never interferes.
    pub fn none() -> Arc<Self> {
        Self::new(0.0, 0.0, Duration::ZERO, 0)
    }

    /// A plan dropping each datagram with probability `drop_p` and
    /// delaying (by `delay`) with probability `delay_p`, deterministically
    /// from `seed`.
    pub fn new(drop_p: f64, delay_p: f64, delay: Duration, seed: u64) -> Arc<Self> {
        assert!((0.0..=1.0).contains(&drop_p), "drop probability in [0,1]");
        assert!(
            (0.0..=1.0).contains(&delay_p),
            "delay probability in [0,1]"
        );
        Arc::new(FaultPlan {
            drop_ppm: AtomicU64::new((drop_p * 1_000_000.0) as u64),
            delay_ppm: AtomicU64::new((delay_p * 1_000_000.0) as u64),
            delay: Mutex::new(delay),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            dropped: AtomicU64::new(0),
            delayed: AtomicU64::new(0),
        })
    }

    /// Change the drop probability (e.g. heal or degrade mid-test).
    pub fn set_drop_probability(&self, p: f64) {
        assert!((0.0..=1.0).contains(&p));
        self.drop_ppm
            .store((p * 1_000_000.0) as u64, Ordering::Relaxed);
    }

    /// Decide the fate of one datagram: `None` to drop it, or
    /// `Some(delay)` (possibly zero) to deliver it after `delay`.
    pub fn judge(&self) -> Option<Duration> {
        let drop_ppm = self.drop_ppm.load(Ordering::Relaxed);
        let delay_ppm = self.delay_ppm.load(Ordering::Relaxed);
        if drop_ppm == 0 && delay_ppm == 0 {
            return Some(Duration::ZERO);
        }
        let roll: u64 = self.rng.lock().gen_range(0..1_000_000);
        if roll < drop_ppm {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        if roll < drop_ppm + delay_ppm {
            self.delayed.fetch_add(1, Ordering::Relaxed);
            return Some(*self.delay.lock());
        }
        Some(Duration::ZERO)
    }

    /// Datagrams dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Datagrams delayed so far.
    pub fn delayed(&self) -> u64 {
        self.delayed.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_interferes() {
        let plan = FaultPlan::none();
        for _ in 0..1000 {
            assert_eq!(plan.judge(), Some(Duration::ZERO));
        }
        assert_eq!(plan.dropped(), 0);
    }

    #[test]
    fn drop_rate_approximates_probability() {
        let plan = FaultPlan::new(0.25, 0.0, Duration::ZERO, 7);
        let n = 100_000;
        let dropped = (0..n).filter(|_| plan.judge().is_none()).count();
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.01, "observed drop rate {rate}");
        assert_eq!(plan.dropped(), dropped as u64);
    }

    #[test]
    fn delay_applies_configured_duration() {
        let plan = FaultPlan::new(0.0, 1.0, Duration::from_millis(3), 1);
        assert_eq!(plan.judge(), Some(Duration::from_millis(3)));
        assert_eq!(plan.delayed(), 1);
    }

    #[test]
    fn same_seed_same_pattern() {
        let a = FaultPlan::new(0.5, 0.0, Duration::ZERO, 99);
        let b = FaultPlan::new(0.5, 0.0, Duration::ZERO, 99);
        for _ in 0..1000 {
            assert_eq!(a.judge().is_none(), b.judge().is_none());
        }
    }

    #[test]
    fn probability_can_change_mid_flight() {
        let plan = FaultPlan::new(1.0, 0.0, Duration::ZERO, 3);
        assert_eq!(plan.judge(), None);
        plan.set_drop_probability(0.0);
        assert!(plan.judge().is_some());
    }

    #[test]
    #[should_panic(expected = "in [0,1]")]
    fn rejects_bad_probability() {
        FaultPlan::new(1.5, 0.0, Duration::ZERO, 0);
    }
}
