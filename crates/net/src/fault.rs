//! Deterministic fault injection for the UDP admission path.
//!
//! UDP "does not ensure reliable communication" (paper §III-B); the router
//! compensates with timeouts and retries. To test that machinery — and to
//! quantify decision latency as a function of loss (DESIGN.md ablation 3)
//! — sockets can be wrapped with a [`FaultPlan`] that drops, delays,
//! duplicates or reorders datagrams with configured probabilities, driven
//! by the in-tree seeded [`janus_hash::Rng`] so every test run sees the
//! same fault pattern.
//!
//! Duplication and reordering are the two UDP behaviours that make retry
//! *idempotency* testable: a duplicated request datagram is exactly what a
//! router retry looks like to the server, and a deferred (reordered) one
//! lets a later attempt overtake an earlier one. Both resolve out-of-band
//! through a [`DeliverySchedule`]: the fate judgement *enqueues* the
//! extra/late copy with a due time, and the transport decides when due
//! entries drain. Real sockets drain from a best-effort wakeup task; the
//! deterministic simulator drains exactly at the due tick. Either way the
//! caller is never blocked and the fate schedule itself is pure data.

use janus_hash::Rng;
use janus_types::sync::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What should happen to one datagram, as decided by [`FaultPlan::judge_fate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    /// Silently discard it (the caller pretends it left).
    Drop,
    /// Deliver it after the given pause (zero = immediately). The pause
    /// blocks the sender, like a congested local queue would.
    Deliver(Duration),
    /// Deliver it now **and** again after the given pause. The second
    /// copy is sent out-of-band so the caller never blocks — to the
    /// receiver it is indistinguishable from a router retry.
    Duplicate(Duration),
    /// Deliver it only after the given pause, out-of-band: datagrams
    /// sent later overtake this one, i.e. reordering.
    Defer(Duration),
}

/// A shared, thread-safe fault injection plan.
///
/// Probabilities are stored as parts-per-million so they can be read and
/// updated atomically mid-test (e.g. "heal the network after 2 seconds").
/// One roll decides the fate of each datagram; the fault classes are
/// mutually exclusive per datagram, with precedence drop > delay >
/// duplicate > reorder.
#[derive(Debug)]
pub struct FaultPlan {
    drop_ppm: AtomicU64,
    delay_ppm: AtomicU64,
    delay: Mutex<Duration>,
    duplicate_ppm: AtomicU64,
    duplicate_delay: Mutex<Duration>,
    reorder_ppm: AtomicU64,
    reorder_delay: Mutex<Duration>,
    rng: Mutex<Rng>,
    dropped: AtomicU64,
    delayed: AtomicU64,
    duplicated: AtomicU64,
    reordered: AtomicU64,
}

fn to_ppm(p: f64) -> u64 {
    assert!((0.0..=1.0).contains(&p), "probability in [0,1]");
    (p * 1_000_000.0) as u64
}

impl FaultPlan {
    /// A plan that never interferes.
    pub fn none() -> Arc<Self> {
        Self::new(0.0, 0.0, Duration::ZERO, 0)
    }

    /// A plan dropping each datagram with probability `drop_p` and
    /// delaying (by `delay`) with probability `delay_p`, deterministically
    /// from `seed`. Duplication and reordering start disabled; see
    /// [`FaultPlan::set_duplication`] and [`FaultPlan::set_reordering`].
    pub fn new(drop_p: f64, delay_p: f64, delay: Duration, seed: u64) -> Arc<Self> {
        assert!((0.0..=1.0).contains(&drop_p), "drop probability in [0,1]");
        assert!((0.0..=1.0).contains(&delay_p), "delay probability in [0,1]");
        Arc::new(FaultPlan {
            drop_ppm: AtomicU64::new((drop_p * 1_000_000.0) as u64),
            delay_ppm: AtomicU64::new((delay_p * 1_000_000.0) as u64),
            delay: Mutex::new(delay),
            duplicate_ppm: AtomicU64::new(0),
            duplicate_delay: Mutex::new(Duration::ZERO),
            reorder_ppm: AtomicU64::new(0),
            reorder_delay: Mutex::new(Duration::ZERO),
            rng: Mutex::new(Rng::seed_from_u64(seed)),
            dropped: AtomicU64::new(0),
            delayed: AtomicU64::new(0),
            duplicated: AtomicU64::new(0),
            reordered: AtomicU64::new(0),
        })
    }

    /// Change the drop probability (e.g. heal or degrade mid-test).
    pub fn set_drop_probability(&self, p: f64) {
        assert!((0.0..=1.0).contains(&p));
        self.drop_ppm
            .store((p * 1_000_000.0) as u64, Ordering::Relaxed);
    }

    /// Duplicate each datagram with probability `p`; the second copy is
    /// transmitted `delay` after the first.
    pub fn set_duplication(&self, p: f64, delay: Duration) {
        self.duplicate_ppm.store(to_ppm(p), Ordering::Relaxed);
        *self.duplicate_delay.lock() = delay;
    }

    /// Defer each datagram with probability `p` by `delay`, letting
    /// later datagrams overtake it (reordering).
    pub fn set_reordering(&self, p: f64, delay: Duration) {
        self.reorder_ppm.store(to_ppm(p), Ordering::Relaxed);
        *self.reorder_delay.lock() = delay;
    }

    /// Decide the fate of one datagram, counting what was decided.
    pub fn judge_fate(&self) -> Fate {
        let drop_ppm = self.drop_ppm.load(Ordering::Relaxed);
        let delay_ppm = self.delay_ppm.load(Ordering::Relaxed);
        let duplicate_ppm = self.duplicate_ppm.load(Ordering::Relaxed);
        let reorder_ppm = self.reorder_ppm.load(Ordering::Relaxed);
        if drop_ppm == 0 && delay_ppm == 0 && duplicate_ppm == 0 && reorder_ppm == 0 {
            return Fate::Deliver(Duration::ZERO);
        }
        let roll: u64 = self.rng.lock().gen_range(1_000_000);
        if roll < drop_ppm {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return Fate::Drop;
        }
        if roll < drop_ppm + delay_ppm {
            self.delayed.fetch_add(1, Ordering::Relaxed);
            return Fate::Deliver(*self.delay.lock());
        }
        if roll < drop_ppm + delay_ppm + duplicate_ppm {
            self.duplicated.fetch_add(1, Ordering::Relaxed);
            return Fate::Duplicate(*self.duplicate_delay.lock());
        }
        if roll < drop_ppm + delay_ppm + duplicate_ppm + reorder_ppm {
            self.reordered.fetch_add(1, Ordering::Relaxed);
            return Fate::Defer(*self.reorder_delay.lock());
        }
        Fate::Deliver(Duration::ZERO)
    }

    /// Decide the fate of one datagram: `None` to drop it, or
    /// `Some(delay)` (possibly zero) to deliver it after `delay`.
    ///
    /// This is the drop/delay-only view kept for call sites that cannot
    /// transmit out-of-band copies; a duplicate fate degrades to an
    /// immediate single delivery and a defer fate to a blocking delay.
    pub fn judge(&self) -> Option<Duration> {
        match self.judge_fate() {
            Fate::Drop => None,
            Fate::Deliver(delay) | Fate::Defer(delay) => Some(delay),
            Fate::Duplicate(_) => Some(Duration::ZERO),
        }
    }

    /// Datagrams dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Datagrams delayed so far.
    pub fn delayed(&self) -> u64 {
        self.delayed.load(Ordering::Relaxed)
    }

    /// Datagrams duplicated so far.
    pub fn duplicated(&self) -> u64 {
        self.duplicated.load(Ordering::Relaxed)
    }

    /// Datagrams deferred (reordered) so far.
    pub fn reordered(&self) -> u64 {
        self.reordered.load(Ordering::Relaxed)
    }
}

/// An ordered out-of-band delivery queue for duplicate and deferred
/// datagram copies.
///
/// Entries are keyed by `(due_nanos, seq)` — due time first, then an
/// admission-order tiebreaker — so draining is a total order independent
/// of which thread enqueued what. Production transports drain due entries
/// from a wakeup task against the wall clock; the deterministic simulator
/// drains them at exactly the due tick of its virtual clock. The schedule
/// itself is std-only pure data: no tasks, no timers, no sockets.
#[derive(Debug)]
pub struct DeliverySchedule<T> {
    entries: Mutex<BTreeMap<(u64, u64), T>>,
    seq: AtomicU64,
}

impl<T> Default for DeliverySchedule<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> DeliverySchedule<T> {
    /// An empty schedule.
    pub fn new() -> Self {
        DeliverySchedule {
            entries: Mutex::new(BTreeMap::new()),
            seq: AtomicU64::new(0),
        }
    }

    /// Enqueue `item` to become due at absolute time `due_nanos`.
    pub fn schedule(&self, due_nanos: u64, item: T) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.entries.lock().insert((due_nanos, seq), item);
    }

    /// The earliest due time of any queued entry, if one exists.
    pub fn next_due(&self) -> Option<u64> {
        self.entries.lock().keys().next().map(|(due, _)| *due)
    }

    /// Remove and return the earliest entry due at or before `now_nanos`,
    /// in `(due, seq)` order. Call in a loop to drain everything due.
    pub fn pop_due(&self, now_nanos: u64) -> Option<(u64, T)> {
        let mut entries = self.entries.lock();
        let key = *entries.keys().next().filter(|(due, _)| *due <= now_nanos)?;
        entries.remove(&key).map(|item| (key.0, item))
    }

    /// Entries still queued.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_interferes() {
        let plan = FaultPlan::none();
        for _ in 0..1000 {
            assert_eq!(plan.judge(), Some(Duration::ZERO));
        }
        assert_eq!(plan.dropped(), 0);
    }

    #[test]
    fn drop_rate_approximates_probability() {
        let plan = FaultPlan::new(0.25, 0.0, Duration::ZERO, 7);
        let n = 100_000;
        let dropped = (0..n).filter(|_| plan.judge().is_none()).count();
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.01, "observed drop rate {rate}");
        assert_eq!(plan.dropped(), dropped as u64);
    }

    #[test]
    fn delay_applies_configured_duration() {
        let plan = FaultPlan::new(0.0, 1.0, Duration::from_millis(3), 1);
        assert_eq!(plan.judge(), Some(Duration::from_millis(3)));
        assert_eq!(plan.delayed(), 1);
    }

    #[test]
    fn same_seed_same_pattern() {
        let a = FaultPlan::new(0.5, 0.0, Duration::ZERO, 99);
        let b = FaultPlan::new(0.5, 0.0, Duration::ZERO, 99);
        for _ in 0..1000 {
            assert_eq!(a.judge().is_none(), b.judge().is_none());
        }
    }

    #[test]
    fn probability_can_change_mid_flight() {
        let plan = FaultPlan::new(1.0, 0.0, Duration::ZERO, 3);
        assert_eq!(plan.judge(), None);
        plan.set_drop_probability(0.0);
        assert!(plan.judge().is_some());
    }

    #[test]
    #[should_panic(expected = "in [0,1]")]
    fn rejects_bad_probability() {
        FaultPlan::new(1.5, 0.0, Duration::ZERO, 0);
    }

    #[test]
    fn duplication_fires_and_counts() {
        let plan = FaultPlan::new(0.0, 0.0, Duration::ZERO, 11);
        plan.set_duplication(1.0, Duration::from_millis(2));
        assert_eq!(plan.judge_fate(), Fate::Duplicate(Duration::from_millis(2)));
        assert_eq!(plan.duplicated(), 1);
        // Through the drop/delay-only view the datagram still leaves once,
        // immediately.
        assert_eq!(plan.judge(), Some(Duration::ZERO));
    }

    #[test]
    fn reordering_fires_and_counts() {
        let plan = FaultPlan::new(0.0, 0.0, Duration::ZERO, 12);
        plan.set_reordering(1.0, Duration::from_millis(4));
        assert_eq!(plan.judge_fate(), Fate::Defer(Duration::from_millis(4)));
        assert_eq!(plan.reordered(), 1);
    }

    #[test]
    fn duplication_rate_approximates_probability() {
        let plan = FaultPlan::new(0.0, 0.0, Duration::ZERO, 13);
        plan.set_duplication(0.2, Duration::ZERO);
        let n = 100_000;
        let dup = (0..n)
            .filter(|_| matches!(plan.judge_fate(), Fate::Duplicate(_)))
            .count();
        let rate = dup as f64 / n as f64;
        assert!(
            (rate - 0.2).abs() < 0.01,
            "observed duplication rate {rate}"
        );
        assert_eq!(plan.duplicated(), dup as u64);
    }

    #[test]
    fn fault_classes_are_mutually_exclusive_per_datagram() {
        // drop 0.3 + delay 0.2 + duplicate 0.3 + reorder 0.2 exactly
        // partition the roll space: every datagram draws exactly one fate
        // and the class counters sum to the datagram count.
        let plan = FaultPlan::new(0.3, 0.2, Duration::from_micros(1), 21);
        plan.set_duplication(0.3, Duration::from_micros(1));
        plan.set_reordering(0.2, Duration::from_micros(1));
        let n = 10_000u64;
        for _ in 0..n {
            plan.judge_fate();
        }
        assert_eq!(
            plan.dropped() + plan.delayed() + plan.duplicated() + plan.reordered(),
            n
        );
    }

    #[test]
    fn same_seed_same_fates() {
        let mk = || {
            let p = FaultPlan::new(0.2, 0.1, Duration::from_micros(5), 77);
            p.set_duplication(0.3, Duration::from_micros(7));
            p.set_reordering(0.2, Duration::from_micros(9));
            p
        };
        let (a, b) = (mk(), mk());
        for _ in 0..1000 {
            assert_eq!(a.judge_fate(), b.judge_fate());
        }
    }

    #[test]
    #[should_panic(expected = "probability in [0,1]")]
    fn rejects_bad_duplication_probability() {
        FaultPlan::none().set_duplication(-0.1, Duration::ZERO);
    }

    #[test]
    fn delivery_schedule_drains_in_due_then_seq_order() {
        let q = DeliverySchedule::new();
        q.schedule(30, "late");
        q.schedule(10, "first");
        q.schedule(10, "second"); // same due time: admission order breaks the tie
        q.schedule(20, "middle");
        assert_eq!(q.len(), 4);
        assert_eq!(q.next_due(), Some(10));
        let mut drained = Vec::new();
        while let Some((due, item)) = q.pop_due(100) {
            drained.push((due, item));
        }
        assert_eq!(
            drained,
            vec![(10, "first"), (10, "second"), (20, "middle"), (30, "late")]
        );
        assert!(q.is_empty());
    }

    #[test]
    fn delivery_schedule_holds_entries_not_yet_due() {
        let q = DeliverySchedule::new();
        q.schedule(50, "later");
        assert_eq!(q.pop_due(49), None);
        assert_eq!(q.next_due(), Some(50), "undelivered entry stays queued");
        assert_eq!(q.pop_due(50), Some((50, "later")));
        assert!(q.is_empty());
    }
}
