//! Per-backend circuit breaker for the admission RPC.
//!
//! The paper's router answers a dead partition with the default reply —
//! but only after burning the full timeout × retry budget on every single
//! request, which during a failover window turns one sick partition into
//! a router-wide retry storm. A circuit breaker bounds that damage:
//!
//! * **Closed** (healthy): every call goes through. `failure_threshold`
//!   *consecutive* RPC failures trip the breaker.
//! * **Open** (tripped): calls fast-fail without touching the network, so
//!   the retry budget is spent zero times instead of once per request.
//!   After `open_timeout` the breaker becomes willing to probe.
//! * **Half-open** (probing): exactly one in-flight call is let through as
//!   a probe. Success closes the breaker; failure re-opens it for another
//!   `open_timeout`.
//!
//! The breaker is a pure state machine over an *injected* clock: every
//! time-sensitive method takes the current [`Nanos`] instead of reading a
//! wall clock, so the same code runs under the production `SharedClock`
//! and under the deterministic simulator's `SimClock`. It performs no I/O
//! and spawns no tasks. Callers ask
//! [`try_acquire`](CircuitBreaker::try_acquire) before an RPC and report
//! the outcome with [`record_success`](CircuitBreaker::record_success) /
//! [`record_failure`](CircuitBreaker::record_failure).

use janus_clock::Nanos;
use janus_types::sync::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// How long an open breaker fast-fails before allowing a half-open
    /// probe.
    pub open_timeout: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            // One tripped request's worth of evidence: matches the
            // paper's 5-retry budget, so a single fully-timed-out
            // request (plus its last attempt) is enough to open.
            failure_threshold: 5,
            // A few health-monitor failover windows (75 ms in the default
            // Deployment): long enough to skip the brownout, short enough
            // that recovery is probed promptly.
            open_timeout: Duration::from_millis(250),
        }
    }
}

/// Where the breaker currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: calls flow.
    Closed,
    /// Tripped: calls fast-fail.
    Open,
    /// Probing: one call in flight decides open vs closed.
    HalfOpen,
}

/// What [`CircuitBreaker::try_acquire`] tells the caller to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Breaker closed: perform the call normally.
    Allow,
    /// Breaker half-open and this caller won the probe slot: perform the
    /// call; its outcome decides the breaker's fate.
    Probe,
    /// Breaker open (or another probe is in flight): do not touch the
    /// network.
    FastFail,
}

#[derive(Debug)]
struct Inner {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Nanos,
    probe_in_flight: bool,
}

/// A per-backend circuit breaker. Thread-safe; one lock per transition.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    inner: Mutex<Inner>,
    opens: AtomicU64,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            inner: Mutex::new(Inner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: Nanos::ZERO,
                probe_in_flight: false,
            }),
            opens: AtomicU64::new(0),
        }
    }

    /// The tuning in force.
    pub fn config(&self) -> &BreakerConfig {
        &self.config
    }

    fn probe_due(&self, opened_at: Nanos, now: Nanos) -> bool {
        now.saturating_since(opened_at) >= self.config.open_timeout
    }

    /// The current state at `now`, advancing Open → HalfOpen if the open
    /// timeout has elapsed (observation does not consume the probe slot).
    pub fn state(&self, now: Nanos) -> BreakerState {
        let inner = self.inner.lock();
        match inner.state {
            BreakerState::Open if self.probe_due(inner.opened_at, now) => BreakerState::HalfOpen,
            state => state,
        }
    }

    /// True when calls would currently fast-fail (open, probe not yet
    /// due). Half-open counts as not-open: a call could be the probe.
    pub fn is_open(&self, now: Nanos) -> bool {
        self.state(now) == BreakerState::Open
    }

    /// Times this breaker has tripped open.
    pub fn opens(&self) -> u64 {
        self.opens.load(Ordering::Relaxed)
    }

    /// Ask to perform a call at `now`.
    pub fn try_acquire(&self, now: Nanos) -> Admission {
        let mut inner = self.inner.lock();
        match inner.state {
            BreakerState::Closed => Admission::Allow,
            BreakerState::Open => {
                if self.probe_due(inner.opened_at, now) {
                    inner.state = BreakerState::HalfOpen;
                    inner.probe_in_flight = true;
                    Admission::Probe
                } else {
                    Admission::FastFail
                }
            }
            BreakerState::HalfOpen => {
                if inner.probe_in_flight {
                    Admission::FastFail
                } else {
                    inner.probe_in_flight = true;
                    Admission::Probe
                }
            }
        }
    }

    /// Report a successful call. Closes a half-open breaker and clears
    /// the failure streak.
    pub fn record_success(&self) {
        let mut inner = self.inner.lock();
        inner.consecutive_failures = 0;
        inner.probe_in_flight = false;
        inner.state = BreakerState::Closed;
    }

    /// Report a failed call (retry budget exhausted) at `now`. Trips a
    /// closed breaker at the threshold; re-opens a half-open breaker whose
    /// probe failed.
    pub fn record_failure(&self, now: Nanos) {
        let mut inner = self.inner.lock();
        inner.probe_in_flight = false;
        match inner.state {
            BreakerState::Closed => {
                inner.consecutive_failures += 1;
                if inner.consecutive_failures >= self.config.failure_threshold {
                    inner.state = BreakerState::Open;
                    inner.opened_at = now;
                    self.opens.fetch_add(1, Ordering::Relaxed);
                }
            }
            BreakerState::HalfOpen => {
                inner.state = BreakerState::Open;
                inner.opened_at = now;
                self.opens.fetch_add(1, Ordering::Relaxed);
            }
            BreakerState::Open => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: u32, open_ms: u64) -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: threshold,
            open_timeout: Duration::from_millis(open_ms),
        })
    }

    const T0: Nanos = Nanos::from_secs(100);

    #[test]
    fn stays_closed_below_threshold() {
        let b = breaker(3, 1000);
        b.record_failure(T0);
        b.record_failure(T0);
        assert_eq!(b.state(T0), BreakerState::Closed);
        assert_eq!(b.try_acquire(T0), Admission::Allow);
        assert_eq!(b.opens(), 0);
    }

    #[test]
    fn success_resets_failure_streak() {
        let b = breaker(3, 1000);
        b.record_failure(T0);
        b.record_failure(T0);
        b.record_success();
        b.record_failure(T0);
        b.record_failure(T0);
        assert_eq!(b.state(T0), BreakerState::Closed);
    }

    #[test]
    fn trips_open_at_threshold_and_fast_fails() {
        let b = breaker(3, 1000);
        for _ in 0..3 {
            b.record_failure(T0);
        }
        assert_eq!(b.state(T0), BreakerState::Open);
        assert!(b.is_open(T0));
        assert_eq!(b.try_acquire(T0), Admission::FastFail);
        assert_eq!(b.opens(), 1);
    }

    #[test]
    fn half_open_grants_exactly_one_probe() {
        let b = breaker(1, 0); // open timeout 0: probe due immediately
        b.record_failure(T0);
        assert_eq!(b.try_acquire(T0), Admission::Probe);
        // Second caller while the probe is in flight: fast-fail.
        assert_eq!(b.try_acquire(T0), Admission::FastFail);
    }

    #[test]
    fn probe_success_closes() {
        let b = breaker(1, 0);
        b.record_failure(T0);
        assert_eq!(b.try_acquire(T0), Admission::Probe);
        b.record_success();
        assert_eq!(b.state(T0), BreakerState::Closed);
        assert_eq!(b.try_acquire(T0), Admission::Allow);
    }

    #[test]
    fn probe_failure_reopens_for_another_window() {
        let b = breaker(1, 60_000); // long window: no second probe soon
        b.record_failure(T0);
        // Drive the half-open transition directly: the breaker re-opens
        // from half-open on a failed probe.
        {
            let mut inner = b.inner.lock();
            inner.state = BreakerState::HalfOpen;
            inner.probe_in_flight = true;
        }
        b.record_failure(T0);
        assert_eq!(b.state(T0), BreakerState::Open);
        assert_eq!(b.try_acquire(T0), Admission::FastFail);
        assert_eq!(b.opens(), 2);
    }

    #[test]
    fn open_timeout_elapses_into_probe() {
        let b = breaker(1, 20);
        b.record_failure(T0);
        assert_eq!(b.try_acquire(T0), Admission::FastFail);
        // No sleeping: advance the injected clock past the window.
        let later = T0.saturating_add(Duration::from_millis(30));
        assert_eq!(b.state(later), BreakerState::HalfOpen);
        assert_eq!(b.try_acquire(later), Admission::Probe);
    }

    #[test]
    fn reopened_breaker_restarts_its_window() {
        let b = breaker(1, 20);
        b.record_failure(T0);
        let later = T0.saturating_add(Duration::from_millis(30));
        assert_eq!(b.try_acquire(later), Admission::Probe);
        b.record_failure(later); // failed probe re-opens at `later`
        assert_eq!(
            b.state(later.saturating_add(Duration::from_millis(10))),
            BreakerState::Open
        );
        assert_eq!(
            b.state(later.saturating_add(Duration::from_millis(20))),
            BreakerState::HalfOpen
        );
    }

    #[test]
    fn failures_while_open_do_not_double_count() {
        let b = breaker(2, 60_000);
        b.record_failure(T0);
        b.record_failure(T0);
        assert_eq!(b.opens(), 1);
        b.record_failure(T0); // e.g. an in-flight call completing late
        assert_eq!(b.opens(), 1);
        assert_eq!(b.state(T0), BreakerState::Open);
    }
}
