//! Batched UDP syscalls: `recvmmsg`/`sendmmsg` plus `SO_REUSEPORT` helpers.
//!
//! PR 1 coalesced *frames* into datagrams and PR 3 made the *decision*
//! lock-free, which leaves one `recvfrom`/`sendto` syscall pair per
//! datagram as the dominant remaining hot-path cost. Linux has had the
//! fix since 2.6.33/3.0: `recvmmsg(2)` and `sendmmsg(2)` move up to a
//! whole batch of datagrams per kernel crossing. This module exposes
//! them as [`recv_batch`]/[`send_batch`] without adding a crate
//! dependency — the three syscalls and the handful of sockaddr structs
//! are declared by hand against the system libc, in the same spirit as
//! the repo's hand-rolled DNS/HTTP/SQL substrates.
//!
//! Portability: every public entry point compiles on every platform. On
//! non-Linux targets the batched calls degrade to a loop of plain
//! `recv_from`/`send_to` over the std socket — byte-identical traffic,
//! one syscall per datagram. The fallback also compiles *on* Linux (see
//! [`Backend`]) so the parity suite can pin "batched syscalls produce
//! exactly the frames the portable loop produces" on one box.
//!
//! Also here, because they share the FFI plumbing:
//!
//! * [`reuseport_socket`] — bind N sockets to one UDP address with
//!   `SO_REUSEPORT`, letting the kernel steer flows to per-core sockets
//!   (the `SocketMode::PerCore` data plane in `janus-server`),
//! * [`set_busy_poll`] — opt-in `SO_BUSY_POLL` for latency-critical
//!   deployments,
//! * [`pin_current_thread`] — best-effort CPU affinity for per-core
//!   worker threads.
//!
//! Every `unsafe` block carries a `// SAFETY:` comment; DESIGN.md's
//! safety appendix walks through all of them.

use std::io;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicU64, Ordering};

/// Most datagrams moved per `recvmmsg`/`sendmmsg` call. 16 matches the
/// listener's observed burst sizes under the bench harness and stays
/// comfortably under the buffer pool's per-thread freelist cap (32), so
/// a full batch of scratch buffers still recycles without allocating.
pub const MAX_BATCH: usize = 16;

/// One received datagram: how many bytes landed in the caller's buffer
/// at the same index, and who sent them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvSlot {
    /// Valid prefix length of the corresponding scratch buffer.
    pub len: usize,
    /// Sender address.
    pub peer: SocketAddr,
}

/// Which syscall strategy a batched call uses.
///
/// [`Backend::native`] picks the best available at compile time; the
/// parity tests exercise both explicitly on Linux.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Linux `recvmmsg`/`sendmmsg`: one kernel crossing per batch.
    /// Returns `Unsupported` at runtime on other platforms.
    Mmsg,
    /// Loop of plain `recv_from`/`send_to`: one crossing per datagram,
    /// available everywhere, byte-identical traffic.
    Portable,
}

impl Backend {
    /// The best backend this build supports.
    pub fn native() -> Backend {
        if cfg!(target_os = "linux") {
            Backend::Mmsg
        } else {
            Backend::Portable
        }
    }
}

/// Counters for the batched data plane, shared via `Arc` with
/// `ServerStats` so syscall amortization shows up in snapshots next to
/// the shed/dedup counters.
///
/// `recv_lens` is an exact histogram of receive batch lengths (index
/// `n-1` counts batches of exactly `n` datagrams, `1 ≤ n ≤ MAX_BATCH`),
/// which is cheap because the support is tiny and fixed.
#[derive(Debug, Default)]
pub struct BatchStats {
    recv_syscalls: AtomicU64,
    recv_datagrams: AtomicU64,
    send_syscalls: AtomicU64,
    send_datagrams: AtomicU64,
    recv_lens: [AtomicU64; MAX_BATCH],
}

impl BatchStats {
    /// A fresh counter set, all zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one receive call that returned `n` datagrams (`n ≥ 1`).
    pub fn record_recv(&self, n: usize) {
        if n == 0 {
            return;
        }
        self.recv_syscalls.fetch_add(1, Ordering::Relaxed);
        self.recv_datagrams.fetch_add(n as u64, Ordering::Relaxed);
        let bucket = n.min(MAX_BATCH) - 1;
        self.recv_lens[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Record a send of `datagrams` datagrams that took `syscalls`
    /// kernel crossings.
    pub fn record_send(&self, datagrams: usize, syscalls: usize) {
        if datagrams == 0 {
            return;
        }
        self.send_syscalls
            .fetch_add(syscalls as u64, Ordering::Relaxed);
        self.send_datagrams
            .fetch_add(datagrams as u64, Ordering::Relaxed);
    }

    /// Datagrams moved minus kernel crossings spent — how many
    /// per-datagram syscalls batching amortized away, on both
    /// directions combined.
    pub fn syscalls_saved(&self) -> u64 {
        let rd = self.recv_datagrams.load(Ordering::Relaxed);
        let rs = self.recv_syscalls.load(Ordering::Relaxed);
        let sd = self.send_datagrams.load(Ordering::Relaxed);
        let ss = self.send_syscalls.load(Ordering::Relaxed);
        rd.saturating_sub(rs) + sd.saturating_sub(ss)
    }

    /// Receive batch-length quantile (`q` in `[0, 1]`), from the exact
    /// histogram. 0 when nothing has been received.
    pub fn recv_len_quantile(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .recv_lens
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, count) in counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return (i + 1) as u64;
            }
        }
        MAX_BATCH as u64
    }

    /// Total datagrams received through batched calls.
    pub fn recv_datagrams(&self) -> u64 {
        self.recv_datagrams.load(Ordering::Relaxed)
    }

    /// Total receive syscalls spent.
    pub fn recv_syscalls(&self) -> u64 {
        self.recv_syscalls.load(Ordering::Relaxed)
    }
}

/// Receive up to `bufs.len()` datagrams (capped at [`MAX_BATCH`]),
/// blocking until at least one arrives (honouring the socket's read
/// timeout), using the best backend this build supports.
///
/// Fills `out` with one [`RecvSlot`] per datagram; `bufs[i]`'s first
/// `out[i].len` bytes are the payload. Returns the datagram count.
pub fn recv_batch<B: AsMut<[u8]>>(
    socket: &UdpSocket,
    bufs: &mut [B],
    out: &mut Vec<RecvSlot>,
    stats: Option<&BatchStats>,
) -> io::Result<usize> {
    recv_batch_with(Backend::native(), socket, bufs, out, stats)
}

/// [`recv_batch`] with an explicit backend — the parity tests' entry
/// point. `Backend::Mmsg` fails with `Unsupported` off Linux.
pub fn recv_batch_with<B: AsMut<[u8]>>(
    backend: Backend,
    socket: &UdpSocket,
    bufs: &mut [B],
    out: &mut Vec<RecvSlot>,
    stats: Option<&BatchStats>,
) -> io::Result<usize> {
    out.clear();
    if bufs.is_empty() {
        return Ok(0);
    }
    let n = match backend {
        Backend::Mmsg => recv_batch_mmsg(socket, bufs, out)?,
        Backend::Portable => recv_batch_portable(socket, bufs, out)?,
    };
    if let Some(stats) = stats {
        stats.record_recv(n);
    }
    Ok(n)
}

/// Send every `(payload, destination)` pair, using the best backend
/// this build supports. Returns the number of kernel crossings spent.
pub fn send_batch(
    socket: &UdpSocket,
    msgs: &[(&[u8], SocketAddr)],
    stats: Option<&BatchStats>,
) -> io::Result<usize> {
    send_batch_with(Backend::native(), socket, msgs, stats)
}

/// [`send_batch`] with an explicit backend — the parity tests' entry
/// point. `Backend::Mmsg` fails with `Unsupported` off Linux.
pub fn send_batch_with(
    backend: Backend,
    socket: &UdpSocket,
    msgs: &[(&[u8], SocketAddr)],
    stats: Option<&BatchStats>,
) -> io::Result<usize> {
    if msgs.is_empty() {
        return Ok(0);
    }
    let syscalls = match backend {
        Backend::Mmsg => send_batch_mmsg(socket, msgs)?,
        Backend::Portable => {
            for (payload, peer) in msgs {
                socket.send_to(payload, peer)?;
            }
            msgs.len()
        }
    };
    if let Some(stats) = stats {
        stats.record_send(msgs.len(), syscalls);
    }
    Ok(syscalls)
}

/// Portable receive: one *blocking* `recv_from` for the first datagram
/// (so the call honours the socket's read timeout exactly like the mmsg
/// path honours it on its first datagram), then a non-blocking drain of
/// whatever else is already queued, up to the buffer count. The socket's
/// blocking mode is restored before returning.
fn recv_batch_portable<B: AsMut<[u8]>>(
    socket: &UdpSocket,
    bufs: &mut [B],
    out: &mut Vec<RecvSlot>,
) -> io::Result<usize> {
    let limit = bufs.len().min(MAX_BATCH);
    let (len, peer) = socket.recv_from(bufs[0].as_mut())?;
    out.push(RecvSlot { len, peer });
    if limit == 1 {
        return Ok(1);
    }
    socket.set_nonblocking(true)?;
    let mut n = 1;
    while n < limit {
        match socket.recv_from(bufs[n].as_mut()) {
            Ok((len, peer)) => {
                out.push(RecvSlot { len, peer });
                n += 1;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) => {
                socket.set_nonblocking(false)?;
                return Err(e);
            }
        }
    }
    socket.set_nonblocking(false)?;
    Ok(n)
}

// ---------------------------------------------------------------------------
// Linux FFI surface
// ---------------------------------------------------------------------------
//
// Declared by hand so `janus-net` stays off the `libc` crate. Constants
// are the x86-64/aarch64 Linux values (both architectures agree on every
// one used here); struct layouts match `bits/socket.h`.

#[cfg(target_os = "linux")]
mod ffi {
    #![allow(non_camel_case_types)]

    pub const AF_INET: u16 = 2;
    pub const AF_INET6: u16 = 10;
    pub const SOCK_DGRAM: i32 = 2;
    pub const SOCK_CLOEXEC: i32 = 0x80000;
    pub const SOL_SOCKET: i32 = 1;
    pub const SO_REUSEPORT: i32 = 15;
    pub const SO_BUSY_POLL: i32 = 46;
    pub const MSG_DONTWAIT: i32 = 0x40;
    /// recvmmsg: return once at least one datagram has arrived instead
    /// of blocking for the full batch.
    pub const MSG_WAITFORONE: i32 = 0x10000;

    /// `struct iovec`.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct iovec {
        pub iov_base: *mut u8,
        pub iov_len: usize,
    }

    /// `struct msghdr` (Linux layout: size_t iovlen/controllen).
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct msghdr {
        pub msg_name: *mut u8,
        pub msg_namelen: u32,
        pub msg_iov: *mut iovec,
        pub msg_iovlen: usize,
        pub msg_control: *mut u8,
        pub msg_controllen: usize,
        pub msg_flags: i32,
    }

    /// `struct mmsghdr`.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct mmsghdr {
        pub msg_hdr: msghdr,
        pub msg_len: u32,
    }

    /// `struct sockaddr_in`. Port and address are big-endian.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct sockaddr_in {
        pub sin_family: u16,
        pub sin_port: u16,
        pub sin_addr: u32,
        pub sin_zero: [u8; 8],
    }

    /// `struct sockaddr_in6`. Port is big-endian, the address is a
    /// 16-byte big-endian blob.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct sockaddr_in6 {
        pub sin6_family: u16,
        pub sin6_port: u16,
        pub sin6_flowinfo: u32,
        pub sin6_addr: [u8; 16],
        pub sin6_scope_id: u32,
    }

    /// `struct sockaddr_storage`: opaque 128-byte blob, 8-aligned,
    /// large enough for any address family.
    #[repr(C)]
    #[repr(align(8))]
    #[derive(Clone, Copy)]
    pub struct sockaddr_storage {
        pub data: [u8; 128],
    }

    impl sockaddr_storage {
        pub fn zeroed() -> Self {
            sockaddr_storage { data: [0u8; 128] }
        }
    }

    // `timespec*` in recvmmsg is passed as a const pointer we always
    // leave null (the socket's SO_RCVTIMEO governs blocking instead),
    // so its exact layout never matters here.
    extern "C" {
        pub fn recvmmsg(
            sockfd: i32,
            msgvec: *mut mmsghdr,
            vlen: u32,
            flags: i32,
            timeout: *mut u8,
        ) -> i32;
        pub fn sendmmsg(sockfd: i32, msgvec: *mut mmsghdr, vlen: u32, flags: i32) -> i32;
        pub fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        pub fn bind(sockfd: i32, addr: *const u8, addrlen: u32) -> i32;
        pub fn setsockopt(
            sockfd: i32,
            level: i32,
            optname: i32,
            optval: *const u8,
            optlen: u32,
        ) -> i32;
        pub fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }
}

/// Serialize a `SocketAddr` into a `sockaddr_storage`, returning the
/// valid length for the kernel's `addrlen` argument.
#[cfg(target_os = "linux")]
fn addr_to_storage(addr: &SocketAddr, storage: &mut ffi::sockaddr_storage) -> u32 {
    match addr {
        SocketAddr::V4(v4) => {
            let sin = ffi::sockaddr_in {
                sin_family: ffi::AF_INET,
                sin_port: v4.port().to_be(),
                sin_addr: u32::from(*v4.ip()).to_be(),
                sin_zero: [0u8; 8],
            };
            let bytes = std::mem::size_of::<ffi::sockaddr_in>();
            // SAFETY: sockaddr_in is plain-old-data of `bytes` bytes and
            // sockaddr_storage is a 128-byte buffer (bytes = 16 ≤ 128);
            // both are valid for the copy and do not overlap.
            unsafe {
                std::ptr::copy_nonoverlapping(
                    (&sin as *const ffi::sockaddr_in).cast::<u8>(),
                    storage.data.as_mut_ptr(),
                    bytes,
                );
            }
            bytes as u32
        }
        SocketAddr::V6(v6) => {
            let sin6 = ffi::sockaddr_in6 {
                sin6_family: ffi::AF_INET6,
                sin6_port: v6.port().to_be(),
                sin6_flowinfo: v6.flowinfo().to_be(),
                sin6_addr: v6.ip().octets(),
                sin6_scope_id: v6.scope_id(),
            };
            let bytes = std::mem::size_of::<ffi::sockaddr_in6>();
            // SAFETY: sockaddr_in6 is plain-old-data of `bytes` bytes
            // (28 ≤ 128); source and destination are valid and disjoint.
            unsafe {
                std::ptr::copy_nonoverlapping(
                    (&sin6 as *const ffi::sockaddr_in6).cast::<u8>(),
                    storage.data.as_mut_ptr(),
                    bytes,
                );
            }
            bytes as u32
        }
    }
}

/// Parse the peer address the kernel wrote into a `sockaddr_storage`.
#[cfg(target_os = "linux")]
fn storage_to_addr(storage: &ffi::sockaddr_storage) -> io::Result<SocketAddr> {
    let family = u16::from_ne_bytes([storage.data[0], storage.data[1]]);
    match family {
        ffi::AF_INET => {
            // SAFETY: the kernel wrote a complete sockaddr_in (family
            // checked above) into this 128-byte buffer, which is large
            // and aligned enough to read the 16-byte POD back out.
            let sin: ffi::sockaddr_in =
                unsafe { std::ptr::read_unaligned(storage.data.as_ptr().cast()) };
            Ok(SocketAddr::new(
                IpAddr::V4(Ipv4Addr::from(u32::from_be(sin.sin_addr))),
                u16::from_be(sin.sin_port),
            ))
        }
        ffi::AF_INET6 => {
            // SAFETY: as above, for the 28-byte sockaddr_in6 POD.
            let sin6: ffi::sockaddr_in6 =
                unsafe { std::ptr::read_unaligned(storage.data.as_ptr().cast()) };
            Ok(SocketAddr::new(
                IpAddr::V6(Ipv6Addr::from(sin6.sin6_addr)),
                u16::from_be(sin6.sin6_port),
            ))
        }
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("recvmmsg returned unknown address family {other}"),
        )),
    }
}

/// The shared core of every Linux receive path: one `recvmmsg` call
/// over `fd` filling `bufs`, appending a [`RecvSlot`] per datagram.
#[cfg(target_os = "linux")]
fn recvmmsg_once<B: AsMut<[u8]>>(
    fd: i32,
    bufs: &mut [B],
    out: &mut Vec<RecvSlot>,
    flags: i32,
) -> io::Result<usize> {
    let vlen = bufs.len().min(MAX_BATCH);
    // SAFETY: mmsghdr/iovec/sockaddr_storage are plain-old-data for
    // which an all-zero bit pattern is a valid (if useless) value;
    // every field the kernel reads is overwritten below before the
    // syscall.
    let mut hdrs: [ffi::mmsghdr; MAX_BATCH] = unsafe { std::mem::zeroed() };
    // SAFETY: iovec is POD; base/len are set for every used slot below.
    let mut iovecs: [ffi::iovec; MAX_BATCH] = unsafe { std::mem::zeroed() };
    let mut addrs = [ffi::sockaddr_storage::zeroed(); MAX_BATCH];

    for i in 0..vlen {
        let buf = bufs[i].as_mut();
        iovecs[i] = ffi::iovec {
            iov_base: buf.as_mut_ptr(),
            iov_len: buf.len(),
        };
        hdrs[i].msg_hdr = ffi::msghdr {
            msg_name: addrs[i].data.as_mut_ptr(),
            msg_namelen: std::mem::size_of::<ffi::sockaddr_storage>() as u32,
            msg_iov: &mut iovecs[i],
            msg_iovlen: 1,
            msg_control: std::ptr::null_mut(),
            msg_controllen: 0,
            msg_flags: 0,
        };
    }

    // SAFETY: `fd` is a live UDP socket owned by the caller; `hdrs` holds
    // `vlen` fully-initialized mmsghdrs whose iovecs point into `bufs`
    // (alive across the call, one exclusive buffer per slot) and whose
    // msg_names point into `addrs` (alive across the call); the null
    // timeout selects the socket's own blocking discipline. The kernel
    // writes only within the lengths we declared.
    let rc = unsafe {
        ffi::recvmmsg(
            fd,
            hdrs.as_mut_ptr(),
            vlen as u32,
            flags,
            std::ptr::null_mut(),
        )
    };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    let n = rc as usize;
    for (hdr, addr) in hdrs.iter().zip(addrs.iter()).take(n) {
        out.push(RecvSlot {
            len: hdr.msg_len as usize,
            peer: storage_to_addr(addr)?,
        });
    }
    Ok(n)
}

/// Blocking `recvmmsg`: waits for the first datagram (honouring the
/// socket's read timeout via `SO_RCVTIMEO`), returns with however many
/// arrived together (`MSG_WAITFORONE`).
#[cfg(target_os = "linux")]
fn recv_batch_mmsg<B: AsMut<[u8]>>(
    socket: &UdpSocket,
    bufs: &mut [B],
    out: &mut Vec<RecvSlot>,
) -> io::Result<usize> {
    use std::os::fd::AsRawFd;
    recvmmsg_once(socket.as_raw_fd(), bufs, out, ffi::MSG_WAITFORONE)
}

#[cfg(not(target_os = "linux"))]
fn recv_batch_mmsg<B: AsMut<[u8]>>(
    _socket: &UdpSocket,
    _bufs: &mut [B],
    _out: &mut Vec<RecvSlot>,
) -> io::Result<usize> {
    Err(io::Error::new(
        io::ErrorKind::Unsupported,
        "Backend::Mmsg requires Linux",
    ))
}

/// Non-blocking `recvmmsg` over a raw fd, for use inside tokio's
/// `try_io`: returns `WouldBlock` when nothing is queued (the caller
/// re-awaits readiness) and never sleeps in the kernel.
#[cfg(target_os = "linux")]
pub fn recv_batch_nonblocking<B: AsMut<[u8]>>(
    fd: i32,
    bufs: &mut [B],
    out: &mut Vec<RecvSlot>,
    stats: Option<&BatchStats>,
) -> io::Result<usize> {
    out.clear();
    if bufs.is_empty() {
        return Ok(0);
    }
    let n = recvmmsg_once(fd, bufs, out, ffi::MSG_DONTWAIT)?;
    if let Some(stats) = stats {
        stats.record_recv(n);
    }
    Ok(n)
}

/// The shared core of the Linux send paths: `sendmmsg` in chunks of
/// [`MAX_BATCH`], tolerating partial progress (the kernel may accept
/// fewer than `vlen`; the remainder is retried in the next chunk).
/// Returns the number of kernel crossings spent.
#[cfg(target_os = "linux")]
fn sendmmsg_all(fd: i32, msgs: &[(&[u8], SocketAddr)], flags: i32) -> io::Result<usize> {
    let mut sent = 0usize;
    let mut syscalls = 0usize;
    while sent < msgs.len() {
        let chunk = &msgs[sent..(sent + MAX_BATCH).min(msgs.len())];
        // SAFETY: POD arrays; every field the kernel reads is set below.
        let mut hdrs: [ffi::mmsghdr; MAX_BATCH] = unsafe { std::mem::zeroed() };
        // SAFETY: iovec is POD; base/len are set for every used slot.
        let mut iovecs: [ffi::iovec; MAX_BATCH] = unsafe { std::mem::zeroed() };
        let mut addrs = [ffi::sockaddr_storage::zeroed(); MAX_BATCH];
        for (i, (payload, peer)) in chunk.iter().enumerate() {
            let addrlen = addr_to_storage(peer, &mut addrs[i]);
            iovecs[i] = ffi::iovec {
                // sendmmsg never writes through iov_base; the mut cast
                // only satisfies the shared iovec declaration.
                iov_base: payload.as_ptr() as *mut u8,
                iov_len: payload.len(),
            };
            hdrs[i].msg_hdr = ffi::msghdr {
                msg_name: addrs[i].data.as_mut_ptr(),
                msg_namelen: addrlen,
                msg_iov: &mut iovecs[i],
                msg_iovlen: 1,
                msg_control: std::ptr::null_mut(),
                msg_controllen: 0,
                msg_flags: 0,
            };
        }
        // SAFETY: `fd` is a live UDP socket; `hdrs` holds `chunk.len()`
        // fully-initialized mmsghdrs whose iovecs and msg_names point
        // into `chunk`'s payloads and the local `addrs`, all alive
        // across the call. sendmmsg only reads through these pointers.
        let rc = unsafe { ffi::sendmmsg(fd, hdrs.as_mut_ptr(), chunk.len() as u32, flags) };
        if rc < 0 {
            let err = io::Error::last_os_error();
            // Partial progress before EAGAIN still counts; the caller
            // sees the error and knows `sent` datagrams already left.
            if sent > 0 && err.kind() == io::ErrorKind::WouldBlock {
                return Ok(syscalls);
            }
            return Err(err);
        }
        syscalls += 1;
        sent += rc as usize;
        if rc == 0 {
            // Defensive: the kernel should never accept zero without
            // erroring, but an infinite loop would be worse than a lie.
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "sendmmsg accepted zero datagrams",
            ));
        }
    }
    Ok(syscalls)
}

/// Blocking batched send over a std socket.
#[cfg(target_os = "linux")]
fn send_batch_mmsg(socket: &UdpSocket, msgs: &[(&[u8], SocketAddr)]) -> io::Result<usize> {
    use std::os::fd::AsRawFd;
    sendmmsg_all(socket.as_raw_fd(), msgs, 0)
}

#[cfg(not(target_os = "linux"))]
fn send_batch_mmsg(_socket: &UdpSocket, _msgs: &[(&[u8], SocketAddr)]) -> io::Result<usize> {
    Err(io::Error::new(
        io::ErrorKind::Unsupported,
        "Backend::Mmsg requires Linux",
    ))
}

/// Non-blocking batched send over a raw fd, for tokio's `try_io`.
/// Returns `WouldBlock` only when *nothing* was sent; otherwise reports
/// the syscalls spent on the datagrams that did leave.
#[cfg(target_os = "linux")]
pub fn send_batch_nonblocking(
    fd: i32,
    msgs: &[(&[u8], SocketAddr)],
    stats: Option<&BatchStats>,
) -> io::Result<usize> {
    if msgs.is_empty() {
        return Ok(0);
    }
    let syscalls = sendmmsg_all(fd, msgs, ffi::MSG_DONTWAIT)?;
    if let Some(stats) = stats {
        stats.record_send(msgs.len(), syscalls);
    }
    Ok(syscalls)
}

/// Create a UDP socket with `SO_REUSEPORT` set *before* bind, bound to
/// `addr` — the building block of the per-core socket group. Linux
/// steers each flow (by 4-tuple hash) to exactly one member socket, so
/// N of these on one address shard the ingress across N owning threads
/// with no user-space hand-off.
#[cfg(target_os = "linux")]
pub fn reuseport_socket(addr: SocketAddr) -> io::Result<UdpSocket> {
    use std::os::fd::FromRawFd;

    let family = match addr {
        SocketAddr::V4(_) => ffi::AF_INET as i32,
        SocketAddr::V6(_) => ffi::AF_INET6 as i32,
    };
    // SAFETY: socket(2) with valid constant arguments; the returned fd
    // (checked below) is owned by this function until from_raw_fd.
    let fd = unsafe { ffi::socket(family, ffi::SOCK_DGRAM | ffi::SOCK_CLOEXEC, 0) };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    // Everything below must close `fd` on failure — wrap early so Drop
    // handles it.
    // SAFETY: `fd` was just returned by socket(2) and nothing else owns
    // it; UdpSocket takes ownership and closes it on drop.
    let socket = unsafe { UdpSocket::from_raw_fd(fd) };

    let one: i32 = 1;
    // SAFETY: setsockopt(2) on the live fd with a valid 4-byte optval
    // that outlives the call.
    let rc = unsafe {
        ffi::setsockopt(
            fd,
            ffi::SOL_SOCKET,
            ffi::SO_REUSEPORT,
            (&one as *const i32).cast(),
            std::mem::size_of::<i32>() as u32,
        )
    };
    if rc != 0 {
        return Err(io::Error::last_os_error());
    }

    let mut storage = ffi::sockaddr_storage::zeroed();
    let addrlen = addr_to_storage(&addr, &mut storage);
    // SAFETY: bind(2) on the live fd with a sockaddr serialized by
    // addr_to_storage, valid for `addrlen` bytes and alive across the
    // call.
    let rc = unsafe { ffi::bind(fd, storage.data.as_ptr(), addrlen) };
    if rc != 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(socket)
}

/// Non-Linux stub: `SO_REUSEPORT` flow steering is Linux-specific here.
#[cfg(not(target_os = "linux"))]
pub fn reuseport_socket(_addr: SocketAddr) -> io::Result<UdpSocket> {
    Err(io::Error::new(
        io::ErrorKind::Unsupported,
        "reuseport_socket requires Linux",
    ))
}

/// Enable `SO_BUSY_POLL`: the kernel busy-polls the device queue for up
/// to `micros` µs on a blocking receive before sleeping — lower latency
/// for CPU. Off by default everywhere; opt-in via `ServerConfig`.
#[cfg(target_os = "linux")]
pub fn set_busy_poll(socket: &UdpSocket, micros: u32) -> io::Result<()> {
    use std::os::fd::AsRawFd;
    let val = micros as i32;
    // SAFETY: setsockopt(2) on a live fd with a valid 4-byte optval
    // that outlives the call.
    let rc = unsafe {
        ffi::setsockopt(
            socket.as_raw_fd(),
            ffi::SOL_SOCKET,
            ffi::SO_BUSY_POLL,
            (&val as *const i32).cast(),
            std::mem::size_of::<i32>() as u32,
        )
    };
    if rc != 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// Non-Linux stub.
#[cfg(not(target_os = "linux"))]
pub fn set_busy_poll(_socket: &UdpSocket, _micros: u32) -> io::Result<()> {
    Err(io::Error::new(
        io::ErrorKind::Unsupported,
        "SO_BUSY_POLL requires Linux",
    ))
}

/// Pin the calling thread to one CPU (best-effort; callers treat
/// failure as advisory). Supports CPUs 0..1023.
#[cfg(target_os = "linux")]
pub fn pin_current_thread(cpu: usize) -> io::Result<()> {
    let mut mask = [0u64; 16]; // 1024-bit cpu_set_t
    if cpu >= 1024 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "cpu index out of range",
        ));
    }
    mask[cpu / 64] |= 1u64 << (cpu % 64);
    // SAFETY: sched_setaffinity(2) with pid 0 (the calling thread), a
    // mask buffer of exactly the size we declare, alive across the
    // call; the kernel only reads it.
    let rc = unsafe { ffi::sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr()) };
    if rc != 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// Non-Linux stub.
#[cfg(not(target_os = "linux"))]
pub fn pin_current_thread(_cpu: usize) -> io::Result<()> {
    Err(io::Error::new(
        io::ErrorKind::Unsupported,
        "thread pinning requires Linux",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn pair() -> (UdpSocket, UdpSocket, SocketAddr, SocketAddr) {
        let a = UdpSocket::bind("127.0.0.1:0").unwrap();
        let b = UdpSocket::bind("127.0.0.1:0").unwrap();
        let a_addr = a.local_addr().unwrap();
        let b_addr = b.local_addr().unwrap();
        (a, b, a_addr, b_addr)
    }

    fn recv_all(
        backend: Backend,
        socket: &UdpSocket,
        expected: usize,
    ) -> Vec<(Vec<u8>, SocketAddr)> {
        socket
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        let mut bufs: Vec<Vec<u8>> = (0..MAX_BATCH).map(|_| vec![0u8; 2048]).collect();
        let mut slots = Vec::new();
        let mut got = Vec::new();
        while got.len() < expected {
            let n = recv_batch_with(backend, socket, &mut bufs, &mut slots, None).unwrap();
            assert!(n >= 1);
            for (i, slot) in slots.iter().enumerate().take(n) {
                got.push((bufs[i][..slot.len].to_vec(), slot.peer));
            }
        }
        got
    }

    #[test]
    fn portable_send_recv_round_trips() {
        let (a, b, _a_addr, b_addr) = pair();
        let payloads: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i; 10 + i as usize]).collect();
        let msgs: Vec<(&[u8], SocketAddr)> =
            payloads.iter().map(|p| (p.as_slice(), b_addr)).collect();
        send_batch_with(Backend::Portable, &a, &msgs, None).unwrap();
        let got = recv_all(Backend::Portable, &b, payloads.len());
        let bodies: Vec<Vec<u8>> = got.into_iter().map(|(body, _)| body).collect();
        assert_eq!(bodies, payloads);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn mmsg_and_portable_traffic_is_byte_identical() {
        // Same payload set through each backend pairing; the receiver
        // must observe identical bytes and peers regardless of which
        // side batched its syscalls.
        let payloads: Vec<Vec<u8>> = (0..7u8).map(|i| vec![0xA0 | i; 33 + i as usize]).collect();
        for (send_backend, recv_backend) in [
            (Backend::Mmsg, Backend::Portable),
            (Backend::Portable, Backend::Mmsg),
            (Backend::Mmsg, Backend::Mmsg),
        ] {
            let (a, b, a_addr, b_addr) = pair();
            let msgs: Vec<(&[u8], SocketAddr)> =
                payloads.iter().map(|p| (p.as_slice(), b_addr)).collect();
            send_batch_with(send_backend, &a, &msgs, None).unwrap();
            let got = recv_all(recv_backend, &b, payloads.len());
            for ((body, peer), expected) in got.iter().zip(payloads.iter()) {
                assert_eq!(body, expected, "{send_backend:?}->{recv_backend:?}");
                assert_eq!(*peer, a_addr);
            }
        }
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn mmsg_recv_honours_read_timeout() {
        let socket = UdpSocket::bind("127.0.0.1:0").unwrap();
        socket
            .set_read_timeout(Some(Duration::from_millis(30)))
            .unwrap();
        let mut bufs = [[0u8; 64]; 2];
        let mut out = Vec::new();
        let err = recv_batch_with(Backend::Mmsg, &socket, &mut bufs, &mut out, None).unwrap_err();
        assert!(
            matches!(
                err.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ),
            "unexpected kind {:?}",
            err.kind()
        );
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn reuseport_sockets_share_one_port() {
        let first = reuseport_socket("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = first.local_addr().unwrap();
        let second = reuseport_socket(addr).unwrap();
        assert_eq!(second.local_addr().unwrap(), addr);
        // A plain bind to the same port (no SO_REUSEPORT) must fail.
        assert!(UdpSocket::bind(addr).is_err());
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn reuseport_group_receives_every_datagram_exactly_once() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;

        let first = reuseport_socket("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = first.local_addr().unwrap();
        let second = reuseport_socket(addr).unwrap();
        let total = Arc::new(AtomicU64::new(0));

        let readers: Vec<_> = [first, second]
            .into_iter()
            .map(|socket| {
                socket
                    .set_read_timeout(Some(Duration::from_millis(100)))
                    .unwrap();
                let total = Arc::clone(&total);
                std::thread::spawn(move || {
                    let mut bufs = [[0u8; 64]; MAX_BATCH];
                    let mut out = Vec::new();
                    loop {
                        match recv_batch(&socket, &mut bufs, &mut out, None) {
                            Ok(n) => {
                                total.fetch_add(n as u64, Ordering::Relaxed);
                            }
                            Err(_) => return, // timeout: sender is done
                        }
                    }
                })
            })
            .collect();

        // Many distinct source sockets, so the 4-tuple hash spreads.
        const SENDERS: u64 = 8;
        const PER_SENDER: u64 = 20;
        for _ in 0..SENDERS {
            let s = UdpSocket::bind("127.0.0.1:0").unwrap();
            for i in 0..PER_SENDER {
                s.send_to(&[i as u8; 4], addr).unwrap();
            }
        }
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), SENDERS * PER_SENDER);
    }

    #[test]
    fn batch_stats_quantiles_and_savings() {
        let stats = BatchStats::new();
        // 3 receive calls moving 1, 4 and 16 datagrams.
        stats.record_recv(1);
        stats.record_recv(4);
        stats.record_recv(16);
        // One send call covering 10 datagrams in 1 syscall.
        stats.record_send(10, 1);
        assert_eq!(stats.recv_datagrams(), 21);
        assert_eq!(stats.recv_syscalls(), 3);
        // (21 - 3) recv + (10 - 1) send.
        assert_eq!(stats.syscalls_saved(), 27);
        assert_eq!(stats.recv_len_quantile(0.0), 1);
        assert_eq!(stats.recv_len_quantile(0.5), 4);
        assert_eq!(stats.recv_len_quantile(1.0), 16);
    }

    #[test]
    fn empty_batches_are_no_ops() {
        let (a, _b, _aa, ba) = pair();
        assert_eq!(send_batch(&a, &[], None).unwrap(), 0);
        let mut out = vec![RecvSlot { len: 1, peer: ba }];
        let mut bufs: [[u8; 8]; 0] = [];
        assert_eq!(recv_batch(&a, &mut bufs, &mut out, None).unwrap(), 0);
        assert!(out.is_empty(), "recv_batch must clear stale slots");
    }

    #[test]
    fn backend_native_matches_platform() {
        #[cfg(target_os = "linux")]
        assert_eq!(Backend::native(), Backend::Mmsg);
        #[cfg(not(target_os = "linux"))]
        assert_eq!(Backend::native(), Backend::Portable);
    }
}
