//! DNS substrate: round-robin answers, TTL caching, health-checked
//! failover.
//!
//! Janus uses DNS in three places (paper §II-A, §III-A, §III-C):
//!
//! 1. **DNS load balancing** — the Janus endpoint resolves to the request
//!    router fleet, and "with each DNS query request, the IP address
//!    sequence in the list is permuted".
//! 2. **Client-side caching** — "most operating systems cache DNS
//!    resolution results until the TTL expires", which pins each client to
//!    one router per TTL cycle and causes the skew the paper reports.
//! 3. **Failover records** — a master/slave QoS-server pair (and the
//!    Multi-AZ database) is one DNS name whose answer is the master while
//!    healthy, replaced by the slave on failure (the Route53 health-check
//!    mechanism).
//!
//! [`Zone`] is the authoritative server, [`Resolver`] the caching stub
//! resolver a client host runs. Records map names to socket addresses (see
//! the crate-level note on why ports are included).

use janus_clock::{Nanos, SharedClock};
use janus_types::{JanusError, Result};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A record set as returned by a zone query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsRecord {
    /// The queried name.
    pub name: String,
    /// Answer targets, already permuted for this query.
    pub targets: Vec<SocketAddr>,
    /// How long a resolver may cache this answer.
    pub ttl: Duration,
}

#[derive(Debug)]
enum RecordState {
    /// A plain multi-target record (DNS load balancing).
    RoundRobin {
        targets: Vec<SocketAddr>,
        rotation: u64,
    },
    /// A health-checked master/standby pair: answers contain only the
    /// active primary.
    Failover {
        primary: SocketAddr,
        standby: Option<SocketAddr>,
    },
}

#[derive(Debug)]
struct RecordEntry {
    state: RecordState,
    ttl: Duration,
}

/// An authoritative DNS zone.
#[derive(Debug, Default)]
pub struct Zone {
    records: Mutex<HashMap<String, RecordEntry>>,
}

impl Zone {
    /// An empty zone.
    pub fn new() -> Arc<Zone> {
        Arc::new(Zone::default())
    }

    /// Install (or replace) a round-robin record.
    pub fn insert(&self, name: &str, targets: Vec<SocketAddr>, ttl: Duration) {
        assert!(!targets.is_empty(), "record needs at least one target");
        self.records.lock().insert(
            name.to_string(),
            RecordEntry {
                state: RecordState::RoundRobin {
                    targets,
                    rotation: 0,
                },
                ttl,
            },
        );
    }

    /// Install (or replace) a failover record.
    pub fn insert_failover(
        &self,
        name: &str,
        primary: SocketAddr,
        standby: Option<SocketAddr>,
        ttl: Duration,
    ) {
        self.records.lock().insert(
            name.to_string(),
            RecordEntry {
                state: RecordState::Failover { primary, standby },
                ttl,
            },
        );
    }

    /// Remove a record. Returns true if it existed.
    pub fn remove(&self, name: &str) -> bool {
        self.records.lock().remove(name).is_some()
    }

    /// Authoritative query. Round-robin answers rotate one position per
    /// query; failover answers contain only the active primary.
    pub fn query(&self, name: &str) -> Result<DnsRecord> {
        let mut records = self.records.lock();
        let entry = records
            .get_mut(name)
            .ok_or_else(|| JanusError::dns(format!("NXDOMAIN: {name}")))?;
        let targets = match &mut entry.state {
            RecordState::RoundRobin { targets, rotation } => {
                let shift = (*rotation as usize) % targets.len();
                *rotation = rotation.wrapping_add(1);
                let mut permuted = Vec::with_capacity(targets.len());
                permuted.extend_from_slice(&targets[shift..]);
                permuted.extend_from_slice(&targets[..shift]);
                permuted
            }
            RecordState::Failover { primary, .. } => vec![*primary],
        };
        Ok(DnsRecord {
            name: name.to_string(),
            targets,
            ttl: entry.ttl,
        })
    }

    /// Promote the standby of a failover record: the standby address
    /// replaces the failed primary in subsequent answers (the paper's
    /// master/slave fail-over). Returns the new primary.
    ///
    /// Errors if the record does not exist, is not a failover record, or
    /// has no standby configured.
    pub fn promote_standby(&self, name: &str) -> Result<SocketAddr> {
        let mut records = self.records.lock();
        let entry = records
            .get_mut(name)
            .ok_or_else(|| JanusError::dns(format!("NXDOMAIN: {name}")))?;
        match &mut entry.state {
            RecordState::Failover { primary, standby } => match standby.take() {
                Some(next) => {
                    *primary = next;
                    Ok(next)
                }
                None => Err(JanusError::dns(format!("{name} has no standby to promote"))),
            },
            RecordState::RoundRobin { .. } => {
                Err(JanusError::dns(format!("{name} is not a failover record")))
            }
        }
    }

    /// Install a fresh standby on a failover record (after a promotion,
    /// "launch a new slave node to form a new master-slave pair").
    pub fn set_standby(&self, name: &str, standby: SocketAddr) -> Result<()> {
        let mut records = self.records.lock();
        let entry = records
            .get_mut(name)
            .ok_or_else(|| JanusError::dns(format!("NXDOMAIN: {name}")))?;
        match &mut entry.state {
            RecordState::Failover { standby: slot, .. } => {
                *slot = Some(standby);
                Ok(())
            }
            RecordState::RoundRobin { .. } => {
                Err(JanusError::dns(format!("{name} is not a failover record")))
            }
        }
    }

    /// Current active primary of a failover record (diagnostics).
    pub fn active_primary(&self, name: &str) -> Result<SocketAddr> {
        let records = self.records.lock();
        match records.get(name).map(|e| &e.state) {
            Some(RecordState::Failover { primary, .. }) => Ok(*primary),
            Some(_) => Err(JanusError::dns(format!("{name} is not a failover record"))),
            None => Err(JanusError::dns(format!("NXDOMAIN: {name}"))),
        }
    }
}

/// A caching stub resolver, one per client host.
///
/// Cached answers are returned *in cached order* until the TTL expires —
/// precisely the OS behaviour that makes DNS load balancing sticky within
/// a TTL cycle.
#[derive(Debug)]
pub struct Resolver {
    zone: Arc<Zone>,
    clock: SharedClock,
    cache: Mutex<HashMap<String, (Vec<SocketAddr>, Nanos)>>,
}

impl Resolver {
    /// A resolver against `zone` using `clock` for TTL expiry.
    pub fn new(zone: Arc<Zone>, clock: SharedClock) -> Resolver {
        Resolver {
            zone,
            clock,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// Resolve `name`, consulting the cache first.
    pub fn resolve(&self, name: &str) -> Result<Vec<SocketAddr>> {
        let now = self.clock.now();
        {
            let cache = self.cache.lock();
            if let Some((targets, expires)) = cache.get(name) {
                if now < *expires {
                    return Ok(targets.clone());
                }
            }
        }
        let record = self.zone.query(name)?;
        let expires = now + record.ttl;
        self.cache
            .lock()
            .insert(name.to_string(), (record.targets.clone(), expires));
        Ok(record.targets)
    }

    /// Resolve and take the first answer — "usually, the QoS client
    /// attempts to connect the request router with the first IP address
    /// returned from the DNS query" (paper §II-A).
    pub fn resolve_one(&self, name: &str) -> Result<SocketAddr> {
        Ok(self.resolve(name)?[0])
    }

    /// Drop all cached answers (e.g. after a known failover, or to model a
    /// host whose cache flushed).
    pub fn flush(&self) {
        self.cache.lock().clear();
    }
}

/// Handle to a spawned health monitor; dropping it stops the probes.
#[derive(Debug)]
pub struct HealthMonitor {
    stop: Arc<AtomicBool>,
}

impl HealthMonitor {
    /// Stop probing.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }
}

impl Drop for HealthMonitor {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
    }
}

/// Watch the active primary of failover record `name` by TCP-connecting to
/// `health_port_of(primary)` every `interval`; after `fail_threshold`
/// consecutive failures, promote the standby (Route53 health check + DNS
/// failover).
///
/// The probe target is derived from the record's data-plane address via
/// `health_addr`, because the QoS server's data port is UDP and cannot be
/// TCP-probed.
pub fn spawn_tcp_health_monitor(
    zone: Arc<Zone>,
    name: String,
    health_addr: impl Fn(SocketAddr) -> SocketAddr + Send + 'static,
    interval: Duration,
    fail_threshold: u32,
) -> HealthMonitor {
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    tokio::spawn(async move {
        let mut failures = 0u32;
        loop {
            if flag.load(Ordering::SeqCst) {
                return;
            }
            let primary = match zone.active_primary(&name) {
                Ok(p) => p,
                Err(_) => return,
            };
            let probe = health_addr(primary);
            let healthy = matches!(
                tokio::time::timeout(interval, tokio::net::TcpStream::connect(probe)).await,
                Ok(Ok(_))
            );
            if healthy {
                failures = 0;
            } else {
                failures += 1;
                if failures >= fail_threshold {
                    let _ = zone.promote_standby(&name);
                    failures = 0;
                }
            }
            tokio::time::sleep(interval).await;
        }
    });
    HealthMonitor { stop }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_clock::SimClock;

    fn addr(port: u16) -> SocketAddr {
        format!("127.0.0.1:{port}").parse().unwrap()
    }

    #[test]
    fn round_robin_permutes_per_query() {
        let zone = Zone::new();
        zone.insert(
            "janus.test",
            vec![addr(1), addr(2), addr(3)],
            Duration::from_secs(30),
        );
        let a = zone.query("janus.test").unwrap().targets;
        let b = zone.query("janus.test").unwrap().targets;
        let c = zone.query("janus.test").unwrap().targets;
        let d = zone.query("janus.test").unwrap().targets;
        assert_eq!(a, vec![addr(1), addr(2), addr(3)]);
        assert_eq!(b, vec![addr(2), addr(3), addr(1)]);
        assert_eq!(c, vec![addr(3), addr(1), addr(2)]);
        assert_eq!(d, a, "rotation should wrap");
    }

    #[test]
    fn first_answers_cycle_over_all_routers() {
        // Uncached clients hitting the zone directly spread across nodes.
        let zone = Zone::new();
        zone.insert(
            "janus.test",
            vec![addr(1), addr(2)],
            Duration::from_secs(30),
        );
        let firsts: Vec<_> = (0..4)
            .map(|_| zone.query("janus.test").unwrap().targets[0])
            .collect();
        assert_eq!(firsts, vec![addr(1), addr(2), addr(1), addr(2)]);
    }

    #[test]
    fn nxdomain_errors() {
        let zone = Zone::new();
        assert!(zone.query("missing.test").is_err());
    }

    #[test]
    fn resolver_caches_within_ttl() {
        let zone = Zone::new();
        zone.insert(
            "janus.test",
            vec![addr(1), addr(2)],
            Duration::from_secs(30),
        );
        let clock = Arc::new(SimClock::new());
        let resolver = Resolver::new(Arc::clone(&zone), clock.clone());

        let first = resolver.resolve("janus.test").unwrap();
        // Within the TTL every resolve returns the same (cached) answer:
        // the client is pinned to one router — the paper's skew mechanism.
        for _ in 0..10 {
            clock.advance(Duration::from_secs(2));
            assert_eq!(resolver.resolve("janus.test").unwrap(), first);
        }
        // Past the TTL the zone is re-queried and rotation shows.
        clock.advance(Duration::from_secs(30));
        let second = resolver.resolve("janus.test").unwrap();
        assert_ne!(second, first, "expected a rotated answer after TTL");
    }

    #[test]
    fn two_resolvers_get_different_routers() {
        // Two client hosts each cache a different permutation: DNS LB
        // spreads clients across routers even while each is pinned.
        let zone = Zone::new();
        zone.insert(
            "janus.test",
            vec![addr(1), addr(2)],
            Duration::from_secs(30),
        );
        let clock: SharedClock = Arc::new(SimClock::new());
        let host_a = Resolver::new(Arc::clone(&zone), Arc::clone(&clock));
        let host_b = Resolver::new(Arc::clone(&zone), clock);
        assert_ne!(
            host_a.resolve_one("janus.test").unwrap(),
            host_b.resolve_one("janus.test").unwrap()
        );
    }

    #[test]
    fn resolver_flush_forces_requery() {
        let zone = Zone::new();
        zone.insert(
            "janus.test",
            vec![addr(1), addr(2)],
            Duration::from_secs(3600),
        );
        let clock: SharedClock = Arc::new(SimClock::new());
        let resolver = Resolver::new(Arc::clone(&zone), clock);
        let first = resolver.resolve_one("janus.test").unwrap();
        resolver.flush();
        let second = resolver.resolve_one("janus.test").unwrap();
        assert_ne!(first, second);
    }

    #[test]
    fn failover_answers_primary_then_standby() {
        let zone = Zone::new();
        zone.insert_failover(
            "qos-1.test",
            addr(10),
            Some(addr(11)),
            Duration::from_secs(5),
        );
        assert_eq!(zone.query("qos-1.test").unwrap().targets, vec![addr(10)]);
        assert_eq!(zone.active_primary("qos-1.test").unwrap(), addr(10));

        let promoted = zone.promote_standby("qos-1.test").unwrap();
        assert_eq!(promoted, addr(11));
        assert_eq!(zone.query("qos-1.test").unwrap().targets, vec![addr(11)]);

        // No standby left until a replacement is installed.
        assert!(zone.promote_standby("qos-1.test").is_err());
        zone.set_standby("qos-1.test", addr(12)).unwrap();
        assert_eq!(zone.promote_standby("qos-1.test").unwrap(), addr(12));
    }

    #[test]
    fn failover_ops_reject_round_robin_records() {
        let zone = Zone::new();
        zone.insert("rr.test", vec![addr(1)], Duration::from_secs(5));
        assert!(zone.promote_standby("rr.test").is_err());
        assert!(zone.set_standby("rr.test", addr(2)).is_err());
        assert!(zone.active_primary("rr.test").is_err());
    }

    #[tokio::test]
    async fn health_monitor_promotes_on_dead_primary() {
        // Primary "health port" is a dead socket; standby should be
        // promoted after the failure threshold.
        let dead = tokio::net::TcpListener::bind(("127.0.0.1", 0))
            .await
            .unwrap();
        let dead_addr = dead.local_addr().unwrap();
        drop(dead);

        let zone = Zone::new();
        zone.insert_failover(
            "qos-0.test",
            dead_addr,
            Some(addr(999)),
            Duration::from_secs(1),
        );
        let _monitor = spawn_tcp_health_monitor(
            Arc::clone(&zone),
            "qos-0.test".to_string(),
            |primary| primary,
            Duration::from_millis(10),
            3,
        );
        // Wait up to 2 s for promotion.
        for _ in 0..200 {
            if zone.active_primary("qos-0.test").unwrap() == addr(999) {
                return;
            }
            tokio::time::sleep(Duration::from_millis(10)).await;
        }
        panic!("standby was never promoted");
    }

    #[tokio::test]
    async fn health_monitor_leaves_healthy_primary_alone() {
        let listener = tokio::net::TcpListener::bind(("127.0.0.1", 0))
            .await
            .unwrap();
        let healthy_addr = listener.local_addr().unwrap();
        tokio::spawn(async move {
            loop {
                let _ = listener.accept().await;
            }
        });
        let zone = Zone::new();
        zone.insert_failover(
            "qos-0.test",
            healthy_addr,
            Some(addr(999)),
            Duration::from_secs(1),
        );
        let _monitor = spawn_tcp_health_monitor(
            Arc::clone(&zone),
            "qos-0.test".to_string(),
            |primary| primary,
            Duration::from_millis(10),
            3,
        );
        tokio::time::sleep(Duration::from_millis(200)).await;
        assert_eq!(zone.active_primary("qos-0.test").unwrap(), healthy_addr);
    }

    #[test]
    #[should_panic(expected = "at least one target")]
    fn empty_record_panics() {
        let zone = Zone::new();
        zone.insert("empty.test", vec![], Duration::from_secs(1));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn addrs(n: usize) -> Vec<SocketAddr> {
        (0..n)
            .map(|i| format!("127.0.0.1:{}", 1000 + i).parse().unwrap())
            .collect()
    }

    proptest! {
        /// Every answer is a permutation of the full target set — DNS
        /// round robin reorders, never drops or duplicates.
        #[test]
        fn answers_are_permutations(n in 1usize..20, queries in 1usize..50) {
            let zone = Zone::new();
            let targets = addrs(n);
            zone.insert("x.test", targets.clone(), Duration::from_secs(1));
            let mut expected: Vec<_> = targets.clone();
            expected.sort();
            for _ in 0..queries {
                let mut answer = zone.query("x.test").unwrap().targets;
                prop_assert_eq!(answer.len(), n);
                answer.sort();
                prop_assert_eq!(&answer, &expected);
            }
        }

        /// First answers cycle through all targets with period n: after
        /// k·n queries every target led exactly k times.
        #[test]
        fn rotation_is_fair(n in 1usize..12, rounds in 1usize..5) {
            let zone = Zone::new();
            zone.insert("x.test", addrs(n), Duration::from_secs(1));
            let mut firsts = std::collections::HashMap::new();
            for _ in 0..n * rounds {
                let first = zone.query("x.test").unwrap().targets[0];
                *firsts.entry(first).or_insert(0usize) += 1;
            }
            prop_assert_eq!(firsts.len(), n);
            prop_assert!(firsts.values().all(|&c| c == rounds));
        }

        /// A resolver never fabricates targets and always answers from
        /// the record, whatever the interleaving of advances and queries.
        #[test]
        fn resolver_answers_subset_of_zone(
            n in 1usize..8,
            script in proptest::collection::vec(0u64..90, 1..40),
        ) {
            let zone = Zone::new();
            let targets = addrs(n);
            zone.insert("x.test", targets.clone(), Duration::from_secs(60));
            let clock = Arc::new(janus_clock::SimClock::new());
            let resolver = Resolver::new(Arc::clone(&zone), clock.clone());
            for advance_secs in script {
                clock.advance(Duration::from_secs(advance_secs));
                let answer = resolver.resolve("x.test").unwrap();
                prop_assert_eq!(answer.len(), n);
                for a in answer {
                    prop_assert!(targets.contains(&a));
                }
            }
        }
    }
}
