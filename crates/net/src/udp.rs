//! The router ⇄ QoS-server UDP exchange.
//!
//! "For performance considerations, the request router uses UDP instead of
//! TCP to communicate with the QoS server ... we use a 100-microsecond
//! communication timeout and a maximum number of 5 retries." (paper
//! §III-B). [`UdpRpcClient`] implements exactly that client discipline;
//! [`UdpServerSocket`] is the server side, a thin wrapper that applies
//! fault injection and decodes frames.
//!
//! Retries create a correctness wrinkle the request id solves: a response
//! to attempt 1 may arrive while the client is already waiting on attempt
//! 2. The client accepts any response whose id matches the request and
//! discards the rest, so duplicated server work never corrupts a result
//! (the bucket is charged twice, which errs on the conservative side —
//! admission control may only undercount credit, never oversell).

use crate::attempt::{AttemptPlan, AttemptStep};
use crate::fault::{DeliverySchedule, Fate, FaultPlan};
use crate::latency::WireDiscipline;
use bytes::Bytes;
use janus_clock::Nanos;
use janus_types::codec::{self, Frame, MAX_FRAME_BYTES};
use janus_types::{JanusError, QosRequest, QosResponse, Result};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tokio::net::UdpSocket;

/// Process-global sequence hashed through [`janus_hash::mix64`] wherever
/// the transport needs an arbitrary draw (retry jitter, attempt nonces).
/// Replaces the external `rand` thread-RNG: unpredictable enough to
/// decorrelate retries and to make nonce collisions across routers
/// vanishingly rare, with no dependency beyond the workspace.
static DRAW_SEQ: AtomicU64 = AtomicU64::new(0x9E37_79B9_7F4A_7C15);

fn draw_u64() -> u64 {
    janus_hash::mix64(DRAW_SEQ.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed))
}

/// Draw a fresh attempt nonce for one logical request.
pub(crate) fn fresh_nonce() -> u32 {
    draw_u64() as u32
}

/// How long to pause before each retry attempt.
///
/// The paper's discipline retries immediately after the 100 µs per-attempt
/// timeout elapses ([`RetryBackoff::Fixed`], the default). Under a
/// correlated brownout — a rebooting partition, a saturated NIC queue —
/// immediate retries from every router arrive in lockstep and prolong the
/// brownout they are reacting to. [`RetryBackoff::ExponentialJitter`]
/// decorrelates them: retry `k` sleeps a uniformly random duration in
/// `[0, min(base · 2^(k−1), cap)]` first (AWS-style "full jitter").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RetryBackoff {
    /// Paper-faithful: no pause between retries beyond the per-attempt
    /// timeout itself.
    #[default]
    Fixed,
    /// Jittered exponential backoff between retries.
    ExponentialJitter {
        /// Ceiling of the first retry's jitter window.
        base: Duration,
        /// Upper bound the window never exceeds, however many retries.
        cap: Duration,
    },
}

impl RetryBackoff {
    /// The pause before retry attempt `attempt` (1 = first retry).
    /// Attempt 0 — the initial send — never waits.
    pub fn delay_before(&self, attempt: u32) -> Duration {
        match *self {
            RetryBackoff::Fixed => Duration::ZERO,
            RetryBackoff::ExponentialJitter { base, cap } => {
                if attempt == 0 {
                    return Duration::ZERO;
                }
                let doublings = (attempt - 1).min(20);
                let window = base.saturating_mul(1u32 << doublings).min(cap).as_nanos() as u64;
                if window == 0 {
                    return Duration::ZERO;
                }
                Duration::from_nanos(draw_u64() % (window + 1))
            }
        }
    }

    /// The worst pause this policy can impose before retry `attempt`.
    pub fn max_delay_before(&self, attempt: u32) -> Duration {
        match *self {
            RetryBackoff::Fixed => Duration::ZERO,
            RetryBackoff::ExponentialJitter { base, cap } => {
                if attempt == 0 {
                    return Duration::ZERO;
                }
                let doublings = (attempt - 1).min(20);
                base.saturating_mul(1u32 << doublings).min(cap)
            }
        }
    }
}

/// Client-side retry discipline.
#[derive(Debug, Clone)]
pub struct UdpRpcConfig {
    /// Per-attempt wait for a response. Paper value: 100 µs.
    pub timeout: Duration,
    /// Retries after the first attempt. Paper value: 5.
    pub max_retries: u32,
    /// Pause policy between retries. Paper value: none ([`RetryBackoff::Fixed`]).
    pub backoff: RetryBackoff,
    /// Propagate the retry budget end to end: stamp every attempt with
    /// the remaining deadline (total budget = [`UdpRpcConfig::worst_case`],
    /// or the caller's pre-stamped budget) and a per-logical-request
    /// nonce, and stop retrying once the budget is spent. Servers use the
    /// budget to shed work nobody is waiting for and the nonce to answer
    /// duplicate attempts from a cached verdict instead of charging the
    /// bucket twice. Off by default — the paper's discipline sends plain
    /// frames, and old servers drop the deadline frame kind as garbage
    /// (the final attempt always falls back to a legacy frame so at least
    /// one attempt reaches an old peer).
    pub stamp_deadlines: bool,
    /// Local address each per-call socket binds before connecting.
    /// Historically hard-coded to loopback, which made every deployment
    /// loopback-only; multi-host routers set an unspecified or
    /// interface-specific address here. Port 0 (ephemeral) is almost
    /// always right.
    pub bind_addr: SocketAddr,
}

impl Default for UdpRpcConfig {
    fn default() -> Self {
        UdpRpcConfig {
            timeout: Duration::from_micros(100),
            max_retries: 5,
            backoff: RetryBackoff::Fixed,
            stamp_deadlines: false,
            bind_addr: SocketAddr::from(([127, 0, 0, 1], 0)),
        }
    }
}

impl UdpRpcConfig {
    /// Total attempts (first try + retries).
    pub fn attempts(&self) -> u32 {
        1 + self.max_retries
    }

    /// Worst-case time spent before giving up, including the worst draw
    /// of every backoff pause.
    pub fn worst_case(&self) -> Duration {
        let mut total = self.timeout * self.attempts();
        for attempt in 1..self.attempts() {
            total += self.backoff.max_delay_before(attempt);
        }
        total
    }

    /// A looser discipline for loopback test environments where the
    /// scheduler may not wake a task within 100 µs (real kernels and the
    /// paper's LAN both do better than a busy CI box).
    pub fn lan_defaults() -> Self {
        UdpRpcConfig {
            timeout: Duration::from_millis(20),
            ..Default::default()
        }
    }
}

/// One queued out-of-band transmission: a duplicate's second copy or a
/// deferred (reordered) datagram.
#[derive(Debug)]
struct OobSend {
    socket: Arc<UdpSocket>,
    wire: Bytes,
    /// `None` sends on the connected socket, `Some` via `send_to`.
    peer: Option<SocketAddr>,
}

/// The out-of-band delivery queue behind every fault-injecting transport.
///
/// Duplicate and deferred copies used to leave from ad-hoc spawned tasks
/// racing wall-clock sleeps — unobservable and unreproducible. Now every
/// such copy is *data* in a [`DeliverySchedule`] keyed by absolute due
/// time: the spawned task is only a best-effort wakeup that drains
/// whatever is due, in `(due, seq)` order. The deterministic simulator
/// uses the same schedule type against its virtual clock and drains at
/// exactly the due tick.
#[derive(Debug)]
pub struct OobDelivery {
    schedule: DeliverySchedule<OobSend>,
}

impl Default for OobDelivery {
    fn default() -> Self {
        Self::new()
    }
}

impl OobDelivery {
    /// An empty queue.
    pub fn new() -> Self {
        OobDelivery {
            schedule: DeliverySchedule::new(),
        }
    }

    fn now_nanos() -> u64 {
        use std::time::{SystemTime, UNIX_EPOCH};
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0)
    }

    /// Copies still queued (diagnostics).
    pub fn queued(&self) -> usize {
        self.schedule.len()
    }

    /// Queue one copy to leave after `delay` and arm a wakeup to drain it.
    pub(crate) fn transmit_after(
        self: &Arc<Self>,
        delay: Duration,
        socket: Arc<UdpSocket>,
        wire: Bytes,
        peer: Option<SocketAddr>,
    ) {
        let due = Self::now_nanos().saturating_add(delay.as_nanos() as u64);
        self.schedule.schedule(due, OobSend { socket, wire, peer });
        let this = Arc::clone(self);
        tokio::spawn(async move {
            if !delay.is_zero() {
                tokio::time::sleep(delay).await;
            }
            this.drain_due().await;
        });
    }

    /// Transmit every queued copy whose due time has passed, in
    /// `(due, seq)` order.
    async fn drain_due(&self) {
        while let Some((_, send)) = self.schedule.pop_due(Self::now_nanos()) {
            match send.peer {
                Some(peer) => {
                    let _ = send.socket.send_to(&send.wire, peer).await;
                }
                None => {
                    let _ = send.socket.send(&send.wire).await;
                }
            }
        }
    }
}

/// The request-router side of the admission RPC.
///
/// Each call binds a fresh ephemeral socket — mirroring the paper's PHP
/// router, which opens a socket per request — so concurrent calls never
/// share state and response demultiplexing is trivial.
#[derive(Debug, Clone)]
pub struct UdpRpcClient {
    config: UdpRpcConfig,
    faults: Arc<FaultPlan>,
    oob: Arc<OobDelivery>,
}

impl UdpRpcClient {
    /// A client with the given retry discipline and no fault injection.
    pub fn new(config: UdpRpcConfig) -> Self {
        UdpRpcClient {
            config,
            faults: FaultPlan::none(),
            oob: Arc::new(OobDelivery::new()),
        }
    }

    /// A client whose *outgoing* datagrams pass through `faults`.
    pub fn with_faults(config: UdpRpcConfig, faults: Arc<FaultPlan>) -> Self {
        UdpRpcClient {
            config,
            faults,
            oob: Arc::new(OobDelivery::new()),
        }
    }

    /// The configured discipline.
    pub fn config(&self) -> &UdpRpcConfig {
        &self.config
    }

    /// Perform one admission exchange with the QoS server at `server`.
    ///
    /// Returns the verdict, or [`JanusError::Timeout`] once the retry
    /// budget is exhausted (the router then substitutes its default
    /// reply).
    ///
    /// A hint-soliciting request is downgraded to the plain frame on
    /// retries: a hint-unaware server drops the unknown frame kind as
    /// garbage, so the fallback costs at most one lost attempt against an
    /// old peer and nothing against a new one.
    ///
    /// With [`UdpRpcConfig::stamp_deadlines`] on, every attempt but the
    /// last carries the remaining budget and the logical request's nonce
    /// (deadline frame kind); the final attempt downgrades to a legacy
    /// frame so a deadline-unaware server still sees one attempt it
    /// understands. Retrying stops early once the budget is spent —
    /// nobody is waiting for a later answer.
    pub async fn call(&self, server: SocketAddr, request: &QosRequest) -> Result<QosResponse> {
        self.call_disciplined(server, request, &WireDiscipline::default())
            .await
    }

    /// [`call`](Self::call) with the gray-failure discipline applied
    /// (DESIGN.md ablation 15): an adaptively-derived per-attempt
    /// timeout, an optional same-nonce hedge after
    /// [`WireDiscipline::hedge_delay`], retries and hedges gated by the
    /// shared [`crate::latency::RetryBudget`], and per-attempt RTTs
    /// recorded into the caller's latency window. The default
    /// (all-`None`) discipline reproduces [`call`](Self::call) exactly.
    pub async fn call_disciplined(
        &self,
        server: SocketAddr,
        request: &QosRequest,
        discipline: &WireDiscipline,
    ) -> Result<QosResponse> {
        let socket = Arc::new(UdpSocket::bind(self.config.bind_addr).await?);
        socket.connect(server).await?;
        let attempts = self.config.attempts();
        // The sans-IO attempt schedule: which frame each attempt sends,
        // and when the budget cuts retries short, is decided by
        // [`AttemptPlan`] — the same core the deterministic simulator
        // drives. This shell only supplies the clock (monotonic elapsed
        // time since the call began) and moves bytes. A caller-stamped
        // request pins both the budget and the nonce (the router stamps
        // from its retry schedule); otherwise the budget is this
        // discipline's worst case and the nonce is drawn fresh.
        let plan = if self.config.stamp_deadlines {
            let (total, nonce) = match request.attempt {
                Some(meta) => (Duration::from_micros(u64::from(meta.budget_us)), meta.nonce),
                None => (self.config.worst_case(), fresh_nonce()),
            };
            AttemptPlan::stamped(request.clone(), attempts, Nanos::ZERO, total, nonce)
        } else {
            AttemptPlan::plain(request.clone(), attempts)
        };
        let timeout = discipline.timeout.unwrap_or(self.config.timeout);
        if let (Some(stats), Some(t)) = (&discipline.stats, discipline.timeout) {
            stats
                .adaptive_timeout_us
                .store(t.as_micros() as u64, Ordering::Relaxed);
        }
        let started = std::time::Instant::now();
        let mut buf = vec![0u8; MAX_FRAME_BYTES];
        let mut attempted = 0u32;

        'attempts: for attempt in 0..attempts {
            if attempt > 0 {
                // Retries draw from the shared budget first: a refusal
                // means the fleet is already amplifying, and this call
                // settles for the router default instead of adding load.
                if let Some(budget) = &discipline.budget {
                    if !budget.try_withdraw() {
                        break;
                    }
                }
                let now = Nanos::from_nanos(started.elapsed().as_nanos() as u64);
                // Clamped: a jittered backoff must never sleep past the
                // point where `BudgetSpent` stops the call.
                let pause = plan.clamped_pause(self.config.backoff.delay_before(attempt), now);
                if !pause.is_zero() {
                    tokio::time::sleep(pause).await;
                }
            } else if let Some(budget) = &discipline.budget {
                budget.deposit();
            }
            let now = Nanos::from_nanos(started.elapsed().as_nanos() as u64);
            let datagram: Bytes = match plan.request_for(attempt, now) {
                AttemptStep::Send(frame) => codec::encode_request(&frame),
                // Budget spent: the caller's deadline passed, so further
                // retries would only add load.
                AttemptStep::BudgetSpent => break,
            };
            attempted += 1;
            let sent = std::time::Instant::now();
            self.send_with_faults(&socket, datagram).await?;
            let mut remaining = timeout;
            let mut hedged = false;
            loop {
                // An armed hedge splits the attempt's wait in two: fire
                // the duplicate at the learned-tail delay, then wait out
                // the rest of the timeout for whichever copy answers
                // first.
                let phase = match discipline.hedge_delay {
                    Some(delay) if !hedged && delay < remaining => delay,
                    _ => remaining,
                };
                match tokio::time::timeout(phase, socket.recv(&mut buf)).await {
                    Ok(Ok(len)) => match codec::decode(&buf[..len]) {
                        Ok(Frame::Response(resp)) if resp.id == request.id => {
                            if let Some(rtt) = &discipline.rtt {
                                rtt.record(sent.elapsed().as_micros() as u64);
                            }
                            if hedged {
                                if let Some(stats) = &discipline.stats {
                                    stats.hedge_wins.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            return Ok(resp);
                        }
                        // Stale response from an earlier attempt of another
                        // logical request on a reused port, or garbage:
                        // ignore and fall through to a retry.
                        _ => continue 'attempts,
                    },
                    Ok(Err(e)) => return Err(e.into()),
                    Err(_elapsed) if !hedged && phase < remaining => {
                        hedged = true;
                        remaining -= phase;
                        // Slower than the partition's learned tail:
                        // re-present the *same* nonce (the dedup window
                        // makes the losing copy a cached duplicate, so
                        // the pair consumes one credit), budget
                        // permitting.
                        let now = Nanos::from_nanos(started.elapsed().as_nanos() as u64);
                        let funded = discipline
                            .budget
                            .as_ref()
                            .map_or(true, |budget| budget.try_withdraw());
                        if funded {
                            if let Some(frame) = plan.hedge_for(attempt, now) {
                                self.send_with_faults(&socket, codec::encode_request(&frame))
                                    .await?;
                                if let Some(stats) = &discipline.stats {
                                    stats.hedges_sent.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                    }
                    Err(_elapsed) => continue 'attempts,
                }
            }
        }
        Err(JanusError::Timeout {
            attempts: attempted,
        })
    }

    async fn send_with_faults(&self, socket: &Arc<UdpSocket>, wire: Bytes) -> Result<()> {
        match self.faults.judge_fate() {
            Fate::Drop => Ok(()), // dropped: pretend it left, like a real network
            Fate::Deliver(delay) => {
                if !delay.is_zero() {
                    tokio::time::sleep(delay).await;
                }
                socket.send(&wire).await?;
                Ok(())
            }
            Fate::Duplicate(delay) => {
                socket.send(&wire).await?;
                self.oob
                    .transmit_after(delay, Arc::clone(socket), wire, None);
                Ok(())
            }
            Fate::Defer(delay) => {
                // Only the delivery is delayed (out-of-band): datagrams
                // sent after this one overtake it, i.e. reordering.
                self.oob
                    .transmit_after(delay, Arc::clone(socket), wire, None);
                Ok(())
            }
        }
    }
}

/// Receive-buffer size: must hold the largest batch datagram (plus one
/// byte so oversize datagrams are detectably truncated and rejected).
/// Public so alternative data planes (`janus-server`'s per-core socket
/// workers) size their scratch buffers identically.
pub const RECV_BUF_BYTES: usize = if codec::MAX_DATAGRAM_BYTES > MAX_FRAME_BYTES {
    codec::MAX_DATAGRAM_BYTES + 1
} else {
    MAX_FRAME_BYTES + 1
};

/// The QoS-server side: a bound socket that receives admission requests
/// and sends responses, with fault injection on the response path.
///
/// Understands both wire formats: legacy single-frame datagrams and the
/// batched format (`Frame::Batch`). A batch datagram is split into
/// individual requests in an internal pending queue, so callers keep the
/// one-request-at-a-time API regardless of how the router packed them.
#[derive(Debug)]
pub struct UdpServerSocket {
    socket: Arc<UdpSocket>,
    faults: Arc<FaultPlan>,
    /// Recycles the per-`recv_request` scratch buffer (the QoS server
    /// shares its pool here so recycle hits surface in `ServerStats`).
    pool: Arc<crate::buffer_pool::BufferPool>,
    /// Requests decoded from a batch datagram but not yet handed out.
    pending: parking_lot::Mutex<std::collections::VecDeque<(QosRequest, SocketAddr)>>,
    /// Move whole batches of datagrams per syscall with
    /// `recvmmsg`/`sendmmsg`. Ignored off Linux — the plain paths are
    /// byte-identical, one syscall per datagram.
    #[cfg_attr(not(target_os = "linux"), allow(dead_code))]
    batched: bool,
    /// Syscall-amortization counters, shared with the owning server's
    /// `ServerStats`.
    #[cfg_attr(not(target_os = "linux"), allow(dead_code))]
    mmsg: Arc<crate::mmsg::BatchStats>,
    /// Out-of-band queue for duplicate/deferred response copies.
    oob: Arc<OobDelivery>,
}

impl UdpServerSocket {
    /// Bind to an ephemeral loopback port.
    pub async fn bind_ephemeral() -> Result<Self> {
        Self::bind_with_faults(FaultPlan::none()).await
    }

    /// Bind with response-path fault injection.
    pub async fn bind_with_faults(faults: Arc<FaultPlan>) -> Result<Self> {
        Self::bind_with_pool(faults, Arc::new(crate::buffer_pool::BufferPool::new())).await
    }

    /// Bind with fault injection and a caller-shared buffer pool (so the
    /// caller can read the recycle counters).
    pub async fn bind_with_pool(
        faults: Arc<FaultPlan>,
        pool: Arc<crate::buffer_pool::BufferPool>,
    ) -> Result<Self> {
        Self::bind_with_options(
            SocketAddr::from(([127, 0, 0, 1], 0)),
            faults,
            pool,
            false,
            Arc::new(crate::mmsg::BatchStats::new()),
        )
        .await
    }

    /// Fully-specified bind: address (port 0 = ephemeral), fault plan,
    /// shared buffer pool, batched-syscall mode, and the counters the
    /// batched paths report into.
    pub async fn bind_with_options(
        bind_addr: SocketAddr,
        faults: Arc<FaultPlan>,
        pool: Arc<crate::buffer_pool::BufferPool>,
        batched: bool,
        mmsg: Arc<crate::mmsg::BatchStats>,
    ) -> Result<Self> {
        let socket = Arc::new(UdpSocket::bind(bind_addr).await?);
        Ok(UdpServerSocket {
            socket,
            faults,
            pool,
            pending: parking_lot::Mutex::new(std::collections::VecDeque::new()),
            batched,
            mmsg,
            oob: Arc::new(OobDelivery::new()),
        })
    }

    /// The bound address (hand this to routers / the DNS zone).
    pub fn local_addr(&self) -> Result<SocketAddr> {
        Ok(self.socket.local_addr()?)
    }

    /// Decode a datagram and queue every request it carries. Malformed
    /// datagrams and response frames are skipped, never fatal — a public
    /// UDP port must tolerate garbage.
    fn queue_datagram(&self, data: &[u8], peer: SocketAddr) {
        if let Ok(frames) = codec::decode_all(data) {
            let mut pending = self.pending.lock();
            for frame in frames {
                if let Frame::Request(req) = frame {
                    pending.push_back((req, peer));
                }
            }
        }
    }

    /// Receive the next well-formed admission request.
    pub async fn recv_request(&self) -> Result<(QosRequest, SocketAddr)> {
        #[cfg(target_os = "linux")]
        if self.batched {
            return self.recv_request_batched().await;
        }
        // Recycled scratch buffer: steady state, this listener loop makes
        // zero heap allocations per datagram.
        let mut buf = self.pool.acquire(RECV_BUF_BYTES);
        loop {
            if let Some(item) = self.pending.lock().pop_front() {
                return Ok(item);
            }
            let (len, peer) = self.socket.recv_from(&mut buf).await?;
            self.queue_datagram(&buf[..len], peer);
        }
    }

    /// Batched receive: one `recvmmsg` drains up to a whole batch of
    /// datagrams per kernel crossing. `async_io` runs the non-blocking
    /// call under tokio's readiness tracking — a `WouldBlock` clears
    /// readiness and re-awaits, so this never busy-spins.
    #[cfg(target_os = "linux")]
    async fn recv_request_batched(&self) -> Result<(QosRequest, SocketAddr)> {
        use std::os::fd::AsRawFd;
        use tokio::io::Interest;

        let mut bufs: Vec<crate::buffer_pool::PooledBuf> = (0..crate::mmsg::MAX_BATCH)
            .map(|_| self.pool.acquire(RECV_BUF_BYTES))
            .collect();
        let mut slots: Vec<crate::mmsg::RecvSlot> = Vec::with_capacity(crate::mmsg::MAX_BATCH);
        loop {
            if let Some(item) = self.pending.lock().pop_front() {
                return Ok(item);
            }
            let fd = self.socket.as_raw_fd();
            self.socket
                .async_io(Interest::READABLE, || {
                    crate::mmsg::recv_batch_nonblocking(fd, &mut bufs, &mut slots, Some(&self.mmsg))
                })
                .await?;
            for (buf, slot) in bufs.iter().zip(slots.iter()) {
                self.queue_datagram(&buf[..slot.len], slot.peer);
            }
        }
    }

    /// Pop an immediately-available request without awaiting: a queued
    /// batch item, or a datagram the kernel already holds. `None` when
    /// nothing is ready right now — the listener goes back to sleep.
    pub fn try_recv_request(&self) -> Option<(QosRequest, SocketAddr)> {
        #[cfg(target_os = "linux")]
        if self.batched {
            return self.try_recv_request_batched();
        }
        let mut buf = [0u8; RECV_BUF_BYTES];
        loop {
            if let Some(item) = self.pending.lock().pop_front() {
                return Some(item);
            }
            match self.socket.try_recv_from(&mut buf) {
                Ok((len, peer)) => self.queue_datagram(&buf[..len], peer),
                Err(_) => return None,
            }
        }
    }

    /// `try_recv_request` over `recvmmsg`: the listener's drain loop
    /// pulls whole batches per crossing instead of one datagram each.
    /// `try_io` returns `WouldBlock` (→ `None`) without the syscall when
    /// tokio already knows the socket is idle.
    #[cfg(target_os = "linux")]
    fn try_recv_request_batched(&self) -> Option<(QosRequest, SocketAddr)> {
        use std::os::fd::AsRawFd;
        use tokio::io::Interest;

        let mut bufs: Vec<crate::buffer_pool::PooledBuf> = (0..crate::mmsg::MAX_BATCH)
            .map(|_| self.pool.acquire(RECV_BUF_BYTES))
            .collect();
        let mut slots: Vec<crate::mmsg::RecvSlot> = Vec::with_capacity(crate::mmsg::MAX_BATCH);
        loop {
            if let Some(item) = self.pending.lock().pop_front() {
                return Some(item);
            }
            let fd = self.socket.as_raw_fd();
            match self.socket.try_io(Interest::READABLE, || {
                crate::mmsg::recv_batch_nonblocking(fd, &mut bufs, &mut slots, Some(&self.mmsg))
            }) {
                Ok(_) => {
                    for (buf, slot) in bufs.iter().zip(slots.iter()) {
                        self.queue_datagram(&buf[..slot.len], slot.peer);
                    }
                }
                Err(_) => return None,
            }
        }
    }

    /// Send a response back to `peer`. "The worker thread does not care
    /// about whether the request router receives the response or not"
    /// (paper §III-C) — so loss injection silently eats it, as the real
    /// network would.
    pub async fn send_response(&self, response: &QosResponse, peer: SocketAddr) -> Result<()> {
        self.deliver(codec::encode_response(response), peer).await
    }

    /// Send a group of responses to one peer, coalesced into as few
    /// datagrams as the size budget allows. Fault injection applies per
    /// datagram (a dropped datagram loses the whole batch, exactly like a
    /// real network would).
    pub async fn send_responses(&self, responses: &[QosResponse], peer: SocketAddr) -> Result<()> {
        if responses.len() == 1 {
            return self.send_response(&responses[0], peer).await;
        }
        let frames: Vec<Frame> = responses.iter().map(|r| Frame::Response(*r)).collect();
        for wire in codec::encode_batch(&frames) {
            self.deliver(wire, peer).await?;
        }
        Ok(())
    }

    /// Send every peer's response group, draining `groups`. The plain
    /// path is [`UdpServerSocket::send_responses`] per peer (one
    /// `sendto` per datagram); with batched syscalls on, every
    /// cleanly-delivered datagram across *all* peers goes out through
    /// one `sendmmsg` — cross-peer syscall amortization the per-peer
    /// API cannot express.
    pub async fn send_response_groups(
        &self,
        groups: &mut Vec<(SocketAddr, Vec<QosResponse>)>,
    ) -> Result<()> {
        #[cfg(target_os = "linux")]
        if self.batched {
            return self.send_response_groups_batched(groups).await;
        }
        for (peer, responses) in groups.drain(..) {
            self.send_responses(&responses, peer).await?;
        }
        Ok(())
    }

    /// The `sendmmsg` flush. Fault injection still applies per datagram
    /// *before* batching: clean immediate deliveries join the batch,
    /// every other fate (drop, delay, duplicate, defer) takes the exact
    /// same path as the unbatched plane, so fault-plan semantics are
    /// invariant under socket mode.
    #[cfg(target_os = "linux")]
    async fn send_response_groups_batched(
        &self,
        groups: &mut Vec<(SocketAddr, Vec<QosResponse>)>,
    ) -> Result<()> {
        use std::os::fd::AsRawFd;
        use tokio::io::Interest;

        let mut ready: Vec<(Bytes, SocketAddr)> = Vec::new();
        for (peer, responses) in groups.drain(..) {
            let wires = if responses.len() == 1 {
                vec![codec::encode_response(&responses[0])]
            } else {
                let frames: Vec<Frame> = responses.iter().map(|r| Frame::Response(*r)).collect();
                codec::encode_batch(&frames)
            };
            for wire in wires {
                match self.faults.judge_fate() {
                    Fate::Deliver(delay) if delay.is_zero() => ready.push((wire, peer)),
                    fate => self.deliver_with_fate(fate, wire, peer).await?,
                }
            }
        }
        if ready.is_empty() {
            return Ok(());
        }
        let msgs: Vec<(&[u8], SocketAddr)> = ready.iter().map(|(w, p)| (w.as_ref(), *p)).collect();
        let fd = self.socket.as_raw_fd();
        // Partial progress before a full send-buffer is reported as Ok:
        // a datagram the kernel refused is indistinguishable from one
        // the network dropped, and the router's retry covers both.
        self.socket
            .async_io(Interest::WRITABLE, || {
                crate::mmsg::send_batch_nonblocking(fd, &msgs, Some(&self.mmsg)).map(|_| ())
            })
            .await?;
        Ok(())
    }

    /// Transmit one datagram to `peer` through the fault plan. Duplicate
    /// and deferred copies drain from the out-of-band delivery queue so
    /// the caller never blocks beyond an inline delay fate.
    async fn deliver(&self, wire: Bytes, peer: SocketAddr) -> Result<()> {
        let fate = self.faults.judge_fate();
        self.deliver_with_fate(fate, wire, peer).await
    }

    /// [`UdpServerSocket::deliver`] with the fate already rolled — the
    /// batched flush rolls fates itself so clean deliveries can join
    /// one `sendmmsg`.
    async fn deliver_with_fate(&self, fate: Fate, wire: Bytes, peer: SocketAddr) -> Result<()> {
        match fate {
            Fate::Drop => Ok(()),
            Fate::Deliver(delay) => {
                if !delay.is_zero() {
                    tokio::time::sleep(delay).await;
                }
                self.socket.send_to(&wire, peer).await?;
                Ok(())
            }
            Fate::Duplicate(delay) => {
                self.socket.send_to(&wire, peer).await?;
                self.oob
                    .transmit_after(delay, Arc::clone(&self.socket), wire, Some(peer));
                Ok(())
            }
            Fate::Defer(delay) => {
                self.oob
                    .transmit_after(delay, Arc::clone(&self.socket), wire, Some(peer));
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_types::{QosKey, Verdict};

    fn request(id: u64) -> QosRequest {
        QosRequest::new(id, QosKey::new("tenant").unwrap())
    }

    /// A trivial echo QoS server: allow even ids, deny odd.
    async fn spawn_echo_server(faults: Arc<FaultPlan>) -> SocketAddr {
        let server = UdpServerSocket::bind_with_faults(faults).await.unwrap();
        let addr = server.local_addr().unwrap();
        tokio::spawn(async move {
            loop {
                let (req, peer) = match server.recv_request().await {
                    Ok(x) => x,
                    Err(_) => break,
                };
                let verdict = Verdict::from_bool(req.id % 2 == 0);
                let _ = server
                    .send_response(&QosResponse::new(req.id, verdict), peer)
                    .await;
            }
        });
        addr
    }

    #[tokio::test]
    async fn roundtrip_on_clean_network() {
        let addr = spawn_echo_server(FaultPlan::none()).await;
        let client = UdpRpcClient::new(UdpRpcConfig::lan_defaults());
        let resp = client.call(addr, &request(4)).await.unwrap();
        assert_eq!(resp, QosResponse::allow(4));
        let resp = client.call(addr, &request(5)).await.unwrap();
        assert_eq!(resp, QosResponse::deny(5));
    }

    #[tokio::test]
    async fn concurrent_calls_demux_correctly() {
        let addr = spawn_echo_server(FaultPlan::none()).await;
        let client = UdpRpcClient::new(UdpRpcConfig::lan_defaults());
        let mut handles = Vec::new();
        for id in 0..64u64 {
            let client = client.clone();
            handles.push(tokio::spawn(async move {
                let resp = client.call(addr, &request(id)).await.unwrap();
                assert_eq!(resp.id, id);
                assert_eq!(resp.verdict, Verdict::from_bool(id % 2 == 0));
            }));
        }
        for h in handles {
            h.await.unwrap();
        }
    }

    #[tokio::test]
    async fn retries_recover_from_loss() {
        // 60% loss on the response path: with 6 attempts the success
        // probability per call is 1 - 0.6^6 ≈ 95.3%... too flaky for a
        // hard assertion per call, so drop *outgoing* requests instead
        // with a deterministic seed and verify every call still succeeds
        // (expected failure probability 0.6^6 ≈ 4.7% per call — seed
        // chosen so the 20-call run passes deterministically).
        let addr = spawn_echo_server(FaultPlan::none()).await;
        let faults = FaultPlan::new(0.4, 0.0, Duration::ZERO, 12345);
        let client = UdpRpcClient::with_faults(UdpRpcConfig::lan_defaults(), faults.clone());
        let mut ok = 0;
        for id in 0..20u64 {
            if client.call(addr, &request(id * 2)).await.is_ok() {
                ok += 1;
            }
        }
        assert!(ok >= 18, "only {ok}/20 calls survived 40% loss");
        assert!(faults.dropped() > 0, "fault plan never fired");
    }

    #[tokio::test]
    async fn total_loss_times_out_with_budget() {
        let addr = spawn_echo_server(FaultPlan::none()).await;
        let faults = FaultPlan::new(1.0, 0.0, Duration::ZERO, 1);
        let config = UdpRpcConfig {
            timeout: Duration::from_millis(1),
            max_retries: 5,
            ..Default::default()
        };
        let client = UdpRpcClient::with_faults(config, faults);
        let err = client.call(addr, &request(2)).await.unwrap_err();
        match err {
            JanusError::Timeout { attempts } => assert_eq!(attempts, 6),
            other => panic!("expected timeout, got {other}"),
        }
    }

    #[tokio::test]
    async fn no_server_times_out() {
        // A bound-then-dropped socket: nothing will ever answer.
        let dead = UdpSocket::bind(("127.0.0.1", 0)).await.unwrap();
        let addr = dead.local_addr().unwrap();
        drop(dead);
        let config = UdpRpcConfig {
            timeout: Duration::from_millis(1),
            max_retries: 2,
            ..Default::default()
        };
        let client = UdpRpcClient::new(config);
        let err = client.call(addr, &request(1)).await.unwrap_err();
        assert!(matches!(
            err,
            JanusError::Timeout { attempts: 3 } | JanusError::Io(_)
        ));
    }

    #[tokio::test]
    async fn server_skips_garbage_datagrams() {
        let server = UdpServerSocket::bind_ephemeral().await.unwrap();
        let addr = server.local_addr().unwrap();
        let prober = UdpSocket::bind(("127.0.0.1", 0)).await.unwrap();
        prober.send_to(b"not a frame", addr).await.unwrap();
        prober
            .send_to(&codec::encode_response(&QosResponse::allow(9)), addr)
            .await
            .unwrap();
        prober
            .send_to(&codec::encode_request(&request(7)), addr)
            .await
            .unwrap();
        let (req, _) = server.recv_request().await.unwrap();
        assert_eq!(req.id, 7);
    }

    #[tokio::test]
    async fn recv_scratch_buffers_recycle_through_the_pool() {
        // Single-threaded runtime: every recv_request runs on this
        // thread, so after the first (miss) checkout all later scratch
        // buffers come from the thread's freelist.
        let pool = Arc::new(crate::buffer_pool::BufferPool::new());
        let server = UdpServerSocket::bind_with_pool(FaultPlan::none(), Arc::clone(&pool))
            .await
            .unwrap();
        let addr = server.local_addr().unwrap();
        let prober = UdpSocket::bind(("127.0.0.1", 0)).await.unwrap();
        for id in 0..5u64 {
            prober
                .send_to(&codec::encode_request(&request(id)), addr)
                .await
                .unwrap();
            let (req, _) = server.recv_request().await.unwrap();
            assert_eq!(req.id, id);
        }
        let snap = pool.snapshot();
        assert_eq!(snap.hits + snap.misses, 5);
        assert!(
            snap.hits >= 4,
            "scratch buffers were not recycled: {snap:?}"
        );
    }

    #[tokio::test]
    async fn server_splits_batch_datagrams_into_requests() {
        let server = UdpServerSocket::bind_ephemeral().await.unwrap();
        let addr = server.local_addr().unwrap();
        let prober = UdpSocket::bind(("127.0.0.1", 0)).await.unwrap();
        let frames: Vec<Frame> = (10..13u64).map(|id| Frame::Request(request(id))).collect();
        let wires = codec::encode_batch(&frames);
        assert_eq!(wires.len(), 1, "three small frames fit one datagram");
        prober.send_to(&wires[0], addr).await.unwrap();
        for expected in 10..13u64 {
            let (req, _) = server.recv_request().await.unwrap();
            assert_eq!(req.id, expected);
        }
    }

    #[tokio::test]
    async fn send_responses_coalesces_and_stays_decodable() {
        let server = UdpServerSocket::bind_ephemeral().await.unwrap();
        let addr = server.local_addr().unwrap();
        let peer = UdpSocket::bind(("127.0.0.1", 0)).await.unwrap();
        let peer_addr = peer.local_addr().unwrap();
        let responses: Vec<QosResponse> = (0..5u64).map(QosResponse::allow).collect();
        server.send_responses(&responses, peer_addr).await.unwrap();
        let mut buf = vec![0u8; RECV_BUF_BYTES];
        let (len, from) = peer.recv_from(&mut buf).await.unwrap();
        assert_eq!(from, addr);
        let frames = codec::decode_all(&buf[..len]).unwrap();
        assert_eq!(frames.len(), 5);
        for (i, frame) in frames.iter().enumerate() {
            assert_eq!(*frame, Frame::Response(QosResponse::allow(i as u64)));
        }
    }

    #[tokio::test]
    async fn response_groups_drain_per_peer_on_the_plain_path() {
        let server = UdpServerSocket::bind_ephemeral().await.unwrap();
        let peer_a = UdpSocket::bind(("127.0.0.1", 0)).await.unwrap();
        let peer_b = UdpSocket::bind(("127.0.0.1", 0)).await.unwrap();
        let mut groups = vec![
            (peer_a.local_addr().unwrap(), vec![QosResponse::allow(1)]),
            (
                peer_b.local_addr().unwrap(),
                vec![QosResponse::allow(2), QosResponse::deny(3)],
            ),
        ];
        server.send_response_groups(&mut groups).await.unwrap();
        assert!(groups.is_empty(), "groups must be drained");
        let mut buf = vec![0u8; RECV_BUF_BYTES];
        let (len, _) = peer_a.recv_from(&mut buf).await.unwrap();
        assert_eq!(
            codec::decode_all(&buf[..len]).unwrap(),
            vec![Frame::Response(QosResponse::allow(1))]
        );
        let (len, _) = peer_b.recv_from(&mut buf).await.unwrap();
        assert_eq!(
            codec::decode_all(&buf[..len]).unwrap(),
            vec![
                Frame::Response(QosResponse::allow(2)),
                Frame::Response(QosResponse::deny(3))
            ]
        );
    }

    #[cfg(target_os = "linux")]
    #[tokio::test]
    async fn batched_socket_round_trips_and_amortizes_syscalls() {
        let mmsg = Arc::new(crate::mmsg::BatchStats::new());
        let server = UdpServerSocket::bind_with_options(
            SocketAddr::from(([127, 0, 0, 1], 0)),
            FaultPlan::none(),
            Arc::new(crate::buffer_pool::BufferPool::new()),
            true,
            Arc::clone(&mmsg),
        )
        .await
        .unwrap();
        let addr = server.local_addr().unwrap();
        let prober = UdpSocket::bind(("127.0.0.1", 0)).await.unwrap();
        let prober_addr = prober.local_addr().unwrap();
        const N: u64 = 6;
        for id in 0..N {
            prober
                .send_to(&codec::encode_request(&request(id)), addr)
                .await
                .unwrap();
        }
        let mut responses = Vec::new();
        for _ in 0..N {
            let (req, peer) = server.recv_request().await.unwrap();
            assert_eq!(peer, prober_addr);
            responses.push(QosResponse::allow(req.id));
        }
        let mut groups = vec![(prober_addr, responses)];
        server.send_response_groups(&mut groups).await.unwrap();
        let mut buf = vec![0u8; RECV_BUF_BYTES];
        let mut got = 0;
        while got < N as usize {
            let (len, _) = prober.recv_from(&mut buf).await.unwrap();
            got += codec::decode_all(&buf[..len]).unwrap().len();
        }
        assert_eq!(got, N as usize);
        assert_eq!(
            mmsg.recv_datagrams(),
            N,
            "all requests came through recvmmsg"
        );
        assert!(
            mmsg.recv_syscalls() <= N,
            "batching must never spend more crossings than datagrams"
        );
    }

    #[test]
    fn paper_discipline_constants() {
        let d = UdpRpcConfig::default();
        assert_eq!(d.timeout, Duration::from_micros(100));
        assert_eq!(d.max_retries, 5);
        assert_eq!(d.attempts(), 6);
        assert_eq!(d.backoff, RetryBackoff::Fixed);
        // Paper: "In the worst case ... fails after 5 retries, which is
        // 500 microseconds" (counting the retry waits).
        assert_eq!(d.worst_case(), Duration::from_micros(600));
    }

    #[test]
    fn jittered_backoff_stays_within_doubling_windows() {
        let policy = RetryBackoff::ExponentialJitter {
            base: Duration::from_micros(100),
            cap: Duration::from_micros(350),
        };
        assert_eq!(policy.delay_before(0), Duration::ZERO);
        assert_eq!(policy.max_delay_before(1), Duration::from_micros(100));
        assert_eq!(policy.max_delay_before(2), Duration::from_micros(200));
        // Capped from here on: 400 µs would exceed the 350 µs ceiling.
        assert_eq!(policy.max_delay_before(3), Duration::from_micros(350));
        assert_eq!(policy.max_delay_before(9), Duration::from_micros(350));
        for attempt in 1..6 {
            for _ in 0..32 {
                assert!(policy.delay_before(attempt) <= policy.max_delay_before(attempt));
            }
        }
    }

    #[test]
    fn backoff_extends_worst_case() {
        let config = UdpRpcConfig {
            timeout: Duration::from_micros(100),
            max_retries: 2,
            backoff: RetryBackoff::ExponentialJitter {
                base: Duration::from_micros(100),
                cap: Duration::from_micros(1_000),
            },
            ..Default::default()
        };
        // 3 × 100 µs attempts + 100 µs before retry 1 + 200 µs before
        // retry 2.
        assert_eq!(config.worst_case(), Duration::from_micros(600));
    }

    #[tokio::test]
    async fn jittered_retries_still_recover() {
        let addr = spawn_echo_server(FaultPlan::none()).await;
        let faults = FaultPlan::new(0.4, 0.0, Duration::ZERO, 12345);
        let config = UdpRpcConfig {
            backoff: RetryBackoff::ExponentialJitter {
                base: Duration::from_micros(200),
                cap: Duration::from_millis(2),
            },
            ..UdpRpcConfig::lan_defaults()
        };
        let client = UdpRpcClient::with_faults(config, faults);
        let mut ok = 0;
        for id in 0..20u64 {
            if client.call(addr, &request(id * 2)).await.is_ok() {
                ok += 1;
            }
        }
        assert!(ok >= 18, "only {ok}/20 calls survived 40% loss with jitter");
    }

    #[tokio::test]
    async fn soliciting_request_downgrades_to_plain_frame_on_retry() {
        // A frame-recording "server" that never answers: every attempt
        // lands here and we inspect the raw wire bytes per attempt.
        let sink = UdpSocket::bind(("127.0.0.1", 0)).await.unwrap();
        let addr = sink.local_addr().unwrap();
        let config = UdpRpcConfig {
            timeout: Duration::from_millis(1),
            max_retries: 2,
            ..Default::default()
        };
        let client = UdpRpcClient::new(config);
        let soliciting = QosRequest::soliciting_hint(7, QosKey::new("tenant").unwrap());
        let call = tokio::spawn(async move { client.call(addr, &soliciting).await });
        let mut kinds = Vec::new();
        let mut buf = [0u8; RECV_BUF_BYTES];
        for _ in 0..3 {
            let (len, _) = sink.recv_from(&mut buf).await.unwrap();
            kinds.push(buf[..len][3]);
        }
        assert!(call.await.unwrap().is_err(), "nothing answered");
        // Attempt 0 solicits; every retry is the plain v1 frame an old
        // server understands.
        assert_eq!(
            kinds,
            vec![
                codec::KIND_REQUEST_HINT,
                codec::KIND_REQUEST,
                codec::KIND_REQUEST
            ]
        );
    }

    #[tokio::test]
    async fn deadline_attempts_downgrade_to_legacy_on_final_try() {
        // Frame-recording sink: every attempt lands here unanswered, so
        // we can inspect the per-attempt wire encoding.
        let sink = UdpSocket::bind(("127.0.0.1", 0)).await.unwrap();
        let addr = sink.local_addr().unwrap();
        let config = UdpRpcConfig {
            timeout: Duration::from_millis(20),
            max_retries: 2,
            backoff: RetryBackoff::Fixed,
            stamp_deadlines: true,
        };
        let client = UdpRpcClient::new(config);
        let req = request(9);
        let call = tokio::spawn(async move { client.call(addr, &req).await });
        let mut frames = Vec::new();
        let mut buf = [0u8; RECV_BUF_BYTES];
        for _ in 0..3 {
            let (len, _) = sink.recv_from(&mut buf).await.unwrap();
            frames.push(buf[..len].to_vec());
        }
        assert!(call.await.unwrap().is_err(), "nothing answered");
        let kinds: Vec<u8> = frames.iter().map(|f| f[3]).collect();
        // Every attempt but the last carries the deadline; the final
        // attempt is the legacy frame an old server still understands.
        assert_eq!(
            kinds,
            vec![
                codec::KIND_REQUEST_DEADLINE,
                codec::KIND_REQUEST_DEADLINE,
                codec::KIND_REQUEST
            ]
        );
        let decoded: Vec<QosRequest> = frames
            .iter()
            .map(|f| match codec::decode(f).unwrap() {
                Frame::Request(r) => r,
                other => panic!("expected request, got {other:?}"),
            })
            .collect();
        let first = decoded[0].attempt.expect("attempt 0 stamped");
        let second = decoded[1].attempt.expect("attempt 1 stamped");
        assert_eq!(first.nonce, second.nonce, "nonce is per logical request");
        assert!(
            second.budget_us <= first.budget_us,
            "budget must shrink as the deadline approaches: {} -> {}",
            first.budget_us,
            second.budget_us
        );
        assert_eq!(decoded[2].attempt, None, "legacy fallback strips the stamp");
        for r in &decoded {
            assert_eq!(r.id, 9, "the request id is stable across attempts");
        }
    }

    #[tokio::test]
    async fn duplication_injection_delivers_two_copies() {
        let sink = UdpSocket::bind(("127.0.0.1", 0)).await.unwrap();
        let addr = sink.local_addr().unwrap();
        let faults = FaultPlan::none();
        faults.set_duplication(1.0, Duration::ZERO);
        let config = UdpRpcConfig {
            timeout: Duration::from_millis(5),
            max_retries: 0,
            ..Default::default()
        };
        let client = UdpRpcClient::with_faults(config, faults.clone());
        let call = tokio::spawn(async move { client.call(addr, &request(3)).await });
        let mut buf = [0u8; RECV_BUF_BYTES];
        let mut seen = Vec::new();
        for _ in 0..2 {
            let (len, _) = sink.recv_from(&mut buf).await.unwrap();
            seen.push(buf[..len].to_vec());
        }
        assert!(call.await.unwrap().is_err(), "nothing answered");
        assert_eq!(seen[0], seen[1], "the duplicate is byte-identical");
        assert_eq!(faults.duplicated(), 1);
    }

    #[tokio::test]
    async fn reordering_injection_inverts_arrival_order() {
        // Two datagrams through a plan that defers the *first* roll only:
        // seed chosen so roll 1 lands in the reorder slice and roll 2
        // does not, making the second datagram overtake the first.
        let sink = UdpSocket::bind(("127.0.0.1", 0)).await.unwrap();
        let addr = sink.local_addr().unwrap();
        let faults = FaultPlan::none();
        faults.set_reordering(0.5, Duration::from_millis(30));
        let socket = Arc::new(UdpSocket::bind(("127.0.0.1", 0)).await.unwrap());
        socket.connect(addr).await.unwrap();
        let client = UdpRpcClient::with_faults(UdpRpcConfig::lan_defaults(), faults.clone());
        // Send until a datagram delivers inline *after* an earlier one
        // deferred: the inline one overtakes it (drop/delay/dup are all
        // zero, so "reordered count unchanged" means inline delivery).
        let mut sent = 0u64;
        loop {
            let before = faults.reordered();
            client
                .send_with_faults(&socket, codec::encode_request(&request(sent)))
                .await
                .unwrap();
            sent += 1;
            let was_deferred = faults.reordered() > before;
            if !was_deferred && faults.reordered() > 0 {
                break;
            }
        }
        let mut ids = Vec::new();
        let mut buf = [0u8; RECV_BUF_BYTES];
        for _ in 0..sent {
            let (len, _) = sink.recv_from(&mut buf).await.unwrap();
            match codec::decode(&buf[..len]).unwrap() {
                Frame::Request(r) => ids.push(r.id),
                other => panic!("expected request, got {other:?}"),
            }
        }
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..sent).collect::<Vec<_>>(), "nothing was lost");
        assert_ne!(ids, sorted, "deferred datagrams must arrive out of order");
    }
}
