//! Gray-failure client discipline: windowed latency quantiles, adaptive
//! per-attempt timeouts, a hedging policy and a global retry budget
//! (DESIGN.md ablation 15).
//!
//! The paper's wire discipline is a fixed 100 µs timeout × 5 retries. A
//! partition that is slow-but-alive (GC-like stall, overloaded core,
//! lossy link) never trips a hard-timeout breaker, yet every blind retry
//! it provokes adds load exactly when the server can least afford it.
//! This module gives the client side its own discipline:
//!
//! * [`LatencyWindow`] — a fixed-size ring of observed attempt RTTs with
//!   an incrementally-maintained sorted view, so windowed percentiles
//!   are exact (nearest-rank) and the state is pure integers: no floats,
//!   no decaying averages, no wall clock. Deterministic by construction,
//!   which lets the simulator drive the same object.
//! * [`TimeoutPolicy`] — per-attempt timeout derived as
//!   `clamp(p99 × multiplier, floor, ceil)`, with the paper's fixed
//!   timeout kept as the default/baseline mode.
//! * [`HedgePolicy`] — after a learned-p95 delay, a second copy of the
//!   *same* attempt (same nonce) may be issued; the dedup window makes
//!   the loser's verdict a cached duplicate, so hedging is credit-exact
//!   by construction.
//! * [`RetryBudget`] — a Finagle-style global token bucket shared per
//!   router: every primary attempt deposits a fraction of a retry
//!   credit, every retry or hedge withdraws a whole one, so the extra
//!   load retries may add is hard-bounded at `deposit_pct` percent of
//!   primary traffic (plus a fixed reserve) no matter how gray the
//!   network gets.
//!
//! Everything here is std-only and runs under bare `rustc` in the
//! standalone battery (`scripts/run_dst_standalone.sh`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Samples an adaptive policy requires before it trusts the window; below
/// this the baseline (fixed) behavior is used. Keeps cold starts and
/// rarely-used partitions on the paper's discipline instead of reacting
/// to one or two lucky samples.
pub const ADAPTIVE_WARMUP: usize = 8;

/// One whole retry (or hedge) costs this many budget units; a deposit of
/// `deposit_pct` units per primary therefore funds `deposit_pct`% extra
/// attempts.
const RETRY_COST: u64 = 100;

/// A fixed-capacity sliding window of attempt round-trip times
/// (microseconds) with exact windowed percentiles.
///
/// The ring preserves arrival order for eviction; a parallel sorted
/// vector is maintained by binary-search insert/remove, so `record` is
/// `O(log n + n)` on a small fixed `n` and [`LatencyWindow::percentile`]
/// is `O(1)`. All state is integers — two identical sample sequences
/// yield identical percentiles on any platform.
#[derive(Debug, Clone)]
pub struct LatencyWindow {
    /// Insertion-ordered ring of samples (micros); `head` is the slot the
    /// next sample overwrites once the window is full.
    ring: Vec<u64>,
    /// The same samples, kept sorted ascending.
    sorted: Vec<u64>,
    head: usize,
    cap: usize,
}

impl LatencyWindow {
    /// An empty window holding at most `capacity` samples (min 1).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        LatencyWindow {
            ring: Vec::with_capacity(cap),
            sorted: Vec::with_capacity(cap),
            head: 0,
            cap,
        }
    }

    /// Record one attempt RTT in microseconds, evicting the oldest sample
    /// once the window is full.
    pub fn record(&mut self, rtt_us: u64) {
        if self.ring.len() == self.cap {
            let old = self.ring[self.head];
            // Remove one copy of the evicted value from the sorted view.
            let pos = self.sorted.partition_point(|&v| v < old);
            self.sorted.remove(pos);
            self.ring[self.head] = rtt_us;
            self.head = (self.head + 1) % self.cap;
        } else {
            self.ring.push(rtt_us);
        }
        let pos = self.sorted.partition_point(|&v| v < rtt_us);
        self.sorted.insert(pos, rtt_us);
    }

    /// Samples currently held.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when no sample has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Exact nearest-rank percentile (`pct` in 0..=100) over the current
    /// window, or `None` while the window is empty.
    pub fn percentile(&self, pct: u8) -> Option<u64> {
        let n = self.sorted.len();
        if n == 0 {
            return None;
        }
        // Nearest-rank: ceil(pct/100 × n), clamped to [1, n].
        let rank = (n * usize::from(pct.min(100))).div_ceil(100).clamp(1, n);
        Some(self.sorted[rank - 1])
    }
}

/// How a per-attempt timeout is derived from observed latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeoutPolicy {
    /// The paper's discipline: every attempt waits the configured fixed
    /// timeout (100 µs in the paper; [`crate::udp::UdpRpcConfig::timeout`]
    /// here). The default.
    Fixed,
    /// Learn the timeout from the window:
    /// `clamp(p99 × multiplier_pct / 100, floor, ceil)`, falling back to
    /// the fixed baseline until [`ADAPTIVE_WARMUP`] samples exist.
    Adaptive {
        /// Percent multiplier applied to the windowed p99 (300 = 3× p99).
        multiplier_pct: u32,
        /// Never wait less than this, however fast the window looks.
        floor: Duration,
        /// Never wait longer than this, however gray the partition gets.
        ceil: Duration,
    },
}

impl Default for TimeoutPolicy {
    fn default() -> Self {
        TimeoutPolicy::Fixed
    }
}

impl TimeoutPolicy {
    /// The adaptive mode with its documented defaults: 3 × p99, clamped
    /// to [baseline, 10 ms].
    pub fn adaptive_defaults() -> Self {
        TimeoutPolicy::Adaptive {
            multiplier_pct: 300,
            floor: Duration::from_micros(100),
            ceil: Duration::from_millis(10),
        }
    }

    /// The timeout the next attempt should wait, given the partition's
    /// window and the configured fixed `baseline`.
    pub fn timeout_for(&self, window: &LatencyWindow, baseline: Duration) -> Duration {
        match *self {
            TimeoutPolicy::Fixed => baseline,
            TimeoutPolicy::Adaptive {
                multiplier_pct,
                floor,
                ceil,
            } => {
                if window.len() < ADAPTIVE_WARMUP {
                    return baseline;
                }
                let p99 = window.percentile(99).unwrap_or(0);
                let scaled = p99.saturating_mul(u64::from(multiplier_pct)) / 100;
                Duration::from_micros(scaled).clamp(floor, ceil)
            }
        }
    }
}

/// When to issue a second in-flight copy of an attempt (same nonce).
///
/// The hedge fires after the windowed `percentile` delay (clamped): a
/// request slower than its partition's p95 is probably stuck behind a
/// gray link or a stalled server, and a duplicate costs one datagram —
/// never a second credit, because it re-presents the same attempt nonce
/// and the server's dedup window answers the loser from the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HedgePolicy {
    /// Which windowed percentile sets the hedge delay (95 by default).
    pub percentile: u8,
    /// Never hedge sooner than this (loopback noise floor).
    pub floor: Duration,
    /// Never wait longer than this before hedging.
    pub ceil: Duration,
}

impl Default for HedgePolicy {
    fn default() -> Self {
        HedgePolicy {
            percentile: 95,
            floor: Duration::from_micros(50),
            ceil: Duration::from_millis(5),
        }
    }
}

impl HedgePolicy {
    /// The delay after which the current attempt should be hedged, or
    /// `None` while the window is still warming up (no hedge is sent).
    pub fn delay_for(&self, window: &LatencyWindow) -> Option<Duration> {
        if window.len() < ADAPTIVE_WARMUP {
            return None;
        }
        let p = window.percentile(self.percentile)?;
        Some(Duration::from_micros(p).clamp(self.floor, self.ceil))
    }
}

/// Configuration for a [`RetryBudget`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryBudgetConfig {
    /// Budget units deposited per primary attempt; one retry or hedge
    /// costs 100 units, so 10 bounds retry traffic at 10% of primaries.
    pub deposit_pct: u32,
    /// Retries always available regardless of recent traffic (the bucket
    /// is seeded with this many and the cap never falls below it), so a
    /// quiet client can still recover from a lost datagram.
    pub min_reserve: u32,
    /// Ceiling on banked retries — a long calm period cannot fund an
    /// unbounded retry storm later.
    pub cap: u32,
}

impl Default for RetryBudgetConfig {
    fn default() -> Self {
        RetryBudgetConfig {
            deposit_pct: 10,
            min_reserve: 10,
            cap: 100,
        }
    }
}

/// A Finagle-style global retry budget: a token bucket shared by every
/// call a router makes.
///
/// Each *primary* attempt deposits `deposit_pct` units; each retry or
/// hedge withdraws [`RETRY_COST`] units or is refused. The invariant is
/// exact and integer: after `p` primaries,
/// `retries + hedges ≤ floor(p × deposit_pct / 100) + min_reserve`,
/// which is the retry-amplification bound the simulator's seventh oracle
/// checks. Lock-free (single CAS per operation) so both transports can
/// share one instance.
#[derive(Debug)]
pub struct RetryBudget {
    /// Banked units (100 per whole retry).
    units: AtomicU64,
    /// Units the bucket can hold.
    cap_units: u64,
    /// Units a primary attempt deposits.
    deposit_units: u64,
    /// Withdrawals refused because the bucket was empty.
    exhausted: AtomicU64,
    config: RetryBudgetConfig,
}

impl RetryBudget {
    /// A budget seeded with the configured reserve.
    pub fn new(config: RetryBudgetConfig) -> Self {
        let reserve_units = u64::from(config.min_reserve) * RETRY_COST;
        let cap_units = (u64::from(config.cap) * RETRY_COST).max(reserve_units);
        RetryBudget {
            units: AtomicU64::new(reserve_units),
            cap_units,
            deposit_units: u64::from(config.deposit_pct),
            exhausted: AtomicU64::new(0),
            config,
        }
    }

    /// The configuration this budget enforces.
    pub fn config(&self) -> RetryBudgetConfig {
        self.config
    }

    /// Credit one primary attempt.
    pub fn deposit(&self) {
        let mut cur = self.units.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(self.deposit_units).min(self.cap_units);
            match self
                .units
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Try to pay for one retry or hedge. `false` means the budget is
    /// exhausted and the extra attempt must not be sent.
    pub fn try_withdraw(&self) -> bool {
        let mut cur = self.units.load(Ordering::Relaxed);
        loop {
            if cur < RETRY_COST {
                self.exhausted.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            match self.units.compare_exchange_weak(
                cur,
                cur - RETRY_COST,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Whole retries currently banked.
    pub fn balance(&self) -> u64 {
        self.units.load(Ordering::Relaxed) / RETRY_COST
    }

    /// Withdrawals refused so far (the `retry_budget_exhausted` stat).
    pub fn exhausted(&self) -> u64 {
        self.exhausted.load(Ordering::Relaxed)
    }
}

/// A [`LatencyWindow`] behind a mutex, so the async shells can record
/// from concurrent tasks. The simulator uses the bare window directly.
#[derive(Debug)]
pub struct SharedLatency(Mutex<LatencyWindow>);

impl SharedLatency {
    /// An empty shared window of `capacity` samples.
    pub fn new(capacity: usize) -> Self {
        SharedLatency(Mutex::new(LatencyWindow::new(capacity)))
    }

    /// Record one attempt RTT in microseconds.
    pub fn record(&self, rtt_us: u64) {
        self.lock().record(rtt_us);
    }

    /// Exact nearest-rank percentile, or `None` while empty.
    pub fn percentile(&self, pct: u8) -> Option<u64> {
        self.lock().percentile(pct)
    }

    /// Samples currently held.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True when no sample has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Run `f` against the underlying window.
    pub fn with<R>(&self, f: impl FnOnce(&LatencyWindow) -> R) -> R {
        f(&self.lock())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, LatencyWindow> {
        // A poisoned window only means a panicking thread mid-record;
        // latency samples are advisory, so keep serving.
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Counters for the hedging path, shared between a transport and the
/// stats snapshot that exports them (`hedges_sent` / `hedge_wins` /
/// `adaptive_timeout_us` in `RouterStats` and the bench JSON).
#[derive(Debug, Default)]
pub struct HedgeStats {
    /// Second copies actually put on the wire.
    pub hedges_sent: AtomicU64,
    /// Hedged attempts that got an answer after the hedge fired — the
    /// window in which the duplicate could have been the one that won.
    pub hedge_wins: AtomicU64,
    /// The most recent adaptively-derived per-attempt timeout, in
    /// microseconds (gauge; 0 until the adaptive mode first engages).
    pub adaptive_timeout_us: AtomicU64,
}

impl HedgeStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Everything a single RPC call needs to apply the gray-failure
/// discipline, bundled so the transports keep one signature.
///
/// `Default` is the paper's behavior: fixed timeout, no hedge, no
/// budget, nothing recorded — byte-identical to the pre-gray wire
/// discipline.
#[derive(Debug, Clone, Default)]
pub struct WireDiscipline {
    /// Per-attempt timeout override (adaptively derived); `None` keeps
    /// the client's configured fixed timeout.
    pub timeout: Option<Duration>,
    /// Hedge the attempt after this in-flight delay; `None` never hedges.
    pub hedge_delay: Option<Duration>,
    /// Global budget gating retries *and* hedges; `None` leaves the
    /// configured retry schedule unbounded (paper behavior).
    pub budget: Option<Arc<RetryBudget>>,
    /// Hedge counters to report into.
    pub stats: Option<Arc<HedgeStats>>,
    /// Where observed attempt RTTs are recorded (feeds the adaptive
    /// timeout and hedge delay of *later* calls).
    pub rtt: Option<Arc<SharedLatency>>,
}

impl WireDiscipline {
    /// True when every knob is off — the legacy fast path.
    pub fn is_noop(&self) -> bool {
        self.timeout.is_none()
            && self.hedge_delay.is_none()
            && self.budget.is_none()
            && self.stats.is_none()
            && self.rtt.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_percentiles_are_exact_nearest_rank() {
        let mut w = LatencyWindow::new(16);
        for v in [10, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
            w.record(v);
        }
        assert_eq!(w.percentile(0), Some(10));
        assert_eq!(w.percentile(10), Some(10));
        assert_eq!(w.percentile(50), Some(50));
        assert_eq!(w.percentile(90), Some(90));
        assert_eq!(w.percentile(95), Some(100));
        assert_eq!(w.percentile(99), Some(100));
        assert_eq!(w.percentile(100), Some(100));
    }

    #[test]
    fn empty_window_has_no_percentiles() {
        let w = LatencyWindow::new(8);
        assert!(w.is_empty());
        assert_eq!(w.percentile(50), None);
        assert_eq!(w.percentile(99), None);
    }

    #[test]
    fn single_sample_answers_every_percentile() {
        let mut w = LatencyWindow::new(8);
        w.record(123);
        for pct in [0, 1, 50, 95, 99, 100] {
            assert_eq!(w.percentile(pct), Some(123));
        }
    }

    #[test]
    fn full_window_evicts_oldest_first() {
        let mut w = LatencyWindow::new(4);
        for v in [1000, 1, 2, 3] {
            w.record(v);
        }
        assert_eq!(w.percentile(100), Some(1000));
        // The fifth sample evicts 1000 (the oldest), not the largest kept.
        w.record(4);
        assert_eq!(w.len(), 4);
        assert_eq!(w.percentile(100), Some(4));
        assert_eq!(w.percentile(0), Some(1));
    }

    #[test]
    fn eviction_removes_exactly_one_duplicate_copy() {
        let mut w = LatencyWindow::new(3);
        w.record(7);
        w.record(7);
        w.record(7);
        w.record(9); // evicts one 7
        assert_eq!(w.len(), 3);
        assert_eq!(w.percentile(50), Some(7));
        assert_eq!(w.percentile(100), Some(9));
        w.record(9); // evicts another 7
        w.record(9); // evicts the last 7
        assert_eq!(w.percentile(0), Some(9));
    }

    #[test]
    fn identical_sequences_yield_identical_percentiles() {
        let feed = |w: &mut LatencyWindow| {
            for i in 0..100u64 {
                w.record((i * 37) % 61);
            }
        };
        let mut a = LatencyWindow::new(32);
        let mut b = LatencyWindow::new(32);
        feed(&mut a);
        feed(&mut b);
        for pct in 0..=100u8 {
            assert_eq!(a.percentile(pct), b.percentile(pct));
        }
    }

    #[test]
    fn fixed_policy_always_returns_the_baseline() {
        let mut w = LatencyWindow::new(16);
        for _ in 0..16 {
            w.record(5_000);
        }
        let baseline = Duration::from_micros(100);
        assert_eq!(TimeoutPolicy::Fixed.timeout_for(&w, baseline), baseline);
    }

    #[test]
    fn adaptive_policy_falls_back_until_warmed_up() {
        let policy = TimeoutPolicy::adaptive_defaults();
        let mut w = LatencyWindow::new(64);
        let baseline = Duration::from_micros(100);
        for _ in 0..(ADAPTIVE_WARMUP - 1) {
            w.record(2_000);
            assert_eq!(policy.timeout_for(&w, baseline), baseline);
        }
        w.record(2_000);
        // 3 × p99 of an all-2ms window = 6 ms, inside the default clamp.
        assert_eq!(
            policy.timeout_for(&w, baseline),
            Duration::from_micros(6_000)
        );
    }

    #[test]
    fn adaptive_policy_clamps_to_floor_and_ceiling() {
        let policy = TimeoutPolicy::Adaptive {
            multiplier_pct: 300,
            floor: Duration::from_micros(100),
            ceil: Duration::from_millis(10),
        };
        let baseline = Duration::from_micros(100);
        let mut fast = LatencyWindow::new(16);
        for _ in 0..16 {
            fast.record(1); // 3 µs scaled — below the floor
        }
        assert_eq!(
            policy.timeout_for(&fast, baseline),
            Duration::from_micros(100)
        );
        let mut slow = LatencyWindow::new(16);
        for _ in 0..16 {
            slow.record(1_000_000); // 3 s scaled — above the ceiling
        }
        assert_eq!(
            policy.timeout_for(&slow, baseline),
            Duration::from_millis(10)
        );
    }

    #[test]
    fn hedge_delay_tracks_the_windowed_p95_with_clamp() {
        let policy = HedgePolicy::default();
        let mut w = LatencyWindow::new(32);
        assert_eq!(policy.delay_for(&w), None, "no hedge before warmup");
        for v in 1..=32u64 {
            w.record(v * 100);
        }
        // p95 of 100..=3200 step 100 is 3100 µs, inside [50 µs, 5 ms].
        assert_eq!(policy.delay_for(&w), Some(Duration::from_micros(3_100)));
        let mut fast = LatencyWindow::new(16);
        for _ in 0..16 {
            fast.record(1);
        }
        assert_eq!(
            policy.delay_for(&fast),
            Some(Duration::from_micros(50)),
            "floor clamp"
        );
    }

    #[test]
    fn retry_budget_starts_at_the_reserve() {
        let budget = RetryBudget::new(RetryBudgetConfig::default());
        assert_eq!(budget.balance(), 10);
        for _ in 0..10 {
            assert!(budget.try_withdraw());
        }
        assert!(!budget.try_withdraw(), "reserve spent, nothing deposited");
        assert_eq!(budget.exhausted(), 1);
    }

    #[test]
    fn deposits_fund_exactly_the_configured_percentage() {
        let budget = RetryBudget::new(RetryBudgetConfig {
            deposit_pct: 10,
            min_reserve: 0,
            cap: 100,
        });
        assert!(!budget.try_withdraw(), "no reserve, no deposits");
        for _ in 0..100 {
            budget.deposit();
        }
        // 100 primaries × 10% = 10 funded retries, not one more.
        let mut granted = 0;
        while budget.try_withdraw() {
            granted += 1;
        }
        assert_eq!(granted, 10);
    }

    #[test]
    fn budget_cap_bounds_banked_retries() {
        let budget = RetryBudget::new(RetryBudgetConfig {
            deposit_pct: 50,
            min_reserve: 0,
            cap: 3,
        });
        for _ in 0..10_000 {
            budget.deposit();
        }
        assert_eq!(budget.balance(), 3, "calm periods cannot bank a storm");
    }

    #[test]
    fn cap_never_falls_below_the_reserve() {
        let budget = RetryBudget::new(RetryBudgetConfig {
            deposit_pct: 10,
            min_reserve: 20,
            cap: 5, // misconfigured below the reserve
        });
        assert_eq!(budget.balance(), 20, "the seeded reserve is not clipped");
    }

    #[test]
    fn interleaved_deposits_and_withdrawals_stay_exact() {
        let budget = RetryBudget::new(RetryBudgetConfig {
            deposit_pct: 10,
            min_reserve: 1,
            cap: 100,
        });
        let mut granted = 0u64;
        for _ in 0..50 {
            for _ in 0..10 {
                budget.deposit();
            }
            if budget.try_withdraw() {
                granted += 1;
            }
        }
        // 500 primaries at 10% fund 50; plus the 1-retry reserve, but only
        // 50 withdrawal opportunities existed.
        assert_eq!(granted, 50);
        assert_eq!(budget.exhausted(), 0);
        assert_eq!(budget.balance(), 1, "the reserve is still banked");
    }

    #[test]
    fn shared_window_round_trips_through_the_mutex() {
        let shared = SharedLatency::new(8);
        assert!(shared.is_empty());
        for v in [10, 20, 30, 40, 50, 60, 70, 80] {
            shared.record(v);
        }
        assert_eq!(shared.len(), 8);
        assert_eq!(shared.percentile(50), Some(40));
        assert_eq!(shared.with(|w| w.capacity()), 8);
    }

    #[test]
    fn default_wire_discipline_is_a_noop() {
        assert!(WireDiscipline::default().is_noop());
        let armed = WireDiscipline {
            hedge_delay: Some(Duration::from_micros(200)),
            ..WireDiscipline::default()
        };
        assert!(!armed.is_noop());
    }
}
