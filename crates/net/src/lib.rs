#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]
//! Networking substrate for Janus.
//!
//! The paper deploys Janus on AWS primitives — HTTP between client, load
//! balancer and request router; UDP between router and QoS server; Route53
//! for DNS load balancing and failover. This crate rebuilds those
//! primitives from scratch on tokio:
//!
//! * [`udp`] — the admission RPC: a fire-and-retry UDP exchange with the
//!   paper's 100 µs timeout × 5 retries discipline, plus configurable
//!   loss/delay injection for failure testing.
//! * [`http`] — a minimal HTTP/1.1 implementation (parser, server with
//!   keep-alive, client) sufficient for the router front end, the gateway
//!   load balancer, and the photo-sharing demo app.
//! * [`dns`] — an authoritative zone with per-query answer permutation
//!   (round-robin DNS), a caching resolver honouring TTL (which reproduces
//!   the paper's DNS-LB skew), and health-checked master/standby failover
//!   records (the Route53 failover mechanism the QoS-server HA design
//!   relies on).
//! * [`fault`] — deterministic packet-loss and delay injection shared by
//!   the UDP layer.
//! * [`latency`] — the gray-failure client discipline: windowed latency
//!   quantiles, adaptive per-attempt timeouts, credit-safe hedging and a
//!   global retry budget.
//! * [`mmsg`] — batched UDP syscalls (`recvmmsg`/`sendmmsg`) and
//!   `SO_REUSEPORT` per-core socket groups, declared by hand against the
//!   system libc, with a portable single-syscall fallback.
//!
//! One deliberate substrate simplification: our DNS "A records" carry full
//! socket addresses rather than bare IPs, because test deployments
//! colocate every node on 127.0.0.1 and distinguish them by port. The
//! permutation, TTL and failover semantics are unchanged.

pub mod attempt;
pub mod breaker;
pub mod buffer_pool;
pub mod dns;
pub mod fault;
pub mod http;
pub mod latency;
pub mod mmsg;
pub mod udp;
pub mod udp_pool;

pub use attempt::{AttemptPlan, AttemptStep};
pub use breaker::{Admission, BreakerConfig, BreakerState, CircuitBreaker};
pub use dns::{DnsRecord, Resolver, Zone};

/// Wake a TCP accept loop so it observes a freshly-set shutdown flag.
///
/// Safe to call from any thread: inside a tokio runtime it spawns an
/// async connect; outside (e.g. a `Drop` on the main thread after the
/// runtime is gone) it falls back to a brief blocking connect.
pub fn poke_listener(addr: std::net::SocketAddr) {
    if let Ok(handle) = tokio::runtime::Handle::try_current() {
        handle.spawn(async move {
            let _ = tokio::net::TcpStream::connect(addr).await;
        });
    } else {
        let _ = std::net::TcpStream::connect_timeout(&addr, std::time::Duration::from_millis(50));
    }
}
pub use buffer_pool::{BufferPool, BufferPoolSnapshot, PooledBuf};
pub use fault::{DeliverySchedule, Fate, FaultPlan};
pub use http::{HttpClient, HttpRequest, HttpResponse, HttpServer, Method, StatusCode};
pub use latency::{
    HedgePolicy, HedgeStats, LatencyWindow, RetryBudget, RetryBudgetConfig, SharedLatency,
    TimeoutPolicy, WireDiscipline,
};
pub use mmsg::{Backend, BatchStats, RecvSlot};
pub use udp::{RetryBackoff, UdpRpcClient, UdpRpcConfig, UdpServerSocket};
pub use udp_pool::{BatchConfig, PooledUdpRpcClient};
