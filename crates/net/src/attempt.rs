//! The retry-attempt schedule as a sans-IO core.
//!
//! The paper's discipline — up to 1 + `max_retries` attempts, each waiting
//! one timeout — grew three refinements that all change *which frame* an
//! attempt puts on the wire: hint solicitation downgrades to a plain frame
//! on retries, deadline propagation stamps every non-final attempt with
//! the remaining budget and a logical-request nonce, and the final stamped
//! attempt falls back to a legacy frame a deadline-unaware server still
//! understands. That frame-selection logic used to live inline in two
//! transports ([`crate::udp::UdpRpcClient`] and
//! [`crate::udp_pool::PooledUdpRpcClient`]); [`AttemptPlan`] extracts it
//! into one pure state machine over an injected clock so both transports
//! and the deterministic simulator provably send the same attempt
//! sequence. No sockets, no tasks, no wall clock.

use janus_clock::Nanos;
use janus_types::{AttemptMeta, QosRequest};
use std::time::Duration;

/// What one attempt slot should do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttemptStep {
    /// Put this frame on the wire and wait one attempt timeout.
    Send(QosRequest),
    /// The end-to-end budget is already spent: stop retrying — nobody is
    /// waiting for a later answer.
    BudgetSpent,
}

/// The pure attempt schedule of one logical admission request.
///
/// Construct once per call, then ask [`request_for`](Self::request_for)
/// what each attempt `0..attempts()` should send, passing the current
/// time. The plan never reads a clock itself, which is what lets the
/// simulator replay it at virtual time.
#[derive(Debug, Clone)]
pub struct AttemptPlan {
    base: QosRequest,
    attempts: u32,
    /// `(started, total budget, nonce)` when propagating deadlines.
    deadline: Option<(Nanos, Duration, u32)>,
}

impl AttemptPlan {
    /// A plan without deadline stamping: attempt 0 sends `base` verbatim
    /// (possibly soliciting a hint), retries downgrade to the plain frame.
    pub fn plain(base: QosRequest, attempts: u32) -> Self {
        AttemptPlan {
            base,
            attempts,
            deadline: None,
        }
    }

    /// A deadline-propagating plan: attempts `0..attempts-1` are stamped
    /// with the budget remaining at send time and `nonce`; the final
    /// attempt downgrades to a legacy frame; retries stop once `total`
    /// has elapsed since `started`.
    pub fn stamped(
        base: QosRequest,
        attempts: u32,
        started: Nanos,
        total: Duration,
        nonce: u32,
    ) -> Self {
        AttemptPlan {
            base,
            attempts,
            deadline: Some((started, total, nonce)),
        }
    }

    /// Total attempt slots (first try + retries).
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// The nonce stamped on this logical request, if deadline-propagating.
    pub fn nonce(&self) -> Option<u32> {
        self.deadline.map(|(_, _, nonce)| nonce)
    }

    /// Clamp a proposed inter-attempt pause (jittered backoff, hedge
    /// delay) to the budget remaining at `now`.
    ///
    /// A jittered exponential backoff can propose a sleep that ends past
    /// the deadline — the transport would then sleep, wake, and only
    /// *afterwards* learn from [`AttemptStep::BudgetSpent`] that nobody
    /// was waiting, having held the socket and the task for dead time.
    /// Clamping keeps the wake-up at the deadline edge, where the budget
    /// check stops the call immediately. Plans without a deadline have
    /// nothing to clamp against and return `proposed` unchanged.
    pub fn clamped_pause(&self, proposed: Duration, now: Nanos) -> Duration {
        match self.deadline {
            Some((started, total, _)) => {
                let remaining = total.saturating_sub(now.saturating_since(started));
                proposed.min(remaining)
            }
            None => proposed,
        }
    }

    /// The frame a *hedge* of attempt `attempt` should send at `now`:
    /// the same attempt re-presented — same nonce, budget restamped to
    /// what actually remains — so the server's dedup window answers the
    /// losing copy from the cache and the pair consumes one credit.
    ///
    /// Refused (`None`) for plans without a deadline stamp: an unstamped
    /// frame carries no nonce, the dedup window cannot pair the copies,
    /// and a hedge would risk a second charge. Also refused once the
    /// budget is spent — nobody is waiting for a later answer.
    pub fn hedge_for(&self, attempt: u32, now: Nanos) -> Option<QosRequest> {
        let (started, total, _) = self.deadline?;
        if now.saturating_since(started) >= total {
            return None;
        }
        match self.request_for(attempt, now) {
            AttemptStep::Send(frame) => Some(frame),
            AttemptStep::BudgetSpent => None,
        }
    }

    /// The frame attempt number `attempt` (0-based) should send at `now`,
    /// or [`AttemptStep::BudgetSpent`] when retrying must stop.
    pub fn request_for(&self, attempt: u32, now: Nanos) -> AttemptStep {
        match self.deadline {
            Some((started, total, nonce)) => {
                let elapsed = now.saturating_since(started);
                if attempt > 0 && elapsed >= total {
                    return AttemptStep::BudgetSpent;
                }
                if attempt + 1 < self.attempts {
                    let remaining = total.saturating_sub(elapsed).as_micros();
                    let budget_us = remaining.clamp(1, u128::from(u32::MAX)) as u32;
                    let mut stamped = if attempt == 0 {
                        self.base.clone()
                    } else {
                        // Retries downgrade both optimistic extensions:
                        // the hint solicitation and the lease report.
                        self.base.without_hint().without_lease()
                    };
                    stamped.attempt = Some(AttemptMeta::new(budget_us, nonce));
                    AttemptStep::Send(stamped)
                } else {
                    // Final attempt: the legacy frame an old,
                    // deadline- and lease-unaware server still
                    // understands.
                    AttemptStep::Send(self.base.without_attempt().without_hint().without_lease())
                }
            }
            None => {
                if (self.base.solicit_hint || self.base.lease.is_some()) && attempt > 0 {
                    AttemptStep::Send(self.base.without_hint().without_lease())
                } else {
                    AttemptStep::Send(self.base.clone())
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_types::QosKey;

    fn base(solicit: bool) -> QosRequest {
        let key = QosKey::new("alice:photos").unwrap();
        if solicit {
            QosRequest::soliciting_hint(7, key)
        } else {
            QosRequest::new(7, key)
        }
    }

    fn sent(step: AttemptStep) -> QosRequest {
        match step {
            AttemptStep::Send(req) => req,
            AttemptStep::BudgetSpent => panic!("expected a frame, got BudgetSpent"),
        }
    }

    const T0: Nanos = Nanos::from_secs(5);

    #[test]
    fn plain_plan_repeats_the_request() {
        let plan = AttemptPlan::plain(base(false), 3);
        for attempt in 0..3 {
            assert_eq!(sent(plan.request_for(attempt, T0)), base(false));
        }
    }

    #[test]
    fn soliciting_plan_downgrades_on_retry() {
        let plan = AttemptPlan::plain(base(true), 3);
        assert!(sent(plan.request_for(0, T0)).solicit_hint);
        for attempt in 1..3 {
            let req = sent(plan.request_for(attempt, T0));
            assert!(!req.solicit_hint, "retry {attempt} must not solicit");
            assert_eq!(req.id, 7);
        }
    }

    #[test]
    fn stamped_plan_stamps_all_but_final_attempt() {
        let plan = AttemptPlan::stamped(base(true), 3, T0, Duration::from_micros(600), 42);
        let first = sent(plan.request_for(0, T0));
        assert!(first.solicit_hint, "attempt 0 keeps the solicitation");
        assert_eq!(first.attempt, Some(AttemptMeta::new(600, 42)));

        let at = T0.saturating_add(Duration::from_micros(250));
        let second = sent(plan.request_for(1, at));
        assert!(
            !second.solicit_hint,
            "stamped retries drop the solicitation"
        );
        assert_eq!(second.attempt, Some(AttemptMeta::new(350, 42)));

        let last = sent(plan.request_for(2, at));
        assert_eq!(last.attempt, None, "final attempt is a legacy frame");
        assert!(!last.solicit_hint);
    }

    #[test]
    fn lease_report_rides_only_the_first_attempt() {
        use janus_types::LeaseReport;
        let leased = base(true).with_lease(LeaseReport::soliciting(3));
        // Plain plan: retries drop the lease with the hint.
        let plan = AttemptPlan::plain(leased.clone(), 3);
        assert!(sent(plan.request_for(0, T0)).lease.is_some());
        for attempt in 1..3 {
            let req = sent(plan.request_for(attempt, T0));
            assert_eq!(req.lease, None, "retry {attempt} must not carry the lease");
            assert!(!req.solicit_hint);
        }
        // Stamped plan: same discipline, and the final legacy attempt is
        // free of all three extensions.
        let plan = AttemptPlan::stamped(leased, 3, T0, Duration::from_micros(600), 42);
        assert!(sent(plan.request_for(0, T0)).lease.is_some());
        let retry = sent(plan.request_for(1, T0));
        assert_eq!(retry.lease, None);
        assert!(retry.attempt.is_some(), "retries keep the deadline stamp");
        let last = sent(plan.request_for(2, T0));
        assert_eq!((last.lease, last.attempt), (None, None));
        assert!(!last.solicit_hint);
    }

    #[test]
    fn stamped_plan_stops_once_budget_is_spent() {
        let plan = AttemptPlan::stamped(base(false), 4, T0, Duration::from_micros(100), 9);
        let late = T0.saturating_add(Duration::from_micros(100));
        assert_eq!(plan.request_for(1, late), AttemptStep::BudgetSpent);
        // Attempt 0 always sends — the budget check only gates retries.
        assert!(matches!(plan.request_for(0, late), AttemptStep::Send(_)));
    }

    #[test]
    fn stamped_budget_is_floored_at_one_microsecond() {
        let plan = AttemptPlan::stamped(base(false), 3, T0, Duration::from_micros(50), 1);
        // Elapsed == budget exactly: attempt 0 still sends, with the
        // 1 µs floor (a zero budget would mean "already expired" to the
        // server).
        let req = sent(plan.request_for(0, T0.saturating_add(Duration::from_micros(50))));
        assert_eq!(req.attempt.unwrap().budget_us, 1);
    }

    #[test]
    fn backoff_pause_is_clamped_to_the_remaining_budget() {
        let plan = AttemptPlan::stamped(base(false), 4, T0, Duration::from_micros(100), 9);
        let at = T0.saturating_add(Duration::from_micros(60));
        // A jittered backoff proposing 1 ms must wake at the deadline
        // edge (40 µs away), not 960 µs past it.
        assert_eq!(
            plan.clamped_pause(Duration::from_millis(1), at),
            Duration::from_micros(40)
        );
        // A pause already inside the budget is untouched.
        assert_eq!(
            plan.clamped_pause(Duration::from_micros(10), at),
            Duration::from_micros(10)
        );
    }

    #[test]
    fn pause_after_budget_spent_is_zero() {
        let plan = AttemptPlan::stamped(base(false), 4, T0, Duration::from_micros(100), 9);
        let late = T0.saturating_add(Duration::from_micros(250));
        assert_eq!(
            plan.clamped_pause(Duration::from_millis(1), late),
            Duration::ZERO
        );
        // …and the very next schedule query stops the call.
        assert_eq!(plan.request_for(1, late), AttemptStep::BudgetSpent);
    }

    #[test]
    fn plain_plan_has_no_budget_to_clamp_against() {
        let plan = AttemptPlan::plain(base(false), 3);
        let late = T0.saturating_add(Duration::from_secs(10));
        assert_eq!(
            plan.clamped_pause(Duration::from_millis(7), late),
            Duration::from_millis(7)
        );
    }

    #[test]
    fn hedge_reuses_the_attempt_nonce_with_a_restamped_budget() {
        let plan = AttemptPlan::stamped(base(true), 3, T0, Duration::from_micros(600), 42);
        let first = sent(plan.request_for(0, T0));
        assert_eq!(first.attempt, Some(AttemptMeta::new(600, 42)));
        // Hedge fired 200 µs in: same id, same nonce, budget restamped
        // to what actually remains.
        let hedge = plan
            .hedge_for(0, T0.saturating_add(Duration::from_micros(200)))
            .expect("budget remains");
        assert_eq!(hedge.id, first.id);
        assert_eq!(hedge.attempt, Some(AttemptMeta::new(400, 42)));
    }

    #[test]
    fn hedge_of_an_unstamped_plan_is_refused() {
        // No deadline stamp ⇒ no nonce ⇒ the dedup window could not pair
        // the copies, so the hedge must not be sent at all.
        let plan = AttemptPlan::plain(base(false), 3);
        assert_eq!(plan.hedge_for(0, T0), None);
    }

    #[test]
    fn hedge_after_budget_spent_is_refused() {
        let plan = AttemptPlan::stamped(base(false), 3, T0, Duration::from_micros(100), 9);
        let late = T0.saturating_add(Duration::from_micros(100));
        assert_eq!(plan.hedge_for(0, late), None);
        assert_eq!(plan.hedge_for(1, late), None);
    }

    #[test]
    fn nonce_is_stable_across_attempts() {
        let plan = AttemptPlan::stamped(base(false), 4, T0, Duration::from_millis(1), 1234);
        assert_eq!(plan.nonce(), Some(1234));
        for attempt in 0..3 {
            assert_eq!(
                sent(plan.request_for(attempt, T0)).attempt.unwrap().nonce,
                1234
            );
        }
        assert_eq!(AttemptPlan::plain(base(false), 2).nonce(), None);
    }
}
