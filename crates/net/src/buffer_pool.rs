//! Recycled receive/send buffers for the UDP hot path.
//!
//! `recv_from` needs a scratch buffer big enough for the largest datagram.
//! Allocating one per call puts a malloc/free pair on every admission
//! request the server handles; [`BufferPool::acquire`] hands out recycled
//! buffers instead. Returned buffers park in a **thread-local** freelist —
//! checkout and return are plain `Vec` pushes/pops with no atomics, no
//! locks and no cross-core traffic, which is the right shape for the
//! server's share-nothing workers.
//!
//! The pool object itself only carries counters (`hits`/`misses`), shared
//! via `Arc` with `ServerStats` so recycling effectiveness shows up in
//! [`snapshot`]s next to the other hot-path counters. Buffers are not
//! owned by any particular pool: a buffer checked out against one pool and
//! dropped on another thread simply joins *that* thread's freelist. The
//! freelist is capped per thread, so a burst can never pin unbounded
//! memory.
//!
//! [`snapshot`]: BufferPoolSnapshot

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};

/// Most parked buffers per thread. Beyond this, dropped buffers free
/// normally. One listener + a handful of workers never hold more than a
/// few buffers at once, so this is generous.
const MAX_POOLED_PER_THREAD: usize = 32;

thread_local! {
    // const-initialized: touching the freelist never allocates by itself.
    static FREELIST: RefCell<Vec<Vec<u8>>> = const { RefCell::new(Vec::new()) };
}

/// Counters for one logical pool (e.g. one QoS server's sockets). See the
/// module docs — the buffers themselves live in thread-local freelists.
#[derive(Debug, Default)]
pub struct BufferPool {
    hits: AtomicU64,
    misses: AtomicU64,
}

/// A point-in-time copy of a pool's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferPoolSnapshot {
    /// Checkouts served from a recycled buffer (no allocation).
    pub hits: u64,
    /// Checkouts that had to allocate fresh.
    pub misses: u64,
}

impl BufferPool {
    /// A fresh pool (counters at zero).
    pub fn new() -> Self {
        Self::default()
    }

    /// Check out a buffer of exactly `len` bytes. Contents are
    /// unspecified — callers overwrite (a `recv` fills it and only the
    /// filled prefix is read). Dropping the returned handle recycles the
    /// buffer into the current thread's freelist.
    pub fn acquire(&self, len: usize) -> PooledBuf {
        let recycled = FREELIST
            .try_with(|cell| {
                let mut freelist = cell.borrow_mut();
                // Pop until a buffer with enough capacity turns up;
                // undersized strays (from a caller with a bigger request
                // size) are simply freed.
                while let Some(buf) = freelist.pop() {
                    if buf.capacity() >= len {
                        return Some(buf);
                    }
                }
                None
            })
            .ok()
            .flatten();
        match recycled {
            Some(mut buf) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                buf.resize(len, 0);
                PooledBuf { buf }
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                PooledBuf {
                    buf: vec![0u8; len],
                }
            }
        }
    }

    /// Checkouts served without allocating.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Checkouts that allocated fresh.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Both counters at once.
    pub fn snapshot(&self) -> BufferPoolSnapshot {
        BufferPoolSnapshot {
            hits: self.hits(),
            misses: self.misses(),
        }
    }
}

/// A checked-out buffer; recycles itself on drop.
#[derive(Debug)]
pub struct PooledBuf {
    buf: Vec<u8>,
}

impl Deref for PooledBuf {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsMut<[u8]> for PooledBuf {
    // The `B: AsMut<[u8]>` bound on `mmsg::recv_batch` lets pooled
    // scratch buffers and plain `Vec<u8>`s share one receive path.
    fn as_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        let buf = std::mem::take(&mut self.buf);
        // try_with: during thread teardown the freelist may already be
        // destroyed — then the buffer just frees normally.
        let _ = FREELIST.try_with(|cell| {
            let mut freelist = cell.borrow_mut();
            if freelist.len() < MAX_POOLED_PER_THREAD {
                freelist.push(buf);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drain this thread's freelist so tests see deterministic hit/miss
    /// sequences regardless of what ran before them on the same thread.
    fn drain_freelist() {
        FREELIST.with(|cell| cell.borrow_mut().clear());
    }

    #[test]
    fn first_acquire_misses_then_recycles() {
        drain_freelist();
        let pool = BufferPool::new();
        let buf = pool.acquire(1401);
        assert_eq!(buf.len(), 1401);
        drop(buf);
        let again = pool.acquire(1401);
        assert_eq!(again.len(), 1401);
        assert_eq!(pool.snapshot(), BufferPoolSnapshot { hits: 1, misses: 1 });
    }

    #[test]
    fn undersized_recycled_buffers_are_discarded_not_returned() {
        drain_freelist();
        let pool = BufferPool::new();
        drop(pool.acquire(16)); // parks a 16-byte buffer
        let big = pool.acquire(4096); // must not get the small one
        assert_eq!(big.len(), 4096);
        assert_eq!(pool.misses(), 2);
        assert_eq!(pool.hits(), 0);
    }

    #[test]
    fn shrinking_reuse_keeps_exact_len() {
        drain_freelist();
        let pool = BufferPool::new();
        drop(pool.acquire(1000));
        let small = pool.acquire(10);
        assert_eq!(small.len(), 10, "len must match the request, not capacity");
        assert_eq!(pool.hits(), 1);
    }

    #[test]
    fn buffers_are_writable_through_deref() {
        drain_freelist();
        let pool = BufferPool::new();
        let mut buf = pool.acquire(8);
        buf[0] = 0xAB;
        buf[7] = 0xCD;
        assert_eq!((buf[0], buf[7]), (0xAB, 0xCD));
    }

    #[test]
    fn freelist_is_bounded() {
        drain_freelist();
        let pool = BufferPool::new();
        let held: Vec<_> = (0..2 * MAX_POOLED_PER_THREAD)
            .map(|_| pool.acquire(64))
            .collect();
        drop(held);
        let parked = FREELIST.with(|cell| cell.borrow().len());
        assert!(parked <= MAX_POOLED_PER_THREAD, "freelist grew to {parked}");
    }

    #[test]
    fn counters_are_per_pool_even_with_shared_freelists() {
        drain_freelist();
        let a = BufferPool::new();
        let b = BufferPool::new();
        drop(a.acquire(100)); // a: 1 miss, buffer parked
        drop(b.acquire(100)); // b: 1 hit (recycled from a's checkout)
        assert_eq!((a.hits(), a.misses()), (0, 1));
        assert_eq!((b.hits(), b.misses()), (1, 0));
    }
}
