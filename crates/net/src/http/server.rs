//! The async HTTP server loop shared by routers, the gateway LB and apps.

use super::message::{HttpRequest, HttpResponse, StatusCode};
use super::parser::{read_request, ParseLimits};
use janus_types::Result;
use std::future::Future;
use std::net::SocketAddr;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use tokio::io::{AsyncWriteExt, BufReader};
use tokio::net::{TcpListener, TcpStream};

/// A request handler. Implemented by the request router, the gateway LB
/// and the demo application front ends.
pub trait HttpHandler: Send + Sync + 'static {
    /// Handle one request from `peer`.
    fn handle(
        &self,
        request: HttpRequest,
        peer: SocketAddr,
    ) -> Pin<Box<dyn Future<Output = HttpResponse> + Send + '_>>;
}

/// Blanket impl so plain async closures can serve as handlers.
impl<F, Fut> HttpHandler for F
where
    F: Fn(HttpRequest, SocketAddr) -> Fut + Send + Sync + 'static,
    Fut: Future<Output = HttpResponse> + Send + 'static,
{
    fn handle(
        &self,
        request: HttpRequest,
        peer: SocketAddr,
    ) -> Pin<Box<dyn Future<Output = HttpResponse> + Send + '_>> {
        Box::pin(self(request, peer))
    }
}

/// A running HTTP/1.1 server with keep-alive.
///
/// Dropping the handle (or calling [`shutdown`](Self::shutdown)) stops the
/// accept loop; in-flight connections finish their current request.
#[derive(Debug)]
pub struct HttpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    connections: Arc<AtomicU64>,
    requests: Arc<AtomicU64>,
}

impl HttpServer {
    /// Bind to an ephemeral loopback port and start serving `handler`.
    pub async fn spawn(handler: Arc<dyn HttpHandler>) -> Result<HttpServer> {
        Self::spawn_with_limits(handler, ParseLimits::default()).await
    }

    /// Bind with explicit parse limits.
    pub async fn spawn_with_limits(
        handler: Arc<dyn HttpHandler>,
        limits: ParseLimits,
    ) -> Result<HttpServer> {
        let listener = TcpListener::bind(("127.0.0.1", 0)).await?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let connections = Arc::new(AtomicU64::new(0));
        let requests = Arc::new(AtomicU64::new(0));

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_connections = Arc::clone(&connections);
        let accept_requests = Arc::clone(&requests);
        tokio::spawn(async move {
            loop {
                let (stream, peer) = match listener.accept().await {
                    Ok(x) => x,
                    Err(_) => break,
                };
                if accept_shutdown.load(Ordering::SeqCst) {
                    break;
                }
                accept_connections.fetch_add(1, Ordering::Relaxed);
                let handler = Arc::clone(&handler);
                let limits = limits.clone();
                let shutdown = Arc::clone(&accept_shutdown);
                let requests = Arc::clone(&accept_requests);
                tokio::spawn(async move {
                    let _ =
                        serve_connection(stream, peer, handler, limits, shutdown, requests).await;
                });
            }
        });

        Ok(HttpServer {
            addr,
            shutdown,
            connections,
            requests,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections accepted so far.
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }

    /// Requests served so far.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Stop accepting connections and stop serving new requests on
    /// existing ones.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Poke the accept loop so it observes the flag.
        crate::poke_listener(self.addr);
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }
}

async fn serve_connection(
    stream: TcpStream,
    peer: SocketAddr,
    handler: Arc<dyn HttpHandler>,
    limits: ParseLimits,
    shutdown: Arc<AtomicBool>,
    requests: Arc<AtomicU64>,
) -> Result<()> {
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream);
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        let request = match read_request(&mut reader, &limits).await {
            Ok(Some(req)) => req,
            Ok(None) => return Ok(()), // clean keep-alive close
            Err(_) => {
                // Malformed request: answer 400 and drop the connection.
                let resp = HttpResponse::status(StatusCode::BAD_REQUEST);
                let _ = reader.get_mut().write_all(&resp.to_bytes()).await;
                return Ok(());
            }
        };
        requests.fetch_add(1, Ordering::Relaxed);
        let close = request.wants_close();
        let response = handler.handle(request, peer).await;
        reader.get_mut().write_all(&response.to_bytes()).await?;
        if close {
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::HttpClient;

    async fn echo_server() -> HttpServer {
        HttpServer::spawn(Arc::new(|req: HttpRequest, peer: SocketAddr| async move {
            HttpResponse::ok(format!("{} {} from {}", req.method, req.target, peer.ip()))
        }))
        .await
        .unwrap()
    }

    #[tokio::test]
    async fn serves_basic_request() {
        let server = echo_server().await;
        let mut client = HttpClient::connect(server.addr()).await.unwrap();
        let resp = client.request(&HttpRequest::get("/hello")).await.unwrap();
        assert_eq!(resp.status, StatusCode::OK);
        assert_eq!(resp.body_text(), "GET /hello from 127.0.0.1");
        assert_eq!(server.requests(), 1);
    }

    #[tokio::test]
    async fn keep_alive_reuses_connection() {
        let server = echo_server().await;
        let mut client = HttpClient::connect(server.addr()).await.unwrap();
        for i in 0..10 {
            let resp = client
                .request(&HttpRequest::get(format!("/req{i}")))
                .await
                .unwrap();
            assert!(resp.body_text().contains(&format!("/req{i}")));
        }
        assert_eq!(
            server.connections(),
            1,
            "keep-alive should reuse one TCP connection"
        );
        assert_eq!(server.requests(), 10);
    }

    #[tokio::test]
    async fn parallel_clients_are_served() {
        let server = echo_server().await;
        let addr = server.addr();
        let mut handles = Vec::new();
        for i in 0..16 {
            handles.push(tokio::spawn(async move {
                let mut client = HttpClient::connect(addr).await.unwrap();
                let resp = client
                    .request(&HttpRequest::get(format!("/client{i}")))
                    .await
                    .unwrap();
                assert!(resp.body_text().contains(&format!("/client{i}")));
            }));
        }
        for h in handles {
            h.await.unwrap();
        }
        assert_eq!(server.requests(), 16);
    }

    #[tokio::test]
    async fn malformed_request_gets_400() {
        use tokio::io::AsyncReadExt;
        let server = echo_server().await;
        let mut stream = TcpStream::connect(server.addr()).await.unwrap();
        stream.write_all(b"NONSENSE\r\n\r\n").await.unwrap();
        let mut buf = Vec::new();
        stream.read_to_end(&mut buf).await.unwrap();
        let text = String::from_utf8_lossy(&buf);
        assert!(text.starts_with("HTTP/1.1 400"), "{text}");
    }

    #[tokio::test]
    async fn connection_close_honored() {
        use tokio::io::AsyncReadExt;
        let server = echo_server().await;
        let mut stream = TcpStream::connect(server.addr()).await.unwrap();
        let req = HttpRequest::get("/bye").with_header("connection", "close");
        stream.write_all(&req.to_bytes()).await.unwrap();
        let mut buf = Vec::new();
        // read_to_end only returns if the server actually closes.
        stream.read_to_end(&mut buf).await.unwrap();
        assert!(String::from_utf8_lossy(&buf).starts_with("HTTP/1.1 200"));
    }

    #[tokio::test]
    async fn shutdown_stops_new_connections() {
        let server = echo_server().await;
        let addr = server.addr();
        server.shutdown();
        tokio::time::sleep(std::time::Duration::from_millis(50)).await;
        // Either the connect fails outright or the first request errors.
        let outcome = async {
            let mut client = HttpClient::connect(addr).await?;
            client.request(&HttpRequest::get("/after")).await
        }
        .await;
        assert!(outcome.is_err(), "server answered after shutdown");
    }
}
