//! Incremental HTTP/1.1 message parsing over async streams.

use super::message::{HttpRequest, HttpResponse, Method, StatusCode};
use janus_types::{JanusError, Result};
use tokio::io::{AsyncBufRead, AsyncReadExt};

/// Defensive limits for parsing messages from untrusted peers.
#[derive(Debug, Clone)]
pub struct ParseLimits {
    /// Maximum bytes in the request/status line or any header line.
    pub max_line: usize,
    /// Maximum number of headers.
    pub max_headers: usize,
    /// Maximum declared `Content-Length`.
    pub max_body: usize,
}

impl Default for ParseLimits {
    fn default() -> Self {
        ParseLimits {
            max_line: 8 * 1024,
            max_headers: 64,
            max_body: 1024 * 1024,
        }
    }
}

/// Read one CRLF- (or LF-) terminated line, enforcing the length limit.
/// Returns `None` on clean EOF before any byte.
async fn read_line<R: AsyncBufRead + Unpin>(
    reader: &mut R,
    limits: &ParseLimits,
) -> Result<Option<String>> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte).await? {
            0 => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(JanusError::http("connection closed mid-line"));
            }
            _ => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    let s = String::from_utf8(line)
                        .map_err(|_| JanusError::http("non-UTF-8 header line"))?;
                    return Ok(Some(s));
                }
                line.push(byte[0]);
                if line.len() > limits.max_line {
                    return Err(JanusError::http("header line too long"));
                }
            }
        }
    }
}

async fn read_headers<R: AsyncBufRead + Unpin>(
    reader: &mut R,
    limits: &ParseLimits,
) -> Result<Vec<(String, String)>> {
    let mut headers = Vec::new();
    loop {
        let line = read_line(reader, limits)
            .await?
            .ok_or_else(|| JanusError::http("EOF in headers"))?;
        if line.is_empty() {
            return Ok(headers);
        }
        if headers.len() >= limits.max_headers {
            return Err(JanusError::http("too many headers"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| JanusError::http(format!("malformed header: {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
}

fn content_length(headers: &[(String, String)], limits: &ParseLimits) -> Result<usize> {
    match headers.iter().find(|(n, _)| n == "content-length") {
        None => Ok(0),
        Some((_, v)) => {
            let len: usize = v
                .parse()
                .map_err(|_| JanusError::http(format!("bad content-length: {v:?}")))?;
            if len > limits.max_body {
                return Err(JanusError::http(format!("body of {len} bytes too large")));
            }
            Ok(len)
        }
    }
}

async fn read_body<R: AsyncBufRead + Unpin>(reader: &mut R, len: usize) -> Result<Vec<u8>> {
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body).await?;
    Ok(body)
}

/// Read one request from the stream. `Ok(None)` means the peer closed the
/// connection cleanly between requests (normal keep-alive shutdown).
pub async fn read_request<R: AsyncBufRead + Unpin>(
    reader: &mut R,
    limits: &ParseLimits,
) -> Result<Option<HttpRequest>> {
    let line = match read_line(reader, limits).await? {
        None => return Ok(None),
        Some(line) => line,
    };
    let mut parts = line.split(' ');
    let method = parts
        .next()
        .and_then(Method::parse)
        .ok_or_else(|| JanusError::http(format!("bad method in {line:?}")))?;
    let target = parts
        .next()
        .ok_or_else(|| JanusError::http("missing request target"))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| JanusError::http("missing HTTP version"))?;
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(JanusError::http(format!("unsupported version {version}")));
    }
    if target.is_empty() || !target.starts_with('/') {
        return Err(JanusError::http(format!("bad target {target:?}")));
    }
    let headers = read_headers(reader, limits).await?;
    let len = content_length(&headers, limits)?;
    let body = read_body(reader, len).await?;
    Ok(Some(HttpRequest {
        method,
        target,
        headers,
        body,
    }))
}

/// Read one response from the stream.
pub async fn read_response<R: AsyncBufRead + Unpin>(
    reader: &mut R,
    limits: &ParseLimits,
) -> Result<HttpResponse> {
    let line = read_line(reader, limits)
        .await?
        .ok_or_else(|| JanusError::http("EOF before status line"))?;
    let mut parts = line.splitn(3, ' ');
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(JanusError::http(format!("bad status line {line:?}")));
    }
    let code: u16 = parts
        .next()
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| JanusError::http(format!("bad status code in {line:?}")))?;
    let headers = read_headers(reader, limits).await?;
    let len = content_length(&headers, limits)?;
    let body = read_body(reader, len).await?;
    Ok(HttpResponse {
        status: StatusCode(code),
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;
    use tokio::io::BufReader;

    async fn parse_request(wire: &str) -> Result<Option<HttpRequest>> {
        let mut reader = BufReader::new(Cursor::new(wire.as_bytes().to_vec()));
        read_request(&mut reader, &ParseLimits::default()).await
    }

    async fn parse_response(wire: &str) -> Result<HttpResponse> {
        let mut reader = BufReader::new(Cursor::new(wire.as_bytes().to_vec()));
        read_response(&mut reader, &ParseLimits::default()).await
    }

    #[tokio::test]
    async fn parses_simple_get() {
        let req = parse_request("GET /qos?key=alice HTTP/1.1\r\nhost: janus\r\n\r\n")
            .await
            .unwrap()
            .unwrap();
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.target, "/qos?key=alice");
        assert_eq!(req.header("host"), Some("janus"));
        assert!(req.body.is_empty());
    }

    #[tokio::test]
    async fn parses_post_with_body() {
        let req = parse_request("POST /rules HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello")
            .await
            .unwrap()
            .unwrap();
        assert_eq!(req.method, Method::Post);
        assert_eq!(req.body, b"hello");
    }

    #[tokio::test]
    async fn bare_lf_lines_accepted() {
        let req = parse_request("GET / HTTP/1.1\nhost: x\n\n")
            .await
            .unwrap()
            .unwrap();
        assert_eq!(req.header("host"), Some("x"));
    }

    #[tokio::test]
    async fn clean_eof_returns_none() {
        assert!(parse_request("").await.unwrap().is_none());
    }

    #[tokio::test]
    async fn eof_mid_request_errors() {
        assert!(parse_request("GET / HT").await.is_err());
        assert!(parse_request("GET / HTTP/1.1\r\nhost: x\r\n")
            .await
            .is_err());
    }

    #[tokio::test]
    async fn rejects_bad_method() {
        assert!(parse_request("BREW /pot HTTP/1.1\r\n\r\n").await.is_err());
    }

    #[tokio::test]
    async fn rejects_bad_version() {
        assert!(parse_request("GET / HTTP/2.0\r\n\r\n").await.is_err());
        assert!(parse_request("GET /\r\n\r\n").await.is_err());
    }

    #[tokio::test]
    async fn rejects_relative_target() {
        assert!(parse_request("GET index.html HTTP/1.1\r\n\r\n")
            .await
            .is_err());
    }

    #[tokio::test]
    async fn rejects_oversized_header_line() {
        let long = "x".repeat(10_000);
        let wire = format!("GET /{long} HTTP/1.1\r\n\r\n");
        assert!(parse_request(&wire).await.is_err());
    }

    #[tokio::test]
    async fn rejects_too_many_headers() {
        let mut wire = String::from("GET / HTTP/1.1\r\n");
        for i in 0..100 {
            wire.push_str(&format!("h{i}: v\r\n"));
        }
        wire.push_str("\r\n");
        assert!(parse_request(&wire).await.is_err());
    }

    #[tokio::test]
    async fn rejects_oversized_body() {
        let wire = format!("POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n", 10_000_000);
        assert!(parse_request(&wire).await.is_err());
    }

    #[tokio::test]
    async fn rejects_malformed_content_length() {
        let wire = "POST / HTTP/1.1\r\ncontent-length: ten\r\n\r\n";
        assert!(parse_request(wire).await.is_err());
    }

    #[tokio::test]
    async fn rejects_header_without_colon() {
        assert!(parse_request("GET / HTTP/1.1\r\nbroken header\r\n\r\n")
            .await
            .is_err());
    }

    #[tokio::test]
    async fn keep_alive_reads_back_to_back_requests() {
        let wire = "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let mut reader = BufReader::new(Cursor::new(wire.as_bytes().to_vec()));
        let limits = ParseLimits::default();
        let a = read_request(&mut reader, &limits).await.unwrap().unwrap();
        let b = read_request(&mut reader, &limits).await.unwrap().unwrap();
        let end = read_request(&mut reader, &limits).await.unwrap();
        assert_eq!(a.target, "/a");
        assert_eq!(b.target, "/b");
        assert!(end.is_none());
    }

    #[tokio::test]
    async fn parses_response() {
        let resp = parse_response("HTTP/1.1 200 OK\r\ncontent-length: 4\r\n\r\nTRUE")
            .await
            .unwrap();
        assert_eq!(resp.status, StatusCode::OK);
        assert_eq!(resp.body, b"TRUE");
    }

    #[tokio::test]
    async fn parses_response_with_long_reason() {
        let resp = parse_response("HTTP/1.1 500 Internal Server Error\r\n\r\n")
            .await
            .unwrap();
        assert_eq!(resp.status, StatusCode::INTERNAL_SERVER_ERROR);
        assert!(resp.body.is_empty());
    }

    #[tokio::test]
    async fn response_roundtrips_through_serializer() {
        let original = HttpResponse::ok("hello").with_header("x-test", "1");
        let wire = String::from_utf8(original.to_bytes()).unwrap();
        let parsed = parse_response(&wire).await.unwrap();
        assert_eq!(parsed.status, original.status);
        assert_eq!(parsed.body, original.body);
        assert_eq!(parsed.header("x-test"), Some("1"));
    }

    #[tokio::test]
    async fn request_roundtrips_through_serializer() {
        let original = HttpRequest::post("/rules?op=add", "payload").with_header("x-a", "b");
        let wire = String::from_utf8(original.to_bytes()).unwrap();
        let parsed = parse_request(&wire).await.unwrap().unwrap();
        assert_eq!(parsed.method, original.method);
        assert_eq!(parsed.target, original.target);
        assert_eq!(parsed.body, original.body);
        assert_eq!(parsed.header("x-a"), Some("b"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::http::{HttpRequest, Method};
    use proptest::prelude::*;
    use std::io::Cursor;
    use tokio::io::BufReader;

    fn parse(bytes: Vec<u8>) -> Result<Option<HttpRequest>> {
        tokio::runtime::Builder::new_current_thread()
            .build()
            .unwrap()
            .block_on(async move {
                let mut reader = BufReader::new(Cursor::new(bytes));
                read_request(&mut reader, &ParseLimits::default()).await
            })
    }

    fn header_name() -> impl Strategy<Value = String> {
        "[a-z][a-z0-9-]{0,20}".prop_filter("content-length is auto-set", |n| n != "content-length")
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Any serialized request parses back to itself.
        #[test]
        fn serialized_requests_roundtrip(
            method in prop_oneof![
                Just(Method::Get), Just(Method::Post),
                Just(Method::Put), Just(Method::Delete),
            ],
            path in "/[a-zA-Z0-9/_.-]{0,40}",
            query in proptest::option::of("[a-zA-Z0-9=&%._-]{1,40}"),
            headers in proptest::collection::vec(
                (header_name(), "[ -~]{0,40}"),
                0..6,
            ),
            body in proptest::collection::vec(any::<u8>(), 0..200),
        ) {
            let target = match &query {
                Some(q) => format!("{path}?{q}"),
                None => path.clone(),
            };
            let mut request = HttpRequest {
                method,
                target,
                headers: Vec::new(),
                body,
            };
            for (name, value) in &headers {
                request = request.with_header(name, value.trim());
            }
            let parsed = parse(request.to_bytes()).unwrap().unwrap();
            prop_assert_eq!(parsed.method, request.method);
            prop_assert_eq!(&parsed.target, &request.target);
            prop_assert_eq!(&parsed.body, &request.body);
            for (name, value) in &request.headers {
                prop_assert_eq!(parsed.header(name), Some(value.as_str()));
            }
        }

        /// The parser rejects or accepts arbitrary bytes without panicking
        /// and without unbounded allocation.
        #[test]
        fn parser_never_panics_on_fuzz(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
            let _ = parse(bytes);
        }

        /// Prefix truncation of a valid request is never silently accepted
        /// as a complete request.
        #[test]
        fn truncated_requests_do_not_parse_as_complete(cut in 1usize..60) {
            let wire = HttpRequest::post("/upload?x=1", vec![7u8; 20])
                .with_header("x-tag", "v")
                .to_bytes();
            let cut = cut.min(wire.len() - 1);
            if let Ok(Some(req)) = parse(wire[..cut].to_vec()) {
                // Only acceptable if the cut landed exactly after a
                // shorter-but-complete message — impossible here since
                // content-length demands the full body.
                prop_assert!(false, "accepted truncated request {req:?}");
            }
        }
    }
}
