//! HTTP/1.1 client with keep-alive.

use super::message::{HttpRequest, HttpResponse};
use super::parser::{read_response, ParseLimits};
use janus_types::Result;
use std::net::SocketAddr;
use tokio::io::{AsyncWriteExt, BufReader};
use tokio::net::TcpStream;

/// A client-side HTTP/1.1 connection.
///
/// Requests on one client are sequential (issue, await response, repeat),
/// exactly like a single `ab` worker; open several clients for
/// concurrency.
#[derive(Debug)]
pub struct HttpClient {
    reader: BufReader<TcpStream>,
    limits: ParseLimits,
    peer: SocketAddr,
}

impl HttpClient {
    /// Open a keep-alive connection to `addr`.
    pub async fn connect(addr: SocketAddr) -> Result<HttpClient> {
        let stream = TcpStream::connect(addr).await?;
        stream.set_nodelay(true)?;
        Ok(HttpClient {
            reader: BufReader::new(stream),
            limits: ParseLimits::default(),
            peer: addr,
        })
    }

    /// The server this client is connected to.
    pub fn peer(&self) -> SocketAddr {
        self.peer
    }

    /// Issue one request and await its response.
    pub async fn request(&mut self, request: &HttpRequest) -> Result<HttpResponse> {
        self.reader.get_mut().write_all(&request.to_bytes()).await?;
        read_response(&mut self.reader, &self.limits).await
    }

    /// One-shot convenience: connect, issue, close. This is the traffic
    /// pattern the gateway load balancer inflicts on routers ("establishes
    /// another connection to the request router ... then closes the
    /// connection", paper §V-A) — and the reason the paper sees TIME_WAIT
    /// pile-ups.
    pub async fn oneshot(addr: SocketAddr, request: &HttpRequest) -> Result<HttpResponse> {
        let mut client = HttpClient::connect(addr).await?;
        let mut req = request.clone();
        req.headers
            .push(("connection".to_string(), "close".to_string()));
        client.request(&req).await
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{HttpServer, StatusCode};
    use std::sync::Arc;

    #[tokio::test]
    async fn oneshot_closes_after_response() {
        let server = HttpServer::spawn(Arc::new(
            |_req: HttpRequest, _peer: SocketAddr| async move { HttpResponse::ok("once") },
        ))
        .await
        .unwrap();
        let resp = HttpClient::oneshot(server.addr(), &HttpRequest::get("/"))
            .await
            .unwrap();
        assert_eq!(resp.status, StatusCode::OK);
        assert_eq!(resp.body_text(), "once");
    }

    #[tokio::test]
    async fn connect_to_dead_port_errors() {
        // Bind and immediately drop to obtain a (very likely) dead port.
        let listener = tokio::net::TcpListener::bind(("127.0.0.1", 0))
            .await
            .unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener);
        assert!(HttpClient::connect(addr).await.is_err());
    }
}
