//! HTTP request/response value types.

use std::fmt;

/// The request methods Janus components use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Idempotent reads — admission checks are GETs in the reference
    /// integration.
    Get,
    /// Mutations (rule administration, photo uploads).
    Post,
    /// Rule deletion in the admin API.
    Delete,
    /// Rule replacement in the admin API.
    Put,
}

impl Method {
    /// Parse from the request-line token.
    pub fn parse(s: &str) -> Option<Method> {
        match s {
            "GET" => Some(Method::Get),
            "POST" => Some(Method::Post),
            "DELETE" => Some(Method::Delete),
            "PUT" => Some(Method::Put),
            _ => None,
        }
    }

    /// The wire token.
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Delete => "DELETE",
            Method::Put => "PUT",
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Status codes used across Janus (a deliberate subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StatusCode(pub u16);

impl StatusCode {
    /// 200.
    pub const OK: StatusCode = StatusCode(200);
    /// 400.
    pub const BAD_REQUEST: StatusCode = StatusCode(400);
    /// 403 — the throttling response in the paper's integration snippet
    /// (`HTTP/1.1 403 Forbidden`).
    pub const FORBIDDEN: StatusCode = StatusCode(403);
    /// 404.
    pub const NOT_FOUND: StatusCode = StatusCode(404);
    /// 500.
    pub const INTERNAL_SERVER_ERROR: StatusCode = StatusCode(500);
    /// 502 — the gateway LB's answer when no backend responds.
    pub const BAD_GATEWAY: StatusCode = StatusCode(502);
    /// 503.
    pub const SERVICE_UNAVAILABLE: StatusCode = StatusCode(503);

    /// Canonical reason phrase.
    pub fn reason(self) -> &'static str {
        match self.0 {
            200 => "OK",
            400 => "Bad Request",
            403 => "Forbidden",
            404 => "Not Found",
            500 => "Internal Server Error",
            502 => "Bad Gateway",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// 2xx?
    pub fn is_success(self) -> bool {
        (200..300).contains(&self.0)
    }
}

impl fmt::Display for StatusCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.0, self.reason())
    }
}

/// An HTTP/1.1 request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method.
    pub method: Method,
    /// Origin-form target: path plus optional query (`/qos?key=alice`).
    pub target: String,
    /// Headers in arrival order; names stored lowercase.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// A GET request for `target` with no body.
    pub fn get(target: impl Into<String>) -> Self {
        HttpRequest {
            method: Method::Get,
            target: target.into(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// A POST request with a body.
    pub fn post(target: impl Into<String>, body: impl Into<Vec<u8>>) -> Self {
        HttpRequest {
            method: Method::Post,
            target: target.into(),
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Add a header (name is lowercased).
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers
            .push((name.to_ascii_lowercase(), value.to_string()));
        self
    }

    /// First header with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The path component of the target (before `?`).
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// The raw query string, if any.
    pub fn query(&self) -> Option<&str> {
        self.target.split_once('?').map(|(_, q)| q)
    }

    /// Value of a query parameter, percent-decoding `%XX` and `+`.
    pub fn query_param(&self, name: &str) -> Option<String> {
        let query = self.query()?;
        for pair in query.split('&') {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            if percent_decode(k) == name {
                return Some(percent_decode(v));
            }
        }
        None
    }

    /// Did the peer ask to close the connection after this exchange?
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// Serialize to wire bytes (adds `Content-Length`; callers add
    /// `Connection` themselves if they want `close`).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.body.len());
        out.extend_from_slice(self.method.as_str().as_bytes());
        out.push(b' ');
        out.extend_from_slice(self.target.as_bytes());
        out.extend_from_slice(b" HTTP/1.1\r\n");
        for (name, value) in &self.headers {
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(b": ");
            out.extend_from_slice(value.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        if self.header("content-length").is_none() {
            out.extend_from_slice(format!("content-length: {}\r\n", self.body.len()).as_bytes());
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }
}

/// An HTTP/1.1 response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code.
    pub status: StatusCode,
    /// Headers in order; names lowercase.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// 200 with a `text/plain` body.
    pub fn ok(body: impl Into<Vec<u8>>) -> Self {
        HttpResponse {
            status: StatusCode::OK,
            headers: vec![("content-type".into(), "text/plain".into())],
            body: body.into(),
        }
    }

    /// 200 with a `text/html` body.
    pub fn html(body: impl Into<Vec<u8>>) -> Self {
        HttpResponse {
            status: StatusCode::OK,
            headers: vec![("content-type".into(), "text/html".into())],
            body: body.into(),
        }
    }

    /// An empty-bodied response with `status`.
    pub fn status(status: StatusCode) -> Self {
        HttpResponse {
            status,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// The paper's throttle reply: `HTTP/1.1 403 Forbidden`.
    pub fn forbidden() -> Self {
        let mut r = Self::status(StatusCode::FORBIDDEN);
        r.body = b"Throttled".to_vec();
        r
    }

    /// Add a header (name lowercased).
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers
            .push((name.to_ascii_lowercase(), value.to_string()));
        self
    }

    /// First header with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8 (lossy), for assertions and text endpoints.
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// Serialize to wire bytes (adds `Content-Length`).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.body.len());
        out.extend_from_slice(format!("HTTP/1.1 {}\r\n", self.status).as_bytes());
        for (name, value) in &self.headers {
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(b": ");
            out.extend_from_slice(value.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        if self.header("content-length").is_none() {
            out.extend_from_slice(format!("content-length: {}\r\n", self.body.len()).as_bytes());
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }
}

/// Decode `%XX` escapes and `+`-as-space in a query component. Invalid
/// escapes pass through verbatim (robustness over strictness at the edge).
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Encode a string for safe use in a query component.
pub fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for &b in s.as_bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_roundtrip() {
        for m in [Method::Get, Method::Post, Method::Delete, Method::Put] {
            assert_eq!(Method::parse(m.as_str()), Some(m));
        }
        assert_eq!(Method::parse("PATCH"), None);
    }

    #[test]
    fn status_reasons() {
        assert_eq!(StatusCode::OK.to_string(), "200 OK");
        assert_eq!(StatusCode::FORBIDDEN.to_string(), "403 Forbidden");
        assert!(StatusCode::OK.is_success());
        assert!(!StatusCode::BAD_GATEWAY.is_success());
    }

    #[test]
    fn query_param_extraction() {
        let req = HttpRequest::get("/qos?key=alice%3Aphotos&mode=check");
        assert_eq!(req.path(), "/qos");
        assert_eq!(req.query_param("key").as_deref(), Some("alice:photos"));
        assert_eq!(req.query_param("mode").as_deref(), Some("check"));
        assert_eq!(req.query_param("missing"), None);
    }

    #[test]
    fn query_param_plus_is_space() {
        let req = HttpRequest::get("/search?q=hello+world");
        assert_eq!(req.query_param("q").as_deref(), Some("hello world"));
    }

    #[test]
    fn no_query_means_no_params() {
        let req = HttpRequest::get("/index.html");
        assert_eq!(req.query(), None);
        assert_eq!(req.query_param("x"), None);
        assert_eq!(req.path(), "/index.html");
    }

    #[test]
    fn headers_case_insensitive() {
        let req = HttpRequest::get("/").with_header("X-Forwarded-For", "10.0.0.1");
        assert_eq!(req.header("x-forwarded-for"), Some("10.0.0.1"));
        assert_eq!(req.header("X-FORWARDED-FOR"), Some("10.0.0.1"));
    }

    #[test]
    fn wants_close_detection() {
        assert!(!HttpRequest::get("/").wants_close());
        assert!(HttpRequest::get("/")
            .with_header("Connection", "close")
            .wants_close());
        assert!(!HttpRequest::get("/")
            .with_header("Connection", "keep-alive")
            .wants_close());
    }

    #[test]
    fn request_serialization_has_content_length() {
        let wire = HttpRequest::post("/rules", "body-bytes").to_bytes();
        let text = String::from_utf8(wire).unwrap();
        assert!(text.starts_with("POST /rules HTTP/1.1\r\n"), "{text}");
        assert!(text.contains("content-length: 10\r\n"), "{text}");
        assert!(text.ends_with("\r\nbody-bytes"), "{text}");
    }

    #[test]
    fn response_serialization() {
        let wire = HttpResponse::ok("TRUE").to_bytes();
        let text = String::from_utf8(wire).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("content-length: 4"), "{text}");
        assert!(text.ends_with("\r\nTRUE"), "{text}");
    }

    #[test]
    fn forbidden_matches_paper_snippet() {
        let resp = HttpResponse::forbidden();
        assert_eq!(resp.status, StatusCode::FORBIDDEN);
        let text = String::from_utf8(resp.to_bytes()).unwrap();
        assert!(text.starts_with("HTTP/1.1 403 Forbidden\r\n"));
    }

    #[test]
    fn percent_roundtrip() {
        for s in ["alice:photos", "10.0.0.1", "a b&c=d", "naïve", "100%"] {
            assert_eq!(percent_decode(&percent_encode(s)), s);
        }
    }

    #[test]
    fn percent_decode_tolerates_garbage() {
        assert_eq!(percent_decode("%"), "%");
        assert_eq!(percent_decode("%zz"), "%zz");
        assert_eq!(percent_decode("%4"), "%4");
        assert_eq!(percent_decode("ok%20fine"), "ok fine");
    }
}
