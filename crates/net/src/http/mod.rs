//! Minimal HTTP/1.1, from scratch.
//!
//! Janus's outer protocol is HTTP: QoS clients talk HTTP to the load
//! balancer, the gateway LB proxies HTTP to the request routers, and the
//! photo-sharing demo is an HTTP application. The subset implemented here
//! is exactly what those paths need:
//!
//! * request line + headers + `Content-Length` bodies (no chunked
//!   encoding, no TLS, no HTTP/2 — the paper's ELB listener is plain
//!   HTTP),
//! * keep-alive with `Connection: close` opt-out,
//! * defensive parsing limits (line length, header count, body size) so a
//!   public port cannot allocate unboundedly.

mod client;
mod message;
mod parser;
mod server;

pub use client::HttpClient;
pub use message::{percent_decode, percent_encode, HttpRequest, HttpResponse, Method, StatusCode};
pub use parser::{read_request, read_response, ParseLimits};
pub use server::{HttpHandler, HttpServer};
