//! Pooled UDP RPC: one shared socket, many in-flight exchanges.
//!
//! The paper's PHP router opens a socket per admission request —
//! [`crate::udp::UdpRpcClient`] reproduces that faithfully. A long-lived
//! async router can do better: bind one socket, tag every request with
//! its id, and demultiplex responses to per-request wakers. This module
//! is that optimization (an ablation over the paper's design, not a
//! replacement: the router accepts either client).
//!
//! Correctness notes:
//! * ids are allocated from an atomic counter, so concurrent callers
//!   never collide;
//! * late responses for timed-out or completed requests are dropped at
//!   the demux map;
//! * retries re-send the *same* id, so whichever attempt's response
//!   arrives first completes the call;
//! * with batching on, concurrent sends headed for the same QoS server
//!   coalesce into one datagram on a size-or-deadline trigger. Each
//!   retry re-enqueues the request individually, so the paper's
//!   per-request timeout × retry discipline is unchanged — only the
//!   datagram packing differs.

use crate::attempt::{AttemptPlan, AttemptStep};
use crate::fault::{Fate, FaultPlan};
use crate::latency::WireDiscipline;
use crate::udp::{OobDelivery, UdpRpcConfig};
use janus_clock::Nanos;
use janus_types::codec::{self, Frame, MAX_DATAGRAM_BYTES};
use janus_types::{JanusError, LeaseReport, QosKey, QosRequest, QosResponse, RequestId, Result};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tokio::net::UdpSocket;
use tokio::sync::oneshot;

/// Response demultiplexer: request id → waiting caller.
type Waiters = Arc<Mutex<HashMap<RequestId, oneshot::Sender<QosResponse>>>>;

/// Per-destination send queues awaiting a coalesced flush.
type PendingSends = Arc<Mutex<HashMap<SocketAddr, Vec<QosRequest>>>>;

/// Datagram-coalescing policy for the pooled client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Coalesce at all? Off reproduces the single-frame wire format.
    pub enabled: bool,
    /// Flush once this many frames are queued for one destination.
    pub max_frames: usize,
    /// Flush this long after the first frame queues, even if not full.
    pub max_delay: Duration,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            enabled: true,
            max_frames: 16,
            max_delay: Duration::from_micros(50),
        }
    }
}

impl BatchConfig {
    /// The paper-faithful single-frame-per-datagram wire format.
    pub fn disabled() -> Self {
        BatchConfig {
            enabled: false,
            ..BatchConfig::default()
        }
    }
}

/// A shared-socket UDP RPC client.
///
/// Cheap to clone; all clones share the socket and the demux task.
#[derive(Clone)]
pub struct PooledUdpRpcClient {
    socket: Arc<UdpSocket>,
    waiters: Waiters,
    config: UdpRpcConfig,
    batch: BatchConfig,
    pending: PendingSends,
    faults: Arc<FaultPlan>,
    next_id: Arc<AtomicU64>,
    oob: Arc<OobDelivery>,
}

impl std::fmt::Debug for PooledUdpRpcClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PooledUdpRpcClient")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl PooledUdpRpcClient {
    /// Bind the shared socket and start the demux task. Coalescing is on
    /// by default — this is the optimized client.
    pub async fn bind(config: UdpRpcConfig) -> Result<Self> {
        Self::bind_with_faults(config, FaultPlan::none()).await
    }

    /// Bind with fault injection on the send path.
    pub async fn bind_with_faults(config: UdpRpcConfig, faults: Arc<FaultPlan>) -> Result<Self> {
        Self::bind_with_batch(config, BatchConfig::default(), faults).await
    }

    /// Bind with an explicit coalescing policy.
    pub async fn bind_with_batch(
        config: UdpRpcConfig,
        batch: BatchConfig,
        faults: Arc<FaultPlan>,
    ) -> Result<Self> {
        let socket = Arc::new(UdpSocket::bind(config.bind_addr).await?);
        let waiters: Waiters = Arc::new(Mutex::new(HashMap::new()));

        // Demux task: route every arriving response frame — single or
        // batched — to its waiter.
        let demux_socket = Arc::clone(&socket);
        let demux_waiters = Arc::clone(&waiters);
        tokio::spawn(async move {
            let mut buf = vec![0u8; MAX_DATAGRAM_BYTES + 1];
            loop {
                let Ok((len, _peer)) = demux_socket.recv_from(&mut buf).await else {
                    return;
                };
                let Ok(frames) = codec::decode_all(&buf[..len]) else {
                    continue;
                };
                for frame in frames {
                    if let Frame::Response(resp) = frame {
                        // A missing waiter is a late duplicate: drop it.
                        if let Some(tx) = demux_waiters.lock().remove(&resp.id) {
                            let _ = tx.send(resp);
                        }
                    }
                }
            }
        });

        Ok(PooledUdpRpcClient {
            socket,
            waiters,
            config,
            batch,
            pending: Arc::new(Mutex::new(HashMap::new())),
            faults,
            next_id: Arc::new(AtomicU64::new(1)),
            oob: Arc::new(OobDelivery::new()),
        })
    }

    /// The retry discipline in force.
    pub fn config(&self) -> &UdpRpcConfig {
        &self.config
    }

    /// In-flight exchanges right now (diagnostics).
    pub fn in_flight(&self) -> usize {
        self.waiters.lock().len()
    }

    /// Perform one admission exchange with the QoS server at `server`.
    /// The request id is allocated internally (callers supply only the
    /// key), guaranteeing pool-wide uniqueness.
    pub async fn check(&self, server: SocketAddr, key: QosKey) -> Result<QosResponse> {
        self.do_check(server, key, false, None, &WireDiscipline::default())
            .await
    }

    /// Like [`check`](Self::check), but the first attempt solicits a rule
    /// hint in the response. Retries fall back to the plain frame, so a
    /// hint-unaware server (which drops the unknown frame kind) costs at
    /// most one lost attempt.
    pub async fn check_soliciting_hint(
        &self,
        server: SocketAddr,
        key: QosKey,
    ) -> Result<QosResponse> {
        self.do_check(server, key, true, None, &WireDiscipline::default())
            .await
    }

    /// Like the two above, but the first attempt also piggybacks a lease
    /// report (solicitation, renewal, or return-and-reconcile). Retries
    /// downgrade to the lease-free frame, so a lease-unaware server costs
    /// at most one lost attempt.
    pub async fn check_with_lease(
        &self,
        server: SocketAddr,
        key: QosKey,
        solicit: bool,
        lease: Option<LeaseReport>,
    ) -> Result<QosResponse> {
        self.do_check(server, key, solicit, lease, &WireDiscipline::default())
            .await
    }

    /// [`check_with_lease`](Self::check_with_lease) with the
    /// gray-failure discipline applied (DESIGN.md ablation 15): an
    /// adaptively-derived per-attempt timeout, an optional same-nonce
    /// hedge after [`WireDiscipline::hedge_delay`], retries and hedges
    /// gated by the shared [`crate::latency::RetryBudget`], and
    /// per-attempt RTTs recorded into the caller's latency window. The
    /// default (all-`None`) discipline reproduces the plain methods
    /// exactly.
    pub async fn check_disciplined(
        &self,
        server: SocketAddr,
        key: QosKey,
        solicit: bool,
        lease: Option<LeaseReport>,
        discipline: &WireDiscipline,
    ) -> Result<QosResponse> {
        self.do_check(server, key, solicit, lease, discipline).await
    }

    async fn do_check(
        &self,
        server: SocketAddr,
        key: QosKey,
        solicit: bool,
        lease: Option<LeaseReport>,
        discipline: &WireDiscipline,
    ) -> Result<QosResponse> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let mut request = if solicit {
            QosRequest::soliciting_hint(id, key)
        } else {
            QosRequest::new(id, key)
        };
        if let Some(report) = lease {
            request = request.with_lease(report);
        }
        // Same end-to-end deadline discipline as `UdpRpcClient::call`,
        // decided by the shared sans-IO [`AttemptPlan`]: every attempt but
        // the last carries the remaining budget and the logical request's
        // nonce, the final attempt downgrades to a legacy frame, and
        // retrying stops once the budget is spent.
        let attempts = self.config.attempts();
        let plan = if self.config.stamp_deadlines {
            AttemptPlan::stamped(
                request.clone(),
                attempts,
                Nanos::ZERO,
                self.config.worst_case(),
                crate::udp::fresh_nonce(),
            )
        } else {
            AttemptPlan::plain(request.clone(), attempts)
        };
        let started = std::time::Instant::now();
        let timeout = discipline.timeout.unwrap_or(self.config.timeout);
        if let (Some(stats), Some(t)) = (&discipline.stats, discipline.timeout) {
            stats
                .adaptive_timeout_us
                .store(t.as_micros() as u64, Ordering::Relaxed);
        }

        let (tx, mut rx) = oneshot::channel();
        self.waiters.lock().insert(id, tx);
        // Ensure cleanup on every exit path.
        let result = async {
            let mut attempted = 0u32;
            'attempts: for attempt in 0..attempts {
                if attempt > 0 {
                    // Retries draw from the shared budget first: a
                    // refusal means the fleet is already amplifying, and
                    // this call settles for the router default instead
                    // of adding load.
                    if let Some(budget) = &discipline.budget {
                        if !budget.try_withdraw() {
                            break;
                        }
                    }
                    let now = Nanos::from_nanos(started.elapsed().as_nanos() as u64);
                    // Clamped: a jittered backoff must never sleep past
                    // the point where `BudgetSpent` stops the call.
                    let pause = plan.clamped_pause(self.config.backoff.delay_before(attempt), now);
                    if !pause.is_zero() {
                        tokio::time::sleep(pause).await;
                    }
                } else if let Some(budget) = &discipline.budget {
                    budget.deposit();
                }
                let now = Nanos::from_nanos(started.elapsed().as_nanos() as u64);
                let this_attempt: QosRequest = match plan.request_for(attempt, now) {
                    AttemptStep::Send(frame) => frame,
                    AttemptStep::BudgetSpent => break,
                };
                attempted += 1;
                let sent = std::time::Instant::now();
                self.send_attempt(server, &this_attempt).await?;
                let mut remaining = timeout;
                let mut hedged = false;
                loop {
                    // An armed hedge splits the attempt's wait in two:
                    // fire the duplicate at the learned-tail delay, then
                    // wait out the rest of the timeout for whichever
                    // copy answers first.
                    let phase = match discipline.hedge_delay {
                        Some(delay) if !hedged && delay < remaining => delay,
                        _ => remaining,
                    };
                    match tokio::time::timeout(phase, &mut rx).await {
                        Ok(Ok(resp)) => {
                            if let Some(rtt) = &discipline.rtt {
                                rtt.record(sent.elapsed().as_micros() as u64);
                            }
                            if hedged {
                                if let Some(stats) = &discipline.stats {
                                    stats.hedge_wins.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            return Ok(resp);
                        }
                        // Channel dropped: demux task died (socket closed).
                        Ok(Err(_)) => return Err(JanusError::state("udp pool demux task is gone")),
                        Err(_elapsed) if !hedged && phase < remaining => {
                            hedged = true;
                            remaining -= phase;
                            // Slower than the partition's learned tail:
                            // re-present the *same* nonce (the dedup
                            // window makes the losing copy a cached
                            // duplicate, so the pair consumes one
                            // credit), budget permitting.
                            let now = Nanos::from_nanos(started.elapsed().as_nanos() as u64);
                            let funded = discipline
                                .budget
                                .as_ref()
                                .map_or(true, |budget| budget.try_withdraw());
                            if funded {
                                if let Some(frame) = plan.hedge_for(attempt, now) {
                                    self.send_attempt(server, &frame).await?;
                                    if let Some(stats) = &discipline.stats {
                                        stats.hedges_sent.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                            }
                        }
                        Err(_elapsed) => continue 'attempts,
                    }
                }
            }
            Err(JanusError::Timeout {
                attempts: attempted,
            })
        }
        .await;
        self.waiters.lock().remove(&id);
        result
    }

    /// Put one attempt of `request` on the wire. Unbatched: encode and
    /// send immediately. Batched: enqueue for `server` and flush when the
    /// queue fills or the deadline passes, whichever comes first.
    async fn send_attempt(&self, server: SocketAddr, request: &QosRequest) -> Result<()> {
        if !self.batch.enabled {
            return self
                .send_datagram(codec::encode_request(request), server)
                .await;
        }
        let mut to_flush = None;
        let mut arm_timer = false;
        {
            let mut pending = self.pending.lock();
            let queue = pending.entry(server).or_default();
            queue.push(request.clone());
            if queue.len() >= self.batch.max_frames.max(1) {
                to_flush = pending.remove(&server);
            } else {
                // First frame in a fresh window: schedule the deadline
                // flush. Later frames ride on this window's timer.
                arm_timer = queue.len() == 1;
            }
        }
        if arm_timer {
            let this = self.clone();
            tokio::spawn(async move {
                tokio::time::sleep(this.batch.max_delay).await;
                let queued = this.pending.lock().remove(&server);
                if let Some(queue) = queued {
                    let _ = this.flush_queue(server, queue).await;
                }
            });
        }
        match to_flush {
            Some(queue) => self.flush_queue(server, queue).await,
            None => Ok(()),
        }
    }

    /// Encode a drained queue (legacy format for a lone frame, batch
    /// otherwise) and send it, one fault-injection judgement per
    /// datagram — a dropped datagram loses the whole batch, exactly as a
    /// lossy link would, and each affected request retries on its own.
    async fn flush_queue(&self, server: SocketAddr, queue: Vec<QosRequest>) -> Result<()> {
        let wires = if queue.len() == 1 {
            vec![codec::encode_request(&queue[0])]
        } else {
            let frames: Vec<Frame> = queue.into_iter().map(Frame::Request).collect();
            codec::encode_batch(&frames)
        };
        // Fates roll per datagram exactly as before; the cleanly-
        // delivered remainder of a multi-datagram flush shares one
        // `sendmmsg` on Linux instead of one `sendto` each.
        let mut ready: Vec<bytes::Bytes> = Vec::new();
        for wire in wires {
            match self.faults.judge_fate() {
                Fate::Deliver(delay) if delay.is_zero() => ready.push(wire),
                fate => self.send_datagram_with_fate(fate, wire, server).await?,
            }
        }
        self.send_ready(&ready, server).await
    }

    /// Send fate-cleared datagrams: one `sendmmsg` when there is more
    /// than one (Linux), plain `send_to` otherwise.
    #[cfg(target_os = "linux")]
    async fn send_ready(&self, ready: &[bytes::Bytes], server: SocketAddr) -> Result<()> {
        use std::os::fd::AsRawFd;
        use tokio::io::Interest;
        match ready.len() {
            0 => Ok(()),
            1 => {
                self.socket.send_to(&ready[0], server).await?;
                Ok(())
            }
            _ => {
                let msgs: Vec<(&[u8], SocketAddr)> =
                    ready.iter().map(|w| (w.as_ref(), server)).collect();
                let fd = self.socket.as_raw_fd();
                self.socket
                    .async_io(Interest::WRITABLE, || {
                        crate::mmsg::send_batch_nonblocking(fd, &msgs, None).map(|_| ())
                    })
                    .await?;
                Ok(())
            }
        }
    }

    /// Portable fallback: one `send_to` per datagram, byte-identical.
    #[cfg(not(target_os = "linux"))]
    async fn send_ready(&self, ready: &[bytes::Bytes], server: SocketAddr) -> Result<()> {
        for wire in ready {
            self.socket.send_to(wire, server).await?;
        }
        Ok(())
    }

    /// Send one datagram through the fault plan. Duplicate and deferred
    /// copies drain from the out-of-band delivery queue so the caller
    /// never blocks beyond an inline delay fate.
    async fn send_datagram(&self, wire: bytes::Bytes, server: SocketAddr) -> Result<()> {
        let fate = self.faults.judge_fate();
        self.send_datagram_with_fate(fate, wire, server).await
    }

    /// [`Self::send_datagram`] with the fate already rolled (the flush
    /// path rolls fates itself so clean deliveries can share a batch).
    async fn send_datagram_with_fate(
        &self,
        fate: Fate,
        wire: bytes::Bytes,
        server: SocketAddr,
    ) -> Result<()> {
        match fate {
            Fate::Drop => Ok(()), // dropped on the floor, like a lossy link
            Fate::Deliver(delay) => {
                if !delay.is_zero() {
                    tokio::time::sleep(delay).await;
                }
                self.socket.send_to(&wire, server).await?;
                Ok(())
            }
            Fate::Duplicate(delay) => {
                self.socket.send_to(&wire, server).await?;
                self.oob
                    .transmit_after(delay, Arc::clone(&self.socket), wire, Some(server));
                Ok(())
            }
            Fate::Defer(delay) => {
                self.oob
                    .transmit_after(delay, Arc::clone(&self.socket), wire, Some(server));
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::udp::UdpServerSocket;
    use janus_types::Verdict;
    use std::time::Duration;

    fn key(s: &str) -> QosKey {
        QosKey::new(s).unwrap()
    }

    /// Echo server: allow iff the key length is even.
    async fn spawn_echo() -> SocketAddr {
        let server = UdpServerSocket::bind_ephemeral().await.unwrap();
        let addr = server.local_addr().unwrap();
        tokio::spawn(async move {
            loop {
                let Ok((req, peer)) = server.recv_request().await else {
                    return;
                };
                let verdict = Verdict::from_bool(req.key.len() % 2 == 0);
                let _ = server
                    .send_response(&QosResponse::new(req.id, verdict), peer)
                    .await;
            }
        });
        addr
    }

    #[tokio::test]
    async fn roundtrip() {
        let server = spawn_echo().await;
        let pool = PooledUdpRpcClient::bind(UdpRpcConfig::lan_defaults())
            .await
            .unwrap();
        assert_eq!(
            pool.check(server, key("ab")).await.unwrap().verdict,
            Verdict::Allow
        );
        assert_eq!(
            pool.check(server, key("abc")).await.unwrap().verdict,
            Verdict::Deny
        );
        assert_eq!(pool.in_flight(), 0);
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn concurrent_exchanges_demux_correctly() {
        let server = spawn_echo().await;
        let pool = PooledUdpRpcClient::bind(UdpRpcConfig::lan_defaults())
            .await
            .unwrap();
        let mut handles = Vec::new();
        for i in 0..128usize {
            let pool = pool.clone();
            handles.push(tokio::spawn(async move {
                let k = key(&"x".repeat(1 + i % 7));
                let resp = pool.check(server, k.clone()).await.unwrap();
                assert_eq!(resp.verdict, Verdict::from_bool(k.len() % 2 == 0), "{k}");
            }));
        }
        for handle in handles {
            handle.await.unwrap();
        }
        assert_eq!(pool.in_flight(), 0);
    }

    #[tokio::test]
    async fn total_loss_times_out_and_cleans_up() {
        let server = spawn_echo().await;
        let pool = PooledUdpRpcClient::bind_with_faults(
            UdpRpcConfig {
                timeout: Duration::from_millis(1),
                max_retries: 2,
                ..Default::default()
            },
            FaultPlan::new(1.0, 0.0, Duration::ZERO, 5),
        )
        .await
        .unwrap();
        let err = pool.check(server, key("ab")).await.unwrap_err();
        assert!(matches!(err, JanusError::Timeout { attempts: 3 }));
        assert_eq!(pool.in_flight(), 0, "leaked waiter after timeout");
    }

    #[tokio::test]
    async fn retries_recover_from_partial_loss() {
        let server = spawn_echo().await;
        let pool = PooledUdpRpcClient::bind_with_faults(
            UdpRpcConfig::lan_defaults(),
            FaultPlan::new(0.4, 0.0, Duration::ZERO, 777),
        )
        .await
        .unwrap();
        let mut ok = 0;
        for _ in 0..20 {
            if pool.check(server, key("ab")).await.is_ok() {
                ok += 1;
            }
        }
        assert!(ok >= 18, "only {ok}/20 under 40% loss");
    }

    /// 32 concurrent checks against one server must land in far fewer
    /// than 32 request datagrams once coalescing kicks in, and every
    /// caller must still get its own answer back.
    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn batched_requests_coalesce_on_the_wire() {
        let socket = UdpSocket::bind(("127.0.0.1", 0)).await.unwrap();
        let addr = socket.local_addr().unwrap();
        let datagrams = Arc::new(AtomicU64::new(0));
        let counter = Arc::clone(&datagrams);
        tokio::spawn(async move {
            let mut buf = vec![0u8; MAX_DATAGRAM_BYTES + 1];
            loop {
                let Ok((len, peer)) = socket.recv_from(&mut buf).await else {
                    return;
                };
                counter.fetch_add(1, Ordering::Relaxed);
                let Ok(frames) = codec::decode_all(&buf[..len]) else {
                    continue;
                };
                let responses: Vec<Frame> = frames
                    .iter()
                    .filter_map(|frame| match frame {
                        Frame::Request(req) => Some(Frame::Response(QosResponse::allow(req.id))),
                        Frame::Response(_) => None,
                    })
                    .collect();
                for wire in codec::encode_batch(&responses) {
                    let _ = socket.send_to(&wire, peer).await;
                }
            }
        });

        // A generous deadline so all 32 sends share coalescing windows
        // regardless of scheduling jitter.
        let pool = PooledUdpRpcClient::bind_with_batch(
            UdpRpcConfig::lan_defaults(),
            BatchConfig {
                enabled: true,
                max_frames: 16,
                max_delay: Duration::from_millis(5),
            },
            FaultPlan::none(),
        )
        .await
        .unwrap();
        let mut handles = Vec::new();
        for i in 0..32usize {
            let pool = pool.clone();
            handles.push(tokio::spawn(async move {
                pool.check(addr, key(&format!("tenant-{i}"))).await.unwrap()
            }));
        }
        for handle in handles {
            assert_eq!(handle.await.unwrap().verdict, Verdict::Allow);
        }
        let sent = datagrams.load(Ordering::Relaxed);
        assert!(
            sent < 32,
            "expected coalescing, saw {sent} request datagrams for 32 checks"
        );
        assert_eq!(pool.in_flight(), 0);
    }

    #[tokio::test]
    async fn soliciting_check_receives_hint_from_aware_server() {
        use janus_types::{Credits, RefillRate, RuleHint};
        let server = UdpServerSocket::bind_ephemeral().await.unwrap();
        let addr = server.local_addr().unwrap();
        tokio::spawn(async move {
            loop {
                let Ok((req, peer)) = server.recv_request().await else {
                    return;
                };
                let mut resp = QosResponse::allow(req.id);
                if req.solicit_hint {
                    resp = resp.with_hint(RuleHint::new(
                        Credits::from_whole(10),
                        RefillRate::per_second(5),
                    ));
                }
                let _ = server.send_response(&resp, peer).await;
            }
        });
        let pool = PooledUdpRpcClient::bind(UdpRpcConfig::lan_defaults())
            .await
            .unwrap();
        let plain = pool.check(addr, key("ab")).await.unwrap();
        assert_eq!(plain.hint, None);
        let hinted = pool.check_soliciting_hint(addr, key("ab")).await.unwrap();
        let hint = hinted.hint.expect("hint solicited but absent");
        assert_eq!(hint.capacity, Credits::from_whole(10));
        assert_eq!(hint.refill_rate, RefillRate::per_second(5));
    }

    #[tokio::test]
    async fn pooled_deadline_attempts_downgrade_to_legacy_on_final_try() {
        // Unanswered sink: inspect every attempt's frame kind. Batching
        // is off so each attempt is one legacy-format datagram.
        let sink = UdpSocket::bind(("127.0.0.1", 0)).await.unwrap();
        let addr = sink.local_addr().unwrap();
        let pool = PooledUdpRpcClient::bind_with_batch(
            UdpRpcConfig {
                timeout: Duration::from_millis(20),
                max_retries: 2,
                stamp_deadlines: true,
                ..Default::default()
            },
            BatchConfig::disabled(),
            FaultPlan::none(),
        )
        .await
        .unwrap();
        let call = tokio::spawn(async move { pool.check(addr, key("ab")).await });
        let mut kinds = Vec::new();
        let mut buf = [0u8; MAX_DATAGRAM_BYTES + 1];
        for _ in 0..3 {
            let (len, _) = sink.recv_from(&mut buf).await.unwrap();
            kinds.push(buf[..len][3]);
        }
        assert!(call.await.unwrap().is_err(), "nothing answered");
        assert_eq!(
            kinds,
            vec![
                codec::KIND_REQUEST_DEADLINE,
                codec::KIND_REQUEST_DEADLINE,
                codec::KIND_REQUEST
            ]
        );
    }

    #[tokio::test]
    async fn late_responses_are_dropped_not_misdelivered() {
        // A slow server answers after the caller timed out; the next call
        // must not receive the stale response.
        let server = UdpServerSocket::bind_ephemeral().await.unwrap();
        let addr = server.local_addr().unwrap();
        tokio::spawn(async move {
            loop {
                let Ok((req, peer)) = server.recv_request().await else {
                    return;
                };
                tokio::time::sleep(Duration::from_millis(20)).await;
                // Always answer Deny (the stale answer).
                let _ = server.send_response(&QosResponse::deny(req.id), peer).await;
            }
        });
        let pool = PooledUdpRpcClient::bind(UdpRpcConfig {
            timeout: Duration::from_millis(2),
            max_retries: 0,
            ..Default::default()
        })
        .await
        .unwrap();
        assert!(pool.check(addr, key("ab")).await.is_err());
        // Wait for the stale response to arrive and be discarded.
        tokio::time::sleep(Duration::from_millis(40)).await;
        assert_eq!(pool.in_flight(), 0);
    }
}
