//! Pooled UDP RPC: one shared socket, many in-flight exchanges.
//!
//! The paper's PHP router opens a socket per admission request —
//! [`crate::udp::UdpRpcClient`] reproduces that faithfully. A long-lived
//! async router can do better: bind one socket, tag every request with
//! its id, and demultiplex responses to per-request wakers. This module
//! is that optimization (an ablation over the paper's design, not a
//! replacement: the router accepts either client).
//!
//! Correctness notes:
//! * ids are allocated from an atomic counter, so concurrent callers
//!   never collide;
//! * late responses for timed-out or completed requests are dropped at
//!   the demux map;
//! * retries re-send the *same* id, so whichever attempt's response
//!   arrives first completes the call.

use crate::fault::FaultPlan;
use crate::udp::UdpRpcConfig;
use janus_types::codec::{self, Frame, MAX_FRAME_BYTES};
use janus_types::{JanusError, QosKey, QosRequest, QosResponse, RequestId, Result};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tokio::net::UdpSocket;
use tokio::sync::oneshot;

/// Response demultiplexer: request id → waiting caller.
type Waiters = Arc<Mutex<HashMap<RequestId, oneshot::Sender<QosResponse>>>>;

/// A shared-socket UDP RPC client.
///
/// Cheap to clone; all clones share the socket and the demux task.
#[derive(Clone)]
pub struct PooledUdpRpcClient {
    socket: Arc<UdpSocket>,
    waiters: Waiters,
    config: UdpRpcConfig,
    faults: Arc<FaultPlan>,
    next_id: Arc<AtomicU64>,
}

impl std::fmt::Debug for PooledUdpRpcClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PooledUdpRpcClient")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl PooledUdpRpcClient {
    /// Bind the shared socket and start the demux task.
    pub async fn bind(config: UdpRpcConfig) -> Result<Self> {
        Self::bind_with_faults(config, FaultPlan::none()).await
    }

    /// Bind with fault injection on the send path.
    pub async fn bind_with_faults(
        config: UdpRpcConfig,
        faults: Arc<FaultPlan>,
    ) -> Result<Self> {
        let socket = Arc::new(UdpSocket::bind(("127.0.0.1", 0)).await?);
        let waiters: Waiters = Arc::new(Mutex::new(HashMap::new()));

        // Demux task: route every arriving response to its waiter.
        let demux_socket = Arc::clone(&socket);
        let demux_waiters = Arc::clone(&waiters);
        tokio::spawn(async move {
            let mut buf = vec![0u8; MAX_FRAME_BYTES + 1];
            loop {
                let Ok((len, _peer)) = demux_socket.recv_from(&mut buf).await else {
                    return;
                };
                if let Ok(Frame::Response(resp)) = codec::decode(&buf[..len]) {
                    // A missing waiter is a late duplicate: drop it.
                    if let Some(tx) = demux_waiters.lock().remove(&resp.id) {
                        let _ = tx.send(resp);
                    }
                }
            }
        });

        Ok(PooledUdpRpcClient {
            socket,
            waiters,
            config,
            faults,
            next_id: Arc::new(AtomicU64::new(1)),
        })
    }

    /// The retry discipline in force.
    pub fn config(&self) -> &UdpRpcConfig {
        &self.config
    }

    /// In-flight exchanges right now (diagnostics).
    pub fn in_flight(&self) -> usize {
        self.waiters.lock().len()
    }

    /// Perform one admission exchange with the QoS server at `server`.
    /// The request id is allocated internally (callers supply only the
    /// key), guaranteeing pool-wide uniqueness.
    pub async fn check(&self, server: SocketAddr, key: QosKey) -> Result<QosResponse> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let request = QosRequest::new(id, key);
        let wire = codec::encode_request(&request);

        let (tx, mut rx) = oneshot::channel();
        self.waiters.lock().insert(id, tx);
        // Ensure cleanup on every exit path.
        let result = async {
            for _attempt in 0..self.config.attempts() {
                match self.faults.judge() {
                    None => {} // dropped on the floor, like a lossy link
                    Some(delay) => {
                        if !delay.is_zero() {
                            tokio::time::sleep(delay).await;
                        }
                        self.socket.send_to(&wire, server).await?;
                    }
                }
                match tokio::time::timeout(self.config.timeout, &mut rx).await {
                    Ok(Ok(resp)) => return Ok(resp),
                    // Channel dropped: demux task died (socket closed).
                    Ok(Err(_)) => {
                        return Err(JanusError::state("udp pool demux task is gone"))
                    }
                    Err(_elapsed) => continue,
                }
            }
            Err(JanusError::Timeout {
                attempts: self.config.attempts(),
            })
        }
        .await;
        self.waiters.lock().remove(&id);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::udp::UdpServerSocket;
    use janus_types::Verdict;
    use std::time::Duration;

    fn key(s: &str) -> QosKey {
        QosKey::new(s).unwrap()
    }

    /// Echo server: allow iff the key length is even.
    async fn spawn_echo() -> SocketAddr {
        let server = UdpServerSocket::bind_ephemeral().await.unwrap();
        let addr = server.local_addr().unwrap();
        tokio::spawn(async move {
            loop {
                let Ok((req, peer)) = server.recv_request().await else { return };
                let verdict = Verdict::from_bool(req.key.len() % 2 == 0);
                let _ = server
                    .send_response(&QosResponse::new(req.id, verdict), peer)
                    .await;
            }
        });
        addr
    }

    #[tokio::test]
    async fn roundtrip() {
        let server = spawn_echo().await;
        let pool = PooledUdpRpcClient::bind(UdpRpcConfig::lan_defaults())
            .await
            .unwrap();
        assert_eq!(
            pool.check(server, key("ab")).await.unwrap().verdict,
            Verdict::Allow
        );
        assert_eq!(
            pool.check(server, key("abc")).await.unwrap().verdict,
            Verdict::Deny
        );
        assert_eq!(pool.in_flight(), 0);
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn concurrent_exchanges_demux_correctly() {
        let server = spawn_echo().await;
        let pool = PooledUdpRpcClient::bind(UdpRpcConfig::lan_defaults())
            .await
            .unwrap();
        let mut handles = Vec::new();
        for i in 0..128usize {
            let pool = pool.clone();
            handles.push(tokio::spawn(async move {
                let k = key(&"x".repeat(1 + i % 7));
                let resp = pool.check(server, k.clone()).await.unwrap();
                assert_eq!(resp.verdict, Verdict::from_bool(k.len() % 2 == 0), "{k}");
            }));
        }
        for handle in handles {
            handle.await.unwrap();
        }
        assert_eq!(pool.in_flight(), 0);
    }

    #[tokio::test]
    async fn total_loss_times_out_and_cleans_up() {
        let server = spawn_echo().await;
        let pool = PooledUdpRpcClient::bind_with_faults(
            UdpRpcConfig {
                timeout: Duration::from_millis(1),
                max_retries: 2,
            },
            FaultPlan::new(1.0, 0.0, Duration::ZERO, 5),
        )
        .await
        .unwrap();
        let err = pool.check(server, key("ab")).await.unwrap_err();
        assert!(matches!(err, JanusError::Timeout { attempts: 3 }));
        assert_eq!(pool.in_flight(), 0, "leaked waiter after timeout");
    }

    #[tokio::test]
    async fn retries_recover_from_partial_loss() {
        let server = spawn_echo().await;
        let pool = PooledUdpRpcClient::bind_with_faults(
            UdpRpcConfig::lan_defaults(),
            FaultPlan::new(0.4, 0.0, Duration::ZERO, 777),
        )
        .await
        .unwrap();
        let mut ok = 0;
        for _ in 0..20 {
            if pool.check(server, key("ab")).await.is_ok() {
                ok += 1;
            }
        }
        assert!(ok >= 18, "only {ok}/20 under 40% loss");
    }

    #[tokio::test]
    async fn late_responses_are_dropped_not_misdelivered() {
        // A slow server answers after the caller timed out; the next call
        // must not receive the stale response.
        let server = UdpServerSocket::bind_ephemeral().await.unwrap();
        let addr = server.local_addr().unwrap();
        tokio::spawn(async move {
            loop {
                let Ok((req, peer)) = server.recv_request().await else { return };
                tokio::time::sleep(Duration::from_millis(20)).await;
                // Always answer Deny (the stale answer).
                let _ = server
                    .send_response(&QosResponse::deny(req.id), peer)
                    .await;
            }
        });
        let pool = PooledUdpRpcClient::bind(UdpRpcConfig {
            timeout: Duration::from_millis(2),
            max_retries: 0,
        })
        .await
        .unwrap();
        assert!(pool.check(addr, key("ab")).await.is_err());
        // Wait for the stale response to arrive and be discarded.
        tokio::time::sleep(Duration::from_millis(40)).await;
        assert_eq!(pool.in_flight(), 0);
    }
}
