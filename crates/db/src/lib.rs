#![warn(missing_docs)]
//! Database substrate for Janus: the `qos_rules` store.
//!
//! The paper's database layer is MySQL 5.7 on RDS holding one table of
//! four columns — QoS key, refill rate, bucket capacity, remaining credit
//! — with the key as primary key, accessed by QoS servers for (a)
//! first-sighting rule lookups, (b) periodic rule sync, and (c) periodic
//! credit check-pointing. The workload on it is tiny ("well below 1% CPU",
//! §V-A), so fidelity matters more than throughput. This crate rebuilds
//! the pieces that Janus actually exercises:
//!
//! * [`engine::RulesEngine`] — the in-memory table with a primary-key
//!   index (the paper preloads the whole table into RAM anyway via
//!   `SELECT * FROM qos_rules`).
//! * [`sql`] — a mini-SQL subset (`SELECT`/`INSERT`/`UPDATE`/`DELETE` on
//!   `qos_rules`, plus `COUNT(*)`) so QoS servers speak to the database
//!   the way the paper's Java code spoke to MySQL.
//! * [`server::DbServer`] — a TCP server with a newline-delimited
//!   query/response protocol, optional write-forwarding to a standby
//!   (Multi-AZ master/standby), promotable via the DNS failover record.
//! * [`client::DbClient`] — connection handling plus typed helpers
//!   (`get_rule`, `load_all`, `checkpoint_credit`, ...).

pub mod client;
pub mod engine;
pub mod server;
pub mod sql;

pub use client::DbClient;
pub use engine::RulesEngine;
pub use server::DbServer;
