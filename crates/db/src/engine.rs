//! The in-memory `qos_rules` table engine.

use janus_types::{Credits, QosKey, QosRule};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// The `qos_rules` table: a hash index on the primary key.
///
/// All mutations bump a version counter so replication and QoS-server rule
/// sync can cheaply detect "anything changed since I last looked?".
#[derive(Debug, Default)]
pub struct RulesEngine {
    rows: RwLock<HashMap<QosKey, QosRule>>,
    /// Hotness side-table: cumulative decision counts persisted by the QoS
    /// servers' reclaim sweeps. Orders the streaming warm-up scan (hot
    /// keys first); not part of the rule row, so the frozen `key\trate\t
    /// cap\tcredit` wire format is untouched.
    touches: RwLock<HashMap<QosKey, u64>>,
    version: AtomicU64,
}

impl RulesEngine {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bulk-load rules (initial population; replaces existing rows with
    /// the same key).
    pub fn load(&self, rules: impl IntoIterator<Item = QosRule>) {
        let mut rows = self.rows.write();
        for rule in rules {
            rows.insert(rule.key.clone(), rule.clamped());
        }
        drop(rows);
        self.bump();
    }

    /// `SELECT * FROM qos_rules WHERE qos_key = ?`
    pub fn get(&self, key: &QosKey) -> Option<QosRule> {
        self.rows.read().get(key).cloned()
    }

    /// `SELECT * FROM qos_rules` — rows in key order (deterministic output
    /// for tests and replication).
    pub fn all(&self) -> Vec<QosRule> {
        let mut rules: Vec<_> = self.rows.read().values().cloned().collect();
        rules.sort_by(|a, b| a.key.cmp(&b.key));
        rules
    }

    /// Upsert one rule.
    pub fn put(&self, rule: QosRule) {
        self.rows.write().insert(rule.key.clone(), rule.clamped());
        self.bump();
    }

    /// Update only the credit column (check-pointing). Returns false if
    /// the key does not exist. Does *not* bump the table version: credit
    /// checkpoints are not rule changes and must not trigger rule re-sync
    /// on every QoS server.
    pub fn checkpoint_credit(&self, key: &QosKey, credit: Credits) -> bool {
        match self.rows.write().get_mut(key) {
            Some(rule) => {
                rule.credit = credit.min(rule.capacity);
                true
            }
            None => false,
        }
    }

    /// `SELECT * FROM qos_rules ORDER BY touches DESC ... LIMIT ? OFFSET ?`
    /// — one warm-up batch, hottest keys first (ties broken by key order so
    /// pagination is deterministic and covers every row exactly once).
    pub fn scan(&self, offset: usize, limit: usize) -> Vec<QosRule> {
        let touches = self.touches.read();
        let mut rules: Vec<_> = self.rows.read().values().cloned().collect();
        rules.sort_by(|a, b| {
            let ta = touches.get(&a.key).copied().unwrap_or(0);
            let tb = touches.get(&b.key).copied().unwrap_or(0);
            tb.cmp(&ta).then_with(|| a.key.cmp(&b.key))
        });
        rules.into_iter().skip(offset).take(limit).collect()
    }

    /// `UPDATE qos_rules SET touches = touches + ?` — accumulate hotness
    /// observed by a QoS server since the key was last resident. Additive
    /// (several servers may fold counts for the same key) and, like credit
    /// checkpoints, not a rule change: the version is not bumped.
    pub fn record_touches(&self, key: &QosKey, count: u64) {
        let mut touches = self.touches.write();
        let entry = touches.entry(key.clone()).or_insert(0);
        *entry = entry.saturating_add(count);
    }

    /// The accumulated touch count for `key` (0 if never recorded).
    pub fn touches(&self, key: &QosKey) -> u64 {
        self.touches.read().get(key).copied().unwrap_or(0)
    }

    /// `DELETE FROM qos_rules WHERE qos_key = ?`. Returns true if the row
    /// existed.
    pub fn delete(&self, key: &QosKey) -> bool {
        let removed = self.rows.write().remove(key).is_some();
        if removed {
            self.touches.write().remove(key);
            self.bump();
        }
        removed
    }

    /// `SELECT COUNT(*) FROM qos_rules`.
    pub fn count(&self) -> usize {
        self.rows.read().len()
    }

    /// Monotonic rule-change counter.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    fn bump(&self) {
        self.version.fetch_add(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_types::RefillRate;

    fn key(s: &str) -> QosKey {
        QosKey::new(s).unwrap()
    }

    fn rule(s: &str, cap: u64, rate: u64) -> QosRule {
        QosRule::per_second(key(s), cap, rate)
    }

    #[test]
    fn put_get_roundtrip() {
        let engine = RulesEngine::new();
        engine.put(rule("alice", 1000, 100));
        let got = engine.get(&key("alice")).unwrap();
        assert_eq!(got.capacity, Credits::from_whole(1000));
        assert_eq!(got.refill_rate, RefillRate::per_second(100));
        assert_eq!(engine.get(&key("bob")), None);
    }

    #[test]
    fn put_clamps_credit_to_capacity() {
        let engine = RulesEngine::new();
        let mut r = rule("alice", 10, 1);
        r.credit = Credits::from_whole(500);
        engine.put(r);
        assert_eq!(
            engine.get(&key("alice")).unwrap().credit,
            Credits::from_whole(10)
        );
    }

    #[test]
    fn all_is_sorted_by_key() {
        let engine = RulesEngine::new();
        engine.load([
            rule("charlie", 1, 1),
            rule("alice", 1, 1),
            rule("bob", 1, 1),
        ]);
        let keys: Vec<_> = engine
            .all()
            .into_iter()
            .map(|r| r.key.to_string())
            .collect();
        assert_eq!(keys, vec!["alice", "bob", "charlie"]);
        assert_eq!(engine.count(), 3);
    }

    #[test]
    fn checkpoint_updates_credit_only() {
        let engine = RulesEngine::new();
        engine.put(rule("alice", 1000, 100));
        let v = engine.version();
        assert!(engine.checkpoint_credit(&key("alice"), Credits::from_whole(42)));
        let got = engine.get(&key("alice")).unwrap();
        assert_eq!(got.credit, Credits::from_whole(42));
        assert_eq!(got.capacity, Credits::from_whole(1000));
        assert_eq!(engine.version(), v, "checkpoint must not bump version");
        assert!(!engine.checkpoint_credit(&key("ghost"), Credits::ZERO));
    }

    #[test]
    fn checkpoint_clamps_to_capacity() {
        let engine = RulesEngine::new();
        engine.put(rule("alice", 10, 1));
        engine.checkpoint_credit(&key("alice"), Credits::from_whole(9999));
        assert_eq!(
            engine.get(&key("alice")).unwrap().credit,
            Credits::from_whole(10)
        );
    }

    #[test]
    fn scan_pages_hottest_keys_first() {
        let engine = RulesEngine::new();
        engine.load([rule("cold", 1, 1), rule("warm", 1, 1), rule("hot", 1, 1)]);
        engine.record_touches(&key("hot"), 100);
        engine.record_touches(&key("warm"), 10);
        let names = |rows: Vec<QosRule>| -> Vec<String> {
            rows.into_iter().map(|r| r.key.to_string()).collect()
        };
        assert_eq!(names(engine.scan(0, 2)), vec!["hot", "warm"]);
        assert_eq!(names(engine.scan(2, 2)), vec!["cold"]);
        assert!(engine.scan(3, 2).is_empty());
        // Untouched keys page deterministically in key order.
        engine.load([rule("aaa", 1, 1), rule("bbb", 1, 1)]);
        assert_eq!(
            names(engine.scan(2, 10)),
            vec!["aaa", "bbb", "cold"],
            "ties broken by key for exhaustive pagination"
        );
    }

    #[test]
    fn touches_accumulate_additively_without_version_bump() {
        let engine = RulesEngine::new();
        engine.put(rule("alice", 1, 1));
        let v = engine.version();
        engine.record_touches(&key("alice"), 3);
        engine.record_touches(&key("alice"), 4);
        assert_eq!(engine.touches(&key("alice")), 7);
        assert_eq!(
            engine.version(),
            v,
            "touch updates must not trigger rule re-sync"
        );
        assert_eq!(engine.touches(&key("ghost")), 0);
        // Deleting the row drops its hotness record too.
        engine.delete(&key("alice"));
        assert_eq!(engine.touches(&key("alice")), 0);
    }

    #[test]
    fn delete_removes_row() {
        let engine = RulesEngine::new();
        engine.put(rule("alice", 1, 1));
        assert!(engine.delete(&key("alice")));
        assert!(!engine.delete(&key("alice")));
        assert_eq!(engine.count(), 0);
    }

    #[test]
    fn version_bumps_on_rule_changes_only() {
        let engine = RulesEngine::new();
        let v0 = engine.version();
        engine.put(rule("a", 1, 1));
        let v1 = engine.version();
        assert!(v1 > v0);
        engine.delete(&key("a"));
        assert!(engine.version() > v1);
        let v2 = engine.version();
        engine.delete(&key("a")); // no-op delete
        assert_eq!(engine.version(), v2);
    }

    #[test]
    fn concurrent_readers_and_writers() {
        use std::sync::Arc;
        let engine = Arc::new(RulesEngine::new());
        let mut handles = Vec::new();
        for t in 0..4 {
            let engine = Arc::clone(&engine);
            handles.push(std::thread::spawn(move || {
                for i in 0..250 {
                    engine.put(rule(&format!("t{t}-k{i}"), 10, 1));
                    let _ = engine.get(&key(&format!("t{t}-k{i}")));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(engine.count(), 1000);
    }
}
